//! Disaster monitoring: an Earth-observation constellation downlinks
//! urgent imagery through the broadband shell.
//!
//! This is the paper's motivating scenario (Fig. 1): EO satellites
//! monitoring a wildfire must move imagery to a ground analytics site
//! *now*, with guaranteed bandwidth — best-effort routing is not good
//! enough when the data informs an evacuation.
//!
//! The example attaches a synthetic Planet-Labs-like fleet as space users,
//! generates urgent high-valuation downlink requests alongside background
//! traffic, and shows how CEAR's pricing lets the urgent requests in while
//! pushing back on the background load.
//!
//! ```text
//! cargo run --release --example disaster_monitoring
//! ```

use space_booking::sb_cear::{Cear, CearParams, Decision, NetworkState, RoutingAlgorithm};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::{eo, walker::WalkerConstellation};
use space_booking::sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};

fn main() {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);

    // Ground analytics center near the (hypothetical) fire in California.
    let analytics = nodes.add_ground_site(Geodetic::from_degrees(38.58, -121.49, 0.0));
    // A competing pair of ordinary internet users.
    let user_a = nodes.add_ground_site(Geodetic::from_degrees(40.7, -74.0, 0.0));
    let user_b = nodes.add_ground_site(Geodetic::from_degrees(51.5, -0.1, 0.0));

    // Attach five EO satellites from the synthetic fleet as space users.
    let eo_nodes: Vec<_> =
        eo::synthetic_fleet(5).into_iter().map(|s| nodes.add_space_user(s)).collect();

    let config =
        TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &config, 40, 60.0);
    let mut state = NetworkState::new(series, &EnergyParams::default());
    let mut cear = Cear::new(CearParams::default());

    let mut next_id = 0u32;
    let mut mk = |src, dst, rate: f64, start: u32, dur: u32, valuation: f64| {
        let r = Request {
            id: RequestId(next_id),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(start),
            end: SlotIndex(start + dur - 1),
            valuation,
        };
        next_id += 1;
        r
    };

    // Background: sustained bulk traffic between the internet users.
    let mut background_accepted = 0;
    for k in 0..12 {
        let req = mk(user_a, user_b, 1800.0, (k % 6) * 2, 8, 1.0e8);
        if cear.process(&req, &mut state).is_accepted() {
            background_accepted += 1;
        }
    }
    println!("background bulk flows accepted: {background_accepted}/12");

    // The fire flares up at minute 10: every EO satellite that can see the
    // ground wants an urgent 10-minute downlink window. Urgency is
    // expressed as valuation — an order of magnitude above background.
    let mut urgent_accepted = 0;
    for (k, &eo_node) in eo_nodes.iter().enumerate() {
        let req = mk(eo_node, analytics, 1000.0, 10 + k as u32, 10, 2.3e9);
        match cear.process(&req, &mut state) {
            Decision::Accepted { price, .. } => {
                urgent_accepted += 1;
                println!(
                    "EO downlink {k}: ACCEPTED at price {price:.1} \
                     ({}% of valuation)",
                    (price / 2.3e9 * 100.0).round()
                );
            }
            Decision::Rejected { reason } => println!("EO downlink {k}: REJECTED — {reason}"),
        }
    }
    println!(
        "\nurgent EO downlinks accepted: {urgent_accepted}/{} — guaranteed end-to-end rate for \
         the full 10-minute window",
        eo_nodes.len()
    );
    println!(
        "energy-depleted satellites at minute 20: {}",
        state.depleted_satellite_count(SlotIndex(20), 0.2)
    );
}
