//! Operator's console: adaptive conservativeness under a flash crowd.
//!
//! A disaster strikes mid-simulation: arrivals quadruple for twenty
//! minutes (the burst pattern), hammering satellite batteries. The
//! §V-B-style adaptive loop watches mean battery utilization and raises
//! the energy conservativeness `F₂` while the storm lasts, then relaxes
//! it. The decision trace shows what the operator would see: prices,
//! rejections by cause, and the `F₂` trajectory.
//!
//! ```text
//! cargo run --release --example adaptive_operations
//! ```

use space_booking::sb_cear::{AdaptiveCear, AdaptivePolicy};
use space_booking::sb_demand::ArrivalPattern;
use space_booking::sb_sim::engine;
use space_booking::sb_sim::trace::{run_traced, summarize};
use space_booking::sb_sim::ScenarioConfig;

fn main() {
    // A fast-scale scenario with a 4× burst in slots 30–50.
    let mut scenario = ScenarioConfig::fast();
    scenario.arrivals_per_slot = 3.0;
    scenario.pattern =
        ArrivalPattern::Burst { start_slot: 30, duration_slots: 20, multiplier: 4.0 };

    let prepared = engine::prepare(&scenario, 7);
    let requests = engine::workload(&scenario, &prepared, 7);
    let in_burst = requests.iter().filter(|r| (30..50).contains(&r.start.0)).count();
    println!(
        "workload: {} requests over {} slots — {in_burst} inside the 20-slot burst window\n",
        requests.len(),
        scenario.horizon_slots
    );

    // The adaptive operator policy: keep mean battery utilization ≤ 35%.
    let policy = AdaptivePolicy {
        target_battery_utilization: 0.35,
        retune_every: 20,
        ..AdaptivePolicy::default()
    };
    let mut algo = AdaptiveCear::new(scenario.cear, policy);
    let (records, state) = run_traced(&scenario, &prepared, &requests, &mut algo);

    let summary = summarize(&records);
    println!("accepted            : {}", summary.accepted);
    for (reason, n) in &summary.rejections {
        println!("rejected ({reason:<22}): {n}");
    }
    println!("median price        : {:.3e}", summary.median_price);
    println!("median hops         : {}", summary.median_hops);
    println!("median one-way delay: {:.1} ms", summary.median_delay_ms);

    println!("\nF2 trajectory as the loop retuned (every 20 requests):");
    let history = algo.f2_history();
    for (k, f2) in history.iter().enumerate() {
        let bar = "#".repeat((f2.log2() + 3.0).max(0.0) as usize);
        println!("  retune {k:>2}: F2 = {f2:<7.3} {bar}");
    }
    println!(
        "\nfinal F2 {:.2}; mean battery utilization at horizon end: {:.1}%",
        algo.current_f2(),
        state.ledger().mean_utilization(scenario.horizon_slots - 1) * 100.0
    );
    println!(
        "battery wear: mean {:.3} equivalent cycles, worst DoD {:.0}%",
        space_booking::sb_energy::fleet_wear(state.ledger()).mean_equivalent_cycles,
        space_booking::sb_energy::fleet_wear(state.ledger()).max_depth_of_discharge * 100.0
    );
}
