//! Tele-conferencing: reserved inter-continental sessions, CEAR vs SSP.
//!
//! Remote tele-conferencing (the paper's second motivating application)
//! needs a stable rate for the whole meeting. This example books a series
//! of overlapping "meetings" between three city pairs and compares CEAR
//! against the shortest-path baseline on how many meetings get guaranteed
//! service and what the network looks like afterwards.
//!
//! ```text
//! cargo run --release --example teleconference
//! ```

use space_booking::sb_cear::{Cear, CearParams, NetworkState, RoutingAlgorithm, Ssp};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::walker::WalkerConstellation;
use space_booking::sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologyConfig, TopologySeries};

/// One scheduled meeting: (source city, destination city, start minute).
const MEETINGS: &[(usize, usize, u32)] =
    &[(0, 1, 0), (1, 2, 2), (2, 0, 4), (0, 1, 6), (1, 2, 8), (2, 0, 10), (0, 2, 12), (1, 0, 14)];

fn build() -> (NetworkState, Vec<NodeId>) {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let cities = vec![
        nodes.add_ground_site(Geodetic::from_degrees(40.71, -74.01, 0.0)), // New York
        nodes.add_ground_site(Geodetic::from_degrees(51.51, -0.13, 0.0)),  // London
        nodes.add_ground_site(Geodetic::from_degrees(35.68, 139.69, 0.0)), // Tokyo
    ];
    let config =
        TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &config, 40, 60.0);
    (NetworkState::new(series, &EnergyParams::default()), cities)
}

fn run(algo: &mut dyn RoutingAlgorithm) -> (usize, usize, usize) {
    let (mut state, cities) = build();
    let mut booked = 0;
    for (k, &(src, dst, start)) in MEETINGS.iter().enumerate() {
        // A 20-minute HD conference bridge at 1.5 Gbps aggregate.
        let request = Request {
            id: RequestId(k as u32),
            source: cities[src],
            destination: cities[dst],
            rate: RateProfile::Constant(1500.0),
            start: SlotIndex(start),
            end: SlotIndex(start + 19),
            valuation: 2.3e9,
        };
        if algo.process(&request, &mut state).is_accepted() {
            booked += 1;
        }
    }
    let congested =
        (0..40).map(|t| state.congested_link_count(SlotIndex(t), 0.1)).max().unwrap_or(0);
    let depleted =
        (0..40).map(|t| state.depleted_satellite_count(SlotIndex(t), 0.2)).max().unwrap_or(0);
    (booked, congested, depleted)
}

fn main() {
    println!("booking {} overlapping 20-minute conferences…\n", MEETINGS.len());
    for (name, algo) in [
        ("CEAR", Box::new(Cear::new(CearParams::default())) as Box<dyn RoutingAlgorithm>),
        ("SSP", Box::new(Ssp::new())),
    ] {
        let mut algo = algo;
        let (booked, congested, depleted) = run(algo.as_mut());
        println!(
            "{name:>5}: {booked}/{} meetings guaranteed — peak congested links {congested}, \
             peak depleted satellites {depleted}",
            MEETINGS.len()
        );
    }
    println!(
        "\nCEAR books meetings while steering around congested corridors and tired \
         batteries; SSP piles everything onto the same shortest paths."
    );
}
