//! The satellite charge/discharge cycle (the paper's Fig. 3), traced.
//!
//! Propagates one satellite through four orbits, prints its
//! sunlight/umbra profile, and shows how a communication workload turns
//! into battery deficits that persist until repaid by solar surplus —
//! the paper's core energy-modeling insight.
//!
//! ```text
//! cargo run --release --example energy_cycle
//! ```

use space_booking::sb_energy::{EnergyLedger, EnergyParams, SatelliteRole};
use space_booking::sb_geo::{sun, Epoch};
use space_booking::sb_orbit::kepler::OrbitalElements;

fn main() {
    // One satellite in the Starlink Shell-1 orbit.
    let elements =
        OrbitalElements::circular(550e3, 53f64.to_radians(), 0.3, 0.0, Epoch::from_seconds(0.0));
    let period_min = (elements.period() / 60.0).round() as usize;
    println!("orbital period: {period_min} minutes");
    println!("max eclipse fraction at 550 km: {:.1}%\n", sun::max_eclipse_fraction(550e3) * 100.0);

    // Build the sunlit profile for 4 orbits at one-minute slots.
    let horizon = period_min * 4;
    let sunlit: Vec<bool> = (0..horizon)
        .map(|t| {
            let epoch = Epoch::from_seconds(t as f64 * 60.0);
            !sun::in_umbra(elements.position_at(epoch), epoch)
        })
        .collect();
    let eclipse_slots = sunlit.iter().filter(|&&l| !l).count();
    println!(
        "observed eclipse fraction over 4 orbits: {:.1}%",
        eclipse_slots as f64 / horizon as f64 * 100.0
    );

    let params = EnergyParams::default();
    let mut ledger =
        EnergyLedger::new(&params, 60.0, std::slice::from_ref(&sunlit).to_vec().as_slice());

    // A 10-minute relay job (middle role, 1250 Mbps) starting in the first
    // umbra period.
    let first_umbra = sunlit.iter().position(|&l| !l).expect("orbit has an umbra");
    let consumption = params.consumption_j(SatelliteRole::Middle, 1250.0, 60.0);
    println!(
        "\nrelaying 1250 Mbps from minute {first_umbra}: {consumption:.0} J per slot \
         (solar input is {:.0} J per sunlit slot)\n",
        params.solar_input_per_slot_j(60.0)
    );
    for t in first_umbra..first_umbra + 10 {
        ledger.commit(0, t, consumption);
    }

    // Plot the battery level as an ASCII strip, one char per 4 minutes.
    println!("battery level over 4 orbits ('#' = sunlit slot group, '.' = umbra):");
    for t in (0..horizon).step_by(4) {
        let level = ledger.battery_level_j(0, t) / params.battery_capacity_j;
        let bar = "=".repeat((level * 40.0).round() as usize);
        let tag = if sunlit[t] { '#' } else { '.' };
        println!("min {t:>3} {tag} |{bar:<40}| {:>5.1}%", level * 100.0);
    }

    // The deficit's life-cycle summary.
    let max_deficit = (0..horizon).map(|t| ledger.deficit_j(0, t)).fold(0.0f64, f64::max);
    let repaid_at = (first_umbra..horizon).find(|&t| ledger.deficit_j(0, t) == 0.0);
    println!("\npeak deficit: {max_deficit:.0} J ({:.1}% of battery)", max_deficit / 1170.0);
    match repaid_at {
        Some(t) => println!("deficit fully repaid by solar surplus at minute {t}"),
        None => println!("deficit persists to the end of the horizon"),
    }
}
