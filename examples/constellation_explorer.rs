//! Constellation explorer: inspect the dynamic topology the algorithms
//! run on.
//!
//! Builds the full paper-scale Starlink Shell-1 (1584 satellites), the
//! GDP-weighted ground grid and the synthetic EO fleet, then prints
//! topology statistics over one orbital period: ISL/USL counts, coverage,
//! sunlight fraction and how fast the user-facing topology churns.
//!
//! ```text
//! cargo run --release --example constellation_explorer
//! ```

use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::{eo, walker::WalkerConstellation};
use space_booking::sb_topology::ground::GroundGrid;
use space_booking::sb_topology::{
    LinkType, NetworkNodes, SlotIndex, TopologyConfig, TopologySeries,
};

fn main() {
    // The paper's constellation.
    let shell = WalkerConstellation::starlink_shell1();
    println!(
        "constellation: {} planes × {} satellites = {} at {:.0} km / {:.0}°",
        shell.planes(),
        shell.sats_per_plane(),
        shell.total_satellites(),
        shell.altitude_m() / 1000.0,
        shell.inclination_rad().to_degrees(),
    );

    // The paper's candidate ground sites.
    let grid = GroundGrid::paper_scale();
    println!("ground grid: {} GDP-weighted candidate sites", grid.len());
    let (top, w) = (&grid.sites()[0].0, grid.sites()[0].1);
    println!("densest site: {top} (weight {w:.2})");

    // A handful of endpoints: three heavy sites plus two EO satellites.
    let mut nodes = NetworkNodes::from_walker(&shell);
    for k in 0..3 {
        nodes.add_ground_site(grid.sites()[k * 50].0);
    }
    // A user in a low-GDP region for contrast.
    let remote = nodes.add_ground_site(Geodetic::from_degrees(-51.7, -57.9, 0.0)); // Falklands
    for sat in eo::synthetic_fleet(2) {
        nodes.add_space_user(sat);
    }

    // One orbital period at one-minute slots.
    let series = TopologySeries::build(&nodes, &TopologyConfig::default(), 96, 60.0);

    println!("\nslot  ISLs  USLs  sunlit%  remote-user-degree");
    let mut prev_gateways: Option<Vec<sb_topology::NodeId>> = None;
    let mut handovers = 0usize;
    for t in (0..96).step_by(8) {
        let snap = series.snapshot(SlotIndex(t));
        let isls = snap.edges().filter(|e| e.link_type == LinkType::Isl).count();
        let usls = snap.edges().filter(|e| e.link_type == LinkType::Usl).count();
        let sunlit = (0..shell.total_satellites())
            .filter(|&i| snap.is_sunlit(sb_topology::NodeId(i as u32)))
            .count();
        println!(
            "{t:>4}  {isls:>5}  {usls:>4}  {:>6.1}  {:>3}",
            sunlit as f64 / shell.total_satellites() as f64 * 100.0,
            snap.out_degree(remote),
        );
        // Track gateway churn for the remote user.
        let gateways: Vec<_> = snap.out_edges(remote).map(|(_, e)| e.dst).collect();
        if let Some(prev) = &prev_gateways {
            handovers += gateways.iter().filter(|g| !prev.contains(g)).count();
        }
        prev_gateways = Some(gateways);
    }
    println!(
        "\nremote user gained {handovers} new gateway satellites across the sampled slots — \
         the topology dynamics CEAR's per-slot paths absorb"
    );
}
