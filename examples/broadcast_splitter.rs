//! Live-broadcast backhaul: multipath splitting for elephant flows.
//!
//! A broadcaster needs a 6 Gbps contribution feed across the ocean — more
//! than any single 4 Gbps user access link can carry, so plain CEAR must
//! refuse it. The multipath extension splits the feed into equal subflows,
//! each priced and reserved by CEAR on its own path, with all-or-nothing
//! semantics across the bundle.
//!
//! ```text
//! cargo run --release --example broadcast_splitter
//! ```

use space_booking::sb_cear::{
    Cear, CearParams, Decision, MultipathCear, NetworkState, RoutingAlgorithm,
};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::walker::WalkerConstellation;
use space_booking::sb_topology::delay::path_delay_s;
use space_booking::sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};

fn main() {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let stadium = nodes.add_ground_site(Geodetic::from_degrees(48.86, 2.35, 0.0)); // Paris
    let studio = nodes.add_ground_site(Geodetic::from_degrees(40.71, -74.01, 0.0)); // New York

    let config =
        TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &config, 15, 60.0);
    let mut state = NetworkState::new(series, &EnergyParams::default());

    let feed = Request {
        id: RequestId(0),
        source: stadium,
        destination: studio,
        rate: RateProfile::Constant(6000.0), // 6 Gbps contribution feed
        start: SlotIndex(0),
        end: SlotIndex(14), // a 15-minute segment
        valuation: 2.3e9,
    };

    // Plain CEAR: physically unroutable over one access link.
    let mut plain = Cear::new(CearParams::default());
    match plain.process(&feed, &mut state.clone()) {
        Decision::Rejected { reason } => {
            println!("plain CEAR    : rejected — {reason} (6 Gbps > 4 Gbps USL)")
        }
        Decision::Accepted { .. } => println!("plain CEAR    : unexpectedly accepted"),
    }

    // Multipath CEAR: split into subflows.
    let mut multipath = MultipathCear::new(CearParams::default(), 4);
    match multipath.process(&feed, &mut state) {
        Decision::Accepted { plan, price } => {
            let paths_in_first_slot =
                plan.slot_paths.iter().filter(|sp| sp.slot == SlotIndex(0)).count();
            println!(
                "multipath CEAR: ACCEPTED as {paths_in_first_slot} subflows — total price {price:.3e}"
            );
            for (k, sp) in plan.slot_paths.iter().filter(|sp| sp.slot == SlotIndex(0)).enumerate() {
                let snapshot = state.series().snapshot(sp.slot);
                println!(
                    "  subflow {k}: {} hops, {:.1} ms one-way",
                    sp.num_hops(),
                    path_delay_s(snapshot, &sp.edges) * 1e3
                );
            }
            println!(
                "\nreserved for all 15 minutes on every path — the feed has guaranteed \
                 bandwidth and bounded delay end to end"
            );
        }
        Decision::Rejected { reason } => println!("multipath CEAR: rejected — {reason}"),
    }
}
