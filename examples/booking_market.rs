//! A booking market: heterogeneous valuations meet exponential prices.
//!
//! The paper's auction view in action: users value the same service very
//! differently (a broadcaster's live feed vs a bulk backup), CEAR quotes
//! every arrival a price that reflects current congestion and battery
//! wear, and only users whose value clears the price get in. Watch the
//! price ramp as the network fills, low-value bulk get priced out, and the
//! operator's revenue accumulate.
//!
//! ```text
//! cargo run --release --example booking_market
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use space_booking::sb_cear::{Cear, CearParams, Decision, NetworkState, RoutingAlgorithm};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::walker::WalkerConstellation;
use space_booking::sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};

fn main() {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(40.7, -74.0, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(51.5, -0.1, 0.0));
    let config =
        TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &config, 20, 60.0);
    let mut state = NetworkState::new(series, &EnergyParams::default());
    let mut cear = Cear::new(CearParams::default());

    let mut rng = StdRng::seed_from_u64(7);
    let mut revenue = 0.0;
    let mut accepted = [0usize; 2];
    let mut offered = [0usize; 2];
    println!("{:<4} {:>10} {:>14} {:>14}  outcome", "req", "class", "valuation", "quoted price");
    for k in 0..30u32 {
        // Two user classes: broadcasters (high value) and bulk (low value).
        let broadcaster = rng.gen_bool(0.4);
        let class = usize::from(!broadcaster);
        let valuation =
            if broadcaster { rng.gen_range(5.0e8..2.5e9) } else { rng.gen_range(1.0e6..5.0e7) };
        offered[class] += 1;
        let request = Request {
            id: RequestId(k),
            source: a,
            destination: b,
            rate: RateProfile::Constant(rng.gen_range(500.0..2000.0)),
            start: SlotIndex(0),
            end: SlotIndex(9),
            valuation,
        };
        let quote = cear.quote(&request, &state).map(|(_, p)| p);
        match cear.process(&request, &mut state) {
            Decision::Accepted { price, .. } => {
                revenue += price;
                accepted[class] += 1;
                println!(
                    "{:<4} {:>10} {:>14.3e} {:>14.3e}  ACCEPTED",
                    format!("R{k}"),
                    if broadcaster { "broadcast" } else { "bulk" },
                    valuation,
                    price
                );
            }
            Decision::Rejected { reason } => {
                let quoted =
                    quote.map(|p| format!("{p:>14.3e}")).unwrap_or_else(|_| "  (no path)".into());
                println!(
                    "{:<4} {:>10} {:>14.3e} {quoted}  rejected: {reason}",
                    format!("R{k}"),
                    if broadcaster { "broadcast" } else { "bulk" },
                    valuation
                );
            }
        }
    }
    println!(
        "\nbroadcast accepted {}/{}, bulk accepted {}/{} — operator revenue {revenue:.3e}",
        accepted[0], offered[0], accepted[1], offered[1]
    );
    println!(
        "high-value traffic keeps getting in as prices climb; low-value bulk is priced \
         out exactly when its admission would hurt long-term welfare"
    );
}
