//! Quickstart: reserve guaranteed bandwidth across a LEO constellation.
//!
//! Builds a small Walker shell, connects two ground users, and walks a few
//! requests through CEAR — printing the price quoted for each and the
//! accept/reject decision.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use space_booking::sb_cear::{Cear, CearParams, Decision, NetworkState, RoutingAlgorithm};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_energy::EnergyParams;
use space_booking::sb_geo::coords::Geodetic;
use space_booking::sb_orbit::walker::WalkerConstellation;
use space_booking::sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};

fn main() {
    // 1. A 16×16 Walker shell at 550 km / 53° (a scaled-down Starlink).
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);

    // 2. Two ground users: Raleigh and Paris.
    let raleigh = nodes.add_ground_site(Geodetic::from_degrees(35.78, -78.64, 0.0));
    let paris = nodes.add_ground_site(Geodetic::from_degrees(48.86, 2.35, 0.0));

    // 3. Build 30 one-minute topology snapshots and a fresh network state.
    let config =
        TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &config, 30, 60.0);
    let mut state = NetworkState::new(series, &EnergyParams::default());

    // 4. CEAR with the paper's pricing parameters.
    let mut cear = Cear::new(CearParams::default());
    println!(
        "CEAR ready: {} satellites, competitive ratio {:.1}\n",
        state.num_satellites(),
        cear.params().competitive_ratio()
    );

    // 5. Stream a few requests of increasing demand at it.
    for (k, rate) in [800.0, 1250.0, 2000.0, 2000.0, 2000.0, 2000.0].iter().enumerate() {
        let request = Request {
            id: RequestId(k as u32),
            source: raleigh,
            destination: paris,
            rate: RateProfile::Constant(*rate),
            start: SlotIndex(0),
            end: SlotIndex(9),
            valuation: 2.3e9,
        };
        match cear.process(&request, &mut state) {
            Decision::Accepted { plan, price } => println!(
                "{}: ACCEPTED {rate:6.0} Mbps for 10 min — price {price:12.1}, {} hops max",
                request.id,
                plan.max_hops()
            ),
            Decision::Rejected { reason } => {
                println!("{}: REJECTED {rate:6.0} Mbps — {reason}", request.id)
            }
        }
    }

    // 6. Show the network-health metrics the paper tracks.
    println!(
        "\nAfter admissions: {} congested links, {} energy-depleted satellites (slot 0)",
        state.congested_link_count(SlotIndex(0), 0.1),
        state.depleted_satellite_count(SlotIndex(0), 0.2),
    );
}
