//! Space Booking — facade crate.
//!
//! Re-exports every workspace crate under one roof so applications (and
//! the examples and integration tests in this repository) can depend on a
//! single package:
//!
//! * [`sb_geo`] — coordinate frames, sun geometry, visibility;
//! * [`sb_orbit`] — Keplerian/J2 propagation, Walker shells, TLEs;
//! * [`sb_topology`] — per-slot snapshot graphs, ground grid, coverage;
//! * [`sb_energy`] — the battery-deficit energy model and wear accounting;
//! * [`sb_demand`] — requests and workload generation;
//! * [`sb_cear`] — the CEAR algorithm, baselines and offline references;
//! * [`sb_sim`] — scenarios, the simulation engine, metrics and traces;
//! * [`sb_serve`] — the fault-tolerant online admission service;
//! * [`sb_fleet`] — fault-tolerant multi-process sweep orchestration.
//!
//! See the README for a guided tour and `DESIGN.md`/`EXPERIMENTS.md` for
//! the reproduction methodology.

#![warn(missing_docs)]

pub use sb_cear;
pub use sb_demand;
pub use sb_energy;
pub use sb_fleet;
pub use sb_geo;
pub use sb_orbit;
pub use sb_serve;
pub use sb_sim;
pub use sb_topology;
