//! `space-booking` — the command-line front end.
//!
//! ```text
//! space-booking scenario --emit fast            # dump a scenario JSON template
//! space-booking run --scenario fast --algorithm cear --seed 0
//! space-booking run --scenario my.json --algorithm ssp --out metrics.json
//! space-booking quote --scenario tiny --pair 0 --rate 1250 --start 0 --end 9
//! space-booking topology --scenario tiny --slot 0
//! ```

use space_booking::sb_cear::{Cear, NetworkState};
use space_booking::sb_demand::{RateProfile, Request, RequestId};
use space_booking::sb_sim::engine::{self, AlgorithmKind};
use space_booking::sb_sim::ScenarioConfig;
use space_booking::sb_topology::{LinkType, SlotIndex};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "scenario" => cmd_scenario(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "quote" => cmd_quote(&args[1..]),
        "topology" => cmd_topology(&args[1..]),
        "export" => cmd_export(&args[1..]),
        "coverage" => cmd_coverage(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "space-booking — CEAR LEO-satellite resource reservation

USAGE:
  space-booking scenario --emit <paper|fast|tiny>
  space-booking run --scenario <name|file.json> --algorithm <cear|adaptive|ssp|ecars|eru|era>
                    [--seed N] [--out metrics.json]
  space-booking quote --scenario <name|file.json> --pair K --rate MBPS
                      --start SLOT --end SLOT [--seed N]
  space-booking topology --scenario <name|file.json> --slot N [--seed N]
  space-booking export --scenario <name|file.json> --slot N --out map.geojson [--seed N]
  space-booking coverage --scenario <name|file.json> [--elevation DEG]";

/// Parses `--key value` pairs into a lookup.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{key}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        map.insert(name.to_owned(), value.clone());
    }
    Ok(map)
}

fn load_scenario(spec: &str) -> Result<ScenarioConfig, String> {
    match spec {
        "paper" => Ok(ScenarioConfig::paper()),
        "fast" => Ok(ScenarioConfig::fast()),
        "tiny" => Ok(ScenarioConfig::tiny()),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario `{path}`: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("invalid scenario JSON: {e}"))
        }
    }
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let name = flags.get("emit").map(String::as_str).unwrap_or("fast");
    let scenario = load_scenario(name)?;
    println!("{}", serde_json::to_string_pretty(&scenario).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let scenario = load_scenario(flags.get("scenario").map(String::as_str).unwrap_or("fast"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --seed"))?;
    let kind = match flags.get("algorithm").map(String::as_str).unwrap_or("cear") {
        "cear" | "adaptive" => AlgorithmKind::Cear(scenario.cear),
        "ssp" => AlgorithmKind::Ssp,
        "ecars" => AlgorithmKind::Ecars,
        "eru" => AlgorithmKind::Eru,
        "era" => AlgorithmKind::Era,
        other => return Err(format!("unknown algorithm `{other}`")),
    };

    // The adaptive variant is not an AlgorithmKind (it carries state), so
    // run it directly through the engine's prepared pipeline.
    let metrics = if flags.get("algorithm").map(String::as_str) == Some("adaptive") {
        run_adaptive(&scenario, seed)
    } else {
        engine::run(&scenario, &kind, seed)
    };

    println!("algorithm           : {}", metrics.algorithm);
    println!("scenario            : {} (seed {seed})", metrics.scenario);
    println!(
        "requests            : {} total, {} accepted",
        metrics.total_requests, metrics.accepted_requests
    );
    println!("social welfare ratio: {:.4}", metrics.social_welfare_ratio);
    if scenario.unforeseen.is_some() {
        println!("delivered ratio     : {:.4}", metrics.delivered_welfare_ratio);
        println!(
            "interruptions       : {} broken, {} SLA violations, {}/{} repairs ok",
            metrics.interrupted_requests,
            metrics.sla_violations,
            metrics.repairs_succeeded,
            metrics.repair_attempts
        );
    }
    println!("operator revenue    : {:.4e}", metrics.revenue);
    println!("peak depleted sats  : {}", metrics.peak_depleted());
    println!("peak congested links: {}", metrics.peak_congested());
    println!(
        "battery wear        : mean {:.3} cycles, worst DoD {:.1}%",
        metrics.battery_wear.mean_equivalent_cycles,
        metrics.battery_wear.max_depth_of_discharge * 100.0
    );
    println!("processing time     : {} ms", metrics.processing_ms);

    if let Some(path) = flags.get("out") {
        let json = serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

fn run_adaptive(scenario: &ScenarioConfig, seed: u64) -> space_booking::sb_sim::RunMetrics {
    use space_booking::sb_cear::{AdaptiveCear, AdaptivePolicy};
    let prepared = engine::prepare(scenario, seed);
    let requests = engine::workload(scenario, &prepared, seed);
    let mut algo = AdaptiveCear::new(scenario.cear, AdaptivePolicy::default());
    engine::run_with_algorithm(scenario, &prepared, &requests, &mut algo, seed)
}

fn cmd_quote(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let scenario = load_scenario(flags.get("scenario").map(String::as_str).unwrap_or("fast"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --seed"))?;
    let pair: usize = flags.get("pair").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --pair"))?;
    let rate: f64 =
        flags.get("rate").map_or(Ok(1250.0), |s| s.parse().map_err(|_| "bad --rate"))?;
    let start: u32 = flags.get("start").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --start"))?;
    let end: u32 = flags.get("end").map_or(Ok(start), |s| s.parse().map_err(|_| "bad --end"))?;

    let prepared = engine::prepare(&scenario, seed);
    if pair >= prepared.pairs.len() {
        return Err(format!(
            "pair index {pair} out of range (scenario has {})",
            prepared.pairs.len()
        ));
    }
    if end as usize >= scenario.horizon_slots || end < start {
        return Err(format!(
            "invalid window [{start}, {end}] for a {}-slot horizon",
            scenario.horizon_slots
        ));
    }
    let (source, destination) = prepared.pairs[pair];
    let state = NetworkState::new(prepared.series.clone(), &scenario.energy);
    let cear = Cear::new(scenario.cear);
    let request = Request {
        id: RequestId(0),
        source,
        destination,
        rate: RateProfile::Constant(rate),
        start: SlotIndex(start),
        end: SlotIndex(end),
        valuation: f64::MAX,
    };
    match cear.quote(&request, &state) {
        Ok((plan, price)) => {
            println!("quote for pair {pair} ({source} → {destination}), {rate} Mbps, slots {start}..={end}:");
            println!("  price    : {price:.4e}");
            println!("  max hops : {}", plan.max_hops());
            let snapshot = state.series().snapshot(SlotIndex(start));
            let delay_ms = space_booking::sb_topology::delay::path_delay_s(
                snapshot,
                &plan.slot_paths[0].edges,
            ) * 1e3;
            println!("  first-slot propagation delay: {delay_ms:.2} ms");
            Ok(())
        }
        Err(reason) => Err(format!("no quote: {reason}")),
    }
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let scenario = load_scenario(flags.get("scenario").map(String::as_str).unwrap_or("fast"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --seed"))?;
    let slot: u32 = flags.get("slot").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --slot"))?;
    if slot as usize >= scenario.horizon_slots {
        return Err(format!("slot {slot} beyond the {}-slot horizon", scenario.horizon_slots));
    }
    let prepared = engine::prepare(&scenario, seed);
    let snap = prepared.series.snapshot(SlotIndex(slot));
    let isls = snap.edges().filter(|e| e.link_type == LinkType::Isl).count();
    let usls = snap.edges().filter(|e| e.link_type == LinkType::Usl).count();
    let sunlit = (0..scenario.total_satellites())
        .filter(|&i| snap.is_sunlit(space_booking::sb_topology::NodeId(i as u32)))
        .count();
    println!("scenario  : {} (seed {seed}), slot {slot}", scenario.name);
    println!("nodes     : {} ({} satellites)", snap.num_nodes(), scenario.total_satellites());
    println!("ISLs      : {isls} directed");
    println!("USLs      : {usls} directed");
    println!(
        "sunlit    : {sunlit}/{} satellites ({:.1}%)",
        scenario.total_satellites(),
        sunlit as f64 / scenario.total_satellites() as f64 * 100.0
    );
    println!("capacity  : {:.1} Tbps total directed", snap.total_capacity_mbps() / 1e6);
    for (k, (src, dst)) in prepared.pairs.iter().enumerate() {
        println!(
            "pair {k}: {src} → {dst} (degrees {} / {})",
            snap.out_degree(*src),
            snap.out_degree(*dst)
        );
    }
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    use space_booking::sb_geo::Epoch;
    use space_booking::sb_sim::viz;
    let flags = parse_flags(args)?;
    let scenario = load_scenario(flags.get("scenario").map(String::as_str).unwrap_or("fast"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --seed"))?;
    let slot: u32 = flags.get("slot").map_or(Ok(0), |s| s.parse().map_err(|_| "bad --slot"))?;
    let out = flags.get("out").cloned().unwrap_or_else(|| "map.geojson".to_owned());
    if slot as usize >= scenario.horizon_slots {
        return Err(format!("slot {slot} beyond the {}-slot horizon", scenario.horizon_slots));
    }
    let prepared = engine::prepare(&scenario, seed);
    let snap = prepared.series.snapshot(SlotIndex(slot));
    let epoch = Epoch::from_seconds(slot as f64 * scenario.slot_duration_s);
    let nodes = viz::nodes_geojson(snap, epoch);
    let links = viz::links_geojson(snap, epoch);
    let node_features = nodes["features"].as_array().ok_or("node GeoJSON has no features array")?;
    let link_features = links["features"].as_array().ok_or("link GeoJSON has no features array")?;
    let features: Vec<_> = node_features.iter().chain(link_features).cloned().collect();
    let count = features.len();
    let doc = serde_json::json!({ "type": "FeatureCollection", "features": features });
    std::fs::write(&out, serde_json::to_string(&doc).map_err(|e| e.to_string())?)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {count} features to {out} (drop it into geojson.io or kepler.gl)");
    Ok(())
}

fn cmd_coverage(args: &[String]) -> Result<(), String> {
    use space_booking::sb_geo::Epoch;
    use space_booking::sb_orbit::{walker::WalkerConstellation, Constellation};
    use space_booking::sb_topology::coverage;
    let flags = parse_flags(args)?;
    let scenario = load_scenario(flags.get("scenario").map(String::as_str).unwrap_or("fast"))?;
    let elevation_deg: f64 = flags
        .get("elevation")
        .map_or(Ok(scenario.topology.min_elevation_rad.to_degrees()), |s| {
            s.parse().map_err(|_| "bad --elevation")
        })?;
    let shell = WalkerConstellation::delta(
        scenario.planes,
        scenario.sats_per_plane,
        scenario.phasing,
        scenario.altitude_m,
        scenario.inclination_deg.to_radians(),
    );
    let constellation = Constellation::from_walker(&shell);
    let mask = elevation_deg.to_radians();
    println!(
        "constellation: {}×{} at {:.0} km / {:.0}°, elevation mask {elevation_deg:.0}°\n",
        scenario.planes,
        scenario.sats_per_plane,
        scenario.altitude_m / 1e3,
        scenario.inclination_deg
    );
    println!("lat band   covered   mean visible");
    for b in
        coverage::coverage_by_latitude(&constellation, Epoch::from_seconds(0.0), mask, 15.0, 36)
    {
        println!(
            "{:>7.1}°   {:>6.1}%   {:.2}",
            b.latitude_deg,
            b.covered_fraction * 100.0,
            b.mean_visible
        );
    }
    println!(
        "\nglobal (area-weighted): {:.1}%",
        coverage::global_coverage(&constellation, Epoch::from_seconds(0.0), mask) * 100.0
    );
    Ok(())
}
