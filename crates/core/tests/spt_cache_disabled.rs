//! `SB_NO_SPT_CACHE=1` escape hatch: searches stay goal-directed but no
//! tree is ever stored or served, and results are unchanged.
//!
//! This lives in its own integration-test binary because the switch is
//! read once per process and latched ([`sb_cear::spt_cache_disabled`]);
//! the env var must be set before the first cache query anywhere in the
//! process, which a shared test binary cannot guarantee.

use sb_cear::{
    global_spt_stats, spt_cache_disabled, Decision, NetworkState, RoutingAlgorithm, SearchKind, Ssp,
};
use sb_demand::{RateProfile, Request, RequestId};
use sb_energy::EnergyParams;
use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologyConfig, TopologySeries};
use std::sync::Arc;

fn build_series(slots: usize) -> (Arc<TopologySeries>, NodeId, NodeId) {
    let shell = WalkerConstellation::delta(10, 10, 2, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    (Arc::new(TopologySeries::build(&nodes, &cfg, slots, 60.0)), a, b)
}

fn request(id: u32, src: NodeId, dst: NodeId, start: u32, end: u32) -> Request {
    Request {
        id: RequestId(id),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(25.0),
        start: SlotIndex(start),
        end: SlotIndex(end),
        valuation: 2.3e9,
    }
}

#[test]
fn disabled_cache_serves_nothing_and_changes_nothing() {
    std::env::set_var("SB_NO_SPT_CACHE", "1");
    assert!(spt_cache_disabled(), "latch must see the env var");

    let (series, a, b) = build_series(4);
    let energy = EnergyParams::default();
    // SSP is the cache's best customer (non-volatile weights), so it is
    // the strongest witness that the bypass really bypasses.
    let mut state_plain = NetworkState::new(Arc::clone(&series), &energy);
    let mut state_ref = NetworkState::new(Arc::clone(&series), &energy);
    let mut ssp = Ssp::new();
    let mut ssp_ref = Ssp::new().with_search(SearchKind::Reference);
    for (id, start, end) in [(0u32, 0u32, 2u32), (1, 1, 3), (2, 0, 3)] {
        let req = request(id, a, b, start, end);
        let d = ssp.process(&req, &mut state_plain);
        let d_ref = ssp_ref.process(&req, &mut state_ref);
        match (&d, &d_ref) {
            (Decision::Accepted { plan: pa, .. }, Decision::Accepted { plan: pb, .. }) => {
                for (sa, sb) in pa.slot_paths.iter().zip(&pb.slot_paths) {
                    assert_eq!((sa.slot, &sa.nodes, &sa.edges), (sb.slot, &sb.nodes, &sb.edges));
                }
            }
            (Decision::Rejected { reason: ra }, Decision::Rejected { reason: rb }) => {
                assert_eq!(ra, rb);
            }
            _ => panic!("decisions diverge with the cache disabled: {d:?} vs {d_ref:?}"),
        }
    }
    let stats = global_spt_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.deferred),
        (0, 0, 0),
        "no SPT lookup may be counted while the cache is disabled"
    );
}
