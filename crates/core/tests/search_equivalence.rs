//! Bitwise equivalence of the three search kernels, from the raw
//! `FoundPath` level up through baseline and CEAR decisions.
//!
//! The contract under test (see `sb_cear::sptcache`): goal-directed A\*
//! and SPT-cached tree reads return the *same bits* as the reference
//! Dijkstra — same node sequence, same edge ids, same cost bit pattern —
//! at every state epoch, including after commits and releases perturb the
//! reservation state. Seeded drivers pin a handful of Walker geometries;
//! `proptest` wrappers walk the same checks over randomly drawn shells,
//! sites and rates. (Repair-epoch equivalence is covered end-to-end by
//! the engine-level `search_kinds_leave_run_metrics_bit_identical` test
//! in `sb-sim`, which runs a failure scenario under both kernels.)

use proptest::prelude::*;
use sb_cear::search::{
    min_cost_path_in, min_cost_path_with, path_via_tree, settle_tree_in, EdgeContext, FoundPath,
    HopBoundHeuristic, SearchScratch,
};
use sb_cear::{
    Cear, CearParams, Decision, Ecars, Era, Eru, NetworkState, RoutingAlgorithm, SearchKind, Ssp,
};
use sb_demand::{RateProfile, Request, RequestId};
use sb_energy::EnergyParams;
use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologyConfig, TopologySeries};
use std::sync::Arc;

/// A Walker shell with ground users at `sites`, `slots` one-minute slots.
fn build_series(
    planes: usize,
    sats_per_plane: usize,
    phasing: usize,
    slots: usize,
    sites: &[(f64, f64)],
) -> (Arc<TopologySeries>, Vec<NodeId>) {
    let shell =
        WalkerConstellation::delta(planes, sats_per_plane, phasing, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let users: Vec<NodeId> = sites
        .iter()
        .map(|&(lat, lon)| nodes.add_ground_site(Geodetic::from_degrees(lat, lon, 0.0)))
        .collect();
    // Small shells need a generous elevation mask for continuous coverage.
    let cfg = TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
    (Arc::new(TopologySeries::build(&nodes, &cfg, slots, 60.0)), users)
}

fn request(id: u32, src: NodeId, dst: NodeId, rate: f64, start: u32, end: u32) -> Request {
    Request {
        id: RequestId(id),
        source: src,
        destination: dst,
        rate: RateProfile::Constant(rate),
        start: SlotIndex(start),
        end: SlotIndex(end),
        valuation: 2.3e9,
    }
}

/// Asserts two optional paths are the same bits (cost compared by bit
/// pattern, not float equality).
fn assert_same_path(a: &Option<FoundPath>, b: &Option<FoundPath>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.nodes, y.nodes, "{what}: node sequences differ");
            assert_eq!(x.edges, y.edges, "{what}: edge sequences differ");
            assert_eq!(
                x.cost.to_bits(),
                y.cost.to_bits(),
                "{what}: costs differ ({} vs {})",
                x.cost,
                y.cost
            );
        }
        _ => panic!("{what}: one kernel found a path, the other did not"),
    }
}

/// Undirected BFS hop counts from `goal` — an admissible, consistent
/// per-node lower bound for any weight function with per-edge cost ≥ 1.
fn bfs_hops(series: &TopologySeries, slot: SlotIndex, goal: NodeId) -> Vec<u32> {
    let snap = series.snapshot(slot);
    let n = snap.num_nodes();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for edge in snap.edges() {
        adj[edge.src.index()].push(edge.dst.index());
        adj[edge.dst.index()].push(edge.src.index());
    }
    let mut hops = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    hops[goal.index()] = 0;
    queue.push_back(goal.index());
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if hops[v] == u32::MAX {
                hops[v] = hops[u] + 1;
                queue.push_back(v);
            }
        }
    }
    // Unreachable nodes get a zero bound (trivially admissible).
    for h in &mut hops {
        if *h == u32::MAX {
            *h = 0;
        }
    }
    hops
}

/// Raw-kernel check: reference Dijkstra vs A\* vs settled-tree read, every
/// slot, both directions of the site pair, under a static length weight.
/// Returns how many lookups found a path, so seeded callers can reject a
/// vacuous all-unreachable run (random shells may legitimately lack
/// coverage, so the property wrappers ignore it).
fn check_kernels(
    planes: usize,
    sats_per_plane: usize,
    phasing: usize,
    sites: &[(f64, f64)],
) -> usize {
    let slots = 3;
    let (series, users) = build_series(planes, sats_per_plane, phasing, slots, sites);
    let mut scratch = SearchScratch::new();
    let mut found = 0usize;
    let weight = |ctx: &EdgeContext<'_>| Some(1.0 + ctx.edge.length_m * 1e-9);
    for s in 0..slots {
        let slot = SlotIndex(s as u32);
        let snap = series.snapshot(slot);
        for (&src, &dst) in users.iter().zip(users.iter().rev()) {
            if src == dst {
                continue;
            }
            let reference = min_cost_path_in(&mut scratch, snap, src, dst, weight);
            let hops = bfs_hops(&series, slot, dst);
            let heuristic = HopBoundHeuristic { hops_lb: &hops, unit: 0.999 };
            let astar = min_cost_path_with(&mut scratch, snap, src, dst, &heuristic, weight);
            let tree = settle_tree_in(&mut scratch, snap, src, weight);
            let via_tree = path_via_tree(&tree, snap, src, dst, weight);
            let what = format!("{planes}x{sats_per_plane} slot {s} {src:?}->{dst:?}");
            assert_same_path(&reference, &astar, &format!("{what} (astar)"));
            assert_same_path(&reference, &via_tree, &format!("{what} (tree)"));
            found += reference.is_some() as usize;
        }
    }
    found
}

/// Decision-stream check: every baseline and CEAR, reference vs A\*+SPT,
/// over a workload that commits and releases between lookups so the SPT
/// cache crosses several state epochs.
fn check_decisions(planes: usize, sats_per_plane: usize, phasing: usize, rate: f64) -> usize {
    let slots = 6;
    let sites = [(35.8, -78.6), (48.9, 2.3), (-33.9, 151.2)];
    let (series, users) = build_series(planes, sats_per_plane, phasing, slots, &sites);
    let energy = EnergyParams::default();
    let mk_requests = || {
        let mut reqs = Vec::new();
        let mut id = 0u32;
        for start in 0..slots as u32 - 1 {
            for (i, &src) in users.iter().enumerate() {
                let dst = users[(i + 1) % users.len()];
                let end = (start + 2).min(slots as u32 - 1);
                reqs.push(request(id, src, dst, rate * (1.0 + 0.1 * i as f64), start, end));
                id += 1;
            }
        }
        reqs
    };
    type AlgFactory = Box<dyn Fn(SearchKind) -> Box<dyn RoutingAlgorithm>>;
    let algorithms: Vec<(&str, AlgFactory)> = vec![
        ("SSP", Box::new(|k| Box::new(Ssp::new().with_search(k)))),
        ("ECARS", Box::new(|k| Box::new(Ecars::new().with_search(k)))),
        ("ERU", Box::new(|k| Box::new(Eru::new().with_search(k)))),
        ("ERA", Box::new(|k| Box::new(Era::new().with_search(k)))),
        ("CEAR", Box::new(|k| Box::new(Cear::new(CearParams::default()).with_search(k)))),
    ];
    let mut accepted = 0usize;
    for (name, make) in &algorithms {
        let mut state_ref = NetworkState::new(Arc::clone(&series), &energy);
        let mut state_astar = NetworkState::new(Arc::clone(&series), &energy);
        let mut alg_ref = make(SearchKind::Reference);
        let mut alg_astar = make(SearchKind::Astar);
        for (step, req) in mk_requests().iter().enumerate() {
            let d_ref = alg_ref.process(req, &mut state_ref);
            let d_astar = alg_astar.process(req, &mut state_astar);
            assert_decisions_match(&d_ref, &d_astar, &format!("{name} step {step}"));
            accepted += matches!(d_ref, Decision::Accepted { .. }) as usize;
            // Mid-stream release: perturb both states identically so the
            // next lookups run against a post-release epoch.
            if step == 4 {
                if let (Some(a), Some(b)) = (state_ref.last_booking(), state_astar.last_booking()) {
                    state_ref.release_from(a, SlotIndex(1));
                    state_astar.release_from(b, SlotIndex(1));
                }
            }
        }
    }
    accepted
}

fn assert_decisions_match(a: &Decision, b: &Decision, what: &str) {
    match (a, b) {
        (
            Decision::Accepted { plan: pa, price: qa },
            Decision::Accepted { plan: pb, price: qb },
        ) => {
            assert_eq!(qa.to_bits(), qb.to_bits(), "{what}: prices differ ({qa} vs {qb})");
            assert_eq!(pa.total_cost.to_bits(), pb.total_cost.to_bits(), "{what}: plan costs");
            assert_eq!(pa.slot_paths.len(), pb.slot_paths.len(), "{what}: slot counts");
            for (sa, sb) in pa.slot_paths.iter().zip(&pb.slot_paths) {
                assert_eq!(sa.slot, sb.slot, "{what}");
                assert_eq!(sa.nodes, sb.nodes, "{what}: slot {:?} nodes", sa.slot);
                assert_eq!(sa.edges, sb.edges, "{what}: slot {:?} edges", sa.slot);
            }
        }
        (Decision::Rejected { reason: ra }, Decision::Rejected { reason: rb }) => {
            assert_eq!(ra, rb, "{what}: rejection reasons differ");
        }
        _ => panic!("{what}: decisions diverge: {a:?} vs {b:?}"),
    }
}

/// Repeat-quote check: CEAR's strict SPT entries promote after repeated
/// sightings; quotes must stay bit-identical to the reference through the
/// defer → build → hit transitions and across a commit that invalidates
/// the promoted entries.
#[test]
fn cear_repeat_quotes_match_reference_through_spt_promotion() {
    let (series, users) = build_series(10, 10, 2, 4, &[(35.8, -78.6), (48.9, 2.3)]);
    let energy = EnergyParams::default();
    let mut state = NetworkState::new(Arc::clone(&series), &energy);
    let reference = Cear::new(CearParams::default()).with_search(SearchKind::Reference);
    let astar = Cear::new(CearParams::default());
    let req = request(0, users[0], users[1], 25.0, 0, 2);
    // Three quotes at one epoch: Defer, Build, Hit for the cached kernel.
    for pass in 0..3 {
        let a = reference.quote(&req, &state);
        let b = astar.quote(&req, &state);
        assert_quotes_match(&a, &b, &format!("pass {pass}"));
    }
    // Commit a plan (new epoch); promoted entries are stale and must not
    // leak the old tree into the next quotes.
    let mut committer = Cear::new(CearParams::default());
    let commit_req = request(1, users[1], users[0], 40.0, 0, 2);
    let _ = committer.process(&commit_req, &mut state);
    for pass in 0..3 {
        let a = reference.quote(&req, &state);
        let b = astar.quote(&req, &state);
        assert_quotes_match(&a, &b, &format!("post-commit pass {pass}"));
    }
}

type Quote = Result<(sb_cear::ReservationPlan, f64), sb_cear::RejectReason>;

fn assert_quotes_match(a: &Quote, b: &Quote, what: &str) {
    match (a, b) {
        (Ok((pa, qa)), Ok((pb, qb))) => {
            assert_eq!(qa.to_bits(), qb.to_bits(), "{what}: prices differ ({qa} vs {qb})");
            for (sa, sb) in pa.slot_paths.iter().zip(&pb.slot_paths) {
                assert_eq!((sa.slot, &sa.nodes, &sa.edges), (sb.slot, &sb.nodes, &sb.edges));
            }
        }
        (Err(ra), Err(rb)) => assert_eq!(ra, rb, "{what}"),
        _ => panic!("{what}: quote outcomes diverge"),
    }
}

#[test]
fn kernels_agree_on_seeded_walker_shells() {
    let found = check_kernels(8, 8, 1, &[(35.8, -78.6), (48.9, 2.3)])
        + check_kernels(10, 10, 3, &[(-33.9, 151.2), (51.5, -0.1), (1.3, 103.8)])
        + check_kernels(12, 12, 5, &[(40.7, -74.0), (35.7, 139.7)]);
    assert!(found > 0, "seeded shells must exercise at least one reachable pair");
}

#[test]
fn decisions_agree_on_seeded_walker_shells() {
    let accepted = check_decisions(10, 10, 2, 25.0) + check_decisions(12, 12, 3, 60.0);
    assert!(accepted > 0, "seeded workloads must admit at least one request");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random shells and site pairs: the three kernels return the same
    /// bits for every slot and direction.
    #[test]
    fn prop_kernels_agree(
        planes in 6usize..10,
        sats_per_plane in 6usize..10,
        phasing in 0usize..3,
        lat_a in -55.0..55.0f64,
        lon_a in -180.0..180.0f64,
        lat_b in -55.0..55.0f64,
        lon_b in -180.0..180.0f64,
    ) {
        check_kernels(planes, sats_per_plane, phasing, &[(lat_a, lon_a), (lat_b, lon_b)]);
    }

    /// Random shells and rates: every algorithm's decision stream is
    /// identical under both kernels, across commit and release epochs.
    #[test]
    fn prop_decisions_agree(
        planes in 8usize..11,
        sats_per_plane in 8usize..11,
        phasing in 0usize..3,
        rate in 5.0..80.0f64,
    ) {
        check_decisions(planes, sats_per_plane, phasing, rate);
    }
}
