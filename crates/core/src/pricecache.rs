//! Memoized exponential unit prices, invalidated by state change epochs.
//!
//! The admission search (Algorithm 1 line 5) evaluates `μ^λ − 1` via
//! `powf` on every edge relaxation and every deficit-trace slot. Between
//! two commits almost every utilization is unchanged — a commit touches
//! only the cells along the accepted plan — so the same `powf` is
//! recomputed thousands of times. [`PriceCache`] memoizes the unit price
//! per (slot, link) and per (satellite, slot) cell and revalidates each
//! entry in O(1) against the state's change epochs
//! ([`NetworkState::bandwidth_epoch`] / [`NetworkState::battery_epoch`]),
//! which advance only on reservation commit, release and repair (repair is
//! release + commit). A hit returns the exact `f64` computed earlier with
//! identical inputs, so cached quotes are bit-identical to uncached ones.

use crate::pricing;
use crate::state::NetworkState;
use sb_topology::graph::EdgeId;
use sb_topology::SlotIndex;

/// One memoized unit price. `stamp` holds the epoch of the state cell the
/// price was computed against; the process-wide epoch source starts at 1,
/// so a zeroed cell can never validate.
#[derive(Debug, Clone, Copy)]
struct CacheCell {
    stamp: u64,
    price: f64,
}

const EMPTY: CacheCell = CacheCell { stamp: 0, price: 0.0 };

/// Cached unit prices `μ₁^λ − 1` (links) and `μ₂^λ − 1` (batteries) for
/// one pricing parameterization.
///
/// Correctness does not depend on being attached to a single state: stamps
/// are globally unique epoch values (see `EPOCH_SOURCE` in the state
/// module), so an entry validates only against a cell that provably still
/// holds the value the price was computed from — even across state clones
/// or a different state of the same shape. The cache is an acceleration
/// only; one instance must simply never mix `μ` parameterizations.
///
/// The same property makes *per-worker* instances sound: the speculative
/// slot-parallel quote (`crate::parquote`) gives every worker its own
/// `PriceCache`, and no matter how slots are distributed across workers,
/// each instance either recomputes a price from identical inputs or
/// returns the identical `f64` it computed earlier — bit-identical
/// regardless of the slot→worker assignment.
#[derive(Debug, Clone)]
pub struct PriceCache {
    mu1: f64,
    mu2: f64,
    /// Per slot, per edge id: cached `unit_price(mu1, λ_e)`.
    link: Vec<Vec<CacheCell>>,
    /// Per ledger flat index (satellite-major): cached `unit_price(mu2,
    /// battery_utilization)`.
    battery: Vec<CacheCell>,
}

impl PriceCache {
    /// An empty cache pricing links with `mu1` and batteries with `mu2`.
    pub fn new(mu1: f64, mu2: f64) -> Self {
        PriceCache { mu1, mu2, link: Vec::new(), battery: Vec::new() }
    }

    /// The link price base `μ₁`.
    pub fn mu1(&self) -> f64 {
        self.mu1
    }

    /// The battery price base `μ₂`.
    pub fn mu2(&self) -> f64 {
        self.mu2
    }

    /// The unit congestion price `μ₁^{λ_e(slot)} − 1` of `(slot, edge)`,
    /// memoized until the underlying reservation cell changes.
    #[inline]
    pub fn link_unit_price(&mut self, state: &NetworkState, slot: SlotIndex, edge: EdgeId) -> f64 {
        if self.link.len() < state.horizon() {
            self.link.resize(state.horizon(), Vec::new());
        }
        let row = &mut self.link[slot.index()];
        if row.len() <= edge.index() {
            row.resize(edge.index() + 1, EMPTY);
        }
        let epoch = state.bandwidth_epoch(slot, edge);
        let cell = &mut row[edge.index()];
        if cell.stamp != epoch {
            cell.price = pricing::unit_price(self.mu1, state.utilization(slot, edge));
            cell.stamp = epoch;
        }
        cell.price
    }

    /// The unit energy price `μ₂^{λ_s(t)} − 1` of satellite `sat` at slot
    /// `t`, memoized until the satellite's deficit cell changes.
    #[inline]
    pub fn battery_unit_price(&mut self, state: &NetworkState, sat: usize, t: usize) -> f64 {
        let i = state.ledger().flat_index(sat, t);
        if self.battery.len() <= i {
            self.battery.resize(i + 1, EMPTY);
        }
        let epoch = state.battery_epoch(sat, t);
        let cell = &mut self.battery[i];
        if cell.stamp != epoch {
            cell.price = pricing::unit_price(self.mu2, state.ledger().battery_utilization(sat, t));
            cell.stamp = epoch;
        }
        cell.price
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CearParams;
    use crate::plan::{ReservationPlan, SlotPath};
    use sb_demand::{RateProfile, Request, RequestId};
    use sb_energy::EnergyParams;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;
    use sb_topology::{NetworkNodes, NodeId, TopologyConfig, TopologySeries};

    fn build_state() -> (NetworkState, NodeId, NodeId) {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        let b = nodes.add_ground_site(Geodetic::from_degrees(40.7, -74.0, 0.0));
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        let series = TopologySeries::build(&nodes, &cfg, 3, 60.0);
        (NetworkState::new(series, &EnergyParams::default()), a, b)
    }

    /// A 1-slot user→sat→user plan along real snapshot edges, when the
    /// geometry provides one.
    fn direct_plan(state: &NetworkState, src: NodeId, dst: NodeId) -> Option<ReservationPlan> {
        let slot = SlotIndex(0);
        let snap = state.series().snapshot(slot);
        for (e1, edge1) in snap.out_edges(src) {
            if let Some(e2) = snap.find_edge(edge1.dst, dst) {
                return Some(ReservationPlan {
                    slot_paths: vec![SlotPath {
                        slot,
                        nodes: vec![src, edge1.dst, dst],
                        edges: vec![e1, e2],
                    }],
                    total_cost: 0.0,
                });
            }
        }
        None
    }

    fn request(src: NodeId, dst: NodeId, rate: f64) -> Request {
        Request {
            id: RequestId(0),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(0),
            end: SlotIndex(0),
            valuation: f64::MAX,
        }
    }

    fn fresh_link_price(state: &NetworkState, mu1: f64, slot: SlotIndex, edge: EdgeId) -> f64 {
        pricing::unit_price(mu1, state.utilization(slot, edge))
    }

    #[test]
    fn cached_prices_match_fresh_computation_bitwise() {
        let (mut state, src, dst) = build_state();
        let params = CearParams::default();
        let mut cache = PriceCache::new(params.mu1(), params.mu2());
        let Some(plan) = direct_plan(&state, src, dst) else { return };
        let req = request(src, dst, 1100.0);
        state.try_commit_plan(&req, &plan).unwrap();

        let slot = SlotIndex(0);
        let n_edges = state.series().snapshot(slot).num_edges();
        for i in 0..n_edges {
            let e = EdgeId(i as u32);
            let cached = cache.link_unit_price(&state, slot, e);
            let fresh = fresh_link_price(&state, params.mu1(), slot, e);
            assert_eq!(cached.to_bits(), fresh.to_bits(), "edge {i} first read");
            // Second read is a hit and must return the identical bits.
            assert_eq!(cache.link_unit_price(&state, slot, e).to_bits(), fresh.to_bits());
        }
        for sat in 0..state.num_satellites() {
            for t in 0..state.horizon() {
                let cached = cache.battery_unit_price(&state, sat, t);
                let fresh =
                    pricing::unit_price(params.mu2(), state.ledger().battery_utilization(sat, t));
                assert_eq!(cached.to_bits(), fresh.to_bits(), "sat {sat} slot {t}");
            }
        }
    }

    #[test]
    fn commit_invalidates_touched_cells_only() {
        let (mut state, src, dst) = build_state();
        let params = CearParams::default();
        let mut cache = PriceCache::new(params.mu1(), params.mu2());
        let Some(plan) = direct_plan(&state, src, dst) else { return };
        let slot = SlotIndex(0);

        // Warm the cache over every edge, then commit a booking.
        let n_edges = state.series().snapshot(slot).num_edges();
        for i in 0..n_edges {
            let _ = cache.link_unit_price(&state, slot, EdgeId(i as u32));
        }
        let req = request(src, dst, 1300.0);
        state.try_commit_plan(&req, &plan).unwrap();

        // Every cell — touched (recomputed) or not (hit) — must agree with
        // a fresh computation against the new state.
        for i in 0..n_edges {
            let e = EdgeId(i as u32);
            assert_eq!(
                cache.link_unit_price(&state, slot, e).to_bits(),
                fresh_link_price(&state, params.mu1(), slot, e).to_bits(),
                "edge {i} after commit"
            );
        }
        // The booked edges now price above zero, proving invalidation.
        for &e in &plan.slot_paths[0].edges {
            assert!(cache.link_unit_price(&state, slot, e) > 0.0);
        }
    }

    #[test]
    fn release_and_debug_mutation_invalidate() {
        let (mut state, src, dst) = build_state();
        let params = CearParams::default();
        let mut cache = PriceCache::new(params.mu1(), params.mu2());
        let Some(plan) = direct_plan(&state, src, dst) else { return };
        let req = request(src, dst, 900.0);
        state.try_commit_plan(&req, &plan).unwrap();
        let id = state.last_booking().unwrap();
        let slot = SlotIndex(0);
        let e = plan.slot_paths[0].edges[0];

        assert!(cache.link_unit_price(&state, slot, e) > 0.0);
        state.release_from(id, slot);
        assert_eq!(cache.link_unit_price(&state, slot, e), 0.0, "release must invalidate");

        state.debug_set_reserved(slot, e, 2000.0);
        assert_eq!(
            cache.link_unit_price(&state, slot, e).to_bits(),
            fresh_link_price(&state, params.mu1(), slot, e).to_bits()
        );

        // debug_ledger_mut conservatively invalidates all battery cells.
        let sat = state.satellite_index(plan.slot_paths[0].nodes[1]).unwrap();
        let before = cache.battery_unit_price(&state, sat, 0);
        state.debug_ledger_mut().commit(sat, 0, 50_000.0);
        let after = cache.battery_unit_price(&state, sat, 0);
        assert!(after > before, "ledger mutation must be repriced ({before} → {after})");
    }

    #[test]
    fn one_cache_is_safe_across_diverged_clones() {
        // Two clones mutate the same cell differently; a cache shared
        // between them must never serve one clone's price to the other.
        let (state_a, src, dst) = build_state();
        let mut a = state_a;
        let mut b = a.clone();
        let Some(plan) = direct_plan(&a, src, dst) else { return };
        let e = plan.slot_paths[0].edges[0];
        let slot = SlotIndex(0);
        a.try_commit_plan(&request(src, dst, 400.0), &plan).unwrap();
        b.try_commit_plan(&request(src, dst, 3600.0), &plan).unwrap();

        let params = CearParams::default();
        let mut cache = PriceCache::new(params.mu1(), params.mu2());
        for _ in 0..2 {
            assert_eq!(
                cache.link_unit_price(&a, slot, e).to_bits(),
                fresh_link_price(&a, params.mu1(), slot, e).to_bits()
            );
            assert_eq!(
                cache.link_unit_price(&b, slot, e).to_bits(),
                fresh_link_price(&b, params.mu1(), slot, e).to_bits()
            );
        }
        assert!(cache.link_unit_price(&a, slot, e) < cache.link_unit_price(&b, slot, e));
    }
}
