//! The online decision interface and the CEAR algorithm (Algorithm 1).

use crate::params::CearParams;
use crate::parquote::{EnergyPriceCache, EnergyProbe, QuoteStats, QuoteWorker};
use crate::plan::{ReservationPlan, SlotPath};
use crate::pricecache::PriceCache;
use crate::pricing;
use crate::search::{
    min_cost_path_in, min_cost_path_with, path_via_tree, settle_tree_in, EdgeContext, FoundPath,
    HopBoundHeuristic, SearchScratch,
};
use crate::sptcache::{
    model_key, spt_cache_disabled, GeomCache, MinUnitPriceCache, SearchKind, SptCache,
    StrictLookup, UNIT_SLACK,
};
use crate::state::{EpochReadSet, NetworkState};
use sb_demand::Request;
use sb_energy::{LedgerOverlay, SatelliteRole};
use sb_topology::{LinkType, SlotIndex};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// No feasible path existed in some active slot (capacity or battery
    /// constraints prune every route).
    NoFeasiblePath,
    /// A plan existed but its price exceeded the request's valuation
    /// (CEAR's admission control, Algorithm 1 line 6).
    PriceAboveValuation,
    /// The plan failed atomic validation at commit time (cross-slot energy
    /// interaction discovered after per-slot search).
    CommitFailed,
}

impl core::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RejectReason::NoFeasiblePath => write!(f, "no feasible path"),
            RejectReason::PriceAboveValuation => write!(f, "price above valuation"),
            RejectReason::CommitFailed => write!(f, "commit failed"),
        }
    }
}

/// The outcome of processing one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The request was admitted; resources are reserved.
    Accepted {
        /// The committed reservation plan.
        plan: ReservationPlan,
        /// The price charged (`π_i`) — the plan's total cost at decision
        /// time for CEAR, zero for price-oblivious baselines.
        price: f64,
    },
    /// The request was rejected; no resources were touched.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

impl Decision {
    /// `true` when the request was admitted (`x_i = 1`).
    pub fn is_accepted(&self) -> bool {
        matches!(self, Decision::Accepted { .. })
    }
}

/// An online routing-and-reservation algorithm: processes requests one at a
/// time, mutating the shared [`NetworkState`] on acceptance.
pub trait RoutingAlgorithm {
    /// A short stable name for reports ("CEAR", "SSP", …).
    fn name(&self) -> &'static str;

    /// Processes one request: route, decide, and (on acceptance) commit.
    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision;

    /// Computes the plan this algorithm would reserve for `request` under
    /// the current state, and its price, **without committing** — the
    /// routing half of [`RoutingAlgorithm::process`], exposed so plan
    /// *repair* can re-run any algorithm's search for a broken
    /// reservation's suffix. Edges listed in `known` are treated as down
    /// and pruned from the search (price-oblivious baselines quote 0.0).
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] the search produced (admission control is the
    /// caller's job — see [`crate::lifecycle::try_repair`]).
    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason>;
}

/// The CEAR algorithm: exponential pricing with admission control.
///
/// See the crate-level documentation for the full story; in short, each
/// active slot is routed by a min-cost search under the prices of Eqs.
/// (10)–(12), and the request is accepted iff the summed price is at most
/// its valuation.
#[derive(Debug, Clone)]
pub struct Cear {
    pub(crate) params: CearParams,
    pub(crate) ablation: AblationFlags,
    /// Reused Dijkstra arena and memoized unit prices. Interior mutability
    /// because quoting is logically read-only; the caches are pure
    /// acceleration — every quote is bit-identical with or without them
    /// (see `tests::cached_quotes_match_reference_bitwise`).
    hot: RefCell<CearHot>,
    /// `false` runs the pre-cache reference path (fresh allocations,
    /// direct `powf`) for equivalence testing — see [`Cear::reference`].
    use_caches: bool,
    /// Worker threads for the speculative slot-parallel quote path
    /// (see [`crate::parquote`]); `1` quotes serially.
    pub(crate) quote_threads: usize,
    /// Which search kernel the per-slot searches run — the reference
    /// Dijkstra or goal-directed A\* with SPT caching. Bit-identical
    /// results either way (see [`crate::sptcache`]), so, like
    /// `quote_threads`, it must never enter run digests.
    pub(crate) search: SearchKind,
}

/// The per-instance acceleration state behind [`Cear`]'s quote path.
#[derive(Debug, Clone, Default)]
pub(crate) struct CearHot {
    pub(crate) scratch: SearchScratch,
    /// Built lazily on first quote (needs `μ₁, μ₂`).
    pub(crate) prices: Option<PriceCache>,
    /// Per-slot `(satellite, role)` energy memo — a reusable flat array,
    /// where it used to be a fresh `HashMap` per active slot.
    pub(crate) energy: EnergyPriceCache,
    /// Speculative-phase workers, created on first parallel quote and
    /// retained so their arenas and price caches stay warm.
    pub(crate) workers: Vec<QuoteWorker>,
    /// Lifetime speculation counters — see [`Cear::quote_stats`].
    pub(crate) stats: QuoteStats,
    /// Hop-bound geometry for the A\* heuristic.
    pub(crate) geom: GeomCache,
    /// Per-slot minimum link unit price (the heuristic's price floor).
    pub(crate) hmin: MinUnitPriceCache,
    /// Strict (generation-exact) shortest-path-tree cache.
    pub(crate) spt: SptCache,
}

impl CearHot {
    /// Grows the worker pool to at least `n` entries.
    pub(crate) fn ensure_workers(&mut self, n: usize, params: &CearParams) {
        while self.workers.len() < n {
            self.workers.push(QuoteWorker::new(params));
        }
    }
}

/// Which of CEAR's three mechanisms are active — for ablation studies.
///
/// Feasibility (constraints 7b/7c) is always enforced; the flags only
/// control what enters the *price*. With everything off, CEAR degenerates
/// to a feasibility-greedy min-hop-ish router (the tie-break epsilon is
/// all that remains of the cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationFlags {
    /// Include the bandwidth (congestion) term of Eq. (12).
    pub price_bandwidth: bool,
    /// Include the battery-deficit term of Eq. (12).
    pub price_energy: bool,
    /// Reject requests whose plan price exceeds their valuation
    /// (Algorithm 1 line 6).
    pub admission_control: bool,
}

impl Default for AblationFlags {
    fn default() -> Self {
        AblationFlags { price_bandwidth: true, price_energy: true, admission_control: true }
    }
}

impl AblationFlags {
    /// A short suffix naming the ablation, e.g. `"-noenergy"`; empty for
    /// the full algorithm.
    pub fn suffix(&self) -> &'static str {
        match (self.price_bandwidth, self.price_energy, self.admission_control) {
            (true, true, true) => "",
            (false, true, true) => "-nobw",
            (true, false, true) => "-noenergy",
            (true, true, false) => "-noadmission",
            (false, false, true) => "-noprice",
            _ => "-custom",
        }
    }
}

impl Cear {
    /// Creates CEAR with the given pricing parameters.
    pub fn new(params: CearParams) -> Self {
        Cear {
            params,
            ablation: AblationFlags::default(),
            hot: RefCell::new(CearHot::default()),
            use_caches: true,
            quote_threads: 1,
            search: SearchKind::default(),
        }
    }

    /// Selects the search kernel. Purely an execution knob — quotes are
    /// **bit-identical** for either kind (see [`crate::sptcache`]).
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = search;
        self
    }

    /// The configured search kernel.
    pub fn search_kind(&self) -> SearchKind {
        self.search
    }

    /// Sets the number of worker threads for the speculative slot-parallel
    /// quote path (floored at 1, which quotes serially).
    ///
    /// Purely an execution knob: quotes are **bit-identical** for every
    /// thread count (see [`crate::parquote`]), so it must never enter run
    /// digests or scenario configuration.
    pub fn with_quote_threads(mut self, threads: usize) -> Self {
        self.quote_threads = threads.max(1);
        self
    }

    /// The configured speculative-quote worker count.
    pub fn quote_threads(&self) -> usize {
        self.quote_threads
    }

    /// Speculation, search-work and SPT-cache counters accumulated by this
    /// instance's quotes — hit-rate reporting for the perf harness. Search
    /// and SPT counters are summed over the serial path and every
    /// speculative worker.
    pub fn quote_stats(&self) -> QuoteStats {
        let hot = self.hot.borrow();
        let mut stats = hot.stats;
        stats.search.merge(&hot.scratch.stats());
        stats.spt.merge(&hot.spt.stats);
        for worker in &hot.workers {
            stats.search.merge(&worker.scratch.stats());
            stats.spt.merge(&worker.spt.stats);
        }
        stats
    }

    /// Creates an ablated CEAR variant (for the ablation benches).
    pub fn with_ablation(params: CearParams, ablation: AblationFlags) -> Self {
        Cear { ablation, ..Cear::new(params) }
    }

    /// Creates CEAR with the hot-path caches disabled: every quote
    /// allocates fresh search memory and evaluates every `μ^λ` via `powf`.
    ///
    /// This is the pre-optimization code path, kept so equivalence tests
    /// (and anyone suspicious of a cache) can prove decisions and prices
    /// are bit-identical to the accelerated path.
    pub fn reference(params: CearParams) -> Self {
        Cear { use_caches: false, search: SearchKind::Reference, ..Cear::new(params) }
    }

    /// The pricing parameters in use.
    pub fn params(&self) -> &CearParams {
        &self.params
    }

    /// The active ablation flags.
    pub fn ablation(&self) -> &AblationFlags {
        &self.ablation
    }
}

/// Per-hop tie-breaking epsilon (scaled by `1 + rate`): on an idle network
/// every resource prices at zero (`μ^0 − 1 = 0`), so without it Dijkstra
/// may return arbitrarily long zero-cost walks that waste resources
/// without affecting the quoted price. It is *excluded* from the quoted
/// plan cost.
const HOP_TIEBREAK: f64 = 1e-6;

impl Cear {
    /// Computes the minimum-price reservation plan and its quoted price
    /// for `request` under the current network state, **without deciding
    /// or committing anything** — the "how much would this booking cost
    /// right now?" API.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] that [`RoutingAlgorithm::process`]
    /// would produce: [`RejectReason::NoFeasiblePath`] when some active
    /// slot has no capacity- and battery-feasible route, or
    /// [`RejectReason::CommitFailed`] in the degenerate case of a path
    /// revisiting a satellite.
    pub fn quote(
        &self,
        request: &Request,
        state: &NetworkState,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        self.quote_avoiding(request, state, None)
    }

    /// [`Cear::quote`] with a set of known-down edges pruned from the
    /// search — the repair path's entry point.
    pub fn quote_avoiding(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        if self.use_caches {
            let hot = &mut *self.hot.borrow_mut();
            if hot.prices.is_none() {
                hot.prices = Some(PriceCache::new(self.params.mu1(), self.params.mu2()));
            }
            // Single-slot requests have no cross-slot coupling to
            // speculate around; quote them serially whatever the thread
            // count.
            if self.quote_threads > 1 && request.duration_slots() > 1 {
                return self.quote_speculative(request, state, known, hot);
            }
            hot.stats.serial_quotes += 1;
            let CearHot { scratch, prices, energy, geom, hmin, spt, .. } = hot;
            self.quote_serial(
                request,
                state,
                known,
                scratch,
                prices.as_mut(),
                energy,
                Some(SearchAccel { geom, hmin, spt }),
            )
        } else {
            self.quote_serial(
                request,
                state,
                known,
                &mut SearchScratch::new(),
                None,
                &mut EnergyPriceCache::new(),
                None,
            )
        }
    }

    /// The serial quote body, generic over the acceleration state:
    /// `scratch`/`energy` are either this instance's retained arenas or
    /// throwaways, and `prices` is `Some` exactly when memoized pricing is
    /// on. All branches evaluate the same arithmetic in the same order, so
    /// the result is bit-identical every way.
    #[allow(clippy::too_many_arguments)] // mirrors search_slot's acceleration-state plumbing
    pub(crate) fn quote_serial(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
        scratch: &mut SearchScratch,
        prices: Option<&mut PriceCache>,
        energy: &mut EnergyPriceCache,
        accel: Option<SearchAccel<'_>>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        self.quote_serial_recording(request, state, known, scratch, prices, energy, accel, None)
    }

    /// [`Cear::quote_serial`] with an optional epoch read-set collector:
    /// when `reads` is `Some`, every resource cell the search consults is
    /// recorded at its current epoch (see [`EpochReadSet`]). Recording
    /// changes no arithmetic — the quote is bit-identical either way.
    #[allow(clippy::too_many_arguments)] // mirrors search_slot's acceleration-state plumbing
    pub(crate) fn quote_serial_recording(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
        scratch: &mut SearchScratch,
        mut prices: Option<&mut PriceCache>,
        energy: &mut EnergyPriceCache,
        mut accel: Option<SearchAccel<'_>>,
        mut reads: Option<&mut EpochReadSet>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        // Algorithm 1 line 5: the min-price plan, one path per active slot.
        // Successive slots are searched against a transactional overlay that
        // carries the request's *own* consumption forward — a plan feasible
        // slot-by-slot in isolation can over-draw a battery jointly, because
        // its early slots consume the solar energy its late slots counted
        // on. Prices (σ) still use the pre-request utilizations, per the
        // paper's "before the i-th request arrives" definition (Eqs. 8–9).
        let mut tx = state.ledger().overlay();
        let mut slot_paths = Vec::with_capacity(request.duration_slots());
        let mut total_cost = 0.0;
        for slot in request.active_slots() {
            let found = search_slot(
                &self.params,
                self.ablation,
                request,
                state,
                known,
                slot,
                &tx,
                scratch,
                prices.as_deref_mut(),
                energy,
                None,
                reads.as_deref_mut(),
                self.search,
                accel.as_mut(),
            )
            .ok_or(RejectReason::NoFeasiblePath)?;
            fold_slot(request, state, slot, found, &mut tx, &mut slot_paths, &mut total_cost)?;
        }
        let plan = ReservationPlan { slot_paths, total_cost };
        Ok((plan, total_cost))
    }

    /// [`Cear::quote`] that also returns the epoch read-set of every
    /// resource cell the search consulted — the optimistic-concurrency
    /// entry point for `sb-serve`'s quote workers.
    ///
    /// Always quotes serially: recording is defined over the serial read
    /// order, and a service quote worker owns a whole `Cear` instance
    /// anyway. The read set is returned for **rejections too** — a
    /// rejection is as much a function of the cells read as an admission
    /// is, and a committer must revalidate it before answering honestly,
    /// or a concurrent release could have made the path affordable.
    pub fn quote_recording(
        &self,
        request: &Request,
        state: &NetworkState,
    ) -> (Result<(ReservationPlan, f64), RejectReason>, EpochReadSet) {
        let mut reads = EpochReadSet::new();
        let result = if self.use_caches {
            let hot = &mut *self.hot.borrow_mut();
            if hot.prices.is_none() {
                hot.prices = Some(PriceCache::new(self.params.mu1(), self.params.mu2()));
            }
            hot.stats.serial_quotes += 1;
            let CearHot { scratch, prices, energy, .. } = hot;
            // No acceleration state: a recorded read set is defined over
            // the reference expansion order (search_slot also forces the
            // reference kernel whenever `reads` is `Some`).
            self.quote_serial_recording(
                request,
                state,
                None,
                scratch,
                prices.as_mut(),
                energy,
                None,
                Some(&mut reads),
            )
        } else {
            self.quote_serial_recording(
                request,
                state,
                None,
                &mut SearchScratch::new(),
                None,
                &mut EnergyPriceCache::new(),
                None,
                Some(&mut reads),
            )
        };
        reads.normalize();
        (result, reads)
    }
}

/// The goal-direction and SPT acceleration state a [`search_slot`] call
/// may borrow: hop-bound geometry and price floor for the A\* heuristic,
/// and the strict shortest-path-tree cache. `Some` on the cached quote
/// paths, `None` on the reference path.
pub(crate) struct SearchAccel<'a> {
    pub(crate) geom: &'a mut GeomCache,
    pub(crate) hmin: &'a mut MinUnitPriceCache,
    pub(crate) spt: &'a mut SptCache,
}

/// The search-relevant ablation bits for the SPT model key (admission
/// control never changes edge weights, so it is excluded).
fn ablation_code(a: AblationFlags) -> u64 {
    u64::from(a.price_bandwidth) | (u64::from(a.price_energy) << 1)
}

/// Searches one active slot's min-price path for `request` against the
/// energy overlay `tx` — the per-slot kernel of Algorithm 1 line 5, shared
/// by the serial quote, the speculative phase-1 workers (which pass a
/// *clean* overlay over the base ledger) and the phase-2 fallback.
///
/// When `probes` is `Some`, every first-query `(satellite, role)` energy
/// evaluation records the [`DeficitTrace`](sb_energy::DeficitTrace) it
/// consumed — the complete set of overlay-dependent inputs, which phase 2
/// validates bitwise against the real overlay.
///
/// `search` selects the kernel. With [`SearchKind::Astar`] and `accel`
/// present, the search is goal-directed by the hop-bound heuristic (unit =
/// the tie-break floor plus, when bandwidth is priced, the slot's minimum
/// link unit price — both lower bounds on any edge weight, so the
/// heuristic is admissible and consistent and the result is bit-identical
/// to the reference). Clean-overlay searches additionally go through the
/// strict SPT cache: a generation-exact stored tree answers via
/// [`path_via_tree`], replaying its build-time energy probes so
/// speculative validation still sees every ledger read; destination edges
/// are always evaluated fresh. Read-set recording forces the reference
/// kernel — the recorded set is defined over the reference expansion
/// order.
#[allow(clippy::too_many_arguments)] // a packed context struct would just rename the coupling
pub(crate) fn search_slot(
    params: &CearParams,
    ablation: AblationFlags,
    request: &Request,
    state: &NetworkState,
    known: Option<&crate::lifecycle::KnownFailures>,
    slot: SlotIndex,
    tx: &LedgerOverlay<'_>,
    scratch: &mut SearchScratch,
    mut prices: Option<&mut PriceCache>,
    energy_cache: &mut EnergyPriceCache,
    mut probes: Option<&mut Vec<EnergyProbe>>,
    mut reads: Option<&mut EpochReadSet>,
    search: SearchKind,
    mut accel: Option<&mut SearchAccel<'_>>,
) -> Option<FoundPath> {
    let mu1 = params.mu1();
    let mu2 = params.mu2();
    let slot_s = state.slot_duration_s();
    let energy = state.energy_params();
    let ledger = state.ledger();
    let snapshot = state.series().snapshot(slot);
    let rate = request.rate_at(slot);
    let t = slot.index();
    // Energy cost of satellite `sat` playing `role` at this slot, memoized
    // per (sat, role): the deficit trace priced per Eq. (12), or None when
    // the battery cannot absorb the consumption.
    energy_cache.begin_slot(state.num_satellites());
    // Heuristic inputs are computed before the cost closure below captures
    // the price cache mutably. Every edge weight is at least the tie-break
    // term plus (when bandwidth is priced) rate × the slot's minimum unit
    // price, so hop-bound × that unit is an admissible lower bound; the
    // slack keeps float rounding from ever tipping it over.
    let astar = search == SearchKind::Astar && reads.is_none();
    let mut hops = None;
    let mut unit = 0.0;
    if astar {
        if let Some(a) = accel.as_deref_mut() {
            hops = Some(a.geom.hop_bounds(state.series_arc(), slot, request.destination));
            unit = HOP_TIEBREAK * (1.0 + rate);
            if ablation.price_bandwidth {
                if let Some(pc) = prices.as_deref_mut() {
                    unit += rate * a.hmin.min_unit_price(state, slot, pc);
                }
            }
            unit *= UNIT_SLACK;
        }
    }
    let prices = &mut prices;
    let probes = &mut probes;
    let reads = &mut reads;
    // The cost closure is instantiated up to three times per call (tree
    // read, tree settle, direct search) with different energy-probe sinks;
    // the macro keeps the bodies textually identical so every
    // instantiation computes the same bits.
    macro_rules! cost_fn {
        ($sink:expr) => {
            |ctx: &EdgeContext<'_>| {
                // Known-down edges are gone, whatever the price says.
                if known.is_some_and(|k| k.is_down(slot, ctx.edge_id)) {
                    return None;
                }
                // Every relaxation below reads the cell's reservation
                // (residual and, when priced, utilization) — record it
                // before the first read so rejected edges are in the read
                // set too: a foreign commit that frees capacity on one of
                // them could flip the quote.
                if let Some(rec) = reads.as_deref_mut() {
                    rec.record_bandwidth(state, slot, ctx.edge_id);
                }
                // Bandwidth feasibility (7b) and price.
                if state.residual_mbps(slot, ctx.edge_id) + 1e-9 < rate {
                    return None;
                }
                let mut cost = HOP_TIEBREAK * (1.0 + rate);
                if ablation.price_bandwidth {
                    // Cached and fresh paths compute the same
                    // `rate · (μ₁^λ − 1)` product bit-identically.
                    cost += match prices.as_deref_mut() {
                        Some(pc) => rate * pc.link_unit_price(state, slot, ctx.edge_id),
                        None => pricing::bandwidth_price(
                            mu1,
                            state.utilization(slot, ctx.edge_id),
                            rate,
                        ),
                    };
                }
                // Energy feasibility (7c) and price for the edge's source
                // satellite in its role.
                if let Some(sat) = state.satellite_index(ctx.edge.src) {
                    let role = SatelliteRole::from_link_types(
                        ctx.incoming == Some(LinkType::Isl),
                        ctx.edge.link_type == LinkType::Isl,
                    );
                    let cached = energy_cache.get_or_insert_with(sat, role, || {
                        // First probe of this satellite in this slot: the
                        // peek and the pricing below read its deficit row,
                        // so record it.
                        if let Some(rec) = reads.as_deref_mut() {
                            rec.record_battery_row(state, sat);
                        }
                        let consumption = energy.consumption_j(role, rate, slot_s);
                        let trace = tx.peek(sat, t, consumption);
                        let price = trace.as_ref().map(|trace| match prices.as_deref_mut() {
                            Some(pc) => pricing::deficit_price_with(trace, |tt| {
                                pc.battery_unit_price(state, sat, tt)
                            }),
                            None => pricing::deficit_price(mu2, trace, |tt| {
                                ledger.battery_utilization(sat, tt)
                            }),
                        });
                        if let Some(rec) = $sink {
                            rec.push(EnergyProbe { sat, t, consumption_j: consumption, trace });
                        }
                        price
                    });
                    // Feasibility always applies; the price only when the
                    // energy term is not ablated.
                    let energy_price = cached?;
                    if ablation.price_energy {
                        cost += energy_price;
                    }
                }
                Some(cost)
            }
        };
    }
    // Strict SPT reuse: only for clean-overlay, unpruned searches — the
    // stored tree (and its probes) were recorded against the base ledger
    // with no failure overlay, and generation-exact matching guarantees
    // the base ledger is bit-identical now. Destination edges are never in
    // the tree; `path_via_tree` evaluates them fresh either way.
    if astar && known.is_none() && tx.is_clean() && !spt_cache_disabled() {
        if let Some(a) = accel {
            a.spt.ensure_anchor(state.series_arc());
            let model = model_key(0, &[mu1.to_bits(), mu2.to_bits(), ablation_code(ablation)]);
            let slot_gen = state.slot_bandwidth_gen(slot);
            let battery_gen = state.battery_gen();
            let lookup = a.spt.probe_strict(
                slot,
                request.source,
                model,
                slot_gen,
                battery_gen,
                rate.to_bits(),
            );
            match lookup {
                StrictLookup::Hit => {
                    let (tree, stored) = a.spt.strict_entry(slot, request.source, model);
                    // Replay the build-time probes into the caller's sink:
                    // a speculative phase-2 validator must still see every
                    // ledger read the settle consumed.
                    if let Some(rec) = probes.as_deref_mut() {
                        rec.extend_from_slice(stored);
                    }
                    return path_via_tree(
                        tree,
                        snapshot,
                        request.source,
                        request.destination,
                        cost_fn!(probes.as_deref_mut()),
                    );
                }
                StrictLookup::Build => {
                    // Settle probes go into the entry (later hits replay
                    // them) and are copied to the caller's sink; the
                    // destination evaluations below probe fresh.
                    let mut build_probes: Vec<EnergyProbe> = Vec::new();
                    let tree = settle_tree_in(
                        scratch,
                        snapshot,
                        request.source,
                        cost_fn!(Some(&mut build_probes)),
                    );
                    if let Some(rec) = probes.as_deref_mut() {
                        rec.extend_from_slice(&build_probes);
                    }
                    let found = path_via_tree(
                        &tree,
                        snapshot,
                        request.source,
                        request.destination,
                        cost_fn!(probes.as_deref_mut()),
                    );
                    a.spt.insert_strict(
                        slot,
                        request.source,
                        model,
                        slot_gen,
                        battery_gen,
                        rate.to_bits(),
                        tree,
                        build_probes,
                    );
                    return found;
                }
                StrictLookup::Defer => {}
            }
        }
    }
    match &hops {
        Some(hops) => min_cost_path_with(
            scratch,
            snapshot,
            request.source,
            request.destination,
            &HopBoundHeuristic { hops_lb: hops, unit },
            cost_fn!(probes.as_deref_mut()),
        ),
        None => min_cost_path_in(
            scratch,
            snapshot,
            request.source,
            request.destination,
            cost_fn!(probes.as_deref_mut()),
        ),
    }
}

/// Folds one slot's found path into the quote under construction: strips
/// the tie-break epsilon from the accumulated cost, rolls the slot's
/// consumption into the overlay so later slots of the same request see it,
/// and appends the [`SlotPath`]. Shared by the serial quote and both
/// phase-2 arms of the speculative path, so every route through the code
/// folds identically.
pub(crate) fn fold_slot(
    request: &Request,
    state: &NetworkState,
    slot: SlotIndex,
    found: FoundPath,
    tx: &mut LedgerOverlay<'_>,
    slot_paths: &mut Vec<SlotPath>,
    total_cost: &mut f64,
) -> Result<(), RejectReason> {
    let rate = request.rate_at(slot);
    let slot_s = state.slot_duration_s();
    let energy = state.energy_params();
    let snapshot = state.series().snapshot(slot);
    *total_cost += (found.cost - HOP_TIEBREAK * (1.0 + rate) * found.edges.len() as f64).max(0.0);
    let sp = SlotPath { slot, nodes: found.nodes, edges: found.edges };
    for (node, role) in sp.satellite_roles(snapshot) {
        let sat = state.satellite_index(node).expect("role on non-satellite");
        let consumption = energy.consumption_j(role, rate, slot_s);
        if tx.try_commit(sat, slot.index(), consumption).is_none() {
            // Only reachable when a path revisits a satellite
            // (a zero-cost walk) — reject conservatively.
            return Err(RejectReason::CommitFailed);
        }
    }
    slot_paths.push(sp);
    Ok(())
}

impl RoutingAlgorithm for Cear {
    fn name(&self) -> &'static str {
        "CEAR"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        let (plan, price) = match self.quote(request, state) {
            Ok(found) => found,
            Err(reason) => return Decision::Rejected { reason },
        };

        // Algorithm 1 line 6: admission control.
        if self.ablation.admission_control && price > request.valuation {
            return Decision::Rejected { reason: RejectReason::PriceAboveValuation };
        }

        match state.try_commit_plan(request, &plan) {
            Ok(()) => Decision::Accepted { plan, price },
            Err(_) => Decision::Rejected { reason: RejectReason::CommitFailed },
        }
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        self.quote_avoiding(request, state, known)
    }
}

/// Independently computes the Eq. (12) cost of one slot path under the
/// *current* (pre-commit) state — used both by the admission test and by
/// tests cross-checking the search.
pub fn plan_slot_cost(
    sp: &SlotPath,
    request: &Request,
    state: &NetworkState,
    mu1: f64,
    mu2: f64,
) -> f64 {
    let snapshot = state.series().snapshot(sp.slot);
    let rate = request.rate_at(sp.slot);
    let slot_s = state.slot_duration_s();
    let ledger = state.ledger();
    let params = state.energy_params();

    let mut cost = 0.0;
    for &e in &sp.edges {
        cost += pricing::bandwidth_price(mu1, state.utilization(sp.slot, e), rate);
    }
    for (node, role) in sp.satellite_roles(snapshot) {
        let sat = state.satellite_index(node).expect("role on non-satellite");
        let consumption = params.consumption_j(role, rate, slot_s);
        let trace = ledger
            .peek(sat, sp.slot.index(), consumption)
            .expect("committed path must be energy-feasible");
        cost += pricing::deficit_price(mu2, &trace, |tt| ledger.battery_utilization(sat, tt));
    }
    cost
}

/// [`plan_slot_cost`] priced through a [`PriceCache`] (whose `μ₁, μ₂`
/// replace the explicit parameters): every `μ^λ` becomes a table read,
/// and the result is bit-identical to the uncached function.
pub fn plan_slot_cost_cached(
    sp: &SlotPath,
    request: &Request,
    state: &NetworkState,
    prices: &mut PriceCache,
) -> f64 {
    let snapshot = state.series().snapshot(sp.slot);
    let rate = request.rate_at(sp.slot);
    let slot_s = state.slot_duration_s();
    let ledger = state.ledger();
    let params = state.energy_params();

    let mut cost = 0.0;
    for &e in &sp.edges {
        cost += rate * prices.link_unit_price(state, sp.slot, e);
    }
    for (node, role) in sp.satellite_roles(snapshot) {
        let sat = state.satellite_index(node).expect("role on non-satellite");
        let consumption = params.consumption_j(role, rate, slot_s);
        let trace = ledger
            .peek(sat, sp.slot.index(), consumption)
            .expect("committed path must be energy-feasible");
        cost += pricing::deficit_price_with(&trace, |tt| prices.battery_unit_price(state, sat, tt));
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_demand::{RateProfile, RequestId};
    use sb_energy::EnergyParams;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;
    use sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologyConfig, TopologySeries};

    fn build_state(slots: usize) -> (NetworkState, NodeId, NodeId) {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
        // A 144-satellite shell needs a lower elevation mask than the
        // paper-scale 1584-satellite shell for continuous coverage.
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        let series = TopologySeries::build(&nodes, &cfg, slots, 60.0);
        (NetworkState::new(series, &EnergyParams::default()), a, b)
    }

    fn request(src: NodeId, dst: NodeId, rate: f64, start: u32, end: u32, value: f64) -> Request {
        Request {
            id: RequestId(0),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(start),
            end: SlotIndex(end),
            valuation: value,
        }
    }

    #[test]
    fn accepts_first_request_on_empty_network() {
        let (mut state, src, dst) = build_state(3);
        let mut cear = Cear::new(CearParams::default());
        let req = request(src, dst, 1000.0, 0, 2, 2.3e9);
        let decision = cear.process(&req, &mut state);
        let Decision::Accepted { plan, price } = decision else {
            panic!("expected acceptance, got {decision:?}");
        };
        assert_eq!(plan.slot_paths.len(), 3);
        // First request on a fresh network: bandwidth is free (λ=0) but
        // energy may already cost if the consumption exceeds solar input.
        assert!(price >= 0.0);
        assert!(price <= 2.3e9);
    }

    #[test]
    fn quoted_price_matches_eq12_for_single_slot_request() {
        // For a single-slot request the overlay is empty during the
        // search, so the quoted price must equal the Eq.-12 cost of the
        // chosen path recomputed independently against the pre-request
        // state.
        let (mut state, src, dst) = build_state(1);
        let mut cear = Cear::new(CearParams::default());
        let req = request(src, dst, 1000.0, 0, 0, 2.3e9);
        let before = state.clone();
        let Decision::Accepted { plan, price } = cear.process(&req, &mut state) else {
            panic!("expected acceptance");
        };
        let recomputed = plan_slot_cost(&plan.slot_paths[0], &req, &before, 402.0, 402.0);
        assert!(
            (recomputed - price).abs() < 1e-6 * (1.0 + price),
            "eq12 {recomputed} vs quoted {price}"
        );
        assert!((plan.total_cost - price).abs() < 1e-12);
    }

    #[test]
    fn quote_does_not_mutate_state() {
        let (state, src, dst) = build_state(2);
        let cear = Cear::new(CearParams::default());
        let req = request(src, dst, 1000.0, 0, 1, 2.3e9);
        let before = state.clone();
        let (_, price) = cear.quote(&req, &state).expect("feasible");
        assert!(price >= 0.0);
        assert_eq!(state.series().num_slots(), before.series().num_slots());
        assert_eq!(state.ledger(), before.ledger());
    }

    #[test]
    fn quote_agrees_with_process() {
        let (mut state, src, dst) = build_state(2);
        let mut cear = Cear::new(CearParams::default());
        // Load the network so prices are non-trivial.
        for _ in 0..3 {
            let filler = request(src, dst, 1500.0, 0, 1, f64::MAX);
            let _ = cear.process(&filler, &mut state);
        }
        let req = request(src, dst, 800.0, 0, 1, f64::MAX);
        let (quoted_plan, quoted_price) = cear.quote(&req, &state).expect("feasible");
        let Decision::Accepted { plan, price } = cear.process(&req, &mut state) else {
            panic!("expected acceptance");
        };
        assert_eq!(plan, quoted_plan);
        assert!((price - quoted_price).abs() < 1e-12);
    }

    #[test]
    fn ablated_noadmission_accepts_what_full_cear_prices_out() {
        let (mut state_a, src, dst) = build_state(1);
        let mut state_b = state_a.clone();
        let mut full = Cear::new(CearParams::default());
        let mut greedy = Cear::with_ablation(
            CearParams::default(),
            AblationFlags { admission_control: false, ..AblationFlags::default() },
        );
        // Saturate until the quoted price for the probe is nonzero, then
        // offer a valueless request: full CEAR rejects on price, the
        // no-admission variant accepts while feasible.
        for _ in 0..16 {
            let filler = request(src, dst, 2000.0, 0, 0, f64::MAX);
            let _ = full.process(&filler, &mut state_a);
            let _ = greedy.process(&filler, &mut state_b);
            let probe = request(src, dst, 1000.0, 0, 0, 1e-12);
            if matches!(full.quote(&probe, &state_a), Ok((_, p)) if p > 1e-9) {
                break;
            }
        }
        let cheap = request(src, dst, 1000.0, 0, 0, 1e-12);
        let a = full.process(&cheap, &mut state_a);
        let b = greedy.process(&cheap, &mut state_b);
        assert_eq!(a, Decision::Rejected { reason: RejectReason::PriceAboveValuation });
        assert!(b.is_accepted());
    }

    #[test]
    fn ablation_suffixes() {
        assert_eq!(AblationFlags::default().suffix(), "");
        assert_eq!(
            AblationFlags { price_energy: false, ..AblationFlags::default() }.suffix(),
            "-noenergy"
        );
        assert_eq!(
            AblationFlags { price_bandwidth: false, price_energy: false, admission_control: true }
                .suffix(),
            "-noprice"
        );
    }

    #[test]
    fn rejects_when_valuation_too_low() {
        let (mut state, src, dst) = build_state(2);
        let mut cear = Cear::new(CearParams::default());
        // Saturate the network a bit so prices are nonzero, then send a
        // request that values the service at nearly nothing.
        for _ in 0..3 {
            let filler = request(src, dst, 2000.0, 0, 1, f64::MAX);
            let _ = cear.process(&filler, &mut state);
        }
        let cheap = request(src, dst, 2000.0, 0, 1, 1e-12);
        let decision = cear.process(&cheap, &mut state);
        assert_eq!(decision, Decision::Rejected { reason: RejectReason::PriceAboveValuation });
    }

    #[test]
    fn rejects_unroutable_rate() {
        let (mut state, src, dst) = build_state(1);
        let mut cear = Cear::new(CearParams::default());
        // 5 Gbps exceeds the 4 Gbps USL capacity: no feasible first hop.
        let req = request(src, dst, 5000.0, 0, 0, f64::MAX);
        assert_eq!(
            cear.process(&req, &mut state),
            Decision::Rejected { reason: RejectReason::NoFeasiblePath }
        );
    }

    #[test]
    fn capacity_eventually_exhausted() {
        let (mut state, src, dst) = build_state(1);
        let mut cear = Cear::new(CearParams::default());
        // Each ground user has ≤4 USLs of 4 Gbps: at 2 Gbps per request at
        // most 8 concurrent requests can physically fit.
        let mut accepted = 0;
        for _ in 0..20 {
            let req = request(src, dst, 2000.0, 0, 0, f64::MAX);
            if cear.process(&req, &mut state).is_accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 8, "accepted {accepted}");
        assert!(accepted >= 1);
    }

    #[test]
    fn prices_rise_with_utilization() {
        let (mut state, src, dst) = build_state(1);
        let mut cear = Cear::new(CearParams::default());
        let mut last_price = -1.0;
        let mut prices = Vec::new();
        for _ in 0..4 {
            let req = request(src, dst, 1500.0, 0, 0, f64::MAX);
            if let Decision::Accepted { price, .. } = cear.process(&req, &mut state) {
                prices.push(price);
            }
        }
        assert!(prices.len() >= 2, "need at least two acceptances");
        for p in prices {
            assert!(p >= last_price, "prices should be non-decreasing: {p} after {last_price}");
            last_price = p;
        }
    }

    #[test]
    fn accepted_plans_respect_feasibility_invariant() {
        // Lemma 1: after any sequence of accepted requests, no link is
        // over-reserved and no battery is negative.
        let (mut state, src, dst) = build_state(3);
        let mut cear = Cear::new(CearParams::default());
        for k in 0..15 {
            let req = request(src, dst, 500.0 + 100.0 * (k % 5) as f64, 0, 2, f64::MAX);
            let _ = cear.process(&req, &mut state);
        }
        for t in 0..3 {
            let slot = SlotIndex(t);
            let snap = state.series().snapshot(slot);
            for idx in 0..snap.num_edges() {
                let e = sb_topology::graph::EdgeId(idx as u32);
                assert!(state.residual_mbps(slot, e) >= -1e-6);
            }
            for s in 0..state.num_satellites() {
                assert!(state.ledger().battery_level_j(s, t as usize) >= -1e-6);
            }
        }
    }

    #[test]
    fn cached_quotes_match_reference_bitwise() {
        // The tentpole's correctness bar: CEAR with the search arena and
        // price cache makes exactly the decisions of the pre-optimization
        // path — same plans, same price bits — over a request stream that
        // exercises commits, rejections and mid-stream releases.
        let (mut state_fast, src, dst) = build_state(3);
        let mut state_ref = state_fast.clone();
        let mut fast = Cear::new(CearParams::default());
        let mut reference = Cear::reference(CearParams::default());
        let mut accepted = 0;
        for k in 0..30u32 {
            let rate = 400.0 + 150.0 * (k % 7) as f64;
            let valuation = if k % 5 == 4 { 1e-9 } else { f64::MAX };
            let req = request(src, dst, rate, 0, 2, valuation);
            let a = fast.process(&req, &mut state_fast);
            let b = reference.process(&req, &mut state_ref);
            match (&a, &b) {
                (
                    Decision::Accepted { plan: pa, price: qa },
                    Decision::Accepted { plan: pb, price: qb },
                ) => {
                    accepted += 1;
                    assert_eq!(pa, pb, "request {k}: plans differ");
                    assert_eq!(qa.to_bits(), qb.to_bits(), "request {k}: price bits differ");
                }
                _ => assert_eq!(a, b, "request {k}: decisions differ"),
            }
            // Exercise the release invalidation path mid-stream.
            if k % 6 == 5 {
                if let (Some(ia), Some(ib)) = (state_fast.last_booking(), state_ref.last_booking())
                {
                    state_fast.release_from(ia, SlotIndex(1));
                    state_ref.release_from(ib, SlotIndex(1));
                }
            }
        }
        assert!(accepted >= 2, "stream must admit some requests");
        assert_eq!(state_fast.ledger(), state_ref.ledger(), "final ledgers diverged");
    }

    #[test]
    fn plan_slot_cost_cached_matches_uncached_bitwise() {
        let (mut state, src, dst) = build_state(1);
        let mut cear = Cear::new(CearParams::default());
        for _ in 0..3 {
            let filler = request(src, dst, 1200.0, 0, 0, f64::MAX);
            let _ = cear.process(&filler, &mut state);
        }
        let req = request(src, dst, 800.0, 0, 0, f64::MAX);
        let (plan, _) = cear.quote(&req, &state).expect("feasible");
        let mu1 = cear.params().mu1();
        let mu2 = cear.params().mu2();
        let mut prices = PriceCache::new(mu1, mu2);
        for sp in &plan.slot_paths {
            let fresh = plan_slot_cost(sp, &req, &state, mu1, mu2);
            // Twice: a cold pass (fills the cache) and a warm pass (pure
            // table reads) must both reproduce the exact bits.
            for pass in 0..2 {
                let cached = plan_slot_cost_cached(sp, &req, &state, &mut prices);
                assert_eq!(cached.to_bits(), fresh.to_bits(), "pass {pass}");
            }
        }
    }

    #[test]
    fn decision_accessors() {
        let d = Decision::Rejected { reason: RejectReason::NoFeasiblePath };
        assert!(!d.is_accepted());
        assert_eq!(format!("{}", RejectReason::PriceAboveValuation), "price above valuation");
    }
}
