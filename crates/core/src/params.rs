//! CEAR pricing parameters (§V of the paper).
//!
//! The conservativeness parameters `F₁` (bandwidth) and `F₂` (energy),
//! together with the maximum hop count `n` and the maximum request duration
//! `𝕋`, define the exponential base price factors
//! `μ₁ = 2(n𝕋F₁ + 1)` and `μ₂ = 2(n𝕋F₂ + 1)` used by the cost functions
//! (Eqs. 10–11), and through them the competitive ratio
//! `2·log₂(μ₁μ₂) + 1` of Theorem 1.

use serde::{Deserialize, Serialize};

/// The tunable parameters of CEAR's pricing scheme.
///
/// Defaults match the paper's evaluation: `n = 20`, `𝕋 = 10`,
/// `F₁ = F₂ = 1`, giving `μ₁ = μ₂ = 402` and a competitive ratio of
/// `2·log₂(402²) + 1 ≈ 35.6`.
///
/// # Example
///
/// ```
/// use sb_cear::CearParams;
/// let p = CearParams::default();
/// assert_eq!(p.mu1(), 402.0);
/// assert!((p.competitive_ratio() - 35.6).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CearParams {
    /// Bandwidth conservativeness parameter `F₁`.
    pub f1: f64,
    /// Energy conservativeness parameter `F₂`.
    pub f2: f64,
    /// Maximum number of hops in any path, `n`.
    pub max_hops: f64,
    /// Maximum request duration in slots, `𝕋`.
    pub max_duration_slots: f64,
}

impl Default for CearParams {
    fn default() -> Self {
        CearParams { f1: 1.0, f2: 1.0, max_hops: 20.0, max_duration_slots: 10.0 }
    }
}

impl CearParams {
    /// Creates parameters with custom conservativeness factors and the
    /// paper's `n = 20`, `𝕋 = 10`.
    pub fn with_conservativeness(f1: f64, f2: f64) -> Self {
        CearParams { f1, f2, ..CearParams::default() }
    }

    /// The bandwidth base price factor `μ₁ = 2(n𝕋F₁ + 1)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result is not > 1 (the exponential
    /// pricing scheme needs a base above one).
    pub fn mu1(&self) -> f64 {
        let mu = 2.0 * (self.max_hops * self.max_duration_slots * self.f1 + 1.0);
        debug_assert!(mu > 1.0, "mu1 must exceed 1, got {mu}");
        mu
    }

    /// The energy base price factor `μ₂ = 2(n𝕋F₂ + 1)`.
    pub fn mu2(&self) -> f64 {
        let mu = 2.0 * (self.max_hops * self.max_duration_slots * self.f2 + 1.0);
        debug_assert!(mu > 1.0, "mu2 must exceed 1, got {mu}");
        mu
    }

    /// The competitive ratio guaranteed by Theorem 1:
    /// `2·log₂(μ₁μ₂) + 1`.
    pub fn competitive_ratio(&self) -> f64 {
        2.0 * (self.mu1() * self.mu2()).log2() + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_defaults() {
        let p = CearParams::default();
        assert_eq!(p.mu1(), 402.0);
        assert_eq!(p.mu2(), 402.0);
        // 2·log2(402²)+1 = 4·log2(402)+1 ≈ 35.58
        assert!((p.competitive_ratio() - 35.58).abs() < 0.05);
    }

    #[test]
    fn conservativeness_scales_mu() {
        let p = CearParams::with_conservativeness(2.0, 0.5);
        assert_eq!(p.mu1(), 2.0 * (20.0 * 10.0 * 2.0 + 1.0));
        assert_eq!(p.mu2(), 2.0 * (20.0 * 10.0 * 0.5 + 1.0));
    }

    #[test]
    fn higher_f_means_higher_ratio() {
        let low = CearParams::with_conservativeness(1.0, 1.0);
        let high = CearParams::with_conservativeness(4.0, 4.0);
        assert!(high.competitive_ratio() > low.competitive_ratio());
    }

    proptest! {
        #[test]
        fn prop_ratio_monotone_in_f2(f2a in 0.1..8.0f64, extra in 0.0..8.0f64) {
            let a = CearParams::with_conservativeness(1.0, f2a);
            let b = CearParams::with_conservativeness(1.0, f2a + extra);
            prop_assert!(b.competitive_ratio() >= a.competitive_ratio() - 1e-9);
        }

        #[test]
        fn prop_mu_formula(f1 in 0.1..8.0f64, n in 1.0..50.0f64, t in 1.0..20.0f64) {
            let p = CearParams { f1, f2: 1.0, max_hops: n, max_duration_slots: t };
            prop_assert!((p.mu1() - 2.0 * (n * t * f1 + 1.0)).abs() < 1e-9);
        }
    }
}
