//! State-conservation auditor: proves a [`NetworkState`] is exactly the
//! fold of its own booking log.
//!
//! The exact-release invariant (see [`crate::state`]) makes every piece of
//! mutable state *recomputable*: the reserved-bandwidth plane is the fold,
//! in commit order, of the booking log's bandwidth contributions, and each
//! satellite's ledger rows are the replay, in commit order, of its logged
//! energy consumptions. [`audit`] recomputes both from scratch and
//! compares bit-for-bit, so any drift — a missed release, an orphaned
//! cell, a corrupted checkpoint, a bug in the refold itself — surfaces as
//! a structured [`AuditViolation`] carrying exact coordinates.
//!
//! The auditor never panics: it returns an [`AuditReport`] so the engine
//! can log the violations and halt cleanly (the `strict-audit` cargo
//! feature makes the simulation engine do exactly that at every slot
//! boundary).

use crate::state::{BookingId, NetworkState};
use sb_topology::graph::EdgeId;
use sb_topology::SlotIndex;

/// Violations reported beyond this count are dropped (the report notes
/// the truncation); a fully corrupted plane would otherwise produce one
/// violation per cell.
const MAX_VIOLATIONS: usize = 64;

/// One detected break of a conservation invariant, with coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// A reserved-bandwidth cell differs from the fold of the booking log.
    BandwidthMismatch {
        /// Slot of the cell.
        slot: SlotIndex,
        /// Edge of the cell.
        edge: EdgeId,
        /// What the state records, Mbps.
        recorded_mbps: f64,
        /// What the booking log folds to, Mbps.
        recomputed_mbps: f64,
    },
    /// A cell's reservation is negative or exceeds the link capacity.
    ResidualOutOfRange {
        /// Slot of the cell.
        slot: SlotIndex,
        /// Edge of the cell.
        edge: EdgeId,
        /// Reserved bandwidth, Mbps.
        reserved_mbps: f64,
        /// Link capacity, Mbps.
        capacity_mbps: f64,
    },
    /// A ledger deficit cell differs from a from-scratch replay of the
    /// booking log's energy consumptions.
    LedgerMismatch {
        /// Constellation index of the satellite.
        satellite: usize,
        /// Slot of the cell.
        slot: usize,
        /// Cumulative deficit the ledger records, joules.
        recorded_deficit_j: f64,
        /// Cumulative deficit the replay produces, joules.
        recomputed_deficit_j: f64,
    },
    /// A remaining-solar cell differs from the from-scratch replay.
    SolarMismatch {
        /// Constellation index of the satellite.
        satellite: usize,
        /// Slot of the cell.
        slot: usize,
        /// Remaining solar the ledger records, joules.
        recorded_j: f64,
        /// Remaining solar the replay produces, joules.
        recomputed_j: f64,
    },
    /// A logged energy consumption is not even feasible when replayed —
    /// the log itself is corrupt (it over-draws the battery).
    LedgerInfeasible {
        /// Constellation index of the satellite.
        satellite: usize,
        /// Slot of the infeasible consumption.
        slot: usize,
        /// The logged consumption, joules.
        consumption_j: f64,
    },
    /// A booking log entry references coordinates outside the state's
    /// dimensions.
    MalformedBooking {
        /// Which booking.
        booking: BookingId,
        /// What was out of range.
        detail: String,
    },
}

impl core::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuditViolation::BandwidthMismatch { slot, edge, recorded_mbps, recomputed_mbps } => {
                write!(
                    f,
                    "reserved bandwidth at {slot} edge {} is {recorded_mbps} Mbps but the \
                     booking log folds to {recomputed_mbps} Mbps",
                    edge.0
                )
            }
            AuditViolation::ResidualOutOfRange { slot, edge, reserved_mbps, capacity_mbps } => {
                write!(
                    f,
                    "reservation of {reserved_mbps} Mbps at {slot} edge {} is outside \
                     [0, {capacity_mbps}] Mbps capacity",
                    edge.0
                )
            }
            AuditViolation::LedgerMismatch {
                satellite,
                slot,
                recorded_deficit_j,
                recomputed_deficit_j,
            } => {
                write!(
                    f,
                    "deficit of satellite {satellite} at slot {slot} is {recorded_deficit_j} J \
                     but replaying the booking log gives {recomputed_deficit_j} J"
                )
            }
            AuditViolation::SolarMismatch { satellite, slot, recorded_j, recomputed_j } => {
                write!(
                    f,
                    "remaining solar of satellite {satellite} at slot {slot} is {recorded_j} J \
                     but replaying the booking log gives {recomputed_j} J"
                )
            }
            AuditViolation::LedgerInfeasible { satellite, slot, consumption_j } => {
                write!(
                    f,
                    "logged consumption of {consumption_j} J by satellite {satellite} at slot \
                     {slot} over-draws the battery on replay: the booking log is corrupt"
                )
            }
            AuditViolation::MalformedBooking { booking, detail } => {
                write!(f, "booking {} is malformed: {detail}", booking.0)
            }
        }
    }
}

/// The outcome of one [`audit`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Every violation found, in scan order (bandwidth plane first, then
    /// the ledger), capped at an internal maximum.
    pub violations: Vec<AuditViolation>,
    /// Whether violations beyond the cap were dropped.
    pub truncated: bool,
}

impl AuditReport {
    /// Whether every conservation invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn push(&mut self, v: AuditViolation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.truncated = true;
        }
    }
}

impl core::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return write!(f, "conservation audit clean");
        }
        write!(f, "conservation audit found {} violation(s)", self.violations.len())?;
        if self.truncated {
            write!(f, " (list truncated)")?;
        }
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// Audits `state` against its own booking log over the whole horizon.
///
/// Three independent recomputations:
///
/// 1. **Bandwidth conservation** — every reserved cell must equal,
///    bit-for-bit, the fold of the booking log (which also catches
///    orphaned reservations left behind by a buggy release: the orphan's
///    cell folds to less than the plane records).
/// 2. **Residual range** — every reservation lies in `[0, capacity]`
///    (tolerance `1e-6` Mbps above capacity, matching the commit path).
/// 3. **Ledger conservation** — a pristine ledger replaying the log's
///    energy consumptions in commit order must reproduce the live
///    ledger's solar and deficit planes bit-for-bit, with every replayed
///    consumption feasible.
///
/// Never panics on malformed state: out-of-range booking coordinates are
/// reported as [`AuditViolation::MalformedBooking`] and skipped.
pub fn audit(state: &NetworkState) -> AuditReport {
    let mut report = AuditReport::default();
    let horizon = state.horizon();
    let num_satellites = state.num_satellites();
    let series = state.series();

    // 1 + 2: refold the bandwidth plane from the booking log.
    let mut refolded: Vec<Vec<f64>> =
        (0..horizon).map(|t| vec![0.0; series.snapshot(SlotIndex(t as u32)).num_edges()]).collect();
    for (i, booking) in state.bookings_log().iter().enumerate() {
        for &(s, e, mbps) in &booking.bw {
            let Some(cell) = refolded.get_mut(s.index()).and_then(|row| row.get_mut(e.index()))
            else {
                report.push(AuditViolation::MalformedBooking {
                    booking: BookingId(i),
                    detail: format!("bandwidth cell at {s} edge {} is out of range", e.0),
                });
                continue;
            };
            *cell += mbps;
        }
    }
    for (t, row) in refolded.iter().enumerate() {
        let slot = SlotIndex(t as u32);
        let snapshot = series.snapshot(slot);
        for (i, &recomputed) in row.iter().enumerate() {
            let edge = EdgeId(i as u32);
            let recorded = state.reserved_mbps(slot, edge);
            if recorded.to_bits() != recomputed.to_bits() {
                report.push(AuditViolation::BandwidthMismatch {
                    slot,
                    edge,
                    recorded_mbps: recorded,
                    recomputed_mbps: recomputed,
                });
            }
            let capacity = snapshot.edge(edge).capacity_mbps;
            if !(recorded >= 0.0 && recorded <= capacity + 1e-6) {
                report.push(AuditViolation::ResidualOutOfRange {
                    slot,
                    edge,
                    reserved_mbps: recorded,
                    capacity_mbps: capacity,
                });
            }
        }
    }

    // 3: replay the energy log against a pristine ledger.
    let mut fresh = state.ledger().clone();
    for sat in 0..fresh.num_satellites() {
        fresh.reset_satellite(sat);
    }
    for (i, booking) in state.bookings_log().iter().enumerate() {
        for &(sat, t, consumption_j) in &booking.energy {
            if sat >= num_satellites || t >= horizon {
                report.push(AuditViolation::MalformedBooking {
                    booking: BookingId(i),
                    detail: format!("energy consumption names satellite {sat} slot {t}"),
                });
                continue;
            }
            let mut tx = fresh.overlay();
            if tx.try_commit(sat, t, consumption_j).is_none() {
                report.push(AuditViolation::LedgerInfeasible {
                    satellite: sat,
                    slot: t,
                    consumption_j,
                });
                continue;
            }
            let delta = tx.into_delta();
            fresh.absorb(delta);
        }
    }
    let live = state.ledger();
    for sat in 0..num_satellites {
        for t in 0..horizon {
            let (recorded, recomputed) = (live.deficit_j(sat, t), fresh.deficit_j(sat, t));
            if recorded.to_bits() != recomputed.to_bits() {
                report.push(AuditViolation::LedgerMismatch {
                    satellite: sat,
                    slot: t,
                    recorded_deficit_j: recorded,
                    recomputed_deficit_j: recomputed,
                });
            }
            let (rec_s, new_s) = (live.remaining_solar_j(sat, t), fresh.remaining_solar_j(sat, t));
            if rec_s.to_bits() != new_s.to_bits() {
                report.push(AuditViolation::SolarMismatch {
                    satellite: sat,
                    slot: t,
                    recorded_j: rec_s,
                    recomputed_j: new_s,
                });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ReservationPlan, SlotPath};
    use sb_demand::{RateProfile, Request, RequestId};
    use sb_energy::EnergyParams;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;
    use sb_topology::{NetworkNodes, NodeId, TopologyConfig, TopologySeries};

    fn small_state() -> (NetworkState, NodeId, NodeId) {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        let b = nodes.add_ground_site(Geodetic::from_degrees(40.7, -74.0, 0.0));
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        let series = TopologySeries::build(&nodes, &cfg, 3, 60.0);
        (NetworkState::new(series, &EnergyParams::default()), a, b)
    }

    fn direct_plan(
        state: &NetworkState,
        src: NodeId,
        dst: NodeId,
        slot: SlotIndex,
    ) -> Option<ReservationPlan> {
        let snap = state.series().snapshot(slot);
        for (e1, edge1) in snap.out_edges(src) {
            let sat = edge1.dst;
            if let Some(e2) = snap.find_edge(sat, dst) {
                return Some(ReservationPlan {
                    slot_paths: vec![SlotPath {
                        slot,
                        nodes: vec![src, sat, dst],
                        edges: vec![e1, e2],
                    }],
                    total_cost: 0.0,
                });
            }
        }
        None
    }

    fn request(src: NodeId, dst: NodeId, rate: f64) -> Request {
        Request {
            id: RequestId(0),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(0),
            end: SlotIndex(0),
            valuation: 1e9,
        }
    }

    #[test]
    fn fresh_state_audits_clean() {
        let (state, _, _) = small_state();
        let report = audit(&state);
        assert!(report.is_clean(), "{report}");
        assert_eq!(format!("{report}"), "conservation audit clean");
    }

    #[test]
    fn committed_and_released_state_audits_clean() {
        let (mut state, src, dst) = small_state();
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 800.0);
        state.try_commit_plan(&req, &plan).unwrap();
        state.try_commit_plan(&req, &plan).unwrap();
        assert!(audit(&state).is_clean());

        let first = crate::state::BookingId(0);
        state.release_from(first, SlotIndex(0));
        let report = audit(&state);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn detects_bandwidth_corruption_with_coordinates() {
        let (mut state, src, dst) = small_state();
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 500.0);
        state.try_commit_plan(&req, &plan).unwrap();
        let edge = plan.slot_paths[0].edges[0];
        state.debug_set_reserved(SlotIndex(0), edge, 123.0);

        let report = audit(&state);
        assert!(!report.is_clean());
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                AuditViolation::BandwidthMismatch { slot, edge: e, recorded_mbps, .. }
                    if *slot == SlotIndex(0) && *e == edge && *recorded_mbps == 123.0
            )),
            "{report}"
        );
    }

    #[test]
    fn detects_orphaned_reservation() {
        // An orphan (bandwidth reserved with no booking covering it) is a
        // mismatch between the plane and the fold of the empty log.
        let (mut state, _, _) = small_state();
        state.debug_set_reserved(SlotIndex(1), EdgeId(0), 50.0);
        let report = audit(&state);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            AuditViolation::BandwidthMismatch { slot, edge, .. }
                if *slot == SlotIndex(1) && *edge == EdgeId(0)
        )));
    }

    #[test]
    fn detects_out_of_range_reservation() {
        let (mut state, _, _) = small_state();
        state.debug_set_reserved(SlotIndex(0), EdgeId(0), -3.0);
        let report = audit(&state);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                AuditViolation::ResidualOutOfRange { reserved_mbps, .. } if *reserved_mbps == -3.0
            )),
            "{report}"
        );
    }

    #[test]
    fn detects_ledger_corruption_with_coordinates() {
        let (mut state, _, _) = small_state();
        state.debug_ledger_mut().debug_add_deficit(7, 2, 999.0);
        let report = audit(&state);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                AuditViolation::LedgerMismatch { satellite: 7, slot: 2, recorded_deficit_j, .. }
                    if *recorded_deficit_j == 999.0
            )),
            "{report}"
        );
        // The report's rendering names the coordinates.
        let text = format!("{report}");
        assert!(text.contains("satellite 7") && text.contains("slot 2"), "{text}");
    }

    #[test]
    fn violation_count_is_capped() {
        let (mut state, _, _) = small_state();
        for t in 0..state.horizon() {
            let slot = SlotIndex(t as u32);
            let edges = state.series().snapshot(slot).num_edges();
            for i in 0..edges {
                state.debug_set_reserved(slot, EdgeId(i as u32), -1.0);
            }
        }
        let report = audit(&state);
        assert!(report.truncated);
        assert_eq!(report.violations.len(), MAX_VIOLATIONS);
        assert!(format!("{report}").contains("truncated"));
    }

    #[test]
    fn violation_display_names_resources() {
        let v = AuditViolation::LedgerInfeasible { satellite: 3, slot: 9, consumption_j: 1.5 };
        assert!(format!("{v}").contains("satellite 3"));
        let m = AuditViolation::MalformedBooking {
            booking: BookingId(4),
            detail: "energy consumption names satellite 999 slot 0".into(),
        };
        assert!(format!("{m}").contains("booking 4"));
    }
}
