//! Validators for the competitive analysis' Assumptions 1–2 (§V-A).
//!
//! Theorem 1's `2·log₂(μ₁μ₂) + 1` competitive ratio holds when the
//! workload satisfies:
//!
//! * **Assumption 1** — every valuation is sandwiched:
//!   `max{n𝕋·δ_i(T), n𝕋·Σ_{T_a} Ω_s(T_a, i)} ≤ ρ_i ≤ n𝕋F₁ + n𝕋F₂`;
//! * **Assumption 2** — no single request can saturate a resource:
//!   `δ_i(T) ≤ min_e c_e / log₂ μ₁` and
//!   `Σ_{T_a} Ω_s(T_a, i) ≤ min_s ϖ_s / log₂ μ₂`.
//!
//! The paper notes these are analysis devices, not operational
//! requirements; this module lets an experimenter check how far a concrete
//! workload strays from them (the paper's own evaluation, with
//! ρ = 2.3 × 10⁹, deliberately exceeds the Assumption-1 upper bound to
//! match the success-ratio metric).

use crate::params::CearParams;
use sb_demand::Request;
use sb_energy::{EnergyParams, SatelliteRole};
use serde::{Deserialize, Serialize};

/// Per-request assumption check outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssumptionViolation {
    /// Index of the request in the checked slice.
    pub request_index: usize,
    /// Which assumption was violated (1 or 2).
    pub assumption: u8,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// The result of checking a workload against Assumptions 1–2.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AssumptionReport {
    /// All violations found (empty means both assumptions hold).
    pub violations: Vec<AssumptionViolation>,
    /// Number of requests checked.
    pub checked: usize,
}

impl AssumptionReport {
    /// `true` when every request satisfies both assumptions.
    pub fn all_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a specific assumption.
    pub fn of_assumption(&self, which: u8) -> impl Iterator<Item = &AssumptionViolation> {
        self.violations.iter().filter(move |v| v.assumption == which)
    }
}

/// The worst-case per-slot energy consumption of a request on one
/// satellite: the most expensive role (bent-pipe) at the request's peak
/// rate.
fn worst_case_consumption_j(request: &Request, energy: &EnergyParams, slot_s: f64) -> f64 {
    energy.consumption_j(SatelliteRole::BentPipe, request.rate.peak_rate(), slot_s)
}

/// Checks a workload against Assumptions 1 and 2.
///
/// `min_capacity_mbps` and `min_battery_j` are the network-wide minimum
/// link capacity and battery capacity (the `min_e c_e(T)` / `min_s ϖ_s` of
/// Assumption 2).
pub fn check_assumptions(
    requests: &[Request],
    params: &CearParams,
    energy: &EnergyParams,
    slot_duration_s: f64,
    min_capacity_mbps: f64,
    min_battery_j: f64,
) -> AssumptionReport {
    let nt = params.max_hops * params.max_duration_slots;
    let rho_max = nt * params.f1 + nt * params.f2;
    let delta_cap = min_capacity_mbps / params.mu1().log2();
    let omega_cap = min_battery_j / params.mu2().log2();

    let mut report = AssumptionReport { checked: requests.len(), ..Default::default() };
    for (i, r) in requests.iter().enumerate() {
        let peak = r.rate.peak_rate();
        let total_omega =
            worst_case_consumption_j(r, energy, slot_duration_s) * r.duration_slots() as f64;

        // Assumption 1.
        let rho_min = (nt * peak).max(nt * total_omega);
        if r.valuation < rho_min {
            report.violations.push(AssumptionViolation {
                request_index: i,
                assumption: 1,
                detail: format!("valuation {} below lower bound {rho_min}", r.valuation),
            });
        }
        if r.valuation > rho_max {
            report.violations.push(AssumptionViolation {
                request_index: i,
                assumption: 1,
                detail: format!("valuation {} above upper bound {rho_max}", r.valuation),
            });
        }

        // Assumption 2.
        if peak > delta_cap {
            report.violations.push(AssumptionViolation {
                request_index: i,
                assumption: 2,
                detail: format!("rate {peak} Mbps exceeds min capacity/log2(mu1) = {delta_cap}"),
            });
        }
        if total_omega > omega_cap {
            report.violations.push(AssumptionViolation {
                request_index: i,
                assumption: 2,
                detail: format!(
                    "total energy {total_omega} J exceeds min battery/log2(mu2) = {omega_cap}"
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_demand::{RateProfile, RequestId};
    use sb_topology::{NodeId, SlotIndex};

    fn request(rate: f64, slots: u32, valuation: f64) -> Request {
        Request {
            id: RequestId(0),
            source: NodeId(0),
            destination: NodeId(1),
            rate: RateProfile::Constant(rate),
            start: SlotIndex(0),
            end: SlotIndex(slots - 1),
            valuation,
        }
    }

    fn params() -> (CearParams, EnergyParams) {
        (CearParams::default(), EnergyParams::default())
    }

    #[test]
    fn empty_workload_holds() {
        let (p, e) = params();
        let report = check_assumptions(&[], &p, &e, 60.0, 4000.0, 117_000.0);
        assert!(report.all_hold());
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn paper_workload_violates_assumption1_upper_bound() {
        // ρ = 2.3e9 ≫ n𝕋F₁+n𝕋F₂ = 400: the paper's own evaluation
        // deliberately exceeds the analysis regime.
        let (p, e) = params();
        let r = request(1250.0, 5, 2.3e9);
        let report = check_assumptions(&[r], &p, &e, 60.0, 4000.0, 117_000.0);
        assert!(!report.all_hold());
        assert!(report.of_assumption(1).any(|v| v.detail.contains("above upper bound")));
    }

    #[test]
    fn assumption2_rate_violation_detected() {
        let (p, e) = params();
        // min capacity 4000, log2(402) ≈ 8.65 → cap ≈ 462 Mbps.
        let r = request(1000.0, 1, 1e12);
        let report = check_assumptions(&[r], &p, &e, 60.0, 4000.0, 117_000.0);
        assert!(report.of_assumption(2).any(|v| v.detail.contains("Mbps")));
    }

    #[test]
    fn small_request_passes_assumption2() {
        let (p, e) = params();
        // Tiny rate and a huge battery floor: assumption 2 holds even
        // though assumption 1's bounds are odd at paper units.
        let r = request(1.0, 1, 1e12);
        let report = check_assumptions(&[r], &p, &e, 60.0, 4000.0, 1e12);
        assert!(report.of_assumption(2).next().is_none());
    }

    #[test]
    fn low_valuation_violates_assumption1_lower_bound() {
        let (p, e) = params();
        let r = request(1250.0, 10, 0.5);
        let report = check_assumptions(&[r], &p, &e, 60.0, 4000.0, 117_000.0);
        assert!(report.of_assumption(1).any(|v| v.detail.contains("below lower bound")));
    }

    #[test]
    fn report_counts() {
        let (p, e) = params();
        let rs = vec![request(1250.0, 5, 2.3e9), request(600.0, 2, 2.3e9)];
        let report = check_assumptions(&rs, &p, &e, 60.0, 4000.0, 117_000.0);
        assert_eq!(report.checked, 2);
        assert!(report.violations.iter().all(|v| v.request_index < 2));
    }
}
