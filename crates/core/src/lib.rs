//! CEAR — Congestion and Energy-Aware pricing and resource Reservation —
//! the core contribution of *Space Booking: Enabling Performance-Critical
//! Applications in Broadband Satellite Networks* (ICDCS 2025), plus the
//! baselines it is evaluated against.
//!
//! # The problem
//!
//! Data-transfer requests arrive online at an LSN operator. Each asks for a
//! guaranteed data rate between two users over a window of time slots and
//! carries a valuation — the most the user will pay. The operator must
//! immediately accept (reserving bandwidth on a path per slot and battery
//! energy on every satellite of those paths) or reject, maximizing social
//! welfare subject to link capacities (7b) and battery non-depletion (7c).
//!
//! # The algorithm
//!
//! CEAR prices each resource exponentially in its utilization:
//! `σ_e(T) = c_e(μ₁^{λ_e} − 1)` for link bandwidth and
//! `σ_s(T) = ϖ_s(μ₂^{λ_s} − 1)` for battery deficit, with
//! `μ₁ = 2(n𝕋F₁+1)`, `μ₂ = 2(n𝕋F₂+1)`. The cheapest reservation plan is
//! found per slot by a Dijkstra search whose edge costs combine the
//! bandwidth price with the *deficit-propagated* energy price of Eq. (12);
//! the request is accepted iff the total price is at most its valuation.
//! Under Assumptions 1–2 this is `2·log₂(μ₁μ₂) + 1`-competitive
//! (Theorem 1).
//!
//! # Modules
//!
//! * [`params`] — the pricing parameters `F₁, F₂, n, 𝕋 → μ₁, μ₂` and the
//!   competitive ratio;
//! * [`pricing`] — the exponential price functions (Eqs. 8–12);
//! * [`pricecache`] — memoized unit prices keyed on state change epochs
//!   (the hot-path `powf` becomes a table read, bit-identically);
//! * [`state`] — mutable network state: per-slot bandwidth reservations
//!   plus the satellite energy ledger, with atomic plan commits;
//! * [`search`] — the per-slot min-cost path search over
//!   (node × link-type) states, generic over an admissible A\* heuristic
//!   (`ZeroHeuristic` is the reference Dijkstra);
//! * [`sptcache`] — search acceleration: goal-direction geometry caches
//!   and the epoch-validated shortest-path-tree cache, both bitwise
//!   transparent;
//! * [`parquote`] — speculative slot-parallel quoting: per-slot searches
//!   fan across workers against the base ledger, then an overlay replay
//!   validates each slot's deficit traces bitwise (bit-identical to the
//!   serial quote, with a serial fallback from the first divergence);
//! * [`plan`] — reservation plans and role extraction;
//! * [`algorithm`] — the [`RoutingAlgorithm`] trait and [`Cear`] itself;
//! * [`adaptive`] — the §V-B feedback loop that retunes `F₂` from
//!   observed battery utilization;
//! * [`lifecycle`] — reservation release and repair under unforeseen
//!   failures (extension): [`RepairPolicy`], [`lifecycle::try_repair`],
//!   [`NetworkState::release_from`];
//! * [`audit`] — the state-conservation auditor: proves the live state
//!   equals the fold of its own booking log, reporting structured
//!   violations (used at slot boundaries under the `strict-audit`
//!   feature);
//! * [`baselines`] — SSP, ECARS, ERU and ERA comparison algorithms;
//! * [`multipath`] — split-on-demand multipath reservations for flows
//!   beyond single-link capacity (extension);
//! * [`offline`] — hindsight references bounding the offline optimum;
//! * [`analysis`] — Assumption 1–2 validators.
//!
//! # Example
//!
//! ```
//! use sb_cear::{Cear, CearParams, NetworkState, RoutingAlgorithm};
//! use sb_demand::{RateProfile, Request, RequestId};
//! use sb_energy::EnergyParams;
//! use sb_orbit::walker::WalkerConstellation;
//! use sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};
//! use sb_geo::coords::Geodetic;
//!
//! // A small network: 12×12 shell, two ground users. (A 144-satellite
//! // shell needs a lower elevation mask than paper scale for coverage.)
//! let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
//! let mut nodes = NetworkNodes::from_walker(&shell);
//! let src = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
//! let dst = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
//! let cfg = TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
//! let series = TopologySeries::build(&nodes, &cfg, 4, 60.0);
//! let mut state = NetworkState::new(series, &EnergyParams::default());
//!
//! let request = Request {
//!     id: RequestId(0),
//!     source: src,
//!     destination: dst,
//!     rate: RateProfile::Constant(800.0),
//!     start: SlotIndex(0),
//!     end: SlotIndex(2),
//!     valuation: 2.3e9,
//! };
//! let mut cear = Cear::new(CearParams::default());
//! let decision = cear.process(&request, &mut state);
//! assert!(decision.is_accepted());
//! ```

#![warn(missing_docs)]
pub mod adaptive;
pub mod algorithm;
pub mod analysis;
pub mod audit;
pub mod baselines;
pub mod lifecycle;
pub mod multipath;
pub mod offline;
pub mod params;
pub mod parquote;
pub mod plan;
pub mod pricecache;
pub mod pricing;
pub mod search;
pub mod sptcache;
pub mod state;

pub use adaptive::{AdaptiveCear, AdaptivePolicy};
pub use algorithm::{AblationFlags, Cear, Decision, RejectReason, RoutingAlgorithm};
pub use audit::{audit, AuditReport, AuditViolation};
pub use baselines::{Ecars, Era, Eru, Ssp};
pub use lifecycle::{repair, try_repair, KnownFailures, RepairOutcome, RepairPolicy};
pub use multipath::MultipathCear;
pub use params::CearParams;
pub use parquote::QuoteStats;
pub use plan::{ReservationPlan, SlotPath};
pub use pricecache::PriceCache;
pub use search::{SearchScratch, SearchStats};
pub use sptcache::{
    global_spt_stats, reset_global_spt_stats, spt_cache_disabled, SearchKind, SptStats,
};
pub use state::{BookingId, CommitError, EpochReadSet, NetworkState};
