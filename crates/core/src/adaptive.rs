//! Adaptive conservativeness tuning (§V-B of the paper).
//!
//! The competitive analysis fixes `F₁, F₂` for the worst case, but §V-B
//! observes that in practice the operator should "monitor the historical
//! minimum and maximum demand and value of requests, and then periodically
//! update F₁ and F₂ based on historical trends". [`AdaptiveCear`]
//! implements that feedback loop in the spirit of the
//! algorithms-with-predictions framework the paper cites as future work:
//!
//! * every `retune_every` processed requests it observes the network —
//!   mean battery utilization at the current slot and the recent
//!   rejection mix;
//! * if batteries are more utilized than the operator's target, `F₂` is
//!   raised multiplicatively (pricier energy, more conservation);
//!   if they are comfortably below target, `F₂` is lowered toward the
//!   welfare-maximizing end;
//! * `F₂` stays inside operator-set bounds, so the worst-case competitive
//!   guarantee of the most conservative setting is never abandoned.

use crate::algorithm::{Cear, Decision, RoutingAlgorithm};
use crate::params::CearParams;
use crate::state::NetworkState;
use sb_demand::Request;
use serde::{Deserialize, Serialize};

/// Operator policy for the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Desired mean battery utilization across the constellation at the
    /// decision slot, `[0, 1]`. Above it `F₂` rises; below, falls.
    pub target_battery_utilization: f64,
    /// How many processed requests between retunes.
    pub retune_every: usize,
    /// Multiplicative step applied to `F₂` per retune (> 1).
    pub step: f64,
    /// Inclusive lower bound for `F₂`.
    pub f2_min: f64,
    /// Inclusive upper bound for `F₂`.
    pub f2_max: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            target_battery_utilization: 0.5,
            retune_every: 25,
            step: 1.5,
            f2_min: 0.25,
            f2_max: 64.0,
        }
    }
}

/// CEAR with an operator feedback loop on the energy conservativeness
/// parameter `F₂`.
///
/// # Example
///
/// ```
/// use sb_cear::adaptive::{AdaptiveCear, AdaptivePolicy};
/// use sb_cear::CearParams;
///
/// let adaptive = AdaptiveCear::new(CearParams::default(), AdaptivePolicy::default());
/// assert_eq!(adaptive.current_f2(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveCear {
    inner: Cear,
    policy: AdaptivePolicy,
    processed: usize,
    f2_history: Vec<f64>,
}

impl AdaptiveCear {
    /// Creates the adaptive wrapper around CEAR's base parameters.
    ///
    /// # Panics
    ///
    /// Panics if the policy bounds are inverted or the step is ≤ 1.
    pub fn new(params: CearParams, policy: AdaptivePolicy) -> Self {
        assert!(policy.f2_min > 0.0 && policy.f2_min <= policy.f2_max, "invalid F2 bounds");
        assert!(policy.step > 1.0, "step must exceed 1");
        assert!(policy.retune_every > 0, "retune_every must be positive");
        AdaptiveCear { inner: Cear::new(params), policy, processed: 0, f2_history: Vec::new() }
    }

    /// The current value of `F₂`.
    pub fn current_f2(&self) -> f64 {
        self.inner.params().f2
    }

    /// Every `F₂` value the loop has set, in order (useful for plotting
    /// the adaptation trajectory).
    pub fn f2_history(&self) -> &[f64] {
        &self.f2_history
    }

    /// The active policy.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    fn retune(&mut self, request: &Request, state: &NetworkState) {
        let t = request.start.index().min(state.horizon().saturating_sub(1));
        let observed = state.ledger().mean_utilization(t);
        let mut params = *self.inner.params();
        if observed > self.policy.target_battery_utilization {
            params.f2 = (params.f2 * self.policy.step).min(self.policy.f2_max);
        } else {
            params.f2 = (params.f2 / self.policy.step).max(self.policy.f2_min);
        }
        self.f2_history.push(params.f2);
        self.inner = Cear::new(params);
    }
}

impl RoutingAlgorithm for AdaptiveCear {
    fn name(&self) -> &'static str {
        "CEAR-adaptive"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        if self.processed > 0 && self.processed.is_multiple_of(self.policy.retune_every) {
            self.retune(request, state);
        }
        self.processed += 1;
        self.inner.process(request, state)
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
    ) -> Result<(crate::plan::ReservationPlan, f64), crate::algorithm::RejectReason> {
        // Quotes use the currently tuned parameters; retuning only happens
        // on the `process` path (quoting must not mutate the tuner).
        self.inner.quote_plan(request, state, known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{build_state, request};

    #[test]
    fn f2_rises_under_battery_pressure() {
        let (mut state, src, dst) = build_state(3);
        let policy = AdaptivePolicy {
            target_battery_utilization: 0.0005, // absurdly strict target
            retune_every: 2,
            ..AdaptivePolicy::default()
        };
        let mut adaptive = AdaptiveCear::new(CearParams::default(), policy);
        for _ in 0..12 {
            let _ = adaptive.process(&request(src, dst, 1500.0, 0, 2), &mut state);
        }
        assert!(
            adaptive.current_f2() > 1.0,
            "F2 should rise under pressure, got {}",
            adaptive.current_f2()
        );
        assert!(!adaptive.f2_history().is_empty());
    }

    #[test]
    fn f2_falls_when_network_is_idle() {
        let (mut state, src, dst) = build_state(3);
        let policy = AdaptivePolicy {
            target_battery_utilization: 0.99,
            retune_every: 1,
            ..Default::default()
        };
        let mut adaptive = AdaptiveCear::new(CearParams::default(), policy);
        for _ in 0..10 {
            // Tiny requests: the network never approaches the target.
            let _ = adaptive.process(&request(src, dst, 1.0, 0, 0), &mut state);
        }
        assert!(adaptive.current_f2() < 1.0);
        assert!(adaptive.current_f2() >= adaptive.policy().f2_min);
    }

    #[test]
    fn f2_respects_bounds() {
        let (mut state, src, dst) = build_state(2);
        let policy = AdaptivePolicy {
            target_battery_utilization: 0.0,
            retune_every: 1,
            step: 10.0,
            f2_min: 0.5,
            f2_max: 4.0,
        };
        let mut adaptive = AdaptiveCear::new(CearParams::default(), policy);
        for _ in 0..20 {
            let _ = adaptive.process(&request(src, dst, 1500.0, 0, 1), &mut state);
        }
        for &f2 in adaptive.f2_history() {
            assert!((0.5..=4.0).contains(&f2), "F2 {f2} out of bounds");
        }
        assert_eq!(adaptive.current_f2(), 4.0, "strict target should pin F2 at the cap");
    }

    #[test]
    fn still_makes_valid_decisions() {
        let (mut state, src, dst) = build_state(2);
        let mut adaptive = AdaptiveCear::new(CearParams::default(), AdaptivePolicy::default());
        let d = adaptive.process(&request(src, dst, 800.0, 0, 1), &mut state);
        assert!(d.is_accepted(), "fresh network should accept");
        assert_eq!(adaptive.name(), "CEAR-adaptive");
    }

    #[test]
    #[should_panic(expected = "invalid F2 bounds")]
    fn inverted_bounds_panic() {
        let policy = AdaptivePolicy { f2_min: 8.0, f2_max: 1.0, ..Default::default() };
        let _ = AdaptiveCear::new(CearParams::default(), policy);
    }
}
