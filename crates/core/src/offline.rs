//! Hindsight references for the offline optimum.
//!
//! Definition 1's offline problem is NP-hard (an unsplittable multi-slot
//! flow packing), and the paper itself never computes it exactly — it only
//! uses the offline optimum inside the competitive analysis. For empirical
//! grounding we provide two practical references:
//!
//! * [`total_valuation`] — the trivial upper bound `Σ_i ρ_i` (accept
//!   everything);
//! * [`hindsight_welfare`] — a hindsight greedy: with the full request set
//!   known, admit requests in order of decreasing value density
//!   (valuation ÷ requested resource volume) using any routing algorithm.
//!   This is the classic offline greedy for online-packing problems and
//!   upper-bounds what value-ordering alone can recover;
//! * [`exact_offline_welfare`] — branch-and-bound over accept/reject
//!   decisions (with a fixed routing policy) for small instances: the
//!   strongest computable offline reference, used to measure empirical
//!   competitive ratios in the tests.

use crate::algorithm::RoutingAlgorithm;
use crate::state::NetworkState;
use sb_demand::{Request, RequestId};

/// The trivial offline upper bound: the total valuation of all requests.
pub fn total_valuation(requests: &[Request]) -> f64 {
    requests.iter().map(|r| r.valuation).sum()
}

/// Runs `algorithm` over the requests in decreasing value-density order
/// (valuation per megabit of requested volume) against a fresh state,
/// returning `(welfare, accepted_count)`.
///
/// With the paper's constant valuations this admits small requests first —
/// the packing-friendly order an offline scheduler would prefer.
pub fn hindsight_welfare(
    requests: &[Request],
    state: &mut NetworkState,
    algorithm: &mut dyn RoutingAlgorithm,
) -> (f64, usize) {
    let slot_s = state.slot_duration_s();
    let mut order: Vec<&Request> = requests.iter().collect();
    order.sort_by(|a, b| {
        let da = a.valuation / a.total_volume_mbit(slot_s).max(f64::MIN_POSITIVE);
        let db = b.valuation / b.total_volume_mbit(slot_s).max(f64::MIN_POSITIVE);
        db.total_cmp(&da)
    });
    let mut welfare = 0.0;
    let mut accepted = 0;
    for request in order {
        if algorithm.process(request, state).is_accepted() {
            welfare += request.valuation;
            accepted += 1;
        }
    }
    (welfare, accepted)
}

/// Exhaustive branch-and-bound over accept/reject subsets of `requests`
/// (processed in the given order), using `make_router` to route each
/// accepted request. Returns the best achievable welfare and the accepted
/// request ids.
///
/// This is the exact optimum *for the chosen routing policy*: Definition
/// 1's full problem also optimizes the paths themselves, which is NP-hard
/// in a stronger sense; with a min-cost router the gap is small on
/// uncongested instances. Complexity is `O(2^n)` state clones — intended
/// for instances of at most ~20 requests (enforced by `limit`).
///
/// # Panics
///
/// Panics when `requests.len()` exceeds `limit` (guards against
/// accidentally exponential runs).
pub fn exact_offline_welfare(
    requests: &[Request],
    base: &NetworkState,
    make_router: impl Fn() -> Box<dyn RoutingAlgorithm>,
    limit: usize,
) -> (f64, Vec<RequestId>) {
    assert!(
        requests.len() <= limit,
        "exact offline solver limited to {limit} requests, got {}",
        requests.len()
    );
    // Suffix sums of valuations for the upper-bound prune.
    let mut suffix = vec![0.0; requests.len() + 1];
    for i in (0..requests.len()).rev() {
        suffix[i] = suffix[i + 1] + requests[i].valuation;
    }

    struct Search<'a, F: Fn() -> Box<dyn RoutingAlgorithm>> {
        requests: &'a [Request],
        suffix: Vec<f64>,
        make_router: F,
        best: f64,
        best_set: Vec<RequestId>,
    }

    impl<F: Fn() -> Box<dyn RoutingAlgorithm>> Search<'_, F> {
        fn dfs(
            &mut self,
            i: usize,
            state: &NetworkState,
            welfare: f64,
            chosen: &mut Vec<RequestId>,
        ) {
            if welfare + self.suffix[i] <= self.best {
                return; // cannot beat the incumbent
            }
            if i == self.requests.len() {
                if welfare > self.best {
                    self.best = welfare;
                    self.best_set = chosen.clone();
                }
                return;
            }
            let request = &self.requests[i];
            // Branch 1: try to accept (feasibility decided by the router).
            let mut accept_state = state.clone();
            let mut router = (self.make_router)();
            if router.process(request, &mut accept_state).is_accepted() {
                chosen.push(request.id);
                self.dfs(i + 1, &accept_state, welfare + request.valuation, chosen);
                chosen.pop();
            }
            // Branch 2: reject.
            self.dfs(i + 1, state, welfare, chosen);
        }
    }

    let mut search =
        Search { requests, suffix, make_router, best: f64::NEG_INFINITY, best_set: Vec::new() };
    search.dfs(0, base, 0.0, &mut Vec::new());
    (search.best.max(0.0), search.best_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{build_state, request};
    use crate::baselines::Ssp;
    use sb_demand::RateProfile;

    #[test]
    fn total_valuation_sums() {
        let (_, src, dst) = build_state(1);
        let rs = vec![request(src, dst, 100.0, 0, 0), request(src, dst, 100.0, 0, 0)];
        assert_eq!(total_valuation(&rs), 2.0 * 2.3e9);
        assert_eq!(total_valuation(&[]), 0.0);
    }

    #[test]
    fn hindsight_prefers_high_density() {
        let (mut state, src, dst) = build_state(1);
        // One huge low-density request and several small high-density ones
        // competing for the same USLs.
        let mut rs = Vec::new();
        let mut big = request(src, dst, 2000.0, 0, 0);
        big.valuation = 2.3e9;
        rs.push(big);
        for _ in 0..6 {
            let mut small = request(src, dst, 600.0, 0, 0);
            small.valuation = 2.3e9; // same value, much smaller volume
            rs.push(small);
        }
        let (welfare, accepted) = hindsight_welfare(&rs, &mut state, &mut Ssp::new());
        assert!(accepted >= 6, "small requests should be packed first, got {accepted}");
        assert!(welfare >= 6.0 * 2.3e9);
    }

    #[test]
    fn hindsight_on_empty_request_set() {
        let (mut state, _, _) = build_state(1);
        let (welfare, accepted) = hindsight_welfare(&[], &mut state, &mut Ssp::new());
        assert_eq!(welfare, 0.0);
        assert_eq!(accepted, 0);
    }

    #[test]
    fn exact_dominates_hindsight_and_online() {
        let (state, src, dst) = build_state(1);
        // Six medium requests and one big one contending for USLs.
        let mut rs: Vec<_> = (0..5).map(|_| request(src, dst, 900.0, 0, 0)).collect();
        rs.push(request(src, dst, 2000.0, 0, 0));
        for (i, r) in rs.iter_mut().enumerate() {
            r.id = sb_demand::RequestId(i as u32);
        }

        let (exact, accepted) = exact_offline_welfare(&rs, &state, || Box::new(Ssp::new()), 16);
        let mut greedy_state = state.clone();
        let (greedy, _) = hindsight_welfare(&rs, &mut greedy_state, &mut Ssp::new());
        assert!(exact + 1e-6 >= greedy, "exact {exact} < greedy {greedy}");
        assert!(exact <= total_valuation(&rs) + 1e-6);
        assert_eq!(accepted.len(), (exact / 2.3e9).round() as usize);
    }

    #[test]
    fn exact_finds_the_obvious_packing() {
        let (state, src, dst) = build_state(1);
        // Two small requests that fit together beat one that blocks both.
        let mut rs = vec![request(src, dst, 600.0, 0, 0), request(src, dst, 600.0, 0, 0)];
        for (i, r) in rs.iter_mut().enumerate() {
            r.id = sb_demand::RequestId(i as u32);
        }
        let (exact, accepted) = exact_offline_welfare(&rs, &state, || Box::new(Ssp::new()), 8);
        assert_eq!(accepted.len(), 2);
        assert!((exact - 2.0 * 2.3e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn exact_guards_against_blowup() {
        let (state, src, dst) = build_state(1);
        let rs: Vec<_> = (0..5).map(|_| request(src, dst, 100.0, 0, 0)).collect();
        let _ = exact_offline_welfare(&rs, &state, || Box::new(Ssp::new()), 3);
    }

    #[test]
    fn zero_volume_request_does_not_divide_by_zero() {
        let (mut state, src, dst) = build_state(1);
        let mut r = request(src, dst, 0.0, 0, 0);
        r.rate = RateProfile::Constant(0.0);
        let (_, accepted) = hindsight_welfare(&[r], &mut state, &mut Ssp::new());
        assert!(accepted <= 1);
    }
}
