//! Speculative slot-parallel admission quoting.
//!
//! A CEAR quote (Algorithm 1 line 5) runs one min-cost search per active
//! slot. The searches are *almost* independent: every price is defined on
//! the pre-request state (Eqs. 8–9), so the only cross-slot coupling is the
//! transactional energy overlay — a request's early slots can consume the
//! solar energy its late slots counted on, which changes late slots'
//! deficit traces (feasibility and the Eq. 12 energy price).
//!
//! This module exploits that structure in two phases:
//!
//! 1. **Speculate** — fan the per-slot searches across a worker pool, each
//!    worker with its own [`SearchScratch`] arena, [`PriceCache`] and
//!    [`EnergyPriceCache`], searching against the *base* ledger (a clean
//!    overlay). Every worker records, for each distinct `(satellite, role)`
//!    its search queried, the [`DeficitTrace`] it computed — the complete
//!    set of overlay-dependent inputs its search consumed.
//! 2. **Validate** — serially replay the overlay in slot order. For each
//!    slot, recompute every recorded trace through the overlay and compare
//!    **bitwise** with the speculative one. If all match, the serial search
//!    would have seen identical cost-callback answers at every relaxation,
//!    so (Dijkstra being deterministic) it would have produced the identical
//!    path and cost — accept the speculative result and commit its roles
//!    into the overlay. On the first divergent slot, fall back to today's
//!    serial search for that slot and every later one.
//!
//! The returned `(ReservationPlan, f64)` is therefore **bit-identical** to
//! the serial quote for every request, which
//! `tests::prop_parallel_quotes_match_serial_bitwise` checks under tight
//! battery budgets (forcing divergence and the fallback) and under failure
//! injection with [`KnownFailures`] pruning.

use crate::algorithm::{fold_slot, search_slot, Cear, CearHot, RejectReason, SearchAccel};
use crate::params::CearParams;
use crate::plan::ReservationPlan;
use crate::pricecache::PriceCache;
use crate::search::{SearchScratch, SearchStats};
use crate::sptcache::{GeomCache, MinUnitPriceCache, SptCache, SptStats};
use crate::state::NetworkState;
use sb_demand::Request;
use sb_energy::{DeficitTrace, LedgerOverlay, SatelliteRole};
use sb_topology::SlotIndex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters describing how the speculative quote path is doing, aggregated
/// over an instance's lifetime — see [`Cear::quote_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuoteStats {
    /// Quotes that took the slot-parallel path (multi-slot requests with
    /// `quote_threads > 1`).
    pub parallel_quotes: u64,
    /// Quotes answered entirely by the serial path.
    pub serial_quotes: u64,
    /// Slots searched speculatively against the base ledger (phase 1).
    pub speculated_slots: u64,
    /// Speculative slot results whose recorded deficit traces survived
    /// overlay validation and were accepted as-is (phase 2).
    pub validated_slots: u64,
    /// Slots re-searched serially after a divergent trace was detected.
    pub fallback_slots: u64,
    /// Search work counters, summed over the serial scratch and every
    /// speculative worker's (see [`SearchStats`]).
    pub search: SearchStats,
    /// SPT-cache counters, summed likewise (see [`SptStats`]).
    pub spt: SptStats,
}

impl QuoteStats {
    /// Fraction of speculated slots accepted without a serial re-search;
    /// `1.0` when nothing was speculated yet.
    pub fn hit_rate(&self) -> f64 {
        if self.speculated_slots == 0 {
            1.0
        } else {
            self.validated_slots as f64 / self.speculated_slots as f64
        }
    }
}

/// Index of a role in the flat [`EnergyPriceCache`] (4 variants).
#[inline]
fn role_index(role: SatelliteRole) -> usize {
    match role {
        SatelliteRole::Middle => 0,
        SatelliteRole::IngressGateway => 1,
        SatelliteRole::EgressGateway => 2,
        SatelliteRole::BentPipe => 3,
    }
}

/// One memoized per-slot energy evaluation.
#[derive(Debug, Clone, Copy)]
struct EnergyCell {
    stamp: u32,
    /// The Eq. (12) deficit price, `None` when the battery cannot absorb
    /// the consumption (constraint 7c).
    price: Option<f64>,
}

const EMPTY: EnergyCell = EnergyCell { stamp: 0, price: None };

/// The per-slot `(satellite, role) → Option<price>` energy memo of the
/// quote search, as a generation-stamped flat array.
///
/// The search queries the same satellite in the same role many times per
/// slot (once per out-edge relaxation); the memo makes each distinct pair
/// cost one deficit-trace recursion. It used to be a per-slot
/// `HashMap<(usize, SatelliteRole), Option<f64>>`, allocated afresh for
/// every active slot of every quote; the flat array lives in [`CearHot`]
/// (or a [`Cear::quote_speculative`] worker) across quotes, and starting a
/// new slot is O(1): bump the generation, exactly like
/// [`SearchScratch`]'s arena reset. Values are identical to the map's —
/// each pair is still computed exactly once per slot, in first-query order
/// — so quotes are bit-identical.
#[derive(Debug, Clone, Default)]
pub struct EnergyPriceCache {
    /// `sat * 4 + role_index(role)`; entry valid iff its stamp matches the
    /// current generation.
    cells: Vec<EnergyCell>,
    generation: u32,
}

impl EnergyPriceCache {
    /// An empty cache; grows to fit the first slot begun.
    pub fn new() -> Self {
        EnergyPriceCache::default()
    }

    /// Starts a new slot: grows to `num_satellites` satellites if needed
    /// and invalidates every entry by advancing the generation.
    pub(crate) fn begin_slot(&mut self, num_satellites: usize) {
        let n = num_satellites * 4;
        if self.cells.len() < n {
            self.cells.resize(n, EMPTY);
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Wrapped after 2^32 slots: restamp everything once.
                self.cells.fill(EMPTY);
                1
            }
        };
    }

    /// The memoized energy evaluation of `(sat, role)` for the current
    /// slot, computing it with `f` on first query.
    #[inline]
    pub(crate) fn get_or_insert_with(
        &mut self,
        sat: usize,
        role: SatelliteRole,
        f: impl FnOnce() -> Option<f64>,
    ) -> Option<f64> {
        let cell = &mut self.cells[sat * 4 + role_index(role)];
        if cell.stamp != self.generation {
            cell.price = f();
            cell.stamp = self.generation;
        }
        cell.price
    }
}

/// One overlay-dependent input consumed by a speculative slot search: the
/// deficit trace of `(sat, role)` at slot `t`, computed against the base
/// ledger. Phase 2 recomputes it through the overlay and compares bitwise.
#[derive(Debug, Clone)]
pub(crate) struct EnergyProbe {
    pub(crate) sat: usize,
    pub(crate) t: usize,
    pub(crate) consumption_j: f64,
    pub(crate) trace: Option<DeficitTrace>,
}

/// A speculative per-slot result: the found path (or proven
/// infeasibility) plus every trace the search consumed.
#[derive(Debug)]
struct SlotSpec {
    found: Option<crate::search::FoundPath>,
    probes: Vec<EnergyProbe>,
}

/// Per-worker acceleration state of the speculative phase, retained across
/// quotes so arenas stay warm and price caches stay populated (entries are
/// epoch-validated, so retaining them across commits is safe and
/// bit-transparent — see [`PriceCache`]).
#[derive(Debug, Clone)]
pub(crate) struct QuoteWorker {
    pub(crate) scratch: SearchScratch,
    pub(crate) prices: PriceCache,
    pub(crate) energy: EnergyPriceCache,
    pub(crate) geom: GeomCache,
    pub(crate) hmin: MinUnitPriceCache,
    pub(crate) spt: SptCache,
}

impl QuoteWorker {
    pub(crate) fn new(params: &CearParams) -> Self {
        QuoteWorker {
            scratch: SearchScratch::new(),
            prices: PriceCache::new(params.mu1(), params.mu2()),
            energy: EnergyPriceCache::new(),
            geom: GeomCache::default(),
            hmin: MinUnitPriceCache::default(),
            spt: SptCache::default(),
        }
    }
}

/// Bitwise equality of two optional deficit traces. `PartialEq` on `f64`
/// is not quite it (`-0.0 == 0.0`); the contract here is that the serial
/// search would reproduce the speculative result *bit for bit*, so the
/// comparison is on bits too.
fn traces_match(a: &Option<DeficitTrace>, b: &Option<DeficitTrace>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.added_deficit_j.to_bits() == y.added_deficit_j.to_bits()
                && x.per_slot.len() == y.per_slot.len()
                && x.per_slot
                    .iter()
                    .zip(&y.per_slot)
                    .all(|((ta, da), (tb, db))| ta == tb && da.to_bits() == db.to_bits())
        }
        _ => false,
    }
}

/// Would the serial search, run against `tx`, have seen exactly the
/// answers the speculative search recorded?
fn validates(probes: &[EnergyProbe], tx: &LedgerOverlay<'_>) -> bool {
    if tx.is_clean() {
        // A clean overlay reads through to the base ledger the speculation
        // ran against; every trace matches by construction.
        return true;
    }
    probes.iter().all(|p| traces_match(&p.trace, &tx.peek(p.sat, p.t, p.consumption_j)))
}

impl Cear {
    /// The speculative slot-parallel quote path — see the module docs for
    /// the design. Called by [`Cear::quote_avoiding`] for multi-slot
    /// requests when `quote_threads > 1`; bit-identical to the serial
    /// quote.
    pub(crate) fn quote_speculative(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
        hot: &mut CearHot,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        let slots: Vec<SlotIndex> = request.active_slots().collect();
        let params = self.params;
        let ablation = self.ablation;
        let search = self.search;
        let threads = self.quote_threads.min(slots.len()).max(1);
        hot.ensure_workers(threads, &params);
        hot.stats.parallel_quotes += 1;
        hot.stats.speculated_slots += slots.len() as u64;
        let ledger = state.ledger();

        // Phase 1: speculate. Workers pull slot positions from a shared
        // atomic index and deposit each result into its slot's dedicated
        // cell, so results are in slot order and — the per-worker caches
        // being bit-transparent — independent of which worker ran what.
        let specs: Vec<Mutex<Option<SlotSpec>>> = slots.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in hot.workers[..threads].iter_mut() {
                let (specs, next, slots, params) = (&specs, &next, &slots, &params);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    // A clean overlay *is* the base ledger, through the
                    // exact code path the serial search reads it by.
                    let clean = ledger.overlay();
                    let mut probes = Vec::new();
                    let mut accel = SearchAccel {
                        geom: &mut worker.geom,
                        hmin: &mut worker.hmin,
                        spt: &mut worker.spt,
                    };
                    let found = search_slot(
                        params,
                        ablation,
                        request,
                        state,
                        known,
                        slots[i],
                        &clean,
                        &mut worker.scratch,
                        Some(&mut worker.prices),
                        &mut worker.energy,
                        Some(&mut probes),
                        None,
                        search,
                        Some(&mut accel),
                    );
                    *specs[i].lock().expect("slot cell poisoned") =
                        Some(SlotSpec { found, probes });
                });
            }
        });

        // Phase 2: validate against the real overlay, serially in slot
        // order; fall back to the serial search from the first divergence.
        let mut tx = ledger.overlay();
        let mut slot_paths = Vec::with_capacity(slots.len());
        let mut total_cost = 0.0;
        let mut diverged_at = None;
        for (k, &slot) in slots.iter().enumerate() {
            let spec =
                specs[k].lock().expect("slot cell poisoned").take().expect("worker filled slot");
            if !validates(&spec.probes, &tx) {
                diverged_at = Some(k);
                break;
            }
            hot.stats.validated_slots += 1;
            let Some(found) = spec.found else {
                // All traces matched, so the serial search would have come
                // up empty for this slot too.
                return Err(RejectReason::NoFeasiblePath);
            };
            fold_slot(request, state, slot, found, &mut tx, &mut slot_paths, &mut total_cost)?;
        }
        if let Some(k0) = diverged_at {
            hot.stats.fallback_slots += (slots.len() - k0) as u64;
            let mut accel =
                SearchAccel { geom: &mut hot.geom, hmin: &mut hot.hmin, spt: &mut hot.spt };
            for &slot in &slots[k0..] {
                let found = search_slot(
                    &params,
                    ablation,
                    request,
                    state,
                    known,
                    slot,
                    &tx,
                    &mut hot.scratch,
                    hot.prices.as_mut(),
                    &mut hot.energy,
                    None,
                    None,
                    search,
                    Some(&mut accel),
                )
                .ok_or(RejectReason::NoFeasiblePath)?;
                fold_slot(request, state, slot, found, &mut tx, &mut slot_paths, &mut total_cost)?;
            }
        }
        let plan = ReservationPlan { slot_paths, total_cost };
        Ok((plan, total_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Decision, RoutingAlgorithm};
    use crate::lifecycle::KnownFailures;
    use sb_demand::{RateProfile, Request, RequestId};
    use sb_energy::EnergyParams;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;
    use sb_topology::graph::EdgeId;
    use sb_topology::{NetworkNodes, NodeId, TopologyConfig, TopologySeries};

    fn build_state(slots: usize, energy: &EnergyParams) -> (NetworkState, NodeId, NodeId) {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        let series = TopologySeries::build(&nodes, &cfg, slots, 60.0);
        (NetworkState::new(series, energy), a, b)
    }

    fn request(src: NodeId, dst: NodeId, rate: f64, start: u32, end: u32, value: f64) -> Request {
        Request {
            id: RequestId(0),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(start),
            end: SlotIndex(end),
            valuation: value,
        }
    }

    /// A battery regime where a request's early slots eat the solar input
    /// its late slots counted on: speculation against the base ledger must
    /// diverge from the overlay-aware serial search, triggering the
    /// fallback.
    fn tight_energy() -> EnergyParams {
        EnergyParams { solar_harvest_w: 5.0, battery_capacity_j: 9_000.0, ..Default::default() }
    }

    /// Compares one quote between a serial and a slot-parallel CEAR:
    /// decisions must agree and plans/prices must match bitwise.
    fn assert_quote_matches(
        serial: &Cear,
        parallel: &Cear,
        req: &Request,
        state: &NetworkState,
        known: Option<&KnownFailures>,
        label: &str,
    ) {
        let a = serial.quote_avoiding(req, state, known);
        let b = parallel.quote_avoiding(req, state, known);
        match (a, b) {
            (Ok((pa, qa)), Ok((pb, qb))) => {
                assert_eq!(pa, pb, "{label}: plans differ");
                assert_eq!(qa.to_bits(), qb.to_bits(), "{label}: price bits differ");
            }
            (a, b) => assert_eq!(a, b, "{label}: outcomes differ"),
        }
    }

    /// Drives an identical request stream through a serial and a
    /// slot-parallel CEAR (committing acceptances on separate state
    /// clones) and asserts bitwise agreement throughout. The stream mixes
    /// rates, windows and low valuations derived from `seed` via
    /// splitmix64.
    fn assert_stream_matches(seed: u64, energy: &EnergyParams, slots: u32, threads: usize) {
        let (mut state_s, src, dst) = build_state(slots as usize, energy);
        let mut state_p = state_s.clone();
        let mut serial = Cear::new(CearParams::default());
        let mut parallel = Cear::new(CearParams::default()).with_quote_threads(threads);
        let mut x = seed;
        let mut split = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for k in 0..24u32 {
            let z = split();
            let rate = 200.0 + (z % 1800) as f64;
            let start = (z >> 16) as u32 % slots;
            let end = start + ((z >> 24) as u32 % (slots - start).max(1));
            let valuation = if z % 7 == 0 { 1e-9 } else { f64::MAX };
            let req = request(src, dst, rate, start, end, valuation);
            assert_quote_matches(&serial, &parallel, &req, &state_s, None, &format!("req {k}"));
            let a = serial.process(&req, &mut state_s);
            let b = parallel.process(&req, &mut state_p);
            match (&a, &b) {
                (
                    Decision::Accepted { plan: pa, price: qa },
                    Decision::Accepted { plan: pb, price: qb },
                ) => {
                    assert_eq!(pa, pb, "req {k}: committed plans differ");
                    assert_eq!(qa.to_bits(), qb.to_bits(), "req {k}: prices differ");
                }
                _ => assert_eq!(a, b, "req {k}: decisions differ"),
            }
        }
        assert_eq!(state_s.ledger(), state_p.ledger(), "final ledgers diverged");
    }

    #[test]
    fn parallel_stream_matches_serial_on_default_energy() {
        assert_stream_matches(7, &EnergyParams::default(), 4, 4);
    }

    #[test]
    fn parallel_stream_matches_serial_under_tight_battery() {
        // Tight budgets force overlay divergence: assert the fallback
        // actually fired somewhere in the stream, so the test proves the
        // serial-fallback arm bit-identical too (not just the happy path).
        let (mut state_s, src, dst) = build_state(6, &tight_energy());
        let mut state_p = state_s.clone();
        let mut serial = Cear::new(CearParams::default());
        let mut parallel = Cear::new(CearParams::default()).with_quote_threads(3);
        for k in 0..12u32 {
            let req = request(src, dst, 300.0 + 100.0 * (k % 4) as f64, 0, 5, f64::MAX);
            let a = serial.process(&req, &mut state_s);
            let b = parallel.process(&req, &mut state_p);
            assert_eq!(a, b, "req {k}");
        }
        assert_eq!(state_s.ledger(), state_p.ledger());
        let stats = parallel.quote_stats();
        assert!(stats.parallel_quotes > 0);
        assert!(
            stats.fallback_slots > 0,
            "tight budgets must force at least one divergence: {stats:?}"
        );
    }

    #[test]
    fn parallel_quote_matches_serial_with_known_failures() {
        let (state, src, dst) = build_state(4, &EnergyParams::default());
        let serial = Cear::new(CearParams::default());
        let parallel = Cear::new(CearParams::default()).with_quote_threads(4);
        let req = request(src, dst, 800.0, 0, 3, f64::MAX);
        let (plan, _) = serial.quote(&req, &state).expect("feasible");
        // Knock out the chosen path's edges slot by slot, comparing
        // quotes as the pruned search is pushed onto detours (and
        // eventually, possibly, into infeasibility).
        let mut known = KnownFailures::new();
        for sp in &plan.slot_paths {
            for &e in &sp.edges {
                known.insert(sp.slot, e);
            }
            assert_quote_matches(
                &serial,
                &parallel,
                &req,
                &state,
                Some(&known),
                &format!("slot {} pruned", sp.slot.index()),
            );
        }
    }

    #[test]
    fn single_slot_and_single_thread_quotes_stay_serial() {
        let (state, src, dst) = build_state(2, &EnergyParams::default());
        let one_thread = Cear::new(CearParams::default()).with_quote_threads(1);
        let threaded = Cear::new(CearParams::default()).with_quote_threads(4);
        let single_slot = request(src, dst, 500.0, 0, 0, f64::MAX);
        let multi_slot = request(src, dst, 500.0, 0, 1, f64::MAX);
        let _ = one_thread.quote(&multi_slot, &state);
        let _ = threaded.quote(&single_slot, &state);
        assert_eq!(one_thread.quote_stats().parallel_quotes, 0);
        assert_eq!(one_thread.quote_stats().serial_quotes, 1);
        assert_eq!(threaded.quote_stats().parallel_quotes, 0);
        assert_eq!(threaded.quote_stats().serial_quotes, 1);
        let _ = threaded.quote(&multi_slot, &state);
        assert_eq!(threaded.quote_stats().parallel_quotes, 1);
    }

    #[test]
    fn quote_threads_floor_at_one() {
        let cear = Cear::new(CearParams::default()).with_quote_threads(0);
        assert_eq!(cear.quote_threads(), 1);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let empty = QuoteStats::default();
        assert_eq!(empty.hit_rate(), 1.0);
        let stats = QuoteStats { speculated_slots: 8, validated_slots: 6, ..empty };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn traces_match_is_bitwise() {
        let t = DeficitTrace { per_slot: vec![(3, 1.5)], added_deficit_j: 1.5 };
        assert!(traces_match(&Some(t.clone()), &Some(t.clone())));
        assert!(traces_match(&None, &None));
        assert!(!traces_match(&Some(t.clone()), &None));
        let longer = DeficitTrace { per_slot: vec![(3, 1.5), (4, 0.5)], added_deficit_j: 2.0 };
        assert!(!traces_match(&Some(t.clone()), &Some(longer)));
        // -0.0 == 0.0 under PartialEq, but the bits differ — the serial
        // search would not reproduce the speculative result exactly.
        let pos = DeficitTrace { per_slot: vec![(3, 0.0)], added_deficit_j: 0.0 };
        let neg = DeficitTrace { per_slot: vec![(3, -0.0)], added_deficit_j: 0.0 };
        assert!(!traces_match(&Some(pos), &Some(neg)));
    }

    #[test]
    fn energy_price_cache_generations_isolate_slots() {
        let mut cache = EnergyPriceCache::new();
        cache.begin_slot(2);
        let mut calls = 0;
        let v = cache.get_or_insert_with(1, SatelliteRole::Middle, || {
            calls += 1;
            Some(2.5)
        });
        assert_eq!(v, Some(2.5));
        // Hit: the closure must not run again within the slot.
        let v = cache.get_or_insert_with(1, SatelliteRole::Middle, || {
            calls += 1;
            Some(9.9)
        });
        assert_eq!(v, Some(2.5));
        assert_eq!(calls, 1);
        // Distinct role, same satellite: its own cell.
        let v = cache.get_or_insert_with(1, SatelliteRole::BentPipe, || None);
        assert_eq!(v, None);
        // New slot invalidates everything in O(1).
        cache.begin_slot(2);
        let v = cache.get_or_insert_with(1, SatelliteRole::Middle, || Some(7.0));
        assert_eq!(v, Some(7.0));
    }

    /// Exercises the [`EpochReadSet`](crate::EpochReadSet) soundness
    /// contract for one request against one state:
    ///
    /// * replaying the quote against a state with untouched read-set
    ///   epochs — a clean clone, and a clone whose *unread* cells were
    ///   mutated — reproduces outcome, plan, price and read set bit for
    ///   bit, across accelerator configurations (cached recorder vs.
    ///   uncached reference replayer);
    /// * mutating any single recorded cell flips
    ///   [`is_current`](crate::EpochReadSet::is_current) to `false`
    ///   (sampled here to bound clone count; the proptest below draws
    ///   random cells);
    /// * committing the quoted plan itself conflicts the read set (every
    ///   plan resource was, by construction, read).
    fn assert_read_set_sound(req: &Request, state: &NetworkState, label: &str) {
        let (outcome, reads) = Cear::new(CearParams::default()).quote_recording(req, state);
        assert!(!reads.is_empty(), "{label}: quote recorded no reads");
        assert!(reads.is_current(state), "{label}: fresh read set already stale");

        let assert_replay_matches = |replay_state: &NetworkState, what: &str| {
            let (replayed, re_reads) =
                Cear::reference(CearParams::default()).quote_recording(req, replay_state);
            match (&outcome, &replayed) {
                (Ok((pa, qa)), Ok((pb, qb))) => {
                    assert_eq!(pa, pb, "{label}/{what}: plans differ");
                    assert_eq!(qa.to_bits(), qb.to_bits(), "{label}/{what}: price bits differ");
                }
                (a, b) => assert_eq!(a, b, "{label}/{what}: outcomes differ"),
            }
            assert_eq!(reads, re_reads, "{label}/{what}: read sets differ");
        };

        // Unchanged read-set epochs → bit-identical replay. Clones
        // preserve epochs, so a clean clone qualifies.
        assert_replay_matches(&state.clone(), "clean clone");

        // A cell the quote never read is free to change: no conflict, and
        // the replay must not notice.
        let read_bw: std::collections::HashSet<(usize, usize)> =
            reads.bandwidth_cells().map(|(s, e)| (s.index(), e.index())).collect();
        'unread: for t in 0..state.horizon() {
            let slot = SlotIndex(t as u32);
            for e in 0..state.series().snapshot(slot).num_edges() {
                if !read_bw.contains(&(t, e)) {
                    let mut other = state.clone();
                    other.debug_set_reserved(slot, EdgeId(e as u32), 1.0);
                    assert!(
                        reads.is_current(&other),
                        "{label}: unread cell ({t},{e}) flagged as a conflict"
                    );
                    assert_replay_matches(&other, "unread cell mutated");
                    break 'unread;
                }
            }
        }

        // Any single recorded bandwidth cell, touched → conflict.
        let cells: Vec<_> = reads.bandwidth_cells().collect();
        for &(slot, edge) in cells.iter().step_by((cells.len() / 8).max(1)) {
            let mut touched = state.clone();
            touched.debug_set_reserved(slot, edge, 1.0);
            assert!(
                !reads.is_current(&touched),
                "{label}: missed bandwidth conflict at slot {} edge {}",
                slot.index(),
                edge.index()
            );
        }

        // Any single recorded battery cell, touched → conflict.
        let sats: Vec<_> = reads.battery_sats().collect();
        for (k, &sat) in sats.iter().enumerate().step_by((sats.len() / 8).max(1)) {
            let mut touched = state.clone();
            touched.debug_bump_battery_epoch(sat, k % state.horizon());
            assert!(!reads.is_current(&touched), "{label}: missed battery conflict at sat {sat}");
        }

        // Committing the quote's own plan must invalidate its read set.
        if let Ok((plan, _)) = &outcome {
            let mut committed = state.clone();
            committed.try_commit_plan(req, plan).expect("quoted plan must commit");
            assert!(!reads.is_current(&committed), "{label}: commit left its own read set current");
        }
    }

    /// Deterministic read-set soundness sweep (the offline-runnable
    /// companion to the proptest below): admissions and price rejections,
    /// single- and multi-slot windows, against fresh and partially
    /// committed states.
    #[test]
    fn epoch_read_set_replay_and_conflicts() {
        let (mut state, src, dst) = build_state(3, &EnergyParams::default());
        let admit = request(src, dst, 800.0, 0, 2, f64::MAX);
        assert_read_set_sound(&admit, &state, "multi-slot admit");
        assert_read_set_sound(&request(src, dst, 500.0, 1, 1, f64::MAX), &state, "single slot");
        assert_read_set_sound(&request(src, dst, 800.0, 0, 2, 1e-9), &state, "price reject");

        // Reads recorded against a loaded state must see *those* epochs.
        let mut cear = Cear::new(CearParams::default());
        for k in 0..6u32 {
            let _ = cear
                .process(&request(src, dst, 400.0 + 150.0 * k as f64, 0, 2, f64::MAX), &mut state);
        }
        assert_read_set_sound(&admit, &state, "loaded state");
    }

    proptest::proptest! {
        /// The speculative slot-parallel quote path must be bit-identical
        /// to the serial path over randomized request streams — including
        /// tight battery budgets (overlay divergence → serial fallback)
        /// and varying worker counts.
        #[test]
        fn prop_parallel_quotes_match_serial_bitwise(
            seed in 0u64..64,
            threads in 2usize..5,
            tight in proptest::bool::ANY,
        ) {
            let energy = if tight { tight_energy() } else { EnergyParams::default() };
            assert_stream_matches(seed, &energy, 5, threads);
        }

        /// Epoch read-set soundness over randomized requests: replay with
        /// unchanged read-set epochs is bit-identical; any touched read
        /// cell conflicts.
        #[test]
        fn prop_epoch_read_set_is_sound(
            seed in 0u64..48,
            tight in proptest::bool::ANY,
        ) {
            let energy = if tight { tight_energy() } else { EnergyParams::default() };
            let (state, src, dst) = build_state(4, &energy);
            let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let rate = 200.0 + (z % 1700) as f64;
            let start = (z >> 16) as u32 % 4;
            let end = start + ((z >> 24) as u32 % (4 - start));
            let valuation = if z % 5 == 0 { 1e-9 } else { f64::MAX };
            let req = request(src, dst, rate, start, end, valuation);
            assert_read_set_sound(&req, &state, &format!("seed {seed}"));
        }
    }
}
