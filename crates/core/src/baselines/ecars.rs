//! ECARS — Energy and Capacity Aware Routing [da Maceno et al.].
//!
//! Routes each slot over the path minimizing a *linear* weighted sum of a
//! congestion factor (link bandwidth utilization), an energy factor
//! (battery depth-of-discharge of the link's satellites) and a delay factor
//! (normalized link length). Unlike CEAR the combination is linear — the
//! paper's evaluation attributes ECARS's weaker welfare to exactly this
//! ("their path selection was based on a linear function, which did not
//! sensibly reflect resource usage") — and there is no admission control.

use crate::algorithm::{Decision, RejectReason, RoutingAlgorithm};
use crate::baselines::{edge_battery_utilization, route_and_commit, route_plan, DELAY_NORM_M};
use crate::lifecycle::KnownFailures;
use crate::plan::ReservationPlan;
use crate::sptcache::{model_key, ModelSpec, SearchKind};
use crate::state::NetworkState;
use sb_demand::Request;
use serde::{Deserialize, Serialize};

/// The constant added to every linear-metric edge cost so that an idle
/// network still prefers fewer hops — and the per-edge cost floor the
/// ECARS-family A\* heuristics build on (every factor term is ≥ 0).
pub(crate) const HOP_EPSILON: f64 = 1e-3;

/// The linear weights of the ECARS path metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EcarsFactors {
    /// Weight of the link bandwidth utilization term.
    pub congestion: f64,
    /// Weight of the battery depth-of-discharge term.
    pub energy: f64,
    /// Weight of the normalized link-length (delay) term.
    pub delay: f64,
}

impl Default for EcarsFactors {
    /// The paper's setting: congestion 0.3, energy 0.35 (delay takes the
    /// remaining weight).
    fn default() -> Self {
        EcarsFactors { congestion: 0.3, energy: 0.35, delay: 0.35 }
    }
}

impl EcarsFactors {
    /// The weighted edge cost. A small constant is added so that on a
    /// completely idle network the metric still prefers fewer hops.
    pub(crate) fn edge_cost(
        &self,
        utilization: f64,
        battery_utilization: f64,
        length_m: f64,
    ) -> f64 {
        self.congestion * utilization
            + self.energy * battery_utilization
            + self.delay * (length_m / DELAY_NORM_M).min(1.0)
            + HOP_EPSILON
    }
}

/// The ECARS baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ecars {
    factors: EcarsFactors,
    search: SearchKind,
}

impl Ecars {
    /// ECARS with the paper's default factors.
    pub fn new() -> Self {
        Self::default()
    }

    /// ECARS with custom factors.
    pub fn with_factors(factors: EcarsFactors) -> Self {
        Ecars { factors, search: SearchKind::default() }
    }

    /// Selects the search kernel (bitwise-identical results either way).
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = search;
        self
    }

    /// The factors in use.
    pub fn factors(&self) -> &EcarsFactors {
        &self.factors
    }

    /// Congestion and energy factors read the reservation state, so the
    /// weights move on every commit: `volatile` (no SPT caching).
    fn model(&self) -> ModelSpec {
        ModelSpec {
            key: model_key(2, &factor_bits(&self.factors)),
            floor: factor_floor(&self.factors),
            volatile: true,
        }
    }
}

pub(crate) fn factor_bits(f: &EcarsFactors) -> [u64; 3] {
    [f.congestion.to_bits(), f.energy.to_bits(), f.delay.to_bits()]
}

/// The per-edge cost floor of the linear metric: [`HOP_EPSILON`] when all
/// factor terms are guaranteed non-negative, else the trivially admissible
/// 0 (a pathological negative factor must not break A\* optimality).
pub(crate) fn factor_floor(f: &EcarsFactors) -> f64 {
    if f.congestion >= 0.0 && f.energy >= 0.0 && f.delay >= 0.0 {
        HOP_EPSILON
    } else {
        0.0
    }
}

impl RoutingAlgorithm for Ecars {
    fn name(&self) -> &'static str {
        "ECARS"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        let factors = self.factors;
        route_and_commit(request, state, self.search, self.model(), |ctx, slot, st| {
            let lambda_e = st.utilization(slot, ctx.edge_id);
            let lambda_s = edge_battery_utilization(ctx, slot, st);
            Some(factors.edge_cost(lambda_e, lambda_s, ctx.edge.length_m))
        })
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        let factors = self.factors;
        route_plan(request, state, known, self.search, self.model(), |ctx, slot, st| {
            let lambda_e = st.utilization(slot, ctx.edge_id);
            let lambda_s = edge_battery_utilization(ctx, slot, st);
            Some(factors.edge_cost(lambda_e, lambda_s, ctx.edge.length_m))
        })
        .map(|p| (p, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{build_state, request};
    use crate::baselines::Ssp;

    #[test]
    fn default_factors_match_paper() {
        let f = EcarsFactors::default();
        assert_eq!(f.congestion, 0.3);
        assert_eq!(f.energy, 0.35);
    }

    #[test]
    fn accepts_feasible_request() {
        let (mut state, src, dst) = build_state(2);
        let mut ecars = Ecars::new();
        assert!(ecars.process(&request(src, dst, 1000.0, 0, 1), &mut state).is_accepted());
    }

    #[test]
    fn edge_cost_increases_with_each_factor() {
        let f = EcarsFactors::default();
        let base = f.edge_cost(0.1, 0.1, 1.0e6);
        assert!(f.edge_cost(0.5, 0.1, 1.0e6) > base);
        assert!(f.edge_cost(0.1, 0.5, 1.0e6) > base);
        assert!(f.edge_cost(0.1, 0.1, 3.0e6) > base);
    }

    #[test]
    fn spreads_load_compared_to_ssp() {
        // Send identical flows; ECARS should end with lower peak link
        // utilization than SSP because its metric penalizes reuse.
        let flows = 6;
        let peak = |algo: &mut dyn crate::RoutingAlgorithm| {
            let (mut state, src, dst) = build_state(1);
            for _ in 0..flows {
                let _ = algo.process(&request(src, dst, 1500.0, 0, 0), &mut state);
            }
            let slot = sb_topology::SlotIndex(0);
            let snap = state.series().snapshot(slot);
            (0..snap.num_edges())
                .map(|i| state.utilization(slot, sb_topology::graph::EdgeId(i as u32)))
                .fold(0.0f64, f64::max)
        };
        let ssp_peak = peak(&mut Ssp::new());
        let ecars_peak = peak(&mut Ecars::new());
        assert!(
            ecars_peak <= ssp_peak + 1e-9,
            "ECARS peak {ecars_peak} should not exceed SSP peak {ssp_peak}"
        );
    }

    #[test]
    fn name() {
        assert_eq!(Ecars::new().name(), "ECARS");
    }
}
