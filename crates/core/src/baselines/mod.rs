//! The comparison algorithms of the paper's evaluation (§VI-A).
//!
//! All four baselines share CEAR's all-or-nothing reservation semantics —
//! a request is admitted only if a bandwidth- and battery-feasible path is
//! reserved in every active slot — but none of them performs price-based
//! admission control: they accept whenever their routing rule finds a
//! feasible plan. This is exactly the paper's distinction ("they lacked
//! access control for online arriving requests").
//!
//! * [`Ssp`] — Single Shortest Path: minimum hop count;
//! * [`Ecars`] — linear weighted combination of congestion, energy and
//!   delay factors;
//! * [`Eru`] — ECARS plus *pruning* of satellites whose battery discharge
//!   exceeds a depth-of-discharge threshold;
//! * [`Era`] — ECARS plus *re-weighting* (penalizing) instead of pruning.
//!
//! The published ERU/ERA threshold (5·10⁻⁶ W·min/Mbit) is defined against
//! packet-level traffic counters our reservation-level model does not
//! track; we interpret it as a battery depth-of-discharge fraction
//! (default 1 %), which reproduces the paper's qualitative behaviour —
//! ERU prunes links "even with slight network usage". DESIGN.md records
//! the interpretation.

mod ecars;
mod era;
mod eru;
mod ssp;

pub use ecars::{Ecars, EcarsFactors};
pub use era::Era;
pub use eru::Eru;
pub use ssp::Ssp;

use crate::algorithm::{Decision, RejectReason};
use crate::lifecycle::KnownFailures;
use crate::plan::{ReservationPlan, SlotPath};
use crate::search::{
    min_cost_path_in, min_cost_path_with, EdgeContext, HopBoundHeuristic, SearchScratch,
};
use crate::sptcache::{
    baseline_route_slot, spt_cache_disabled, GeomCache, ModelSpec, SearchKind, SptCache, UNIT_SLACK,
};
use crate::state::NetworkState;
use sb_demand::Request;
use sb_topology::SlotIndex;
use std::cell::RefCell;

thread_local! {
    /// One search arena per thread, shared by every baseline: the per-slot
    /// searches of all baseline calls on a thread reuse the same buffers
    /// (see [`SearchScratch`]), which is bit-transparent to the results.
    static BASELINE_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
    /// One SPT cache per thread, shared by every baseline on it: entries
    /// carry their cost model in the key and self-validate against state
    /// generations (process-unique), so sharing across states and sweep
    /// cells is sound. The capacity covers a sweep's working set of
    /// `(slot, source, model)` keys — a tight cap thrashes the LRU long
    /// before memory matters (entries are tens of KB).
    static BASELINE_SPT: RefCell<SptCache> = RefCell::new(SptCache::new(4096));
    /// Per-thread hop-bound geometry for the A\* heuristic.
    static BASELINE_GEOM: RefCell<GeomCache> = RefCell::new(GeomCache::default());
}

/// Shared baseline search: routes every active slot with `weight_fn`
/// (bandwidth feasibility and known-down pruning are pre-checked before
/// the weight function runs) without committing anything. Baselines are
/// price-oblivious, so the plan's `total_cost` is zero.
///
/// `search` picks the kernel: the reference Dijkstra, or goal-directed
/// A\* backed by the per-thread SPT cache (bitwise identical results —
/// see [`crate::sptcache`]). The SPT path is skipped for volatile cost
/// models (commit-churned weights invalidate their trees faster than
/// they can be reused) and when a known-failure overlay is active:
/// pruned edges are not part of the cached transcripts.
pub(crate) fn route_plan(
    request: &Request,
    state: &NetworkState,
    known: Option<&KnownFailures>,
    search: SearchKind,
    model: ModelSpec,
    mut weight_fn: impl FnMut(&EdgeContext<'_>, SlotIndex, &NetworkState) -> Option<f64>,
) -> Result<ReservationPlan, RejectReason> {
    BASELINE_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let mut slot_paths = Vec::with_capacity(request.duration_slots());
        for slot in request.active_slots() {
            let rate = request.rate_at(slot);
            let snapshot = state.series().snapshot(slot);
            let use_spt = search == SearchKind::Astar
                && !model.volatile
                && known.is_none()
                && !spt_cache_disabled();
            let found = if use_spt {
                BASELINE_SPT.with(|spt| {
                    baseline_route_slot(
                        &mut spt.borrow_mut(),
                        scratch,
                        state,
                        slot,
                        request.source,
                        request.destination,
                        rate,
                        model,
                        &mut weight_fn,
                    )
                })
            } else {
                let full = |ctx: &EdgeContext<'_>| {
                    if known.is_some_and(|k| k.is_down(slot, ctx.edge_id)) {
                        return None;
                    }
                    if state.residual_mbps(slot, ctx.edge_id) + 1e-9 < rate {
                        return None;
                    }
                    weight_fn(ctx, slot, state)
                };
                match search {
                    SearchKind::Reference => min_cost_path_in(
                        scratch,
                        snapshot,
                        request.source,
                        request.destination,
                        full,
                    ),
                    SearchKind::Astar => {
                        let hops = BASELINE_GEOM.with(|geom| {
                            geom.borrow_mut().hop_bounds(
                                state.series_arc(),
                                slot,
                                request.destination,
                            )
                        });
                        let heuristic =
                            HopBoundHeuristic { hops_lb: &hops, unit: model.floor * UNIT_SLACK };
                        min_cost_path_with(
                            scratch,
                            snapshot,
                            request.source,
                            request.destination,
                            &heuristic,
                            full,
                        )
                    }
                }
            };
            match found {
                Some(p) => slot_paths.push(SlotPath { slot, nodes: p.nodes, edges: p.edges }),
                None => return Err(RejectReason::NoFeasiblePath),
            }
        }
        Ok(ReservationPlan { slot_paths, total_cost: 0.0 })
    })
}

/// Shared baseline driver: [`route_plan`], then atomically commit. No
/// price is charged.
pub(crate) fn route_and_commit(
    request: &Request,
    state: &mut NetworkState,
    search: SearchKind,
    model: ModelSpec,
    weight_fn: impl FnMut(&EdgeContext<'_>, SlotIndex, &NetworkState) -> Option<f64>,
) -> Decision {
    let plan = match route_plan(request, state, None, search, model, weight_fn) {
        Ok(plan) => plan,
        Err(reason) => return Decision::Rejected { reason },
    };
    match state.try_commit_plan(request, &plan) {
        Ok(()) => Decision::Accepted { plan, price: 0.0 },
        Err(_) => Decision::Rejected { reason: RejectReason::CommitFailed },
    }
}

/// The larger of the two battery utilizations of an edge's satellite
/// endpoints at `slot` (0 when neither endpoint is a satellite) — the
/// energy factor the linear baselines weigh.
pub(crate) fn edge_battery_utilization(
    ctx: &EdgeContext<'_>,
    slot: SlotIndex,
    state: &NetworkState,
) -> f64 {
    let t = slot.index();
    let mut util: f64 = 0.0;
    for node in [ctx.edge.src, ctx.edge.dst] {
        if let Some(sat) = state.satellite_index(node) {
            util = util.max(state.ledger().battery_utilization(sat, t));
        }
    }
    util
}

/// The larger of the two battery *deficits* (joules) of an edge's satellite
/// endpoints at `slot` — the quantity ERU/ERA threshold against.
pub(crate) fn edge_battery_deficit_j(
    ctx: &EdgeContext<'_>,
    slot: SlotIndex,
    state: &NetworkState,
) -> f64 {
    let t = slot.index();
    let mut deficit: f64 = 0.0;
    for node in [ctx.edge.src, ctx.edge.dst] {
        if let Some(sat) = state.satellite_index(node) {
            deficit = deficit.max(state.ledger().deficit_j(sat, t));
        }
    }
    deficit
}

/// Normalization length for the delay factor: roughly the longest +Grid
/// ISL plus slack, meters.
pub(crate) const DELAY_NORM_M: f64 = 5.0e6;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use sb_demand::{RateProfile, RequestId};
    use sb_energy::EnergyParams;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;
    use sb_topology::{NetworkNodes, NodeId, TopologyConfig, TopologySeries};

    /// A 12×12 shell with two ground users, `slots` one-minute slots.
    pub fn build_state(slots: usize) -> (NetworkState, NodeId, NodeId) {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
        // A 144-satellite shell needs a lower elevation mask than the
        // paper-scale 1584-satellite shell for continuous coverage.
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        let series = TopologySeries::build(&nodes, &cfg, slots, 60.0);
        (NetworkState::new(series, &EnergyParams::default()), a, b)
    }

    pub fn request(src: NodeId, dst: NodeId, rate: f64, start: u32, end: u32) -> Request {
        Request {
            id: RequestId(0),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(start),
            end: SlotIndex(end),
            valuation: 2.3e9,
        }
    }
}
