//! ERA — Energy Routing Penalty, Depth-of-Discharge [Macambira et al.].
//!
//! Like [`crate::Eru`] but softer: instead of pruning links whose satellite
//! batteries have discharged past the threshold, it switches those links to
//! a penalized weight profile — congestion factor 0.15, energy factor 0.7
//! in the paper — steering traffic away without forbidding it.

use crate::algorithm::{Decision, RejectReason, RoutingAlgorithm};
use crate::baselines::ecars::{factor_bits, factor_floor, EcarsFactors};
use crate::baselines::{
    edge_battery_deficit_j, edge_battery_utilization, route_and_commit, route_plan,
};
use crate::lifecycle::KnownFailures;
use crate::plan::ReservationPlan;
use crate::sptcache::{model_key, ModelSpec, SearchKind};
use crate::state::NetworkState;
use sb_demand::Request;

/// The ERA baseline: ECARS + threshold re-weighting.
#[derive(Debug, Clone, Copy)]
pub struct Era {
    base: EcarsFactors,
    hot: EcarsFactors,
    threshold_frac: f64,
    search: SearchKind,
}

impl Default for Era {
    fn default() -> Self {
        Era {
            base: EcarsFactors::default(),
            // Paper: beyond the threshold, congestion 0.15, energy 0.7.
            hot: EcarsFactors { congestion: 0.15, energy: 0.7, delay: 0.15 },
            threshold_frac: 0.01,
            search: SearchKind::default(),
        }
    }
}

impl Era {
    /// ERA with the paper's factor pairs and the default 1 % threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// ERA with a custom threshold fraction.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn with_threshold(threshold_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold_frac), "threshold must be a fraction");
        Era { threshold_frac, ..Self::default() }
    }

    /// Selects the search kernel (bitwise-identical results either way).
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = search;
        self
    }

    /// The factors applied below the threshold.
    pub fn base_factors(&self) -> &EcarsFactors {
        &self.base
    }

    /// The penalized factors applied beyond the threshold.
    pub fn hot_factors(&self) -> &EcarsFactors {
        &self.hot
    }

    /// Both factor profiles include the additive hop epsilon, so the floor
    /// is the smaller of the two profiles' floors.
    fn model(&self) -> ModelSpec {
        let mut bits = factor_bits(&self.base).to_vec();
        bits.extend_from_slice(&factor_bits(&self.hot));
        bits.push(self.threshold_frac.to_bits());
        ModelSpec {
            key: model_key(4, &bits),
            floor: factor_floor(&self.base).min(factor_floor(&self.hot)),
            volatile: true,
        }
    }
}

impl RoutingAlgorithm for Era {
    fn name(&self) -> &'static str {
        "ERA"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        let (base, hot) = (self.base, self.hot);
        let threshold_j = self.threshold_frac * state.energy_params().battery_capacity_j;
        route_and_commit(request, state, self.search, self.model(), |ctx, slot, st| {
            let lambda_e = st.utilization(slot, ctx.edge_id);
            let lambda_s = edge_battery_utilization(ctx, slot, st);
            let factors =
                if edge_battery_deficit_j(ctx, slot, st) > threshold_j { hot } else { base };
            Some(factors.edge_cost(lambda_e, lambda_s, ctx.edge.length_m))
        })
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        let (base, hot) = (self.base, self.hot);
        let threshold_j = self.threshold_frac * state.energy_params().battery_capacity_j;
        route_plan(request, state, known, self.search, self.model(), |ctx, slot, st| {
            let lambda_e = st.utilization(slot, ctx.edge_id);
            let lambda_s = edge_battery_utilization(ctx, slot, st);
            let factors =
                if edge_battery_deficit_j(ctx, slot, st) > threshold_j { hot } else { base };
            Some(factors.edge_cost(lambda_e, lambda_s, ctx.edge.length_m))
        })
        .map(|p| (p, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{build_state, request};

    #[test]
    fn accepts_on_fresh_network() {
        let (mut state, src, dst) = build_state(1);
        let mut era = Era::new();
        assert!(era.process(&request(src, dst, 1000.0, 0, 0), &mut state).is_accepted());
    }

    #[test]
    fn never_prunes_so_accepts_at_least_as_much_as_eru() {
        let run = |algo: &mut dyn crate::RoutingAlgorithm| {
            let (mut state, src, dst) = build_state(1);
            (0..10)
                .filter(|_| {
                    algo.process(&request(src, dst, 1500.0, 0, 0), &mut state).is_accepted()
                })
                .count()
        };
        let era_accepts = run(&mut Era::with_threshold(0.001));
        let eru_accepts = run(&mut crate::Eru::with_threshold(0.001));
        assert!(era_accepts >= eru_accepts, "ERA {era_accepts} < ERU {eru_accepts}");
    }

    #[test]
    fn hot_factors_penalize_energy_more() {
        let era = Era::new();
        assert!(era.hot_factors().energy > era.base_factors().energy);
        assert!(era.hot_factors().congestion < era.base_factors().congestion);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_threshold_panics() {
        let _ = Era::with_threshold(-0.1);
    }

    #[test]
    fn name() {
        assert_eq!(Era::new().name(), "ERA");
    }
}
