//! ERU — Energy Routing Pruning, Depth-of-Discharge [Macambira et al.].
//!
//! Extends ECARS with a hard battery-protection rule: when a satellite's
//! battery discharge exceeds a depth-of-discharge threshold in a time slot,
//! every link touching that satellite is *pruned* for that slot. The
//! paper's evaluation finds this over-conservative — "ERU's conservative
//! strategy pruned links even with slight network usage, making pathfinding
//! difficult and lowering the social welfare ratio".

use crate::algorithm::{Decision, RejectReason, RoutingAlgorithm};
use crate::baselines::ecars::{factor_bits, factor_floor, EcarsFactors};
use crate::baselines::{
    edge_battery_deficit_j, edge_battery_utilization, route_and_commit, route_plan,
};
use crate::lifecycle::KnownFailures;
use crate::plan::ReservationPlan;
use crate::sptcache::{model_key, ModelSpec, SearchKind};
use crate::state::NetworkState;
use sb_demand::Request;

/// The ERU baseline: ECARS + threshold pruning.
#[derive(Debug, Clone, Copy)]
pub struct Eru {
    factors: EcarsFactors,
    /// Links of satellites whose battery deficit exceeds this fraction of
    /// capacity are pruned for the slot.
    threshold_frac: f64,
    search: SearchKind,
}

impl Default for Eru {
    fn default() -> Self {
        Eru {
            factors: EcarsFactors::default(),
            threshold_frac: 0.01,
            search: SearchKind::default(),
        }
    }
}

impl Eru {
    /// ERU with the default 1 % depth-of-discharge pruning threshold (see
    /// the module docs of [`crate::baselines`] for the interpretation of
    /// the published threshold).
    pub fn new() -> Self {
        Self::default()
    }

    /// ERU with a custom threshold fraction.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn with_threshold(threshold_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold_frac), "threshold must be a fraction");
        Eru { threshold_frac, ..Self::default() }
    }

    /// Selects the search kernel (bitwise-identical results either way).
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = search;
        self
    }

    /// The pruning threshold fraction.
    pub fn threshold_frac(&self) -> f64 {
        self.threshold_frac
    }

    /// Pruning only removes edges, so the surviving edges keep the ECARS
    /// floor — the heuristic stays admissible.
    fn model(&self) -> ModelSpec {
        let mut bits = factor_bits(&self.factors).to_vec();
        bits.push(self.threshold_frac.to_bits());
        ModelSpec { key: model_key(3, &bits), floor: factor_floor(&self.factors), volatile: true }
    }
}

impl RoutingAlgorithm for Eru {
    fn name(&self) -> &'static str {
        "ERU"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        let factors = self.factors;
        let threshold_j = self.threshold_frac * state.energy_params().battery_capacity_j;
        route_and_commit(request, state, self.search, self.model(), |ctx, slot, st| {
            if edge_battery_deficit_j(ctx, slot, st) > threshold_j {
                return None; // prune
            }
            let lambda_e = st.utilization(slot, ctx.edge_id);
            let lambda_s = edge_battery_utilization(ctx, slot, st);
            Some(factors.edge_cost(lambda_e, lambda_s, ctx.edge.length_m))
        })
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        let factors = self.factors;
        let threshold_j = self.threshold_frac * state.energy_params().battery_capacity_j;
        route_plan(request, state, known, self.search, self.model(), |ctx, slot, st| {
            if edge_battery_deficit_j(ctx, slot, st) > threshold_j {
                return None; // prune
            }
            let lambda_e = st.utilization(slot, ctx.edge_id);
            let lambda_s = edge_battery_utilization(ctx, slot, st);
            Some(factors.edge_cost(lambda_e, lambda_s, ctx.edge.length_m))
        })
        .map(|p| (p, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::RejectReason;
    use crate::baselines::testutil::{build_state, request};

    #[test]
    fn accepts_on_fresh_network() {
        let (mut state, src, dst) = build_state(1);
        let mut eru = Eru::new();
        assert!(eru.process(&request(src, dst, 1000.0, 0, 0), &mut state).is_accepted());
    }

    #[test]
    fn zero_threshold_prunes_after_any_discharge() {
        let (mut state, src, dst) = build_state(1);
        let mut eru = Eru::with_threshold(0.0);
        // First request discharges gateway batteries (1 Gbps ≫ solar).
        assert!(eru.process(&request(src, dst, 1000.0, 0, 0), &mut state).is_accepted());
        // With a zero threshold, every satellite that discharged at all is
        // now pruned; the second request must route around or fail. Keep
        // sending until a rejection due to pruning shows up.
        let mut rejected = false;
        for _ in 0..12 {
            let d = eru.process(&request(src, dst, 1000.0, 0, 0), &mut state);
            if let crate::Decision::Rejected { reason } = d {
                assert_eq!(reason, RejectReason::NoFeasiblePath);
                rejected = true;
                break;
            }
        }
        assert!(rejected, "zero-threshold ERU should eventually prune all paths");
    }

    #[test]
    fn more_conservative_than_ecars() {
        // At an aggressive threshold, ERU accepts no more than ECARS.
        let run = |algo: &mut dyn crate::RoutingAlgorithm| {
            let (mut state, src, dst) = build_state(1);
            (0..10)
                .filter(|_| {
                    algo.process(&request(src, dst, 1500.0, 0, 0), &mut state).is_accepted()
                })
                .count()
        };
        let eru_accepts = run(&mut Eru::with_threshold(0.001));
        let ecars_accepts = run(&mut crate::Ecars::new());
        assert!(eru_accepts <= ecars_accepts, "ERU {eru_accepts} > ECARS {ecars_accepts}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_threshold_panics() {
        let _ = Eru::with_threshold(1.5);
    }

    #[test]
    fn accessors() {
        assert_eq!(Eru::new().name(), "ERU");
        assert_eq!(Eru::with_threshold(0.25).threshold_frac(), 0.25);
    }
}
