//! SSP — Single Shortest Path.
//!
//! The paper's simplest baseline: always route over the path with the
//! fewest hops (per slot), accepting any request for which such a path is
//! bandwidth- and battery-feasible. SSP is oblivious to congestion levels
//! and battery state, so it repeatedly loads the same short corridors — the
//! behaviour the evaluation shows as early congestion and battery drain.

use crate::algorithm::{Decision, RejectReason, RoutingAlgorithm};
use crate::baselines::{route_and_commit, route_plan};
use crate::lifecycle::KnownFailures;
use crate::plan::ReservationPlan;
use crate::sptcache::{model_key, ModelSpec, SearchKind};
use crate::state::NetworkState;
use sb_demand::Request;

/// The Single Shortest Path baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssp {
    search: SearchKind,
}

impl Ssp {
    /// Creates the baseline.
    pub fn new() -> Self {
        Ssp::default()
    }

    /// Selects the search kernel (bitwise-identical results either way).
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = search;
        self
    }

    /// Every hop costs exactly 1, so 1.0 is also the exact per-edge floor.
    /// Hop counts read no reservation state, so SSP's trees survive
    /// commits and the SPT cache applies (`volatile: false`).
    fn model(&self) -> ModelSpec {
        ModelSpec { key: model_key(1, &[]), floor: 1.0, volatile: false }
    }
}

impl RoutingAlgorithm for Ssp {
    fn name(&self) -> &'static str {
        "SSP"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        route_and_commit(request, state, self.search, self.model(), |_ctx, _slot, _state| Some(1.0))
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        route_plan(request, state, known, self.search, self.model(), |_ctx, _slot, _state| {
            Some(1.0)
        })
        .map(|p| (p, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{build_state, request};

    #[test]
    fn accepts_feasible_request() {
        let (mut state, src, dst) = build_state(2);
        let mut ssp = Ssp::new();
        let decision = ssp.process(&request(src, dst, 1000.0, 0, 1), &mut state);
        assert!(decision.is_accepted());
    }

    #[test]
    fn picks_minimum_hop_count() {
        let (mut state, src, dst) = build_state(1);
        let mut ssp = Ssp::new();
        let d = ssp.process(&request(src, dst, 100.0, 0, 0), &mut state);
        let Decision::Accepted { plan, .. } = d else { panic!("expected accept") };
        // Raleigh→Paris in a 96-sat shell: a handful of hops; and no other
        // path may be shorter — verify by re-searching with unit weights.
        let hops = plan.slot_paths[0].num_hops();
        assert!(hops >= 2, "at least up + down");
        assert!(hops <= 12, "suspiciously long min-hop path: {hops}");
    }

    #[test]
    fn greedy_acceptance_until_saturation() {
        let (mut state, src, dst) = build_state(1);
        let mut ssp = Ssp::new();
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..24 {
            if ssp.process(&request(src, dst, 2000.0, 0, 0), &mut state).is_accepted() {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        // USL fan-out bounds concurrent 2 Gbps flows; SSP has no admission
        // control so it accepts until the physics stops it.
        assert!(accepted >= 1 && rejected >= 1, "accepted {accepted} rejected {rejected}");
    }

    #[test]
    fn price_is_always_zero() {
        let (mut state, src, dst) = build_state(1);
        let mut ssp = Ssp::new();
        if let Decision::Accepted { price, .. } =
            ssp.process(&request(src, dst, 500.0, 0, 0), &mut state)
        {
            assert_eq!(price, 0.0);
        } else {
            panic!("expected accept");
        }
    }

    #[test]
    fn name() {
        assert_eq!(Ssp::new().name(), "SSP");
    }
}
