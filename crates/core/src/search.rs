//! Per-slot minimum-cost path search.
//!
//! Algorithm 1 line 5 needs, for each active slot, the cheapest path from
//! the request's source user to its destination user under the current
//! prices. The subtlety is that a satellite's energy price depends on its
//! *role* (Eq. 1) — ingress gateway, middle relay, egress gateway or
//! bent-pipe — which is determined by the link types immediately before and
//! after it on the path. We therefore run Dijkstra over **states**
//! `(node, incoming-link-type)`: when relaxing an edge `(a → b)` the link
//! type by which `a` was reached plus the edge's own type fully determine
//! `a`'s role, so the edge's weight can include `a`'s exact energy cost.
//!
//! Path-shape rules enforced by the search:
//!
//! * user nodes never appear in the middle of a path (edges *into* a user
//!   are only relaxed when that user is the destination, and only the
//!   source's out-edges are expanded among user nodes);
//! * the cost callback may prune any edge (return `None`) to express
//!   feasibility constraints (insufficient residual bandwidth, battery
//!   over-draw, link pruning à la ERU).

use sb_topology::graph::{Edge, EdgeId};
use sb_topology::{LinkType, NodeId, SlotIndex, TopologySnapshot};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything a cost model gets to see when an edge is relaxed.
#[derive(Debug)]
pub struct EdgeContext<'a> {
    /// The slot being routed.
    pub slot: SlotIndex,
    /// The edge's id in the slot's snapshot.
    pub edge_id: EdgeId,
    /// The edge itself.
    pub edge: &'a Edge,
    /// How the edge's source node was reached: `None` when the source node
    /// is the request's source user, otherwise the incoming link type.
    pub incoming: Option<LinkType>,
}

/// A found path with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundPath {
    /// Nodes from source user to destination user.
    pub nodes: Vec<NodeId>,
    /// Edges, one fewer than nodes.
    pub edges: Vec<EdgeId>,
    /// Sum of edge costs as returned by the cost model.
    pub cost: f64,
}

/// A lower bound on the remaining cost from a node to the search's
/// destination, used to goal-direct the search (A\*).
///
/// The search orders its heap on `(f, g)` where `f = g + estimate(node)`.
/// With [`ZeroHeuristic`] (`f == g` bit-for-bit) the search is plain
/// Dijkstra — the reference everything else is proven against. Any other
/// implementation must be *admissible in floating-point terms*: for every
/// node, `estimate(node)` must be `<=` the float-arithmetic cost of every
/// feasible path from that node to the destination. Tie-breaking is
/// canonical (see [`min_cost_path_with`]), so any admissible heuristic
/// returns a [`FoundPath`] bit-identical to the reference.
pub trait Heuristic {
    /// Lower bound on the remaining cost from `node` to the destination.
    fn estimate(&self, node: NodeId) -> f64;

    /// The heap key for a settled cost `g` at `node`.
    ///
    /// Default is `g + estimate(node)`; [`ZeroHeuristic`] overrides it to
    /// return `g` unchanged so the reference path never perturbs cost bits
    /// (not even `-0.0 + 0.0`).
    #[inline]
    fn fscore(&self, g: f64, node: NodeId) -> f64 {
        g + self.estimate(node)
    }
}

/// The trivial heuristic: `f == g`, i.e. plain Dijkstra.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroHeuristic;

impl Heuristic for ZeroHeuristic {
    #[inline]
    fn estimate(&self, _node: NodeId) -> f64 {
        0.0
    }

    #[inline]
    fn fscore(&self, g: f64, _node: NodeId) -> f64 {
        g
    }
}

/// Geometry-derived heuristic: a per-node lower bound on the remaining
/// *hop count* (straight-line distance to the destination divided by the
/// slot's maximum per-hop reach, rounded up with a relative slack so float
/// noise can never make it inadmissible) times `unit`, a lower bound on
/// the cost of any single hop under the active cost model.
#[derive(Debug, Clone, Copy)]
pub struct HopBoundHeuristic<'a> {
    /// `hops_lb[node.index()]` = lower bound on hops from node to dest.
    pub hops_lb: &'a [u32],
    /// Lower bound on any single edge's cost (already slack-scaled).
    pub unit: f64,
}

impl Heuristic for HopBoundHeuristic<'_> {
    #[inline]
    fn estimate(&self, node: NodeId) -> f64 {
        self.hops_lb[node.index()] as f64 * self.unit
    }
}

/// Per-search work counters, accumulated in [`SearchScratch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Heap entries popped.
    pub pops: u64,
    /// Popped entries discarded because a cheaper cost was already settled.
    pub stale_skips: u64,
    /// Cost-model evaluations that returned a cost (relaxation attempts).
    pub relaxations: u64,
    /// Heap entries abandoned unexpanded when the goal bound cut the
    /// search off — the work the heuristic avoided.
    pub heuristic_prunes: u64,
}

impl SearchStats {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &SearchStats) {
        self.pops += other.pops;
        self.stale_skips += other.stale_skips;
        self.relaxations += other.relaxations;
        self.heuristic_prunes += other.heuristic_prunes;
    }
}

/// Min-heap entry ordered on `(f asc, g desc)` via `total_cmp`.
///
/// With [`ZeroHeuristic`] `f == g` bitwise, so the `g` tiebreak compares
/// `Equal` and the ordering degenerates to the historical cost-only order.
#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    f: f64,
    g: f64,
    state: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on f: BinaryHeap is a max-heap, we want the smallest f
        // first; on equal f prefer the larger g (closer to the goal).
        other.f.total_cmp(&self.f).then_with(|| self.g.total_cmp(&other.g))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// State encoding: `2·node + (incoming == Usl ? 1 : 0)`.
#[inline]
fn state_of(node: NodeId, incoming: LinkType) -> usize {
    node.index() * 2 + usize::from(incoming == LinkType::Usl)
}

#[inline]
fn node_of_state(state: usize) -> NodeId {
    NodeId((state / 2) as u32)
}

#[inline]
fn incoming_of_state(state: usize) -> LinkType {
    if state % 2 == 1 {
        LinkType::Usl
    } else {
        LinkType::Isl
    }
}

/// Reusable Dijkstra working memory for [`min_cost_path_in`].
///
/// A fresh search needs a dist array, a predecessor array and a binary
/// heap sized to the snapshot's state space — three allocations plus an
/// O(states) reinitialization per call, which dominates the per-slot
/// admission path on large constellations. The scratch keeps all three
/// alive across calls and replaces the reinit with a generation stamp:
/// a `dist`/`pred` entry is only valid when its stamp matches the current
/// generation, so starting a new search is O(1) (bump the generation,
/// clear the heap in place).
///
/// Reusing one scratch is **bit-identical** to fresh allocation: the same
/// relaxations run in the same order against the same (logical) initial
/// state, which `tests::prop_scratch_reuse_is_bit_identical` checks.
/// The speculative slot-parallel quote (`crate::parquote`) pools one
/// scratch per worker on exactly this property — any worker's arena
/// reproduces a fresh search for whatever slot it pulls next.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    dist: Vec<f64>,
    /// Predecessor: (previous state or usize::MAX for the source, edge id).
    pred: Vec<(usize, EdgeId)>,
    /// Entry `i` of `dist`/`pred` is valid iff `stamp[i] == generation`.
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<HeapEntry>,
    /// Cumulative work counters since the last [`SearchScratch::take_stats`].
    stats: SearchStats,
}

impl SearchScratch {
    /// An empty scratch; arrays grow to fit the first snapshot searched.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Prepares for a search over `n_states` states: grows the arrays if
    /// needed and invalidates every entry by advancing the generation.
    fn begin(&mut self, n_states: usize) {
        if self.dist.len() < n_states {
            self.dist.resize(n_states, f64::INFINITY);
            self.pred.resize(n_states, (usize::MAX, EdgeId(0)));
            self.stamp.resize(n_states, 0);
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Wrapped after 2^32 searches: restamp everything once.
                self.stamp.fill(0);
                1
            }
        };
        self.heap.clear();
    }

    #[inline]
    fn dist(&self, state: usize) -> f64 {
        if self.stamp[state] == self.generation {
            self.dist[state]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, state: usize, cost: f64, pred: (usize, EdgeId)) {
        self.dist[state] = cost;
        self.pred[state] = pred;
        self.stamp[state] = self.generation;
    }

    /// Canonical relaxation: `Less` when `cost` strictly improves `state`
    /// (relax and push), `Equal` when the cost bits tie and the smaller
    /// predecessor key `(pred_state, edge_id)` should win (update the
    /// predecessor only, no push). The source marker `usize::MAX` sorts
    /// last under plain tuple order, so real predecessors beat it.
    ///
    /// Tie-breaking on the *key* rather than arrival order is what makes
    /// the final predecessor array independent of expansion order — the
    /// property that lets A\* and settled-tree reads reproduce the
    /// reference Dijkstra's [`FoundPath`] bit-for-bit.
    #[inline]
    fn offer(&mut self, state: usize, cost: f64, pred: (usize, EdgeId)) -> bool {
        if self.stamp[state] != self.generation {
            self.relax(state, cost, pred);
            return true;
        }
        match cost.total_cmp(&self.dist[state]) {
            Ordering::Less => {
                self.relax(state, cost, pred);
                true
            }
            Ordering::Equal => {
                if pred < self.pred[state] {
                    self.pred[state] = pred;
                }
                false
            }
            Ordering::Greater => false,
        }
    }

    /// Returns and resets the accumulated [`SearchStats`].
    pub fn take_stats(&mut self) -> SearchStats {
        std::mem::take(&mut self.stats)
    }

    /// The accumulated [`SearchStats`] without resetting them.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Copies the settled state out into a standalone [`SettledTree`];
    /// unsettled states get `INFINITY` / source-marker predecessors.
    fn export_tree(&self, n_states: usize, user_edges: Vec<(EdgeId, usize)>) -> SettledTree {
        let mut dist = vec![f64::INFINITY; n_states];
        let mut pred = vec![(usize::MAX, EdgeId(0)); n_states];
        for s in 0..n_states {
            if self.stamp[s] == self.generation {
                dist[s] = self.dist[s];
                pred[s] = self.pred[s];
            }
        }
        SettledTree { dist, pred, user_edges }
    }
}

/// Finds the minimum-cost path from `source` to `destination` in one
/// snapshot under an arbitrary edge-cost model.
///
/// Allocates fresh working memory per call; hot paths should hold a
/// [`SearchScratch`] and use [`min_cost_path_in`] instead — the results
/// are identical.
///
/// `cost_fn` is called once per relaxation attempt and returns the
/// non-negative cost of taking that edge, or `None` to prune it. Costs may
/// depend on the incoming link type (see [`EdgeContext`]); negative costs
/// are a logic error (checked in debug builds).
///
/// Returns `None` when the destination is unreachable under the model, or
/// when `source == destination`.
pub fn min_cost_path(
    snapshot: &TopologySnapshot,
    source: NodeId,
    destination: NodeId,
    cost_fn: impl FnMut(&EdgeContext<'_>) -> Option<f64>,
) -> Option<FoundPath> {
    min_cost_path_in(&mut SearchScratch::new(), snapshot, source, destination, cost_fn)
}

/// [`min_cost_path`] against caller-owned working memory.
///
/// `scratch` is reset (O(1)) at the start of every call, so one scratch
/// can serve any number of sequential searches over snapshots of any size.
/// This is the reference search: [`min_cost_path_with`] instantiated at
/// [`ZeroHeuristic`].
pub fn min_cost_path_in(
    scratch: &mut SearchScratch,
    snapshot: &TopologySnapshot,
    source: NodeId,
    destination: NodeId,
    cost_fn: impl FnMut(&EdgeContext<'_>) -> Option<f64>,
) -> Option<FoundPath> {
    min_cost_path_with(scratch, snapshot, source, destination, &ZeroHeuristic, cost_fn)
}

/// Relative slack on the goal bound: the search keeps expanding until the
/// heap minimum's `f` exceeds `best_cost * (1 + GOAL_BOUND_SLACK)`. The
/// slack makes the cutoff conservative against ulp-level heuristic
/// inconsistency, so every state that could supply an equal-cost canonical
/// predecessor is expanded under *any* admissible heuristic — expanding a
/// superset never changes the canonical argmin, only the work counters.
const GOAL_BOUND_SLACK: f64 = 1e-12;

/// [`min_cost_path_in`] goal-directed by an admissible [`Heuristic`].
///
/// Bit-for-bit identical to the [`ZeroHeuristic`] reference for any
/// admissible heuristic, because every cost-relevant choice is canonical
/// rather than expansion-order-dependent:
///
/// * relaxation replaces a predecessor on *bit-equal* cost iff the new
///   key `(pred_state, edge_id)` is smaller ([`SearchScratch::offer`]);
/// * the search does not stop at the first destination pop — it keeps
///   expanding until the heap minimum's `f` exceeds the best destination
///   cost (plus [`GOAL_BOUND_SLACK`]), so all equal-cost predecessors are
///   seen regardless of pop order;
/// * among the destination's two `(node, incoming)` states the winner is
///   the bitwise-cheapest, then the smaller state id.
pub fn min_cost_path_with<H: Heuristic>(
    scratch: &mut SearchScratch,
    snapshot: &TopologySnapshot,
    source: NodeId,
    destination: NodeId,
    heuristic: &H,
    mut cost_fn: impl FnMut(&EdgeContext<'_>) -> Option<f64>,
) -> Option<FoundPath> {
    if source == destination {
        return None;
    }
    let slot = snapshot.slot();
    let n_states = snapshot.num_nodes() * 2;
    scratch.begin(n_states);

    // Seed with the source's out-edges.
    for (edge_id, edge) in snapshot.out_edges(source) {
        if edge.dst != destination && snapshot.kind(edge.dst).is_user() {
            continue; // users are never intermediate
        }
        let ctx = EdgeContext { slot, edge_id, edge: &edge, incoming: None };
        if let Some(cost) = cost_fn(&ctx) {
            debug_assert!(cost >= 0.0, "negative edge cost {cost}");
            scratch.stats.relaxations += 1;
            let state = state_of(edge.dst, edge.link_type);
            if scratch.offer(state, cost, (usize::MAX, edge_id)) {
                let f =
                    if edge.dst == destination { cost } else { heuristic.fscore(cost, edge.dst) };
                scratch.heap.push(HeapEntry { f, g: cost, state });
            }
        }
    }

    // Best destination state popped so far: (cost, state), ordered by
    // (total_cmp on cost, then state id).
    let mut best_final: Option<(f64, usize)> = None;
    while let Some(HeapEntry { f, g, state }) = scratch.heap.pop() {
        if let Some((best_cost, _)) = best_final {
            if f > best_cost + best_cost * GOAL_BOUND_SLACK {
                // Heap pops in nondecreasing f: nothing left can improve
                // or retie any state on an optimal path.
                scratch.stats.heuristic_prunes += 1 + scratch.heap.len() as u64;
                break;
            }
        }
        scratch.stats.pops += 1;
        if g > scratch.dist(state) {
            scratch.stats.stale_skips += 1;
            continue; // stale entry
        }
        let node = node_of_state(state);
        if node == destination {
            let better = match best_final {
                None => true,
                Some((bc, bs)) => {
                    matches!(g.total_cmp(&bc), Ordering::Less)
                        || (g.to_bits() == bc.to_bits() && state < bs)
                }
            };
            if better {
                best_final = Some((g, state));
            }
            continue; // never expand the destination
        }
        if snapshot.kind(node).is_user() {
            continue; // never expand out of a user node (only the source is)
        }
        let g = scratch.dist(state);
        let incoming = incoming_of_state(state);
        for (edge_id, edge) in snapshot.out_edges(node) {
            if edge.dst == source {
                continue;
            }
            if edge.dst != destination && snapshot.kind(edge.dst).is_user() {
                continue;
            }
            let ctx = EdgeContext { slot, edge_id, edge: &edge, incoming: Some(incoming) };
            let Some(step) = cost_fn(&ctx) else { continue };
            debug_assert!(step >= 0.0, "negative edge cost {step}");
            scratch.stats.relaxations += 1;
            let next = state_of(edge.dst, edge.link_type);
            let next_cost = g + step;
            if scratch.offer(next, next_cost, (state, edge_id)) {
                let f = if edge.dst == destination {
                    next_cost
                } else {
                    heuristic.fscore(next_cost, edge.dst)
                };
                scratch.heap.push(HeapEntry { f, g: next_cost, state: next });
            }
        }
    }

    let (_, final_state) = best_final?;

    // Reconstruct.
    let mut edges = Vec::new();
    let mut nodes = vec![destination];
    let mut cur = final_state;
    loop {
        let (prev, edge_id) = scratch.pred[cur];
        edges.push(edge_id);
        if prev == usize::MAX {
            nodes.push(source);
            break;
        }
        nodes.push(node_of_state(prev));
        cur = prev;
    }
    nodes.reverse();
    edges.reverse();
    Some(FoundPath { nodes, edges, cost: scratch.dist(final_state) })
}

/// A fully settled shortest-path tree from one source in one snapshot,
/// exported from a [`settle_tree_in`] run.
///
/// `dist[s]` / `pred[s]` are the final Dijkstra arrays over states
/// (`INFINITY` / source marker when unreachable). `user_edges` lists every
/// edge into a user node the settle skipped, as `(edge_id, from_state)`
/// with `from_state == usize::MAX` for the source's own out-edges — the
/// candidates [`path_via_tree`] evaluates to answer a concrete
/// destination query without re-running the search.
#[derive(Debug, Clone)]
pub struct SettledTree {
    /// Final settled cost per state.
    pub dist: Vec<f64>,
    /// Final predecessor per state: (previous state or `usize::MAX`, edge).
    pub pred: Vec<(usize, EdgeId)>,
    /// Edges into user nodes: (edge id, settled origin state).
    pub user_edges: Vec<(EdgeId, usize)>,
}

/// Runs the reference search from `source` with **no destination** until
/// the heap is exhausted, settling every reachable satellite state, and
/// exports the tree. Edges into user nodes are recorded (not relaxed, and
/// their cost model is *not* consulted — destination queries evaluate them
/// fresh against the then-current state).
///
/// Because predecessor ties are broken canonically, reading this tree via
/// [`path_via_tree`] reproduces a direct [`min_cost_path_in`] call
/// bit-for-bit for every destination, as long as the cost model gives the
/// same answers it gave during the settle.
pub fn settle_tree_in(
    scratch: &mut SearchScratch,
    snapshot: &TopologySnapshot,
    source: NodeId,
    mut cost_fn: impl FnMut(&EdgeContext<'_>) -> Option<f64>,
) -> SettledTree {
    let slot = snapshot.slot();
    let n_states = snapshot.num_nodes() * 2;
    scratch.begin(n_states);
    let mut user_edges = Vec::new();

    for (edge_id, edge) in snapshot.out_edges(source) {
        if snapshot.kind(edge.dst).is_user() {
            user_edges.push((edge_id, usize::MAX));
            continue;
        }
        let ctx = EdgeContext { slot, edge_id, edge: &edge, incoming: None };
        if let Some(cost) = cost_fn(&ctx) {
            debug_assert!(cost >= 0.0, "negative edge cost {cost}");
            scratch.stats.relaxations += 1;
            let state = state_of(edge.dst, edge.link_type);
            if scratch.offer(state, cost, (usize::MAX, edge_id)) {
                scratch.heap.push(HeapEntry { f: cost, g: cost, state });
            }
        }
    }

    while let Some(HeapEntry { f: _, g, state }) = scratch.heap.pop() {
        scratch.stats.pops += 1;
        if g > scratch.dist(state) {
            scratch.stats.stale_skips += 1;
            continue;
        }
        let g = scratch.dist(state);
        let incoming = incoming_of_state(state);
        for (edge_id, edge) in snapshot.out_edges(node_of_state(state)) {
            if edge.dst == source {
                continue;
            }
            if snapshot.kind(edge.dst).is_user() {
                user_edges.push((edge_id, state));
                continue;
            }
            let ctx = EdgeContext { slot, edge_id, edge: &edge, incoming: Some(incoming) };
            let Some(step) = cost_fn(&ctx) else { continue };
            debug_assert!(step >= 0.0, "negative edge cost {step}");
            scratch.stats.relaxations += 1;
            let next = state_of(edge.dst, edge.link_type);
            let next_cost = g + step;
            if scratch.offer(next, next_cost, (state, edge_id)) {
                scratch.heap.push(HeapEntry { f: next_cost, g: next_cost, state: next });
            }
        }
    }

    scratch.export_tree(n_states, user_edges)
}

/// Answers one `(source, destination)` query from a [`SettledTree`]:
/// evaluates the destination's candidate in-edges (fresh, via `cost_fn`)
/// against the settled tree and picks the winner under exactly the
/// canonical rules of [`min_cost_path_with`]. Returns the bit-identical
/// [`FoundPath`] a direct search would have produced.
pub fn path_via_tree(
    tree: &SettledTree,
    snapshot: &TopologySnapshot,
    source: NodeId,
    destination: NodeId,
    mut cost_fn: impl FnMut(&EdgeContext<'_>) -> Option<f64>,
) -> Option<FoundPath> {
    if source == destination {
        return None;
    }
    let slot = snapshot.slot();
    // Best (cost, pred) per destination state, tie-broken like offer().
    let mut best: [Option<(f64, (usize, EdgeId))>; 2] = [None, None];
    for &(edge_id, from_state) in &tree.user_edges {
        let edge = snapshot.edge(edge_id);
        if edge.dst != destination {
            continue;
        }
        let (g0, incoming) = if from_state == usize::MAX {
            (0.0, None)
        } else {
            let d = tree.dist[from_state];
            if d.is_infinite() {
                continue;
            }
            (d, Some(incoming_of_state(from_state)))
        };
        let ctx = EdgeContext { slot, edge_id, edge: &edge, incoming };
        let Some(step) = cost_fn(&ctx) else { continue };
        debug_assert!(step >= 0.0, "negative edge cost {step}");
        let g = if from_state == usize::MAX { step } else { g0 + step };
        let pred = (from_state, edge_id);
        let slot_idx = usize::from(edge.link_type == LinkType::Usl);
        best[slot_idx] = Some(match best[slot_idx] {
            None => (g, pred),
            Some((bg, bp)) => match g.total_cmp(&bg) {
                Ordering::Less => (g, pred),
                Ordering::Equal => (bg, bp.min(pred)),
                Ordering::Greater => (bg, bp),
            },
        });
    }

    // Canonical destination-state selection: bitwise-cheapest cost, then
    // the smaller state id (Isl state = 2·node < Usl state = 2·node+1).
    let mut winner: Option<(f64, usize, (usize, EdgeId))> = None;
    for (i, entry) in best.iter().enumerate() {
        let Some((g, pred)) = *entry else { continue };
        let state = destination.index() * 2 + i;
        winner = Some(match winner {
            None => (g, state, pred),
            Some((bg, bs, bp)) => match g.total_cmp(&bg) {
                Ordering::Less => (g, state, pred),
                _ => (bg, bs, bp),
            },
        });
    }
    let (cost, _state, pred) = winner?;

    let mut edges = Vec::new();
    let mut nodes = vec![destination];
    let (mut cur, first_edge) = pred;
    edges.push(first_edge);
    while cur != usize::MAX {
        nodes.push(node_of_state(cur));
        let (prev, edge_id) = tree.pred[cur];
        if prev == usize::MAX {
            cur = usize::MAX;
            edges.push(edge_id);
        } else {
            edges.push(edge_id);
            cur = prev;
        }
    }
    nodes.push(source);
    nodes.reverse();
    edges.reverse();
    Some(FoundPath { nodes, edges, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_geo::coords::Eci;
    use sb_geo::Vec3;
    use sb_topology::graph::NodeKind;

    /// Builds a diamond:
    ///
    /// ```text
    ///        sat1 --- sat2
    ///       /              \
    /// user0                 user5
    ///       \              /
    ///        sat3 --- sat4
    /// ```
    fn diamond() -> TopologySnapshot {
        let kinds = vec![
            NodeKind::GroundUser(0),
            NodeKind::Satellite(0),
            NodeKind::Satellite(1),
            NodeKind::Satellite(2),
            NodeKind::Satellite(3),
            NodeKind::GroundUser(1),
        ];
        let pos = vec![Eci(Vec3::ZERO); 6];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 4000.0,
            length_m: 1.0,
        };
        let mut edges = Vec::new();
        for (s, d, lt) in [
            (0, 1, LinkType::Usl),
            (0, 3, LinkType::Usl),
            (1, 2, LinkType::Isl),
            (3, 4, LinkType::Isl),
            (2, 5, LinkType::Usl),
            (4, 5, LinkType::Usl),
        ] {
            edges.push(mk(s, d, lt));
            edges.push(mk(d, s, lt));
        }
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; 6], edges)
    }

    #[test]
    fn unit_costs_find_a_shortest_path() {
        let g = diamond();
        let p = min_cost_path(&g, NodeId(0), NodeId(5), |_| Some(1.0)).unwrap();
        assert_eq!(p.cost, 3.0);
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.nodes[0], NodeId(0));
        assert_eq!(p.nodes[3], NodeId(5));
    }

    #[test]
    fn weighted_costs_choose_the_cheap_branch() {
        let g = diamond();
        // Make the top branch expensive via its middle ISL.
        let p = min_cost_path(&g, NodeId(0), NodeId(5), |ctx| {
            if ctx.edge.src == NodeId(1) && ctx.edge.dst == NodeId(2) {
                Some(100.0)
            } else {
                Some(1.0)
            }
        })
        .unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn pruning_forces_the_other_branch() {
        let g = diamond();
        let p = min_cost_path(&g, NodeId(0), NodeId(5), |ctx| {
            (ctx.edge.src != NodeId(3)).then_some(1.0)
        })
        .unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5)]);
    }

    #[test]
    fn fully_pruned_graph_has_no_path() {
        let g = diamond();
        assert!(min_cost_path(&g, NodeId(0), NodeId(5), |_| None).is_none());
    }

    #[test]
    fn same_source_destination_is_none() {
        let g = diamond();
        assert!(min_cost_path(&g, NodeId(0), NodeId(0), |_| Some(1.0)).is_none());
    }

    #[test]
    fn incoming_link_type_is_reported_correctly() {
        let g = diamond();
        let mut seen_first_hop = false;
        let mut seen_usl_incoming = false;
        let mut seen_isl_incoming = false;
        let _ = min_cost_path(&g, NodeId(0), NodeId(5), |ctx| {
            match ctx.incoming {
                None => seen_first_hop = true,
                Some(LinkType::Usl) => seen_usl_incoming = true,
                Some(LinkType::Isl) => seen_isl_incoming = true,
            }
            Some(1.0)
        });
        assert!(seen_first_hop);
        assert!(seen_usl_incoming, "satellites reached via USL relax onward");
        assert!(seen_isl_incoming, "satellites reached via ISL relax onward");
    }

    #[test]
    fn users_are_never_intermediate() {
        // Add a tempting shortcut through a third user.
        let kinds = vec![
            NodeKind::GroundUser(0),
            NodeKind::Satellite(0),
            NodeKind::GroundUser(2), // decoy user
            NodeKind::Satellite(1),
            NodeKind::GroundUser(1),
        ];
        let pos = vec![Eci(Vec3::ZERO); 5];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 4000.0,
            length_m: 1.0,
        };
        let mut edges = Vec::new();
        for (s, d, lt) in [
            (0, 1, LinkType::Usl),
            (1, 2, LinkType::Usl), // sat0 → decoy
            (2, 3, LinkType::Usl), // decoy → sat1
            (3, 4, LinkType::Usl),
            (1, 3, LinkType::Isl), // legit ISL, "longer" cost-wise below
        ] {
            edges.push(mk(s, d, lt));
            edges.push(mk(d, s, lt));
        }
        let g = TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; 5], edges);
        let p = min_cost_path(&g, NodeId(0), NodeId(4), |ctx| {
            // Make the user shortcut cheap and the ISL expensive: the
            // search must still refuse to route through the decoy user.
            if ctx.edge.link_type == LinkType::Isl {
                Some(10.0)
            } else {
                Some(0.1)
            }
        })
        .unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn cost_depends_on_incoming_type() {
        // The same satellite can be priced differently per role: make USL
        // arrivals expensive to forward, ISL arrivals cheap. Diamond's
        // first sat after the source always has USL incoming; verify that
        // cost lands in the total.
        let g = diamond();
        let p = min_cost_path(&g, NodeId(0), NodeId(5), |ctx| {
            Some(match ctx.incoming {
                None => 0.0,
                Some(LinkType::Usl) => 5.0, // forwarding out of a gateway
                Some(LinkType::Isl) => 1.0,
            })
        })
        .unwrap();
        // Hops: user0→sat (0.0), sat→sat (5.0), sat→user5 (1.0).
        assert_eq!(p.cost, 6.0);
    }

    #[test]
    fn disconnected_destination() {
        let kinds = vec![NodeKind::GroundUser(0), NodeKind::Satellite(0), NodeKind::GroundUser(1)];
        let pos = vec![Eci(Vec3::ZERO); 3];
        let edges = vec![Edge {
            src: NodeId(0),
            dst: NodeId(1),
            link_type: LinkType::Usl,
            capacity_mbps: 1.0,
            length_m: 1.0,
        }];
        let g = TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; 3], edges);
        assert!(min_cost_path(&g, NodeId(0), NodeId(2), |_| Some(1.0)).is_none());
    }

    #[test]
    fn brute_force_agreement_on_diamond() {
        // Enumerate all simple paths of the diamond and compare with the
        // search under a nontrivial cost model.
        let g = diamond();
        let cost_model = |src: u32, dst: u32| -> f64 {
            // Deterministic pseudo-random positive weights.
            ((src * 7 + dst * 13) % 11) as f64 + 0.5
        };
        let paths: Vec<Vec<u32>> = vec![vec![0, 1, 2, 5], vec![0, 3, 4, 5]];
        let brute = paths
            .iter()
            .map(|p| p.windows(2).map(|w| cost_model(w[0], w[1])).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        let found = min_cost_path(&g, NodeId(0), NodeId(5), |ctx| {
            Some(cost_model(ctx.edge.src.0, ctx.edge.dst.0))
        })
        .unwrap();
        assert!((found.cost - brute).abs() < 1e-12, "found {} brute {brute}", found.cost);
    }

    /// Exhaustive DFS over simple paths (user endpoints, satellites
    /// in the middle) for cross-checking Dijkstra on small graphs.
    fn brute_force_min_cost(
        snapshot: &TopologySnapshot,
        source: NodeId,
        destination: NodeId,
        cost: &impl Fn(u32, u32) -> f64,
    ) -> Option<f64> {
        fn dfs(
            snapshot: &TopologySnapshot,
            here: NodeId,
            destination: NodeId,
            visited: &mut Vec<bool>,
            acc: f64,
            best: &mut Option<f64>,
            cost: &impl Fn(u32, u32) -> f64,
        ) {
            if here == destination {
                *best = Some(best.map_or(acc, |b: f64| b.min(acc)));
                return;
            }
            for (_, e) in snapshot.out_edges(here) {
                let next = e.dst;
                if visited[next.index()] {
                    continue;
                }
                if next != destination && snapshot.kind(next).is_user() {
                    continue;
                }
                visited[next.index()] = true;
                dfs(snapshot, next, destination, visited, acc + cost(here.0, next.0), best, cost);
                visited[next.index()] = false;
            }
        }
        let mut visited = vec![false; snapshot.num_nodes()];
        visited[source.index()] = true;
        let mut best = None;
        dfs(snapshot, source, destination, &mut visited, 0.0, &mut best, cost);
        best
    }

    /// Builds a random snapshot: node 0 = source user, node n−1 =
    /// destination user, everything between a satellite; edges from a seed.
    fn random_snapshot(n: usize, seed: u64) -> TopologySnapshot {
        let mut kinds = vec![NodeKind::GroundUser(0)];
        for i in 1..n - 1 {
            kinds.push(NodeKind::Satellite(i - 1));
        }
        kinds.push(NodeKind::GroundUser(1));
        let pos = vec![Eci(Vec3::ZERO); n];
        let mut edges = Vec::new();
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a == b {
                    continue;
                }
                // ~45% edge density.
                if next() % 100 < 45 {
                    let user_endpoint = a == 0 || b == 0 || a == n as u32 - 1 || b == n as u32 - 1;
                    edges.push(Edge {
                        src: NodeId(a),
                        dst: NodeId(b),
                        link_type: if user_endpoint { LinkType::Usl } else { LinkType::Isl },
                        capacity_mbps: 4000.0,
                        length_m: 1.0,
                    });
                }
            }
        }
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; n], edges)
    }

    /// Runs `queries` sequential searches over varying random snapshots
    /// through one reused scratch and asserts every [`FoundPath`] is
    /// bit-identical (nodes, edges, exact cost bits) to a fresh-allocation
    /// call.
    fn assert_scratch_matches_fresh(base_seed: u64, queries: u64) {
        let mut scratch = SearchScratch::new();
        for q in 0..queries {
            let seed = base_seed.wrapping_add(q);
            // Vary the node count so the scratch also regrows mid-stream.
            let n = 4 + (seed % 5) as usize;
            let snapshot = random_snapshot(n, seed);
            let w = 1 + (seed % 29) as u32;
            let cost = |a: u32, b: u32| ((a * w + b * 17) % 23) as f64 + 0.25;
            let fresh = min_cost_path(&snapshot, NodeId(0), NodeId(n as u32 - 1), |ctx| {
                Some(cost(ctx.edge.src.0, ctx.edge.dst.0))
            });
            let reused =
                min_cost_path_in(&mut scratch, &snapshot, NodeId(0), NodeId(n as u32 - 1), |ctx| {
                    Some(cost(ctx.edge.src.0, ctx.edge.dst.0))
                });
            match (&fresh, &reused) {
                (None, None) => {}
                (Some(f), Some(r)) => {
                    assert_eq!(f.nodes, r.nodes, "query {q}");
                    assert_eq!(f.edges, r.edges, "query {q}");
                    assert_eq!(f.cost.to_bits(), r.cost.to_bits(), "query {q}");
                }
                _ => panic!("query {q}: reachability disagrees: {fresh:?} vs {reused:?}"),
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_over_many_queries() {
        assert_scratch_matches_fresh(0xC0FFEE, 200);
    }

    #[test]
    fn scratch_survives_generation_wraparound() {
        let mut scratch = SearchScratch::new();
        scratch.generation = u32::MAX - 1;
        let g = diamond();
        for _ in 0..4 {
            // Crosses the u32 wrap; results must stay correct throughout.
            let p = min_cost_path_in(&mut scratch, &g, NodeId(0), NodeId(5), |_| Some(1.0))
                .expect("diamond is connected");
            assert_eq!(p.cost, 3.0);
        }
    }

    /// Like [`random_snapshot`] but with real positions (so the hop-bound
    /// heuristic is non-trivial) and three user nodes: 0 and the last two.
    fn random_geo_snapshot(n: usize, seed: u64) -> TopologySnapshot {
        assert!(n >= 6);
        let mut kinds = vec![NodeKind::GroundUser(0)];
        for i in 1..n - 2 {
            kinds.push(NodeKind::Satellite(i - 1));
        }
        kinds.push(NodeKind::GroundUser(1));
        kinds.push(NodeKind::GroundUser(2));
        let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        let pos: Vec<Eci> = (0..n)
            .map(|_| {
                let x = (next() % 2_000_000) as f64 - 1_000_000.0;
                let y = (next() % 2_000_000) as f64 - 1_000_000.0;
                let z = (next() % 2_000_000) as f64 - 1_000_000.0;
                Eci(Vec3 { x, y, z })
            })
            .collect();
        let is_user = |i: usize| i == 0 || i >= n - 2;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                if next() % 100 < 45 {
                    edges.push(Edge {
                        src: NodeId(a as u32),
                        dst: NodeId(b as u32),
                        link_type: if is_user(a) || is_user(b) {
                            LinkType::Usl
                        } else {
                            LinkType::Isl
                        },
                        capacity_mbps: 4000.0,
                        length_m: pos[a].distance(pos[b]),
                    });
                }
            }
        }
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; n], edges)
    }

    /// Conservative per-node hop lower bounds toward `dest` from raw
    /// geometry: `ceil(chord·(1−1e-9) / L_max)` with `L_max` the longest
    /// edge reach in the snapshot.
    fn hop_bounds_to(snapshot: &TopologySnapshot, dest: NodeId) -> Vec<u32> {
        let mut l_max = 0.0f64;
        for (_, e) in (0..snapshot.num_nodes()).flat_map(|i| snapshot.out_edges(NodeId(i as u32))) {
            l_max = l_max.max(snapshot.position(e.src).distance(snapshot.position(e.dst)));
        }
        let dp = snapshot.position(dest);
        (0..snapshot.num_nodes())
            .map(|i| {
                let chord = snapshot.position(NodeId(i as u32)).distance(dp);
                if l_max <= 0.0 || chord <= 0.0 {
                    0
                } else {
                    (chord * (1.0 - 1e-9) / l_max).ceil() as u32
                }
            })
            .collect()
    }

    fn assert_same(tag: &str, a: &Option<FoundPath>, b: &Option<FoundPath>) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.nodes, y.nodes, "{tag}: nodes");
                assert_eq!(x.edges, y.edges, "{tag}: edges");
                assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{tag}: cost bits");
            }
            _ => panic!("{tag}: reachability disagrees: {a:?} vs {b:?}"),
        }
    }

    /// Reference Dijkstra, goal-directed A\* and a settled-tree read must
    /// all return bit-identical [`FoundPath`]s, for every destination
    /// served by one tree, under a pruning cost model with a known floor.
    fn assert_astar_and_tree_match_reference(seed: u64) {
        let n = 8 + (seed % 5) as usize;
        let snapshot = random_geo_snapshot(n, seed);
        let w = 1 + (seed % 13) as u32;
        // Per-edge cost >= 1.0, with ~10% of edges pruned.
        let cost = move |a: u32, b: u32| -> Option<f64> {
            if (a * 7 + b * 11 + w).is_multiple_of(10) {
                None
            } else {
                Some(((a * w + b * 17) % 23) as f64 + 1.0)
            }
        };
        let source = NodeId(0);
        let mut scratch = SearchScratch::new();
        let tree = settle_tree_in(&mut scratch, &snapshot, source, |ctx| {
            cost(ctx.edge.src.0, ctx.edge.dst.0)
        });
        for dest_i in [n - 2, n - 1] {
            let dest = NodeId(dest_i as u32);
            let reference = min_cost_path_in(&mut scratch, &snapshot, source, dest, |ctx| {
                cost(ctx.edge.src.0, ctx.edge.dst.0)
            });
            let hops = hop_bounds_to(&snapshot, dest);
            let heuristic = HopBoundHeuristic { hops_lb: &hops, unit: 1.0 * (1.0 - 1e-9) };
            let astar =
                min_cost_path_with(&mut scratch, &snapshot, source, dest, &heuristic, |ctx| {
                    cost(ctx.edge.src.0, ctx.edge.dst.0)
                });
            let via_tree = path_via_tree(&tree, &snapshot, source, dest, |ctx| {
                cost(ctx.edge.src.0, ctx.edge.dst.0)
            });
            assert_same(&format!("seed {seed} dest {dest_i} astar"), &reference, &astar);
            assert_same(&format!("seed {seed} dest {dest_i} tree"), &reference, &via_tree);
        }
    }

    #[test]
    fn astar_and_tree_reads_are_bit_identical_to_reference() {
        for seed in 0..300 {
            assert_astar_and_tree_match_reference(seed);
        }
    }

    #[test]
    fn astar_prunes_work_on_goal_directed_instances() {
        // On at least some random instances the heuristic must abandon
        // part of the frontier (otherwise it is doing nothing).
        let mut pruned = 0u64;
        for seed in 0..50 {
            let n = 10;
            let snapshot = random_geo_snapshot(n, seed);
            let dest = NodeId(n as u32 - 1);
            let hops = hop_bounds_to(&snapshot, dest);
            let heuristic = HopBoundHeuristic { hops_lb: &hops, unit: 1.0 * (1.0 - 1e-9) };
            let mut scratch = SearchScratch::new();
            let _ =
                min_cost_path_with(&mut scratch, &snapshot, NodeId(0), dest, &heuristic, |ctx| {
                    Some(((ctx.edge.src.0 * 3 + ctx.edge.dst.0 * 17) % 23) as f64 + 1.0)
                });
            pruned += scratch.take_stats().heuristic_prunes;
        }
        assert!(pruned > 0, "A* never cut the frontier across 50 instances");
    }

    #[test]
    fn search_stats_count_work() {
        let g = diamond();
        let mut scratch = SearchScratch::new();
        let _ = min_cost_path_in(&mut scratch, &g, NodeId(0), NodeId(5), |_| Some(1.0));
        let stats = scratch.take_stats();
        assert!(stats.pops > 0);
        assert!(stats.relaxations > 0);
        // take_stats resets.
        assert_eq!(scratch.take_stats(), SearchStats::default());
    }

    proptest! {
        /// Reference Dijkstra vs A* vs settled-tree reads: bit-identical
        /// paths over random geometric snapshots and pruning cost models.
        #[test]
        fn prop_astar_and_tree_match_reference(seed in 0u64..2000) {
            assert_astar_and_tree_match_reference(seed);
        }

        /// A reused [`SearchScratch`] must return exactly the same
        /// [`FoundPath`] (nodes, edges, cost bits) as a fresh-allocation
        /// call, across many sequential queries over random snapshots and
        /// cost models.
        #[test]
        fn prop_scratch_reuse_is_bit_identical(base_seed in 0u64..500, queries in 1u64..40) {
            assert_scratch_matches_fresh(base_seed, queries);
        }

        /// Dijkstra over (node, link-type) states must agree with an
        /// exhaustive enumeration of simple paths whenever edge costs do
        /// not depend on the incoming link type (then the state expansion
        /// is cost-neutral and walks are never cheaper than simple paths).
        #[test]
        fn prop_search_matches_brute_force(seed in 0u64..300, n in 4usize..8) {
            let snapshot = random_snapshot(n, seed);
            let cost = |a: u32, b: u32| ((a * 31 + b * 17) % 23) as f64 + 1.0;
            let brute =
                brute_force_min_cost(&snapshot, NodeId(0), NodeId(n as u32 - 1), &cost);
            let found = min_cost_path(&snapshot, NodeId(0), NodeId(n as u32 - 1), |ctx| {
                Some(cost(ctx.edge.src.0, ctx.edge.dst.0))
            });
            match (brute, found) {
                (None, None) => {}
                (Some(b), Some(f)) => prop_assert!(
                    (b - f.cost).abs() < 1e-9,
                    "brute {b} vs dijkstra {}", f.cost
                ),
                (b, f) => prop_assert!(false, "reachability disagrees: {b:?} vs {:?}", f.map(|p| p.cost)),
            }
        }

        /// The returned edge list must be a connected path from source to
        /// destination whose cost sums to the reported total.
        #[test]
        fn prop_returned_path_is_consistent(seed in 0u64..300, n in 4usize..8) {
            let snapshot = random_snapshot(n, seed);
            let cost = |a: u32, b: u32| ((a * 13 + b * 7) % 19) as f64 + 0.5;
            if let Some(p) = min_cost_path(&snapshot, NodeId(0), NodeId(n as u32 - 1), |ctx| {
                Some(cost(ctx.edge.src.0, ctx.edge.dst.0))
            }) {
                prop_assert_eq!(p.nodes.len(), p.edges.len() + 1);
                prop_assert_eq!(*p.nodes.first().unwrap(), NodeId(0));
                prop_assert_eq!(*p.nodes.last().unwrap(), NodeId(n as u32 - 1));
                let mut total = 0.0;
                for (k, &eid) in p.edges.iter().enumerate() {
                    let e = snapshot.edge(eid);
                    prop_assert_eq!(e.src, p.nodes[k]);
                    prop_assert_eq!(e.dst, p.nodes[k + 1]);
                    total += cost(e.src.0, e.dst.0);
                }
                prop_assert!((total - p.cost).abs() < 1e-9);
            }
        }
    }
}
