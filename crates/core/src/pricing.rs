//! The exponential price functions of §IV-B (Eqs. 8–12).
//!
//! Both resources are priced exponentially in their utilization, following
//! the multiplicative-weights-update tradition:
//!
//! * **congestion cost** of link `e`: `σ_e(T) = c_e(T)·(μ₁^{λ_e(T)} − 1)`,
//!   charged per reserved Mbps as `σ_e/c_e · δ = δ·(μ₁^{λ_e} − 1)`;
//! * **energy cost** of satellite `s`: `σ_s(T) = ϖ_s·(μ₂^{λ_s(T)} − 1)`,
//!   charged per joule-slot of persisting deficit as
//!   `σ_s/ϖ_s · Ω̄ = Ω̄·(μ₂^{λ_s} − 1)`.
//!
//! The *unit* prices (the `μ^λ − 1` factors) are what the search layer
//! actually needs, so they are the primitive here.

/// The unit price factor `μ^λ − 1` for a resource at utilization `λ`.
///
/// Zero at zero utilization (fresh resources are free — any path is as good
/// as another on an empty network) and `μ − 1` at full utilization.
///
/// # Example
///
/// ```
/// use sb_cear::pricing::unit_price;
/// assert_eq!(unit_price(402.0, 0.0), 0.0);
/// assert_eq!(unit_price(402.0, 1.0), 401.0);
/// assert!(unit_price(402.0, 0.5) > 0.0);
/// ```
#[inline]
pub fn unit_price(mu: f64, utilization: f64) -> f64 {
    debug_assert!(mu > 1.0, "price base must exceed 1");
    debug_assert!(
        (-1e-9..=1.0 + 1e-9).contains(&utilization),
        "utilization out of [0,1]: {utilization}"
    );
    mu.powf(utilization) - 1.0
}

/// The absolute congestion cost `σ_e(T) = c_e·(μ₁^{λ_e} − 1)` (Eq. 10).
#[inline]
pub fn congestion_cost(capacity_mbps: f64, mu1: f64, utilization: f64) -> f64 {
    capacity_mbps * unit_price(mu1, utilization)
}

/// The absolute energy cost `σ_s(T) = ϖ_s·(μ₂^{λ_s} − 1)` (Eq. 11).
#[inline]
pub fn energy_cost(battery_capacity_j: f64, mu2: f64, utilization: f64) -> f64 {
    battery_capacity_j * unit_price(mu2, utilization)
}

/// The bandwidth component of Eq. (12) for one link and slot:
/// `σ_e/c_e · δ`.
#[inline]
pub fn bandwidth_price(mu1: f64, utilization: f64, rate_mbps: f64) -> f64 {
    rate_mbps * unit_price(mu1, utilization)
}

/// The energy component of Eq. (12) for one satellite consumption: the
/// deficit trace priced slot-by-slot at each slot's battery utilization,
/// `Σ_T (μ₂^{λ_s(T)} − 1) · Ω̄_s(T_a, T)`.
#[inline]
pub fn deficit_price(
    mu2: f64,
    trace: &sb_energy::DeficitTrace,
    utilization_at: impl Fn(usize) -> f64,
) -> f64 {
    deficit_price_with(trace, |t| unit_price(mu2, utilization_at(t)))
}

/// [`deficit_price`] with the unit price supplied directly per slot —
/// the entry point for cached prices (see [`crate::PriceCache`]). Both
/// functions share this summation, so a cached price that reproduces the
/// per-slot unit prices bit-exactly reproduces the total bit-exactly.
#[inline]
pub fn deficit_price_with(
    trace: &sb_energy::DeficitTrace,
    mut unit_price_at: impl FnMut(usize) -> f64,
) -> f64 {
    trace.per_slot.iter().map(|&(t, d)| unit_price_at(t) * d).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_energy::DeficitTrace;

    #[test]
    fn unit_price_extremes() {
        assert_eq!(unit_price(402.0, 0.0), 0.0);
        assert_eq!(unit_price(402.0, 1.0), 401.0);
    }

    #[test]
    fn absolute_costs_scale_with_capacity() {
        assert_eq!(congestion_cost(20_000.0, 402.0, 1.0), 20_000.0 * 401.0);
        assert_eq!(energy_cost(117_000.0, 402.0, 0.0), 0.0);
    }

    #[test]
    fn bandwidth_price_matches_eq12() {
        // σ_e/c_e·δ = δ(μ^λ−1): independent of capacity.
        let lam = 0.3;
        assert!(
            (bandwidth_price(402.0, lam, 1250.0) - 1250.0 * (402f64.powf(0.3) - 1.0)).abs() < 1e-9
        );
    }

    #[test]
    fn deficit_price_sums_slots() {
        let trace = DeficitTrace { per_slot: vec![(3, 100.0), (4, 50.0)], added_deficit_j: 150.0 };
        // Utilization 0 at slot 3 (free), 1.0 at slot 4.
        let price = deficit_price(402.0, &trace, |t| if t == 3 { 0.0 } else { 1.0 });
        assert!((price - 50.0 * 401.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_free() {
        let trace = DeficitTrace::default();
        assert_eq!(deficit_price(402.0, &trace, |_| 1.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_unit_price_monotone(mu in 1.5..1000.0f64, a in 0.0..1.0f64, b in 0.0..1.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(unit_price(mu, lo) <= unit_price(mu, hi) + 1e-12);
        }

        #[test]
        fn prop_unit_price_convex(mu in 1.5..1000.0f64, lam in 0.0..0.5f64) {
            // Convexity: midpoint value below the chord.
            let mid = unit_price(mu, lam + 0.25);
            let chord = 0.5 * (unit_price(mu, lam) + unit_price(mu, lam + 0.5));
            prop_assert!(mid <= chord + 1e-9);
        }

        #[test]
        fn prop_higher_mu_higher_price(lam in 0.01..1.0f64, mu in 2.0..500.0f64, extra in 0.1..500.0f64) {
            prop_assert!(unit_price(mu + extra, lam) >= unit_price(mu, lam));
        }
    }
}
