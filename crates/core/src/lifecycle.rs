//! Reservation lifecycle under unforeseen failures: release and repair.
//!
//! The paper's model admits a plan once and assumes it runs to completion.
//! Real constellations break admitted plans mid-flight — an ISL fails, a
//! satellite safes itself — and the operator must then *do something* with
//! the broken reservation. This module provides the primitives:
//!
//! * [`KnownFailures`] — the set of `(slot, edge)` outages the operator
//!   has observed, so a repair search does not route straight back onto a
//!   dead link;
//! * [`RepairPolicy`] — what the operator does with a broken plan:
//!   [`RepairPolicy::Drop`] it (refund, SLA violation),
//!   [`RepairPolicy::Repair`] the unserved suffix at no extra charge, or
//!   [`RepairPolicy::RepairPaid`] only if the incremental price still fits
//!   the request's valuation;
//! * [`try_repair`] — re-run any [`RoutingAlgorithm`]'s priced search for
//!   the suffix and commit it; [`repair`] — release a broken plan's
//!   remaining resources first, then attempt the re-route.
//!
//! The primitives are engine-agnostic: `sb-sim`'s event-driven engine
//! drives them at slot boundaries, but they work just as well for a
//! one-off operator console action.

use crate::algorithm::{RejectReason, RoutingAlgorithm};
use crate::plan::SlotPath;
use crate::state::{BookingId, NetworkState};
use sb_demand::Request;
use sb_topology::graph::EdgeId;
use sb_topology::SlotIndex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// What the operator does with a reservation broken by an unforeseen
/// failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// Tear the booking down: refund the unserved fraction and count an
    /// SLA violation. The paper's implicit policy, made explicit.
    Drop,
    /// Re-route the unserved suffix if any feasible plan exists at current
    /// prices, at no extra charge to the user.
    Repair,
    /// Re-route only if the incremental price of the suffix still fits
    /// under the request's valuation; charge it. Otherwise drop.
    RepairPaid,
}

impl RepairPolicy {
    /// All policies, for sweep benches.
    pub fn all() -> [RepairPolicy; 3] {
        [RepairPolicy::Drop, RepairPolicy::Repair, RepairPolicy::RepairPaid]
    }

    /// A short stable name for CSV labels.
    pub fn name(&self) -> &'static str {
        match self {
            RepairPolicy::Drop => "drop",
            RepairPolicy::Repair => "repair",
            RepairPolicy::RepairPaid => "repair-paid",
        }
    }
}

/// The failures the operator has observed so far: `(slot, edge)` pairs
/// known to be down. A repair search prunes these so it cannot route back
/// onto a link that just failed.
///
/// Edge ids refer to the *unfailed* topology snapshots — under unforeseen
/// failures the engine routes on the clean series and discovers outages at
/// slot boundaries, which is exactly what makes them unforeseen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KnownFailures {
    down: HashSet<(SlotIndex, EdgeId)>,
}

impl KnownFailures {
    /// An empty set (nothing known to be down).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `edge` is down at `slot`.
    pub fn insert(&mut self, slot: SlotIndex, edge: EdgeId) {
        self.down.insert((slot, edge));
    }

    /// Whether `edge` is known to be down at `slot`.
    pub fn is_down(&self, slot: SlotIndex, edge: EdgeId) -> bool {
        self.down.contains(&(slot, edge))
    }

    /// Number of recorded `(slot, edge)` outages.
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }

    /// Iterates the recorded outages in unspecified order; callers that
    /// need determinism (the checkpoint writer) must sort.
    pub fn iter(&self) -> impl Iterator<Item = (SlotIndex, EdgeId)> + '_ {
        self.down.iter().copied()
    }
}

impl FromIterator<(SlotIndex, EdgeId)> for KnownFailures {
    fn from_iter<I: IntoIterator<Item = (SlotIndex, EdgeId)>>(iter: I) -> Self {
        KnownFailures { down: iter.into_iter().collect() }
    }
}

/// The outcome of a repair attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairOutcome {
    /// The booking was (or stays) torn down — by policy, or because a paid
    /// repair no longer fits the valuation.
    Dropped,
    /// The suffix was re-routed and committed.
    Repaired {
        /// The *incremental* price charged for the repair: the quoted
        /// suffix price under [`RepairPolicy::RepairPaid`], zero under
        /// [`RepairPolicy::Repair`].
        price: f64,
        /// The committed suffix, one path per remaining slot.
        slot_paths: Vec<SlotPath>,
        /// The booking handle of the committed suffix.
        booking: BookingId,
    },
    /// No feasible (or affordable-by-policy) repair exists *right now*;
    /// the caller may retry at a later slot while the request is active.
    Pending {
        /// Why this attempt failed.
        reason: RejectReason,
    },
}

/// Attempts to re-route the unserved suffix of `request` (slots
/// `from..=end`) with `algorithm`'s priced search, under `policy`.
///
/// `paid` is what the user already paid at admission (plus prior paid
/// repairs); [`RepairPolicy::RepairPaid`] drops the booking when
/// `paid + suffix price` exceeds the valuation. The broken plan's
/// resources must already be released (see [`repair`] /
/// [`NetworkState::release_from`]) — otherwise the suffix double-books
/// against itself.
///
/// # Panics
///
/// Panics in debug builds when `from` is after the request's end.
pub fn try_repair(
    algorithm: &dyn RoutingAlgorithm,
    policy: RepairPolicy,
    request: &Request,
    paid: f64,
    state: &mut NetworkState,
    from: SlotIndex,
    known: &KnownFailures,
) -> RepairOutcome {
    debug_assert!(from <= request.end, "repairing past the request's end");
    if policy == RepairPolicy::Drop {
        return RepairOutcome::Dropped;
    }
    let suffix = request.suffix_from(from);
    let (plan, price) = match algorithm.quote_plan(&suffix, state, Some(known)) {
        Ok(found) => found,
        Err(reason) => return RepairOutcome::Pending { reason },
    };
    if policy == RepairPolicy::RepairPaid && paid + price > request.valuation {
        return RepairOutcome::Dropped;
    }
    match state.try_commit_plan(&suffix, &plan) {
        Ok(()) => RepairOutcome::Repaired {
            price: if policy == RepairPolicy::RepairPaid { price } else { 0.0 },
            slot_paths: plan.slot_paths,
            booking: state.last_booking().expect("commit just succeeded"),
        },
        Err(_) => RepairOutcome::Pending { reason: RejectReason::CommitFailed },
    }
}

/// Releases a broken plan's remaining resources and attempts the re-route
/// in one step: [`NetworkState::release_from`] on every booking of the
/// broken plan, then [`try_repair`] for the suffix from `slot`.
///
/// The release happens unconditionally — even under [`RepairPolicy::Drop`]
/// or when no feasible repair exists yet, the dead reservation must stop
/// blocking other traffic.
#[allow(clippy::too_many_arguments)]
pub fn repair(
    algorithm: &dyn RoutingAlgorithm,
    policy: RepairPolicy,
    request: &Request,
    paid: f64,
    broken: &[BookingId],
    state: &mut NetworkState,
    slot: SlotIndex,
    known: &KnownFailures,
) -> RepairOutcome {
    for &id in broken {
        state.release_from(id, slot);
    }
    try_repair(algorithm, policy, request, paid, state, slot, known)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Cear;
    use crate::baselines::testutil::{build_state, request};
    use crate::params::CearParams;
    use crate::Decision;

    #[test]
    fn known_failures_basics() {
        let mut k = KnownFailures::new();
        assert!(k.is_empty());
        k.insert(SlotIndex(2), EdgeId(7));
        k.insert(SlotIndex(2), EdgeId(7));
        assert_eq!(k.len(), 1);
        assert!(k.is_down(SlotIndex(2), EdgeId(7)));
        assert!(!k.is_down(SlotIndex(3), EdgeId(7)));
        assert_eq!(RepairPolicy::all().map(|p| p.name()), ["drop", "repair", "repair-paid"]);
    }

    #[test]
    fn drop_policy_never_routes() {
        let (mut state, src, dst) = build_state(2);
        let req = request(src, dst, 500.0, 0, 1);
        let cear = Cear::new(CearParams::default());
        let before = state.clone();
        let out = try_repair(
            &cear,
            RepairPolicy::Drop,
            &req,
            0.0,
            &mut state,
            SlotIndex(1),
            &KnownFailures::new(),
        );
        assert_eq!(out, RepairOutcome::Dropped);
        assert_eq!(state.ledger(), before.ledger(), "drop must not touch the state");
    }

    #[test]
    fn repair_reroutes_released_suffix() {
        let (mut state, src, dst) = build_state(3);
        let mut cear = Cear::new(CearParams::default());
        let req = request(src, dst, 800.0, 0, 2);
        let Decision::Accepted { .. } =
            (&mut cear as &mut dyn crate::RoutingAlgorithm).process(&req, &mut state)
        else {
            panic!("fresh network must accept");
        };
        let booking = state.last_booking().unwrap();
        // "Failure" at slot 1: release and repair the suffix.
        let out = repair(
            &cear,
            RepairPolicy::Repair,
            &req,
            0.0,
            &[booking],
            &mut state,
            SlotIndex(1),
            &KnownFailures::new(),
        );
        let RepairOutcome::Repaired { price, slot_paths, booking: b2 } = out else {
            panic!("repair on an idle network must succeed, got {out:?}");
        };
        assert_eq!(price, 0.0, "Repair never charges");
        assert_eq!(slot_paths.len(), 2, "suffix covers slots 1..=2");
        assert_eq!(slot_paths[0].slot, SlotIndex(1));
        assert!(b2 > booking);
    }

    #[test]
    fn repair_paid_drops_when_over_valuation() {
        let (mut state, src, dst) = build_state(1);
        let cear = Cear::new(CearParams::default());
        // A request that already paid its whole valuation: any positive
        // suffix price exceeds it; a zero-price suffix still repairs.
        let mut req = request(src, dst, 800.0, 0, 0);
        req.valuation = 0.0;
        // Load the network so prices are strictly positive.
        let mut loader = Cear::new(CearParams::default());
        for _ in 0..4 {
            let filler = request(src, dst, 1800.0, 0, 0);
            let _ = (&mut loader as &mut dyn crate::RoutingAlgorithm).process(&filler, &mut state);
        }
        let quoted = cear.quote(&req, &state).map(|(_, p)| p).unwrap_or(0.0);
        let out = try_repair(
            &cear,
            RepairPolicy::RepairPaid,
            &req,
            0.0,
            &mut state,
            SlotIndex(0),
            &KnownFailures::new(),
        );
        if quoted > 0.0 {
            assert_eq!(out, RepairOutcome::Dropped, "price {quoted} exceeds valuation 0");
        } else {
            assert!(matches!(out, RepairOutcome::Repaired { .. }));
        }
    }

    #[test]
    fn known_failures_prune_the_repair_search() {
        let (mut state, src, dst) = build_state(1);
        let cear = Cear::new(CearParams::default());
        let req = request(src, dst, 500.0, 0, 0);
        // Quote once cleanly, then declare its first edge down; the
        // repair must route differently or report no path.
        let (plan, _) = cear.quote(&req, &state).expect("feasible");
        let dead = plan.slot_paths[0].edges[0];
        let mut known = KnownFailures::new();
        known.insert(SlotIndex(0), dead);
        let out =
            try_repair(&cear, RepairPolicy::Repair, &req, 0.0, &mut state, SlotIndex(0), &known);
        match out {
            RepairOutcome::Repaired { slot_paths, .. } => {
                assert!(
                    !slot_paths[0].edges.contains(&dead),
                    "repair routed onto the known-dead edge"
                );
            }
            RepairOutcome::Pending { .. } => {} // no alternative existed
            RepairOutcome::Dropped => panic!("Repair policy never drops"),
        }
    }
}
