//! Mutable network state: bandwidth reservations and the energy ledger.
//!
//! [`NetworkState`] is the single source of truth an online algorithm reads
//! prices from and commits accepted plans into. Commits are atomic: a plan
//! either reserves every resource it needs across all of its slots, or the
//! state is left untouched (important because a plan feasible slot-by-slot
//! can be infeasible jointly — its own early slots consume the solar energy
//! its late slots counted on).

use crate::plan::ReservationPlan;
use sb_demand::Request;
use sb_energy::{EnergyLedger, EnergyParams};
use sb_topology::graph::EdgeId;
use sb_topology::{NodeKind, SlotIndex, TopologySeries};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide epoch source for resource-cell change tracking.
///
/// Every mutation of a priced resource cell stamps the cell with a fresh
/// value drawn from this counter, so an epoch value is assigned at most
/// once across *all* states and their clones. A cached price stamped with
/// epoch `e` is therefore valid against any state whose cell still reads
/// `e`: equal epochs imply the cells were copied from a common ancestor
/// before either side mutated them, hence hold bit-identical values.
static EPOCH_SOURCE: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    EPOCH_SOURCE.fetch_add(1, Ordering::Relaxed)
}

/// The epochs of every priced resource cell a quote read, recorded so the
/// quote can later be revalidated in O(read set) without re-running the
/// search — the optimistic-concurrency primitive behind `sb-serve`.
///
/// Soundness contract: a quote is a deterministic function of the cells it
/// read. If every recorded cell still holds its recorded epoch, those
/// cells hold bit-identical values (see [`EPOCH_SOURCE`]), so re-running
/// the quote against the current state would reproduce it bit for bit —
/// the quote may be committed as-is. If any epoch moved, the quote is
/// stale and must be recomputed.
///
/// Bandwidth reads are recorded per cell. Battery reads are recorded as
/// the *whole horizon row* of the probed satellite: the energy recursion
/// walks forward from the probe slot, so the row is a sound superset of
/// the cells actually read, and committing/releasing always re-stamps
/// whole rows anyway (see [`NetworkState::release_from`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochReadSet {
    /// `(slot, edge, epoch)` per bandwidth cell read, deduplicated by
    /// [`EpochReadSet::normalize`].
    bandwidth: Vec<(SlotIndex, EdgeId, u64)>,
    /// `(satellite, row epochs over the whole horizon)` per satellite
    /// whose battery was probed.
    battery: Vec<(usize, Vec<u64>)>,
}

impl EpochReadSet {
    /// An empty read set.
    pub fn new() -> Self {
        EpochReadSet::default()
    }

    /// Forgets all recorded reads (for reuse across quotes).
    pub fn clear(&mut self) {
        self.bandwidth.clear();
        self.battery.clear();
    }

    /// Records a read of the bandwidth cell `(slot, edge)` at its current
    /// epoch in `state`.
    #[inline]
    pub fn record_bandwidth(&mut self, state: &NetworkState, slot: SlotIndex, edge: EdgeId) {
        self.bandwidth.push((slot, edge, state.bandwidth_epoch(slot, edge)));
    }

    /// Records a read of satellite `sat`'s battery (the whole horizon row
    /// of deficit-cell epochs — a sound superset of any forward
    /// recursion's actual reads).
    pub fn record_battery_row(&mut self, state: &NetworkState, sat: usize) {
        if self.battery.iter().any(|&(s, _)| s == sat) {
            return;
        }
        let row = (0..state.horizon()).map(|t| state.battery_epoch(sat, t)).collect();
        self.battery.push((sat, row));
    }

    /// Sorts and deduplicates the recorded reads. Duplicate reads of one
    /// cell always carry the same epoch (they were taken against one
    /// immutable snapshot), so dedup loses nothing.
    pub fn normalize(&mut self) {
        self.bandwidth.sort_unstable_by_key(|&(s, e, _)| (s, e));
        self.bandwidth.dedup();
        self.battery.sort_unstable_by_key(|&(sat, _)| sat);
    }

    /// True when every recorded cell still holds its recorded epoch in
    /// `state` — i.e. replaying the quote there would reproduce it
    /// bit-identically. A state with a different shape (horizon, edge
    /// count) reads as stale, never panics.
    pub fn is_current(&self, state: &NetworkState) -> bool {
        for &(slot, edge, epoch) in &self.bandwidth {
            if slot.index() >= state.horizon()
                || edge.index() >= state.series().snapshot(slot).num_edges()
                || state.bandwidth_epoch(slot, edge) != epoch
            {
                return false;
            }
        }
        for (sat, row) in &self.battery {
            if *sat >= state.num_satellites() || row.len() != state.horizon() {
                return false;
            }
            if (0..row.len()).any(|t| state.battery_epoch(*sat, t) != row[t]) {
                return false;
            }
        }
        true
    }

    /// Number of recorded bandwidth cells.
    pub fn bandwidth_len(&self) -> usize {
        self.bandwidth.len()
    }

    /// The recorded bandwidth cells (sorted after
    /// [`EpochReadSet::normalize`]).
    pub fn bandwidth_cells(&self) -> impl Iterator<Item = (SlotIndex, EdgeId)> + '_ {
        self.bandwidth.iter().map(|&(s, e, _)| (s, e))
    }

    /// The satellites whose battery rows were recorded.
    pub fn battery_sats(&self) -> impl Iterator<Item = usize> + '_ {
        self.battery.iter().map(|&(s, _)| s)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bandwidth.is_empty() && self.battery.is_empty()
    }
}

/// Why a plan commit was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum CommitError {
    /// Reserving the plan would exceed a link's capacity.
    BandwidthExceeded {
        /// Slot of the violation.
        slot: SlotIndex,
        /// Offending edge.
        edge: EdgeId,
    },
    /// Reserving the plan would over-draw a satellite battery
    /// (constraint 7c).
    EnergyInfeasible {
        /// Slot of the violating consumption.
        slot: SlotIndex,
        /// Constellation index of the satellite.
        satellite: usize,
    },
    /// The plan does not cover exactly the request's active slots.
    SlotMismatch,
}

impl core::fmt::Display for CommitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CommitError::BandwidthExceeded { slot, edge } => {
                write!(f, "link capacity exceeded at {slot} on edge {}", edge.0)
            }
            CommitError::EnergyInfeasible { slot, satellite } => {
                write!(f, "battery of satellite {satellite} over-drawn at {slot}")
            }
            CommitError::SlotMismatch => write!(f, "plan does not cover the request's slots"),
        }
    }
}

impl std::error::Error for CommitError {}

/// Handle to one committed reservation, in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BookingId(pub usize);

/// The resource footprint of one committed plan, recorded so the booking
/// can later be (partially) released — a failure-recovery primitive.
///
/// Exact-release invariant: every `reserved_mbps` cell equals the fold, in
/// commit order, of the bandwidth contributions of the bookings that still
/// cover it, and every satellite's ledger rows equal the replay, in commit
/// order, of its surviving energy consumptions. Releases maintain the
/// invariant by recomputing affected cells/rows from the log instead of
/// subtracting (f64 subtraction is not an exact inverse of addition), so a
/// release followed by an identical re-commit restores the state
/// bit-identically.
#[derive(Debug, Clone)]
pub(crate) struct BookingEntry {
    /// Aggregated bandwidth demand per cell, sorted by `(slot, edge)` for
    /// deterministic iteration.
    pub(crate) bw: Vec<(SlotIndex, EdgeId, f64)>,
    /// Energy consumptions `(satellite, slot, joules)` in the exact order
    /// they were committed to the ledger.
    pub(crate) energy: Vec<(usize, usize, f64)>,
}

/// The operator's view of the network over the whole horizon.
#[derive(Debug, Clone)]
pub struct NetworkState {
    /// Shared, immutable topology: cloning a state (or building five
    /// algorithm states from one cached [`sb_topology::TopologySeries`])
    /// bumps a refcount instead of copying every snapshot.
    series: Arc<TopologySeries>,
    num_satellites: usize,
    energy_params: EnergyParams,
    ledger: EnergyLedger,
    /// Reserved bandwidth per slot, indexed by the slot's snapshot edge id.
    reserved_mbps: Vec<Vec<f64>>,
    /// Change epoch per `reserved_mbps` cell (see [`EPOCH_SOURCE`]): bumped
    /// whenever the cell's value may have changed, so price caches keyed on
    /// (slot, edge) can revalidate in O(1).
    bandwidth_epoch: Vec<Vec<u64>>,
    /// Change epoch per ledger deficit cell, indexed by
    /// [`EnergyLedger::flat_index`]; bumped whenever the cell's cumulative
    /// deficit (what battery prices read) may have changed.
    battery_epoch: Vec<u64>,
    /// Coarse per-slot bandwidth generation: the epoch of the most recent
    /// mutation that touched *any* bandwidth cell of the slot. Lets a
    /// whole-slot artifact (e.g. a cached shortest-path tree) revalidate
    /// in O(1) instead of per cell; conservative — a commit on any edge of
    /// the slot invalidates it.
    slot_bandwidth_gen: Vec<u64>,
    /// Coarse battery generation: the epoch of the most recent mutation
    /// that touched any battery deficit cell of any satellite.
    battery_gen: u64,
    /// Every committed booking, in commit order (see [`BookingEntry`]).
    bookings: Vec<BookingEntry>,
}

impl NetworkState {
    /// Creates a fresh state over a topology series: no reservations, full
    /// batteries, solar input derived from each satellite's sunlit profile.
    pub fn new(series: impl Into<Arc<TopologySeries>>, energy_params: &EnergyParams) -> Self {
        let series = series.into();
        let num_satellites = series
            .snapshots()
            .first()
            .map_or(0, |s| s.kinds().iter().filter(|k| k.is_satellite()).count());
        let sunlit: Vec<Vec<bool>> = (0..num_satellites)
            .map(|i| series.sunlit_profile(sb_topology::NodeId(i as u32)))
            .collect();
        let ledger = EnergyLedger::new(energy_params, series.slot_duration_s(), &sunlit);
        let reserved_mbps: Vec<Vec<f64>> =
            series.snapshots().iter().map(|s| vec![0.0; s.num_edges()]).collect();
        let epoch = next_epoch();
        let bandwidth_epoch = reserved_mbps.iter().map(|row| vec![epoch; row.len()]).collect();
        let battery_epoch = vec![epoch; num_satellites * series.num_slots()];
        let slot_bandwidth_gen = vec![epoch; series.num_slots()];
        NetworkState {
            series,
            num_satellites,
            energy_params: *energy_params,
            ledger,
            reserved_mbps,
            bandwidth_epoch,
            battery_epoch,
            slot_bandwidth_gen,
            battery_gen: epoch,
            bookings: Vec::new(),
        }
    }

    /// The underlying topology series.
    pub fn series(&self) -> &TopologySeries {
        &self.series
    }

    /// The shared handle to the topology series (cache anchors key on its
    /// `Arc` identity).
    pub fn series_arc(&self) -> &Arc<TopologySeries> {
        &self.series
    }

    /// The energy ledger (read-only; mutate via plan commits).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The physical energy parameters.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy_params
    }

    /// Number of broadband satellites.
    pub fn num_satellites(&self) -> usize {
        self.num_satellites
    }

    /// Number of slots in the horizon.
    pub fn horizon(&self) -> usize {
        self.series.num_slots()
    }

    /// Slot duration, seconds.
    pub fn slot_duration_s(&self) -> f64 {
        self.series.slot_duration_s()
    }

    /// Reserved bandwidth on an edge at a slot, Mbps.
    pub fn reserved_mbps(&self, slot: SlotIndex, edge: EdgeId) -> f64 {
        self.reserved_mbps[slot.index()][edge.index()]
    }

    /// Residual (unreserved) capacity on an edge at a slot, Mbps.
    pub fn residual_mbps(&self, slot: SlotIndex, edge: EdgeId) -> f64 {
        let cap = self.series.snapshot(slot).edge(edge).capacity_mbps;
        cap - self.reserved_mbps(slot, edge)
    }

    /// Bandwidth utilization `λ_e(T) ∈ [0, 1]` (Eq. 8).
    ///
    /// Guarded against degenerate capacities: a zero, negative or NaN
    /// capacity never yields NaN/inf — such an edge reads as fully
    /// utilized when anything is booked on it (so pricing repels traffic)
    /// and as idle otherwise.
    pub fn utilization(&self, slot: SlotIndex, edge: EdgeId) -> f64 {
        let cap = self.series.snapshot(slot).edge(edge).capacity_mbps;
        if cap.is_nan() || cap <= 0.0 {
            return if self.reserved_mbps(slot, edge) > 0.0 { 1.0 } else { 0.0 };
        }
        let utilization = self.reserved_mbps(slot, edge) / cap;
        // A NaN reservation cell maps to 0.0 too (clamp would propagate it).
        if utilization.is_nan() {
            return 0.0;
        }
        utilization.clamp(0.0, 1.0)
    }

    /// Change epoch of the reserved-bandwidth cell `(slot, edge)`.
    ///
    /// Two reads returning the same epoch bracket a window in which the
    /// cell's value — and hence [`Self::utilization`] — was unchanged, even
    /// across state clones. Anything derived from the cell (e.g. a cached
    /// congestion price) stays valid exactly as long as the epoch does.
    #[inline]
    pub fn bandwidth_epoch(&self, slot: SlotIndex, edge: EdgeId) -> u64 {
        self.bandwidth_epoch[slot.index()][edge.index()]
    }

    /// Change epoch of satellite `sat`'s deficit cell at slot `t` — the
    /// input of [`EnergyLedger::battery_utilization`]. Same contract as
    /// [`Self::bandwidth_epoch`].
    #[inline]
    pub fn battery_epoch(&self, sat: usize, t: usize) -> u64 {
        self.battery_epoch[self.ledger.flat_index(sat, t)]
    }

    /// Coarse generation of `slot`'s whole bandwidth plane: unchanged iff
    /// no bandwidth cell of the slot was mutated since. Same epoch
    /// semantics as [`Self::bandwidth_epoch`], one value per slot.
    #[inline]
    pub fn slot_bandwidth_gen(&self, slot: SlotIndex) -> u64 {
        self.slot_bandwidth_gen[slot.index()]
    }

    /// Coarse generation of the whole battery plane: unchanged iff no
    /// deficit cell of any satellite was mutated since.
    #[inline]
    pub fn battery_gen(&self) -> u64 {
        self.battery_gen
    }

    /// The constellation index of a node, when it is a broadband satellite.
    pub fn satellite_index(&self, node: sb_topology::NodeId) -> Option<usize> {
        match self.series.snapshots().first()?.kind(node) {
            NodeKind::Satellite(i) => Some(i),
            _ => None,
        }
    }

    /// Atomically validates and commits a reservation plan for `request`.
    ///
    /// Validation covers the request's demanded rate on every edge of every
    /// slot path (constraint 7b) and the sequential energy recursion on
    /// every satellite of every slot path (constraint 7c). On any failure
    /// the state is unchanged.
    ///
    /// # Errors
    ///
    /// Returns a [`CommitError`] naming the violated resource.
    pub fn try_commit_plan(
        &mut self,
        request: &Request,
        plan: &ReservationPlan,
    ) -> Result<(), CommitError> {
        // The plan must cover the active slots exactly, in order.
        let expected: Vec<SlotIndex> = request.active_slots().collect();
        if plan.slot_paths.len() != expected.len()
            || plan.slot_paths.iter().zip(&expected).any(|(sp, want)| sp.slot != *want)
        {
            return Err(CommitError::SlotMismatch);
        }

        // Bandwidth validation (a path may in principle repeat an edge, so
        // accumulate demand first).
        let mut demand: HashMap<(SlotIndex, EdgeId), f64> = HashMap::new();
        for sp in &plan.slot_paths {
            let rate = request.rate_at(sp.slot);
            for &e in &sp.edges {
                *demand.entry((sp.slot, e)).or_insert(0.0) += rate;
            }
        }
        for (&(slot, edge), &mbps) in &demand {
            if self.reserved_mbps(slot, edge) + mbps
                > self.series.snapshot(slot).edge(edge).capacity_mbps + 1e-6
            {
                return Err(CommitError::BandwidthExceeded { slot, edge });
            }
        }

        // Energy validation on a transactional overlay, in slot order —
        // exactly the sequential recursion of Algorithm 1 lines 9–16.
        let mut tx = self.ledger.overlay();
        let mut energy_log = Vec::new();
        for sp in &plan.slot_paths {
            let snapshot = self.series.snapshot(sp.slot);
            let rate = request.rate_at(sp.slot);
            for (node, role) in sp.satellite_roles(snapshot) {
                let sat = match snapshot.kind(node) {
                    NodeKind::Satellite(i) => i,
                    _ => unreachable!("satellite_roles returned a non-satellite"),
                };
                let consumption =
                    self.energy_params.consumption_j(role, rate, self.slot_duration_s());
                if tx.try_commit(sat, sp.slot.index(), consumption).is_none() {
                    return Err(CommitError::EnergyInfeasible { slot: sp.slot, satellite: sat });
                }
                energy_log.push((sat, sp.slot.index(), consumption));
            }
        }
        let delta = tx.into_delta();

        // All checks passed: apply. One fresh epoch stamps every touched
        // cell; untouched cells keep their epoch, so cached prices
        // elsewhere stay valid.
        let epoch = next_epoch();
        for (&(slot, edge), &mbps) in &demand {
            self.reserved_mbps[slot.index()][edge.index()] += mbps;
            self.bandwidth_epoch[slot.index()][edge.index()] = epoch;
            self.slot_bandwidth_gen[slot.index()] = epoch;
        }
        for i in delta.deficit_indices() {
            self.battery_epoch[i] = epoch;
            self.battery_gen = epoch;
        }
        self.ledger.absorb(delta);
        let mut bw: Vec<(SlotIndex, EdgeId, f64)> =
            demand.into_iter().map(|((s, e), m)| (s, e, m)).collect();
        bw.sort_by_key(|&(s, e, _)| (s, e));
        self.bookings.push(BookingEntry { bw, energy: energy_log });
        Ok(())
    }

    /// Number of bookings committed so far. With the next commit's id
    /// being `BookingId(booking_count())`, a caller can bracket a
    /// multi-commit operation and collect exactly the ids it produced.
    pub fn booking_count(&self) -> usize {
        self.bookings.len()
    }

    /// The id of the most recently committed booking.
    pub fn last_booking(&self) -> Option<BookingId> {
        self.bookings.len().checked_sub(1).map(BookingId)
    }

    /// Releases a booking's resources from slot `from` onwards: its
    /// reserved bandwidth in slots `≥ from` returns to the pool and its
    /// battery consumptions there are un-booked (deficits recomputed).
    /// Slots before `from` stay reserved — they were already served.
    ///
    /// Restoration is *exact*: affected bandwidth cells are re-folded and
    /// affected satellites' ledger rows replayed from the surviving
    /// booking log in commit order, so releasing a booking and committing
    /// an identical plan again yields a bit-identical [`NetworkState`]
    /// (see [`BookingEntry`]). Releasing an already-released range is a
    /// no-op.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this state.
    pub fn release_from(&mut self, id: BookingId, from: SlotIndex) {
        let entry = &mut self.bookings[id.0];
        let released_cells: HashSet<(SlotIndex, EdgeId)> =
            entry.bw.iter().filter(|&&(s, _, _)| s >= from).map(|&(s, e, _)| (s, e)).collect();
        let released_sats: HashSet<usize> = entry
            .energy
            .iter()
            .filter(|&&(_, t, _)| t >= from.index())
            .map(|&(sat, _, _)| sat)
            .collect();
        if released_cells.is_empty() && released_sats.is_empty() {
            return;
        }
        entry.bw.retain(|&(s, _, _)| s < from);
        entry.energy.retain(|&(_, t, _)| t < from.index());

        // Re-fold affected bandwidth cells from the surviving log.
        let epoch = next_epoch();
        for &(s, e) in &released_cells {
            self.reserved_mbps[s.index()][e.index()] = 0.0;
            self.bandwidth_epoch[s.index()][e.index()] = epoch;
            self.slot_bandwidth_gen[s.index()] = epoch;
        }
        for b in &self.bookings {
            for &(s, e, mbps) in &b.bw {
                if released_cells.contains(&(s, e)) {
                    self.reserved_mbps[s.index()][e.index()] += mbps;
                }
            }
        }

        // Replay affected satellites' ledger rows. Every surviving commit
        // was feasible in the original sequence, which drained strictly
        // more (it included the released consumptions), and adding energy
        // headroom never breaks feasibility — so replay cannot panic.
        // Reset + replay can move any cell of the row, so the whole row's
        // epochs advance.
        for &sat in &released_sats {
            self.ledger.reset_satellite(sat);
            self.battery_gen = epoch;
            for t in 0..self.horizon() {
                self.battery_epoch[self.ledger.flat_index(sat, t)] = epoch;
            }
        }
        for b in &self.bookings {
            for &(sat, t, j) in &b.energy {
                if released_sats.contains(&sat) {
                    self.ledger.commit(sat, t, j);
                }
            }
        }

        // Cheap self-check on every refolded cell (full-state audits live
        // in `crate::audit` and run at slot boundaries).
        #[cfg(feature = "strict-audit")]
        for &(s, e) in &released_cells {
            let cap = self.series.snapshot(s).edge(e).capacity_mbps;
            let reserved = self.reserved_mbps[s.index()][e.index()];
            assert!(
                reserved >= 0.0 && reserved <= cap + 1e-6,
                "release_from left {reserved} Mbps reserved on edge {} at {s} (capacity {cap})",
                e.0
            );
        }
    }

    /// The booking log, for the conservation auditor.
    pub(crate) fn bookings_log(&self) -> &[BookingEntry] {
        &self.bookings
    }

    /// Serializes the mutable state — energy ledger, reserved-bandwidth
    /// plane, booking log — bit-exactly into `w`. The topology series is
    /// *not* written: it is deterministic given the scenario and is
    /// rebuilt by the caller, which keeps snapshots small and lets
    /// [`NetworkState::decode_snapshot`] cross-check the encoded
    /// dimensions against the freshly built series.
    pub fn encode_snapshot(&self, w: &mut sb_wire::Writer) {
        self.ledger.encode(w);
        w.usize(self.num_satellites);
        w.seq(&self.reserved_mbps, |w, row| w.seq(row, |w, v| w.f64(*v)));
        w.seq(&self.bookings, |w, b| {
            w.seq(&b.bw, |w, &(s, e, m)| {
                w.u32(s.0);
                w.u32(e.0);
                w.f64(m);
            });
            w.seq(&b.energy, |w, &(sat, t, j)| {
                w.usize(sat);
                w.usize(t);
                w.f64(j);
            });
        });
    }

    /// Restores a state written by [`NetworkState::encode_snapshot`] on
    /// top of a freshly rebuilt topology `series`.
    ///
    /// Every encoded dimension is validated against the series — slot
    /// count, per-slot edge counts, satellite count, and every booking
    /// coordinate — so a snapshot from a different scenario (or a
    /// corrupted one) is rejected instead of producing a state that
    /// panics on first use.
    ///
    /// # Errors
    ///
    /// Returns a [`sb_wire::WireError`] on truncated input or any
    /// dimension mismatch.
    pub fn decode_snapshot(
        series: impl Into<Arc<TopologySeries>>,
        r: &mut sb_wire::Reader<'_>,
    ) -> Result<Self, sb_wire::WireError> {
        let series = series.into();
        let invalid = |detail: String| sb_wire::WireError::Invalid { detail };
        let ledger = EnergyLedger::decode(r)?;
        let num_satellites = r.usize()?;
        if ledger.num_satellites() != num_satellites {
            return Err(invalid(format!(
                "ledger tracks {} satellites, snapshot header says {num_satellites}",
                ledger.num_satellites()
            )));
        }
        if ledger.horizon() != series.num_slots() {
            return Err(invalid(format!(
                "ledger horizon {} does not match series horizon {}",
                ledger.horizon(),
                series.num_slots()
            )));
        }
        let num_slots = r.seq_len(8)?;
        if num_slots != series.num_slots() {
            return Err(invalid(format!(
                "snapshot holds {num_slots} reserved-bandwidth slots, series has {}",
                series.num_slots()
            )));
        }
        let mut reserved_mbps = Vec::with_capacity(num_slots);
        for t in 0..num_slots {
            let edges = series.snapshot(SlotIndex(t as u32)).num_edges();
            let n = r.seq_len(8)?;
            if n != edges {
                return Err(invalid(format!(
                    "slot {t} holds {n} reserved-bandwidth cells, snapshot has {edges} edges"
                )));
            }
            reserved_mbps.push((0..n).map(|_| r.f64()).collect::<Result<Vec<f64>, _>>()?);
        }
        let num_bookings = r.seq_len(16)?;
        let mut bookings = Vec::with_capacity(num_bookings);
        for _ in 0..num_bookings {
            let n_bw = r.seq_len(16)?;
            let mut bw = Vec::with_capacity(n_bw);
            for _ in 0..n_bw {
                let (s, e, m) = (SlotIndex(r.u32()?), EdgeId(r.u32()?), r.f64()?);
                if s.index() >= num_slots {
                    return Err(invalid(format!("booking cell at out-of-range {s}")));
                }
                if e.index() >= series.snapshot(s).num_edges() {
                    return Err(invalid(format!(
                        "booking cell at {s} names edge {}, snapshot has {}",
                        e.0,
                        series.snapshot(s).num_edges()
                    )));
                }
                bw.push((s, e, m));
            }
            let n_energy = r.seq_len(24)?;
            let mut energy = Vec::with_capacity(n_energy);
            for _ in 0..n_energy {
                let (sat, t, j) = (r.usize()?, r.usize()?, r.f64()?);
                if sat >= num_satellites || t >= num_slots {
                    return Err(invalid(format!(
                        "booking energy names satellite {sat} slot {t}, state has \
                         {num_satellites} satellites over {num_slots} slots"
                    )));
                }
                energy.push((sat, t, j));
            }
            bookings.push(BookingEntry { bw, energy });
        }
        let energy_params = *ledger.params();
        // Epochs are transient cache-coherence data, not wire state: a
        // decoded state gets one fresh epoch everywhere, which can never
        // collide with a stamp a price cache took against another state.
        let epoch = next_epoch();
        let bandwidth_epoch = reserved_mbps.iter().map(|row| vec![epoch; row.len()]).collect();
        let battery_epoch = vec![epoch; num_satellites * series.num_slots()];
        let slot_bandwidth_gen = vec![epoch; series.num_slots()];
        Ok(NetworkState {
            series,
            num_satellites,
            energy_params,
            ledger,
            reserved_mbps,
            bandwidth_epoch,
            battery_epoch,
            slot_bandwidth_gen,
            battery_gen: epoch,
            bookings,
        })
    }

    /// Test-only corruption injector: overwrites one reserved-bandwidth
    /// cell, bypassing the booking log. Exists so the conservation
    /// auditor's detection paths can be exercised; never call it from
    /// production code.
    #[doc(hidden)]
    pub fn debug_set_reserved(&mut self, slot: SlotIndex, edge: EdgeId, mbps: f64) {
        let epoch = next_epoch();
        self.reserved_mbps[slot.index()][edge.index()] = mbps;
        self.bandwidth_epoch[slot.index()][edge.index()] = epoch;
        self.slot_bandwidth_gen[slot.index()] = epoch;
    }

    /// Test-only epoch invalidator: advances the epoch of one battery
    /// cell without touching its value, as if a foreign commit had
    /// re-stamped it. Exists so read-set conflict paths can be exercised
    /// deterministically; never call it from production code.
    #[doc(hidden)]
    pub fn debug_bump_battery_epoch(&mut self, sat: usize, t: usize) {
        let epoch = next_epoch();
        self.battery_epoch[self.ledger.flat_index(sat, t)] = epoch;
        self.battery_gen = epoch;
    }

    /// Test-only mutable ledger access, for injecting ledger corruption.
    /// Conservatively advances every battery epoch — the caller may mutate
    /// any cell through the returned reference.
    #[doc(hidden)]
    pub fn debug_ledger_mut(&mut self) -> &mut EnergyLedger {
        let epoch = next_epoch();
        self.battery_epoch.fill(epoch);
        self.battery_gen = epoch;
        &mut self.ledger
    }

    /// Number of links at `slot` whose residual capacity is below
    /// `threshold_frac` of capacity — the paper's *congested links* metric
    /// uses `threshold_frac = 0.1`. Directed edges are counted once per
    /// unordered pair is **not** attempted; the paper counts links, which
    /// in our directed representation is each direction independently
    /// halved.
    pub fn congested_link_count(&self, slot: SlotIndex, threshold_frac: f64) -> usize {
        let snap = self.series.snapshot(slot);
        let congested_directed = snap
            .edges()
            .enumerate()
            .filter(|(idx, e)| {
                let residual = e.capacity_mbps - self.reserved_mbps[slot.index()][*idx];
                residual < threshold_frac * e.capacity_mbps
            })
            .count();
        congested_directed.div_ceil(2)
    }

    /// Number of satellites whose battery at `slot` is below
    /// `threshold_frac` of capacity (paper metric: 20 %).
    pub fn depleted_satellite_count(&self, slot: SlotIndex, threshold_frac: f64) -> usize {
        self.ledger.depleted_count(slot.index(), threshold_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SlotPath;
    use sb_demand::{RateProfile, RequestId};
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;
    use sb_topology::{NetworkNodes, NodeId, TopologyConfig, TopologySeries};

    fn small_state() -> (NetworkState, NodeId, NodeId) {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        let b = nodes.add_ground_site(Geodetic::from_degrees(40.7, -74.0, 0.0));
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        let series = TopologySeries::build(&nodes, &cfg, 3, 60.0);
        (NetworkState::new(series, &EnergyParams::default()), a, b)
    }

    /// Builds a 1-slot plan along actual snapshot edges from `src` by
    /// following its first USL and the satellite's first USL back down.
    fn direct_plan(
        state: &NetworkState,
        src: NodeId,
        dst: NodeId,
        slot: SlotIndex,
    ) -> Option<ReservationPlan> {
        let snap = state.series().snapshot(slot);
        for (e1, edge1) in snap.out_edges(src) {
            let sat = edge1.dst;
            if let Some(e2) = snap.find_edge(sat, dst) {
                return Some(ReservationPlan {
                    slot_paths: vec![SlotPath {
                        slot,
                        nodes: vec![src, sat, dst],
                        edges: vec![e1, e2],
                    }],
                    total_cost: 0.0,
                });
            }
        }
        None
    }

    fn request(src: NodeId, dst: NodeId, rate: f64) -> Request {
        Request {
            id: RequestId(0),
            source: src,
            destination: dst,
            rate: RateProfile::Constant(rate),
            start: SlotIndex(0),
            end: SlotIndex(0),
            valuation: 1e9,
        }
    }

    #[test]
    fn fresh_state_is_empty() {
        let (state, _, _) = small_state();
        assert_eq!(state.num_satellites(), 144);
        assert_eq!(state.horizon(), 3);
        let snap = state.series().snapshot(SlotIndex(0));
        for idx in 0..snap.num_edges() {
            assert_eq!(state.reserved_mbps(SlotIndex(0), EdgeId(idx as u32)), 0.0);
            assert_eq!(state.utilization(SlotIndex(0), EdgeId(idx as u32)), 0.0);
        }
        assert_eq!(state.congested_link_count(SlotIndex(0), 0.1), 0);
        assert_eq!(state.depleted_satellite_count(SlotIndex(0), 0.2), 0);
    }

    #[test]
    fn commit_reserves_bandwidth_and_energy() {
        let (mut state, src, dst) = small_state();
        // NY and Raleigh are close: often share a satellite (bent pipe).
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else {
            // Geometry didn't give a shared satellite in this build; the
            // search tests cover the general case.
            return;
        };
        let req = request(src, dst, 1000.0);
        state.try_commit_plan(&req, &plan).unwrap();
        let sp = &plan.slot_paths[0];
        for &e in &sp.edges {
            assert_eq!(state.reserved_mbps(SlotIndex(0), e), 1000.0);
            assert!(state.utilization(SlotIndex(0), e) > 0.0);
        }
        // Bent-pipe at 1000 Mbps: 7500 MB × 1.8 J/MB = 13500 J ≫ solar.
        let sat = state.satellite_index(sp.nodes[1]).unwrap();
        assert!(state.ledger().deficit_j(sat, 0) > 0.0);
    }

    #[test]
    fn overcommit_bandwidth_rejected_atomically() {
        let (mut state, src, dst) = small_state();
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 3000.0);
        state.try_commit_plan(&req, &plan).unwrap();
        // Second identical request: 6000 > 4000 Mbps USL capacity.
        let before_ledger = state.ledger().clone();
        let err = state.try_commit_plan(&req, &plan).unwrap_err();
        assert!(matches!(err, CommitError::BandwidthExceeded { .. }), "{err}");
        // Atomic: the failed commit left the ledger untouched.
        assert_eq!(state.ledger(), &before_ledger);
    }

    #[test]
    fn slot_mismatch_rejected() {
        let (mut state, src, dst) = small_state();
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(1)) else { return };
        // Request active at slot 0 but plan covers slot 1.
        let req = request(src, dst, 100.0);
        assert_eq!(state.try_commit_plan(&req, &plan), Err(CommitError::SlotMismatch));
    }

    /// Builds a random user→sat→…→user walk in the slot-0 snapshot by
    /// following out-edges with a seeded LCG; may or may not be feasible.
    fn random_plan(
        state: &NetworkState,
        src: NodeId,
        dst: NodeId,
        seed: u64,
    ) -> Option<ReservationPlan> {
        let snap = state.series().snapshot(SlotIndex(0));
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        let mut nodes = vec![src];
        let mut edges = Vec::new();
        let mut here = src;
        for _ in 0..12 {
            let out: Vec<_> = snap.out_edges(here).collect();
            if out.is_empty() {
                return None;
            }
            let (eid, e) = out[next() % out.len()];
            // Never route through a foreign user.
            if e.dst != dst && snap.kind(e.dst).is_user() {
                continue;
            }
            nodes.push(e.dst);
            edges.push(eid);
            here = e.dst;
            if here == dst {
                return Some(ReservationPlan {
                    slot_paths: vec![crate::plan::SlotPath { slot: SlotIndex(0), nodes, edges }],
                    total_cost: 0.0,
                });
            }
        }
        None
    }

    #[test]
    fn failed_commits_are_always_atomic() {
        // Property: whatever sequence of random plans we throw at the
        // state, a rejected commit leaves it bit-identical and an accepted
        // one respects the invariants.
        let (mut state, src, dst) = small_state();
        let mut committed = 0;
        let mut rejected = 0;
        for seed in 0..200u64 {
            let Some(plan) = random_plan(&state, src, dst, seed) else { continue };
            let req = request(src, dst, 1500.0 + (seed % 7) as f64 * 300.0);
            let before_ledger = state.ledger().clone();
            let before_reserved: Vec<f64> = {
                let snap = state.series().snapshot(SlotIndex(0));
                (0..snap.num_edges())
                    .map(|i| state.reserved_mbps(SlotIndex(0), EdgeId(i as u32)))
                    .collect()
            };
            match state.try_commit_plan(&req, &plan) {
                Ok(()) => committed += 1,
                Err(_) => {
                    rejected += 1;
                    assert_eq!(state.ledger(), &before_ledger, "ledger mutated on reject");
                    for (i, &before) in before_reserved.iter().enumerate() {
                        assert_eq!(
                            state.reserved_mbps(SlotIndex(0), EdgeId(i as u32)),
                            before,
                            "bandwidth mutated on reject"
                        );
                    }
                }
            }
            // Invariants always hold.
            let snap = state.series().snapshot(SlotIndex(0));
            for i in 0..snap.num_edges() {
                assert!(state.residual_mbps(SlotIndex(0), EdgeId(i as u32)) >= -1e-6);
            }
            for sat in 0..state.num_satellites() {
                assert!(state.ledger().battery_level_j(sat, 0) >= -1e-6);
            }
        }
        assert!(committed > 0, "some random walks must commit");
        assert!(rejected > 0, "saturation must eventually reject");
    }

    /// Bit-exact resource comparison across the whole horizon.
    fn assert_resources_eq(a: &NetworkState, b: &NetworkState) {
        assert_eq!(a.ledger(), b.ledger(), "ledgers differ");
        for t in 0..a.horizon() {
            let slot = SlotIndex(t as u32);
            let snap = a.series().snapshot(slot);
            for i in 0..snap.num_edges() {
                let e = EdgeId(i as u32);
                assert!(
                    a.reserved_mbps(slot, e).to_bits() == b.reserved_mbps(slot, e).to_bits(),
                    "reserved bandwidth differs at {slot} edge {i}"
                );
            }
        }
    }

    #[test]
    fn release_then_recommit_restores_state_exactly() {
        // The ISSUE's regression requirement: release_from followed by an
        // identical re-reservation restores utilization exactly — both
        // the bandwidth plane and the battery ledger, bit for bit.
        let (mut state, src, dst) = small_state();
        let Some(plan_a) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 900.0);
        state.try_commit_plan(&req, &plan_a).unwrap();
        let after_a = state.clone();

        // A second booking over (typically) the same links and satellites.
        state.try_commit_plan(&req, &plan_a).unwrap();
        let after_b = state.clone();
        let b = state.last_booking().unwrap();

        state.release_from(b, SlotIndex(0));
        assert_resources_eq(&state, &after_a);

        state.try_commit_plan(&req, &plan_a).unwrap();
        assert_resources_eq(&state, &after_b);
    }

    #[test]
    fn partial_release_keeps_served_prefix() {
        let (mut state, src, dst) = small_state();
        // A 2-slot plan: the same bent pipe in slots 0 and 1 (node motion
        // may break slot 1; skip then).
        let Some(p0) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let Some(p1) = direct_plan(&state, src, dst, SlotIndex(1)) else { return };
        let plan = ReservationPlan {
            slot_paths: vec![p0.slot_paths[0].clone(), p1.slot_paths[0].clone()],
            total_cost: 0.0,
        };
        let req = Request { end: SlotIndex(1), ..request(src, dst, 700.0) };
        state.try_commit_plan(&req, &plan).unwrap();
        let id = state.last_booking().unwrap();

        state.release_from(id, SlotIndex(1));
        // Slot 0 stays reserved, slot 1 is free again.
        for &e in &plan.slot_paths[0].edges {
            assert_eq!(state.reserved_mbps(SlotIndex(0), e), 700.0);
        }
        for &e in &plan.slot_paths[1].edges {
            assert_eq!(state.reserved_mbps(SlotIndex(1), e), 0.0);
        }
        // Releasing the same suffix again is a no-op.
        let snapshot = state.clone();
        state.release_from(id, SlotIndex(1));
        assert_resources_eq(&state, &snapshot);
    }

    #[test]
    fn release_interleaved_bookings_is_exact() {
        // Releasing a booking sandwiched between two others must leave
        // exactly the state that committing only the other two produces.
        let (mut state, src, dst) = small_state();
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 400.0);

        let mut reference = state.clone();
        reference.try_commit_plan(&req, &plan).unwrap();
        reference.try_commit_plan(&req, &plan).unwrap();

        state.try_commit_plan(&req, &plan).unwrap();
        state.try_commit_plan(&req, &plan).unwrap();
        let middle = state.last_booking().unwrap();
        state.try_commit_plan(&req, &plan).unwrap();
        state.release_from(middle, SlotIndex(0));

        // Survivors (1st, 3rd) re-fold in log order; with identical plans
        // that fold matches the reference's (1st, 2nd) bit-for-bit.
        assert_resources_eq(&state, &reference);
    }

    #[test]
    fn booking_ids_are_sequential() {
        let (mut state, src, dst) = small_state();
        assert_eq!(state.booking_count(), 0);
        assert_eq!(state.last_booking(), None);
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 100.0);
        state.try_commit_plan(&req, &plan).unwrap();
        assert_eq!(state.booking_count(), 1);
        assert_eq!(state.last_booking(), Some(BookingId(0)));
        state.try_commit_plan(&req, &plan).unwrap();
        assert_eq!(state.last_booking(), Some(BookingId(1)));
    }

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let (mut state, src, dst) = small_state();
        if let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) {
            let req = request(src, dst, 650.0);
            state.try_commit_plan(&req, &plan).unwrap();
            state.try_commit_plan(&req, &plan).unwrap();
            state.release_from(BookingId(0), SlotIndex(0));
        }
        let mut w = sb_wire::Writer::new();
        state.encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = sb_wire::Reader::new(&bytes);
        let back = NetworkState::decode_snapshot(state.series().clone(), &mut r).unwrap();
        assert!(r.is_exhausted());
        assert_resources_eq(&state, &back);
        assert_eq!(back.booking_count(), state.booking_count());
        // The restored state keeps working bit-identically: commit the
        // same plan into both and compare again.
        if let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) {
            let req = request(src, dst, 300.0);
            let mut live = state.clone();
            let mut restored = back.clone();
            assert_eq!(
                live.try_commit_plan(&req, &plan).is_ok(),
                restored.try_commit_plan(&req, &plan).is_ok()
            );
            assert_resources_eq(&live, &restored);
        }
        // And it still audits clean.
        assert!(crate::audit::audit(&back).is_clean());
    }

    #[test]
    fn snapshot_decode_rejects_truncation_and_foreign_series() {
        let (state, _, _) = small_state();
        let mut w = sb_wire::Writer::new();
        state.encode_snapshot(&mut w);
        let bytes = w.into_bytes();
        // Every truncation point errors instead of panicking. Stride to
        // keep the test quick (the buffer is tens of kilobytes).
        for cut in (0..bytes.len()).step_by(97) {
            let mut r = sb_wire::Reader::new(&bytes[..cut]);
            assert!(
                NetworkState::decode_snapshot(state.series().clone(), &mut r).is_err(),
                "cut at {cut}"
            );
        }
        // A series with a different horizon is rejected by dimension
        // checks, not a panic.
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let nodes = NetworkNodes::from_walker(&shell);
        let cfg = TopologyConfig::default();
        let foreign = TopologySeries::build(&nodes, &cfg, 2, 60.0);
        let mut r = sb_wire::Reader::new(&bytes);
        assert!(NetworkState::decode_snapshot(foreign, &mut r).is_err());
    }

    #[test]
    fn random_admit_release_sequences_keep_the_auditor_green() {
        // Satellite task: whatever interleaving of commits and (partial)
        // releases happens, the state stays exactly the fold of its own
        // booking log. Uses the same seeded-LCG plan generator as the
        // atomicity property test.
        let (mut state, src, dst) = small_state();
        let mut live: Vec<BookingId> = Vec::new();
        let mut rng: u64 = 0x5eed;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        let mut committed = 0;
        let mut released = 0;
        for round in 0..120u64 {
            if !live.is_empty() && next() % 3 == 0 {
                // Release a random booking from a random slot onward.
                let id = live.swap_remove(next() % live.len());
                let from = SlotIndex((next() % state.horizon()) as u32);
                state.release_from(id, from);
                released += 1;
            } else if let Some(plan) = random_plan(&state, src, dst, round.wrapping_mul(7919)) {
                let req = request(src, dst, 800.0 + (round % 5) as f64 * 250.0);
                if state.try_commit_plan(&req, &plan).is_ok() {
                    live.push(state.last_booking().unwrap());
                    committed += 1;
                }
            }
            if round % 10 == 0 {
                let report = crate::audit::audit(&state);
                assert!(report.is_clean(), "round {round}: {report}");
            }
        }
        let report = crate::audit::audit(&state);
        assert!(report.is_clean(), "final: {report}");
        assert!(committed > 0 && released > 0, "sequence must exercise both paths");
    }

    #[test]
    fn release_recommit_restores_exact_residuals() {
        // Satellite task: residual_mbps (what admission decisions read)
        // is restored bit-exactly by release + identical re-commit, for
        // every cell the booking touched.
        let (mut state, src, dst) = small_state();
        let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) else { return };
        let req = request(src, dst, 1200.0);
        state.try_commit_plan(&req, &plan).unwrap();
        let cells: Vec<(SlotIndex, EdgeId)> =
            plan.slot_paths.iter().flat_map(|sp| sp.edges.iter().map(|&e| (sp.slot, e))).collect();
        let before: Vec<u64> =
            cells.iter().map(|&(s, e)| state.residual_mbps(s, e).to_bits()).collect();

        let id = state.last_booking().unwrap();
        state.release_from(id, SlotIndex(0));
        state.try_commit_plan(&req, &plan).unwrap();
        let after: Vec<u64> =
            cells.iter().map(|&(s, e)| state.residual_mbps(s, e).to_bits()).collect();
        assert_eq!(before, after, "residuals differ after release + re-commit");
    }

    /// One-slot state whose only edge has the given capacity.
    fn degenerate_state(capacity_mbps: f64) -> NetworkState {
        use sb_geo::coords::Eci;
        use sb_geo::Vec3;
        use sb_topology::graph::{Edge, LinkType, TopologySnapshot};
        use sb_topology::NodeKind;
        let kinds = vec![NodeKind::GroundUser(0), NodeKind::Satellite(0)];
        let edges = vec![Edge {
            src: NodeId(0),
            dst: NodeId(1),
            link_type: LinkType::Usl,
            capacity_mbps,
            length_m: 1.0e6,
        }];
        let snap = TopologySnapshot::from_edges(
            SlotIndex(0),
            kinds,
            vec![Eci(Vec3::ZERO); 2],
            vec![true; 2],
            edges,
        );
        let series = TopologySeries::from_snapshots(vec![snap], 60.0);
        NetworkState::new(series, &EnergyParams::default())
    }

    #[test]
    fn utilization_guards_degenerate_capacity() {
        // Zero/negative/NaN capacity must never leak NaN or inf out of
        // utilization, whatever the reservation cell holds.
        let (slot, edge) = (SlotIndex(0), EdgeId(0));
        for cap in [0.0, -10.0, f64::NAN] {
            let mut state = degenerate_state(cap);
            assert_eq!(state.utilization(slot, edge), 0.0, "cap={cap}: idle");
            state.debug_set_reserved(slot, edge, 250.0);
            assert_eq!(state.utilization(slot, edge), 1.0, "cap={cap}: loaded");
        }
        // A NaN reservation over a healthy capacity reads as idle, not NaN.
        let mut state = degenerate_state(1000.0);
        state.debug_set_reserved(slot, edge, f64::NAN);
        assert_eq!(state.utilization(slot, edge), 0.0);
        // Healthy cells are unaffected by the guard.
        state.debug_set_reserved(slot, edge, 250.0);
        assert_eq!(state.utilization(slot, edge), 0.25);
    }

    #[test]
    fn slot_and_battery_generations_track_mutations() {
        let (mut state, src, dst) = small_state();
        let g0 = state.slot_bandwidth_gen(SlotIndex(0));
        let g1 = state.slot_bandwidth_gen(SlotIndex(1));
        let b0 = state.battery_gen();

        // A bandwidth write to slot 0 moves only slot 0's generation.
        state.debug_set_reserved(SlotIndex(0), EdgeId(0), 10.0);
        assert_ne!(state.slot_bandwidth_gen(SlotIndex(0)), g0);
        assert_eq!(state.slot_bandwidth_gen(SlotIndex(1)), g1);
        assert_eq!(state.battery_gen(), b0);

        // A battery bump moves only the battery generation.
        let g0 = state.slot_bandwidth_gen(SlotIndex(0));
        state.debug_bump_battery_epoch(0, 0);
        assert_ne!(state.battery_gen(), b0);
        assert_eq!(state.slot_bandwidth_gen(SlotIndex(0)), g0);

        // A commit moves the touched slot's generation and the battery
        // generation; a release moves them again.
        if let Some(plan) = direct_plan(&state, src, dst, SlotIndex(0)) {
            let req = request(src, dst, 900.0);
            let (g0, g1, b) = (
                state.slot_bandwidth_gen(SlotIndex(0)),
                state.slot_bandwidth_gen(SlotIndex(1)),
                state.battery_gen(),
            );
            state.try_commit_plan(&req, &plan).unwrap();
            assert_ne!(state.slot_bandwidth_gen(SlotIndex(0)), g0);
            assert_eq!(state.slot_bandwidth_gen(SlotIndex(1)), g1);
            assert_ne!(state.battery_gen(), b);

            let (g0, b) = (state.slot_bandwidth_gen(SlotIndex(0)), state.battery_gen());
            state.release_from(state.last_booking().unwrap(), SlotIndex(0));
            assert_ne!(state.slot_bandwidth_gen(SlotIndex(0)), g0);
            assert_ne!(state.battery_gen(), b);
        }
    }

    #[test]
    fn commit_error_display() {
        let e = CommitError::EnergyInfeasible { slot: SlotIndex(3), satellite: 17 };
        assert!(format!("{e}").contains("satellite 17"));
        let b = CommitError::BandwidthExceeded { slot: SlotIndex(0), edge: EdgeId(5) };
        assert!(format!("{b}").contains("capacity"));
    }
}
