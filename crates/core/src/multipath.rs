//! Multipath splitting (extension beyond the paper).
//!
//! Algorithm 1 reserves a *single* path per slot, which caps a request's
//! rate at the thinnest link on the best path — in practice the 4 Gbps
//! user access link. A 6 Gbps broadcast feed is simply unroutable.
//! [`MultipathCear`] generalizes the paper's formulation (whose constraint
//! 7a already allows path *sets*): when the single-path search finds no
//! feasible route, the request is split into `k` equal-rate subflows,
//! each priced and reserved by plain CEAR sequentially — so later subflows
//! see the earlier ones' reservations and the combined plan respects every
//! capacity and battery constraint. All-or-nothing semantics are kept by
//! rolling the state back if any subflow fails.
//!
//! The rollback currently snapshots the network state, which is cheap at
//! example scale and O(network size) at paper scale; use only where
//! elephant flows matter.

use crate::algorithm::{Cear, Decision, RejectReason, RoutingAlgorithm};
use crate::params::CearParams;
use crate::plan::ReservationPlan;
use crate::state::NetworkState;
use sb_demand::{RateProfile, Request};

/// CEAR with split-on-demand multipath fallback.
#[derive(Debug, Clone)]
pub struct MultipathCear {
    inner: Cear,
    max_splits: u32,
}

impl MultipathCear {
    /// Creates the wrapper; `max_splits` is the largest number of subflows
    /// tried (2 is usually enough to clear the access-link cap).
    ///
    /// # Panics
    ///
    /// Panics if `max_splits` is zero.
    pub fn new(params: CearParams, max_splits: u32) -> Self {
        assert!(max_splits >= 1, "need at least one subflow");
        MultipathCear { inner: Cear::new(params), max_splits }
    }

    /// The maximum number of subflows tried.
    pub fn max_splits(&self) -> u32 {
        self.max_splits
    }

    /// Builds the `i`-th of `k` equal subflows of a request.
    fn subflow(request: &Request, k: u32) -> Request {
        let rate = match &request.rate {
            RateProfile::Constant(r) => RateProfile::Constant(r / k as f64),
            RateProfile::PerSlot(v) => {
                RateProfile::PerSlot(v.iter().map(|r| r / k as f64).collect())
            }
        };
        Request { rate, valuation: request.valuation / k as f64, ..request.clone() }
    }
}

impl RoutingAlgorithm for MultipathCear {
    fn name(&self) -> &'static str {
        "CEAR-multipath"
    }

    fn process(&mut self, request: &Request, state: &mut NetworkState) -> Decision {
        // Plain CEAR first: single-path reservations are strictly cheaper
        // to operate, so splitting is a fallback, not a preference.
        match self.inner.process(request, state) {
            Decision::Rejected { reason: RejectReason::NoFeasiblePath } if self.max_splits >= 2 => {
            }
            decision => return decision,
        }

        for k in 2..=self.max_splits {
            let backup = state.clone();
            let sub = Self::subflow(request, k);
            let mut slot_paths = Vec::new();
            let mut price = 0.0;
            let mut all_ok = true;
            for _ in 0..k {
                match self.inner.process(&sub, state) {
                    Decision::Accepted { plan, price: p } => {
                        slot_paths.extend(plan.slot_paths);
                        price += p;
                    }
                    Decision::Rejected { .. } => {
                        all_ok = false;
                        break;
                    }
                }
            }
            if all_ok {
                // Keep the combined plan sorted by slot for readability;
                // per-slot it now lists k paths.
                slot_paths.sort_by_key(|sp| sp.slot);
                let plan = ReservationPlan { slot_paths, total_cost: price };
                return Decision::Accepted { plan, price };
            }
            *state = backup;
        }
        Decision::Rejected { reason: RejectReason::NoFeasiblePath }
    }

    fn quote_plan(
        &self,
        request: &Request,
        state: &NetworkState,
        known: Option<&crate::lifecycle::KnownFailures>,
    ) -> Result<(ReservationPlan, f64), RejectReason> {
        // Repair quotes use the single-path search only: split repairs
        // would need to commit subflows sequentially to price them, which
        // a non-mutating quote cannot do. A suffix that only fits split is
        // reported as having no feasible path.
        self.inner.quote_plan(request, state, known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{build_state, request};

    #[test]
    fn falls_back_to_single_path_when_possible() {
        let (mut state, src, dst) = build_state(1);
        let mut mp = MultipathCear::new(CearParams::default(), 4);
        let d = mp.process(&request(src, dst, 1000.0, 0, 0), &mut state);
        let Decision::Accepted { plan, .. } = d else { panic!("expected accept") };
        // One path per slot: the single-path fast path served it.
        assert_eq!(plan.slot_paths.len(), 1);
    }

    #[test]
    fn splits_rates_beyond_usl_capacity() {
        // 6 Gbps exceeds the 4 Gbps USL: plain CEAR must reject, the
        // 2-way split must carry it over two access links.
        let (mut state, src, dst) = build_state(1);
        let mut plain = Cear::new(CearParams::default());
        let big = request(src, dst, 6000.0, 0, 0);
        assert!(!plain.process(&big, &mut state.clone()).is_accepted());

        let mut mp = MultipathCear::new(CearParams::default(), 2);
        let d = mp.process(&big, &mut state);
        let Decision::Accepted { plan, .. } = d else {
            panic!("expected multipath accept, got {d:?}");
        };
        assert_eq!(plan.slot_paths.len(), 2, "two subflow paths in the slot");
        // The two subflows must leave the source over different USLs.
        let first_hops: Vec<_> = plan.slot_paths.iter().map(|sp| sp.nodes[1]).collect();
        assert_ne!(first_hops[0], first_hops[1]);
    }

    #[test]
    fn rolls_back_atomically_when_split_fails() {
        let (mut state, src, dst) = build_state(1);
        // 9 Gbps over ≤4 USLs of 4 Gbps: 2-way (4.5 each) infeasible;
        // with max_splits=2 the whole request must fail *without residue*.
        let before = state.clone();
        let mut mp = MultipathCear::new(CearParams::default(), 2);
        let d = mp.process(&request(src, dst, 9000.0, 0, 0), &mut state);
        assert!(!d.is_accepted());
        assert_eq!(state.ledger(), before.ledger(), "no energy residue");
        let slot = sb_topology::SlotIndex(0);
        let snap = state.series().snapshot(slot);
        for idx in 0..snap.num_edges() {
            let e = sb_topology::graph::EdgeId(idx as u32);
            assert_eq!(
                state.reserved_mbps(slot, e),
                before.reserved_mbps(slot, e),
                "no bandwidth residue"
            );
        }
    }

    #[test]
    fn deeper_splits_carry_more() {
        // 9 Gbps fits as 3 × 3 Gbps over three USLs.
        let (mut state, src, dst) = build_state(1);
        let mut mp = MultipathCear::new(CearParams::default(), 3);
        let d = mp.process(&request(src, dst, 9000.0, 0, 0), &mut state);
        assert!(d.is_accepted(), "3-way split should fit: {d:?}");
    }

    #[test]
    fn price_sums_subflows() {
        let (mut state, src, dst) = build_state(1);
        // Load the network to make prices nonzero, then split a big flow.
        let mut plain = Cear::new(CearParams::default());
        for _ in 0..4 {
            let _ = plain.process(&request(src, dst, 1500.0, 0, 0), &mut state);
        }
        let mut mp = MultipathCear::new(CearParams::default(), 2);
        if let Decision::Accepted { plan, price } =
            mp.process(&request(src, dst, 4500.0, 0, 0), &mut state)
        {
            assert!((plan.total_cost - price).abs() < 1e-9);
            assert!(price > 0.0, "loaded network must price the split");
        }
    }

    #[test]
    #[should_panic(expected = "at least one subflow")]
    fn zero_splits_panics() {
        let _ = MultipathCear::new(CearParams::default(), 0);
    }

    #[test]
    fn name() {
        assert_eq!(MultipathCear::new(CearParams::default(), 2).name(), "CEAR-multipath");
    }
}
