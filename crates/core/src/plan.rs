//! Reservation plans: the output of a routing decision.
//!
//! A plan `ψ_i` fixes, for every active slot of a request, the path used in
//! that slot's snapshot graph. Because the topology changes per slot, paths
//! in different slots may differ freely (the paper's `y_p(T, i)` variables
//! are per-slot).

use sb_energy::SatelliteRole;
use sb_topology::graph::EdgeId;
use sb_topology::{LinkType, NodeId, SlotIndex, TopologySnapshot};
use serde::{Deserialize, Serialize};

/// The path used in one time slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotPath {
    /// Which slot this path serves.
    pub slot: SlotIndex,
    /// The nodes along the path, source user first, destination user last.
    pub nodes: Vec<NodeId>,
    /// The edges along the path (in the slot's snapshot), `nodes.len() − 1`
    /// of them.
    pub edges: Vec<EdgeId>,
}

impl SlotPath {
    /// Number of hops (edges).
    pub fn num_hops(&self) -> usize {
        self.edges.len()
    }

    /// The satellites on the path with their energy roles, derived from the
    /// link types adjacent to each satellite (see
    /// [`SatelliteRole::from_link_types`]).
    ///
    /// # Panics
    ///
    /// Panics if the path's edges do not belong to `snapshot` or disagree
    /// with `nodes`.
    pub fn satellite_roles(&self, snapshot: &TopologySnapshot) -> Vec<(NodeId, SatelliteRole)> {
        assert_eq!(self.edges.len() + 1, self.nodes.len(), "malformed path");
        let mut roles = Vec::new();
        for (k, node) in self.nodes.iter().enumerate() {
            if !snapshot.kind(*node).is_satellite() {
                continue;
            }
            // A satellite strictly inside the path has both an incoming and
            // an outgoing edge.
            assert!(k > 0 && k < self.nodes.len() - 1, "satellite at path endpoint");
            let in_edge = snapshot.edge(self.edges[k - 1]);
            let out_edge = snapshot.edge(self.edges[k]);
            debug_assert_eq!(in_edge.dst, *node);
            debug_assert_eq!(out_edge.src, *node);
            let role = SatelliteRole::from_link_types(
                in_edge.link_type == LinkType::Isl,
                out_edge.link_type == LinkType::Isl,
            );
            roles.push((*node, role));
        }
        roles
    }

    /// Serializes the path into `w` (part of the journal and checkpoint
    /// formats; see [`SlotPath::decode`]).
    pub fn encode(&self, w: &mut sb_wire::Writer) {
        w.u32(self.slot.0);
        w.seq(&self.nodes, |w, n| w.u32(n.0));
        w.seq(&self.edges, |w, e| w.u32(e.0));
    }

    /// Restores a path written by [`SlotPath::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`sb_wire::WireError`] on truncated input.
    pub fn decode(r: &mut sb_wire::Reader<'_>) -> Result<Self, sb_wire::WireError> {
        let slot = SlotIndex(r.u32()?);
        let n = r.seq_len(4)?;
        let nodes = (0..n).map(|_| r.u32().map(NodeId)).collect::<Result<_, _>>()?;
        let n = r.seq_len(4)?;
        let edges = (0..n).map(|_| r.u32().map(EdgeId)).collect::<Result<_, _>>()?;
        Ok(SlotPath { slot, nodes, edges })
    }
}

/// A complete reservation plan for one request: one [`SlotPath`] per active
/// slot, in slot order, plus the total price quoted by the cost model that
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservationPlan {
    /// The per-slot paths, ordered by slot.
    pub slot_paths: Vec<SlotPath>,
    /// The total cost `σ(ψ_i)` of the plan under the pricing at decision
    /// time (Eq. 12); zero for cost-oblivious baselines.
    pub total_cost: f64,
}

impl ReservationPlan {
    /// The maximum hop count over all slots — the paper's `n` for this
    /// plan.
    pub fn max_hops(&self) -> usize {
        self.slot_paths.iter().map(SlotPath::num_hops).max().unwrap_or(0)
    }

    /// Total number of satellite-slot reservations in the plan.
    pub fn satellite_slot_count(&self, snapshots: &[TopologySnapshot]) -> usize {
        self.slot_paths.iter().map(|sp| sp.satellite_roles(&snapshots[sp.slot.index()]).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_geo::coords::Eci;
    use sb_geo::Vec3;
    use sb_topology::graph::{Edge, NodeKind, TopologySnapshot};

    /// user0 —USL→ sat1 —ISL→ sat2 —USL→ user3, plus a bent-pipe
    /// user0 —USL→ sat4 —USL→ user3.
    fn snapshot() -> TopologySnapshot {
        let kinds = vec![
            NodeKind::GroundUser(0),
            NodeKind::Satellite(0),
            NodeKind::Satellite(1),
            NodeKind::GroundUser(1),
            NodeKind::Satellite(2),
        ];
        let pos = vec![Eci(Vec3::ZERO); 5];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 4000.0,
            length_m: 1.0,
        };
        let edges = vec![
            mk(0, 1, LinkType::Usl),
            mk(1, 2, LinkType::Isl),
            mk(2, 3, LinkType::Usl),
            mk(0, 4, LinkType::Usl),
            mk(4, 3, LinkType::Usl),
        ];
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; 5], edges)
    }

    fn edge_id(snap: &TopologySnapshot, s: u32, d: u32) -> EdgeId {
        snap.find_edge(NodeId(s), NodeId(d)).unwrap()
    }

    #[test]
    fn roles_on_two_sat_path() {
        let snap = snapshot();
        let path = SlotPath {
            slot: SlotIndex(0),
            nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            edges: vec![edge_id(&snap, 0, 1), edge_id(&snap, 1, 2), edge_id(&snap, 2, 3)],
        };
        let roles = path.satellite_roles(&snap);
        assert_eq!(
            roles,
            vec![
                (NodeId(1), SatelliteRole::IngressGateway),
                (NodeId(2), SatelliteRole::EgressGateway),
            ]
        );
        assert_eq!(path.num_hops(), 3);
    }

    #[test]
    fn bent_pipe_role() {
        let snap = snapshot();
        let path = SlotPath {
            slot: SlotIndex(0),
            nodes: vec![NodeId(0), NodeId(4), NodeId(3)],
            edges: vec![edge_id(&snap, 0, 4), edge_id(&snap, 4, 3)],
        };
        assert_eq!(path.satellite_roles(&snap), vec![(NodeId(4), SatelliteRole::BentPipe)]);
    }

    #[test]
    fn middle_role_with_three_sats() {
        // Extend: user0→sat1→sat2 ... simulate a middle by a longer path on
        // a custom snapshot.
        let kinds = vec![
            NodeKind::GroundUser(0),
            NodeKind::Satellite(0),
            NodeKind::Satellite(1),
            NodeKind::Satellite(2),
            NodeKind::GroundUser(1),
        ];
        let pos = vec![Eci(Vec3::ZERO); 5];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 4000.0,
            length_m: 1.0,
        };
        let edges = vec![
            mk(0, 1, LinkType::Usl),
            mk(1, 2, LinkType::Isl),
            mk(2, 3, LinkType::Isl),
            mk(3, 4, LinkType::Usl),
        ];
        let snap = TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; 5], edges);
        let path = SlotPath {
            slot: SlotIndex(0),
            nodes: (0..5).map(NodeId).collect(),
            edges: (0..4).map(|k| snap.find_edge(NodeId(k), NodeId(k + 1)).unwrap()).collect(),
        };
        let roles = path.satellite_roles(&snap);
        assert_eq!(roles[0].1, SatelliteRole::IngressGateway);
        assert_eq!(roles[1].1, SatelliteRole::Middle);
        assert_eq!(roles[2].1, SatelliteRole::EgressGateway);
    }

    #[test]
    fn plan_max_hops() {
        let snap = snapshot();
        let long = SlotPath {
            slot: SlotIndex(0),
            nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            edges: vec![edge_id(&snap, 0, 1), edge_id(&snap, 1, 2), edge_id(&snap, 2, 3)],
        };
        let short = SlotPath {
            slot: SlotIndex(0),
            nodes: vec![NodeId(0), NodeId(4), NodeId(3)],
            edges: vec![edge_id(&snap, 0, 4), edge_id(&snap, 4, 3)],
        };
        let plan = ReservationPlan { slot_paths: vec![long, short], total_cost: 0.0 };
        assert_eq!(plan.max_hops(), 3);
        assert_eq!(plan.satellite_slot_count(std::slice::from_ref(&snap)), 3);
    }

    #[test]
    fn empty_plan() {
        let plan = ReservationPlan { slot_paths: vec![], total_cost: 0.0 };
        assert_eq!(plan.max_hops(), 0);
    }

    #[test]
    fn slot_path_encode_decode_roundtrips() {
        let path = SlotPath {
            slot: SlotIndex(5),
            nodes: vec![NodeId(0), NodeId(9), NodeId(3)],
            edges: vec![EdgeId(4), EdgeId(17)],
        };
        let mut w = sb_wire::Writer::new();
        path.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = sb_wire::Reader::new(&bytes);
        let back = SlotPath::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, path);
        for cut in 0..bytes.len() {
            let mut r = sb_wire::Reader::new(&bytes[..cut]);
            assert!(SlotPath::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "malformed path")]
    fn malformed_path_panics() {
        let snap = snapshot();
        let bad = SlotPath { slot: SlotIndex(0), nodes: vec![NodeId(0), NodeId(1)], edges: vec![] };
        let _ = bad.satellite_roles(&snap);
    }
}
