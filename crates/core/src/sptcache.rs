//! Goal-directed search acceleration: search-kind selection, geometry
//! caches for the A* hop-bound heuristic, and the epoch-validated
//! shortest-path-tree (SPT) cache.
//!
//! The per-slot `(node, incoming-link-type)` Dijkstra in [`crate::search`]
//! is the innermost admission kernel. This module makes it faster two ways
//! while staying **bitwise identical** to the reference search:
//!
//! * **A\*** — [`GeomCache`] precomputes, per `(slot, destination)`, a
//!   conservative lower bound on the remaining hop count (straight-line
//!   distance over the slot's longest edge, slack-rounded so float noise
//!   can never overestimate), and [`MinUnitPriceCache`] the slot's minimum
//!   link unit price. Their product is an admissible, *consistent*
//!   heuristic, and `min_cost_path_with` keeps expanding past the first
//!   goal pop until the bound proves optimality, so the returned path is
//!   the same bits as plain Dijkstra.
//! * **SPT reuse** — [`SptCache`] memoizes the destination-less settled
//!   tree per `(source, slot, cost model)`, validated against the coarse
//!   per-slot bandwidth and whole-battery generations stamped by
//!   commit/release/repair (the same invalidation discipline as
//!   `PriceCache`). The ten endpoint pairs of a request batch, and
//!   repeated quotes while a slot's state is unchanged, then answer from
//!   one settle via `path_via_tree` instead of ten full searches. Only
//!   models whose weights can survive a commit participate (see
//!   [`ModelSpec::volatile`]): congestion/energy-weighted baselines
//!   re-weight somewhere on the graph at every commit, so caching their
//!   settles thrashes — they run goal-directed A\* uncached instead.
//!
//! Validation is layered. An entry whose generations and request rate
//! match serves in O(1). When only the rate changed, the stored
//! per-edge *evaluation transcript* is replayed against the feasibility
//! prune alone (weights never depend on the rate for the baselines that
//! use this path). When the generations moved, the full transcript —
//! feasibility plus weight bits per evaluated edge — is replayed; if every
//! recorded evaluation would reproduce, the settle trajectory is
//! necessarily unchanged (the search is a deterministic function of its
//! evaluation results, by induction over the evaluation sequence), so the
//! tree is still exact. `strict` entries (CEAR, whose weights read the
//! energy overlay that the transcript does not capture) skip transcript
//! replay and validate only by exact generation + rate match.
//!
//! Destination (user-node) edges are never part of a stored tree's
//! transcript: `settle_tree_in` records them without consulting the cost
//! model and `path_via_tree` evaluates them fresh, so they need no
//! validation at all.
//!
//! `SB_NO_SPT_CACHE=1` disables SPT reuse process-wide (searches stay
//! goal-directed but uncached), mirroring `SB_NO_PREPARE_CACHE`.

use crate::parquote::EnergyProbe;
use crate::pricecache::PriceCache;
use crate::search::{
    path_via_tree, settle_tree_in, EdgeContext, FoundPath, SearchScratch, SettledTree,
};
use crate::state::NetworkState;
use sb_topology::graph::EdgeId;
use sb_topology::{LinkType, NodeId, SlotIndex, TopologySeries};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which search kernel an algorithm instance runs.
///
/// Both kinds return bitwise-identical `FoundPath`s (proven by property
/// tests); they differ only in how much of the frontier they explore and
/// whether settled trees are reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchKind {
    /// Plain Dijkstra (the `ZeroHeuristic` instantiation), no tree reuse.
    Reference,
    /// Goal-directed A\* with the hop-bound heuristic, plus SPT caching
    /// unless `SB_NO_SPT_CACHE=1`.
    #[default]
    Astar,
}

impl std::str::FromStr for SearchKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(SearchKind::Reference),
            "astar" => Ok(SearchKind::Astar),
            other => Err(format!("unknown search kind '{other}' (expected reference|astar)")),
        }
    }
}

impl std::fmt::Display for SearchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SearchKind::Reference => "reference",
            SearchKind::Astar => "astar",
        })
    }
}

/// True when `SB_NO_SPT_CACHE=1` was set at first query: the SPT cache is
/// bypassed process-wide (A\* still runs). Read once and latched, like the
/// prepared-network cache's `SB_NO_PREPARE_CACHE`.
pub fn spt_cache_disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| std::env::var("SB_NO_SPT_CACHE").is_ok_and(|v| v == "1"))
}

/// Relative slack applied to per-hop cost floors before they enter the
/// heuristic, so floating-point rounding in `hops × unit` can never tip an
/// exact lower bound into inadmissibility.
pub(crate) const UNIT_SLACK: f64 = 1.0 - 1e-9;

/// SPT-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SptStats {
    /// Lookups served from a validated stored tree.
    pub hits: u64,
    /// Lookups that built (or rebuilt) a tree.
    pub misses: u64,
    /// Lookups that noted the key for promotion and searched directly
    /// (promotion-gated caches only).
    pub deferred: u64,
}

impl SptStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.deferred
    }

    /// Fraction of lookups served from a stored tree (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SptStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.deferred += other.deferred;
    }
}

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_DEFERRED: AtomicU64 = AtomicU64::new(0);

/// Process-wide SPT counters summed over every cache instance on every
/// thread (benchmarks read these around a sweep).
pub fn global_spt_stats() -> SptStats {
    SptStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
        deferred: GLOBAL_DEFERRED.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide SPT counters.
pub fn reset_global_spt_stats() {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
    GLOBAL_DEFERRED.store(0, Ordering::Relaxed);
}

/// Per-`TopologySeries` geometry for the hop-bound heuristic: the longest
/// edge reach per slot and, per `(slot, destination)`, the conservative
/// per-node hop lower bounds. Anchored on the series `Arc` identity (the
/// held clone keeps the allocation alive, so pointer equality cannot
/// alias two different series).
#[derive(Debug, Clone, Default)]
pub(crate) struct GeomCache {
    anchor: Option<Arc<TopologySeries>>,
    reach: HashMap<u32, f64>,
    hops: HashMap<(u32, u32), Arc<Vec<u32>>>,
}

impl GeomCache {
    fn ensure_anchor(&mut self, series: &Arc<TopologySeries>) {
        let stale = match &self.anchor {
            Some(a) => !Arc::ptr_eq(a, series),
            None => true,
        };
        if stale {
            self.anchor = Some(Arc::clone(series));
            self.reach.clear();
            self.hops.clear();
        }
    }

    /// The slot's maximum per-hop reach: the longest straight-line
    /// endpoint distance over all edges in the snapshot.
    pub(crate) fn max_hop_reach_m(&mut self, series: &Arc<TopologySeries>, slot: SlotIndex) -> f64 {
        self.ensure_anchor(series);
        *self.reach.entry(slot.0).or_insert_with(|| {
            let snapshot = series.snapshot(slot);
            let mut reach = 0.0f64;
            for edge in snapshot.edges() {
                let span = snapshot.position(edge.src).distance(snapshot.position(edge.dst));
                reach = reach.max(span);
            }
            reach
        })
    }

    /// Per-node hop lower bounds toward `destination` in `slot`.
    pub(crate) fn hop_bounds(
        &mut self,
        series: &Arc<TopologySeries>,
        slot: SlotIndex,
        destination: NodeId,
    ) -> Arc<Vec<u32>> {
        self.ensure_anchor(series);
        if let Some(bounds) = self.hops.get(&(slot.0, destination.0)) {
            return Arc::clone(bounds);
        }
        if self.hops.len() >= 8192 {
            self.hops.clear();
        }
        let reach = self.max_hop_reach_m(series, slot);
        let snapshot = series.snapshot(slot);
        let goal = snapshot.position(destination);
        let bounds: Vec<u32> = (0..snapshot.num_nodes())
            .map(|i| {
                let here = snapshot.position(NodeId(i as u32));
                sb_geo::conservative_hop_count(here.distance(goal), reach)
            })
            .collect();
        let bounds = Arc::new(bounds);
        self.hops.insert((slot.0, destination.0), Arc::clone(&bounds));
        bounds
    }
}

/// Per-slot minimum link unit price, validated against the slot's
/// bandwidth generation — the state-dependent part of CEAR's heuristic
/// floor, recomputed only when the slot's reservations change.
#[derive(Debug, Clone, Default)]
pub(crate) struct MinUnitPriceCache {
    map: HashMap<u32, (u64, f64)>,
}

impl MinUnitPriceCache {
    /// The minimum unit price over every edge of the slot (≥ 0; 0 when
    /// the slot has no edges).
    pub(crate) fn min_unit_price(
        &mut self,
        state: &NetworkState,
        slot: SlotIndex,
        prices: &mut PriceCache,
    ) -> f64 {
        let gen = state.slot_bandwidth_gen(slot);
        if let Some(&(cached_gen, value)) = self.map.get(&slot.0) {
            if cached_gen == gen {
                return value;
            }
        }
        let num_edges = state.series().snapshot(slot).num_edges();
        let mut min = f64::INFINITY;
        for id in 0..num_edges as u32 {
            min = min.min(prices.link_unit_price(state, slot, EdgeId(id)));
        }
        let value = if min.is_finite() { min.max(0.0) } else { 0.0 };
        self.map.insert(slot.0, (gen, value));
        value
    }
}

/// Identifies a baseline cost model inside an [`SptKey`]: a stable
/// discriminant-plus-parameter hash and the model's per-edge cost floor
/// (used as the A\* heuristic unit).
///
/// Contract for SPT reuse: the weight function must be a pure function of
/// `(edge, incoming, slot, state)` — the transcript replay re-evaluates it
/// against the live state and trusts bit equality.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ModelSpec {
    /// Discriminates cost models (and their parameters) sharing a cache.
    pub key: u64,
    /// Lower bound on any single edge weight (unscaled).
    pub floor: f64,
    /// Whether the weights read mutable reservation state (utilization,
    /// battery). Volatile models bypass the SPT cache: every commit moves
    /// their weights somewhere on the graph, so a cached settle almost
    /// never survives transcript replay and each rebuild costs a full
    /// settle where a bounded goal-directed search would do. They still
    /// run A\*; only the tree memoization is skipped.
    pub volatile: bool,
}

/// FNV-1a over a model discriminant and its parameter bit patterns.
pub(crate) fn model_key(discriminant: u64, param_bits: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = (OFFSET ^ discriminant).wrapping_mul(PRIME);
    for &bits in param_bits {
        hash = (hash ^ bits).wrapping_mul(PRIME);
    }
    hash
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SptKey {
    slot: u32,
    source: u32,
    model: u64,
}

/// One recorded cost-model evaluation from a settle: which edge, under
/// which incoming link type, whether the bandwidth prune passed, and the
/// returned weight's bit pattern (`u64::MAX` encodes `None`).
#[derive(Debug, Clone, Copy)]
struct EdgeEval {
    edge: EdgeId,
    incoming_code: u8,
    feasible: bool,
    cost_bits: u64,
}

const NO_WEIGHT_BITS: u64 = u64::MAX;

fn weight_bits(weight: Option<f64>) -> u64 {
    match weight {
        Some(w) => w.to_bits(),
        None => NO_WEIGHT_BITS,
    }
}

impl EdgeEval {
    fn new(edge: EdgeId, incoming: Option<LinkType>, feasible: bool, weight: Option<f64>) -> Self {
        let incoming_code = match incoming {
            None => 0,
            Some(LinkType::Isl) => 1,
            Some(LinkType::Usl) => 2,
        };
        EdgeEval { edge, incoming_code, feasible, cost_bits: weight_bits(weight) }
    }

    fn incoming(self) -> Option<LinkType> {
        match self.incoming_code {
            0 => None,
            1 => Some(LinkType::Isl),
            _ => Some(LinkType::Usl),
        }
    }
}

#[derive(Debug, Clone)]
struct SptEntry {
    tree: SettledTree,
    /// Every cost-model evaluation of the settle, in evaluation order —
    /// the revalidation transcript (empty for `strict` entries).
    evals: Vec<EdgeEval>,
    /// Energy probes recorded at build, replayed on hits so speculative
    /// phase-2 validation still sees every ledger read (CEAR only).
    probes: Vec<EnergyProbe>,
    /// Strict entries validate only by exact generation + rate match.
    strict: bool,
    slot_gen: u64,
    battery_gen: u64,
    rate_bits: u64,
    tick: u64,
}

/// Outcome of a strict (generation-exact) cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StrictLookup {
    /// A stored tree is valid: serve via [`SptCache::strict_entry`].
    Hit,
    /// The key has now been requested twice with stable generations —
    /// build a tree and [`SptCache::insert_strict`] it.
    Build,
    /// First sighting of the key at these generations — search directly.
    Defer,
}

/// Memoized settled shortest-path trees keyed on `(slot, source, cost
/// model)`, validated against the state's coarse slot-bandwidth and
/// battery generations. Bounded LRU (least-recent `tick` evicted).
#[derive(Debug, Clone)]
pub(crate) struct SptCache {
    /// The topology series the entries were built over. Trees and
    /// transcripts index edges of one concrete graph, so a cache shared
    /// across runs (the baselines keep one per thread) must flush when
    /// the series changes; pointer identity is sufficient (any anchored
    /// clone keeps the allocation alive, so `Arc::ptr_eq` cannot alias
    /// two different series).
    anchor: Option<Arc<TopologySeries>>,
    entries: HashMap<SptKey, SptEntry>,
    /// Promotion gate for strict lookups: keys seen once, with the
    /// generations and rate observed at that miss.
    pending: HashMap<SptKey, (u64, u64, u64)>,
    cap: usize,
    tick: u64,
    /// Local counters (also mirrored into the process-wide totals).
    pub(crate) stats: SptStats,
}

impl Default for SptCache {
    /// The default capacity fits a request batch's worth of distinct
    /// `(source, slot)` pairs without unbounded growth.
    fn default() -> Self {
        SptCache::new(64)
    }
}

impl SptCache {
    pub(crate) fn new(cap: usize) -> Self {
        SptCache {
            anchor: None,
            entries: HashMap::new(),
            pending: HashMap::new(),
            cap: cap.max(1),
            tick: 0,
            stats: SptStats::default(),
        }
    }

    /// Re-anchors the cache on `series`, flushing every entry (and the
    /// promotion gate) when it is not the series the entries were built
    /// over. Generation validation alone cannot catch this: edge ids and
    /// tree arrays are only meaningful against their own graph.
    pub(crate) fn ensure_anchor(&mut self, series: &Arc<TopologySeries>) {
        let stale = match &self.anchor {
            Some(a) => !Arc::ptr_eq(a, series),
            None => true,
        };
        if stale {
            self.anchor = Some(Arc::clone(series));
            self.entries.clear();
            self.pending.clear();
        }
    }

    fn insert(&mut self, key: SptKey, entry: SptEntry) {
        if self.entries.len() >= self.cap && !self.entries.contains_key(&key) {
            if let Some(oldest) = self.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| *k) {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, entry);
    }

    fn count_hit(&mut self) {
        self.stats.hits += 1;
        GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
    }

    fn count_miss(&mut self) {
        self.stats.misses += 1;
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
    }

    fn count_deferred(&mut self) {
        self.stats.deferred += 1;
        GLOBAL_DEFERRED.fetch_add(1, Ordering::Relaxed);
    }

    /// Strict probe: a hit requires exact generation and rate match (no
    /// transcript replay). On miss, the promotion gate decides between
    /// building now and deferring — engine sweeps rarely repeat a
    /// `(source, slot, rate)` key, and a full settle costs far more than
    /// one bounded A\*, so a tree is only built once the key proves it
    /// recurs.
    pub(crate) fn probe_strict(
        &mut self,
        slot: SlotIndex,
        source: NodeId,
        model: u64,
        slot_gen: u64,
        battery_gen: u64,
        rate_bits: u64,
    ) -> StrictLookup {
        self.tick += 1;
        let key = SptKey { slot: slot.0, source: source.0, model };
        if let Some(entry) = self.entries.get_mut(&key) {
            if entry.slot_gen == slot_gen
                && entry.battery_gen == battery_gen
                && entry.rate_bits == rate_bits
            {
                entry.tick = self.tick;
                self.count_hit();
                return StrictLookup::Hit;
            }
        }
        match self.pending.get(&key) {
            Some(&(sg, bg, rb)) if sg == slot_gen && bg == battery_gen && rb == rate_bits => {
                self.pending.remove(&key);
                self.count_miss();
                StrictLookup::Build
            }
            _ => {
                if self.pending.len() >= 1024 {
                    self.pending.clear();
                }
                self.pending.insert(key, (slot_gen, battery_gen, rate_bits));
                self.count_deferred();
                StrictLookup::Defer
            }
        }
    }

    /// The tree and build-time probes behind a [`StrictLookup::Hit`].
    pub(crate) fn strict_entry(
        &self,
        slot: SlotIndex,
        source: NodeId,
        model: u64,
    ) -> (&SettledTree, &[EnergyProbe]) {
        let key = SptKey { slot: slot.0, source: source.0, model };
        let entry = self.entries.get(&key).expect("strict_entry without a Hit probe");
        (&entry.tree, &entry.probes)
    }

    /// Stores a strict entry built after [`StrictLookup::Build`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_strict(
        &mut self,
        slot: SlotIndex,
        source: NodeId,
        model: u64,
        slot_gen: u64,
        battery_gen: u64,
        rate_bits: u64,
        tree: SettledTree,
        probes: Vec<EnergyProbe>,
    ) {
        let key = SptKey { slot: slot.0, source: source.0, model };
        let tick = self.tick;
        self.insert(
            key,
            SptEntry {
                tree,
                evals: Vec::new(),
                probes,
                strict: true,
                slot_gen,
                battery_gen,
                rate_bits,
                tick,
            },
        );
    }
}

/// Routes one baseline slot through the SPT cache: serves from a stored
/// tree when its transcript still validates, otherwise settles a fresh
/// tree (recording the transcript) and stores it. Either way the answer
/// is bitwise what `min_cost_path_in` would have returned, because the
/// settle uses the canonical tie-breaking and destination edges are
/// evaluated fresh by `path_via_tree`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn baseline_route_slot<W>(
    cache: &mut SptCache,
    scratch: &mut SearchScratch,
    state: &NetworkState,
    slot: SlotIndex,
    source: NodeId,
    destination: NodeId,
    rate: f64,
    model: ModelSpec,
    weight: &mut W,
) -> Option<FoundPath>
where
    W: FnMut(&EdgeContext<'_>, SlotIndex, &NetworkState) -> Option<f64>,
{
    cache.ensure_anchor(state.series_arc());
    let snapshot = state.series().snapshot(slot);
    let key = SptKey { slot: slot.0, source: source.0, model: model.key };
    let slot_gen = state.slot_bandwidth_gen(slot);
    let battery_gen = state.battery_gen();
    let rate_bits = rate.to_bits();
    cache.tick += 1;
    let tick = cache.tick;

    let feasible = |edge: EdgeId| state.residual_mbps(slot, edge) + 1e-9 >= rate;

    if let Some(entry) = cache.entries.get_mut(&key) {
        let valid = if entry.slot_gen == slot_gen && entry.battery_gen == battery_gen {
            // Same state: weights unchanged; a different rate can only
            // move the feasibility prune, so replay just that.
            entry.rate_bits == rate_bits
                || (!entry.strict && entry.evals.iter().all(|ev| feasible(ev.edge) == ev.feasible))
        } else {
            // State moved on: replay the full transcript. If every
            // recorded evaluation reproduces, the settle trajectory — and
            // so the tree — is unchanged.
            !entry.strict
                && entry.evals.iter().all(|ev| {
                    if feasible(ev.edge) != ev.feasible {
                        return false;
                    }
                    if !ev.feasible {
                        return true;
                    }
                    let edge = snapshot.edge(ev.edge);
                    let ctx = EdgeContext {
                        slot,
                        edge_id: ev.edge,
                        edge: &edge,
                        incoming: ev.incoming(),
                    };
                    weight_bits(weight(&ctx, slot, state)) == ev.cost_bits
                })
        };
        if valid {
            entry.slot_gen = slot_gen;
            entry.battery_gen = battery_gen;
            entry.rate_bits = rate_bits;
            entry.tick = tick;
            let found = path_via_tree(&entry.tree, snapshot, source, destination, |ctx| {
                if !feasible(ctx.edge_id) {
                    return None;
                }
                weight(ctx, slot, state)
            });
            cache.count_hit();
            return found;
        }
    }

    let mut evals: Vec<EdgeEval> = Vec::new();
    let tree = settle_tree_in(scratch, snapshot, source, |ctx| {
        let ok = feasible(ctx.edge_id);
        let w = if ok { weight(ctx, slot, state) } else { None };
        evals.push(EdgeEval::new(ctx.edge_id, ctx.incoming, ok, w));
        w
    });
    let found = path_via_tree(&tree, snapshot, source, destination, |ctx| {
        if !feasible(ctx.edge_id) {
            return None;
        }
        weight(ctx, slot, state)
    });
    cache.insert(
        key,
        SptEntry {
            tree,
            evals,
            probes: Vec::new(),
            strict: false,
            slot_gen,
            battery_gen,
            rate_bits,
            tick,
        },
    );
    cache.count_miss();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_kind_parses_and_rejects() {
        assert_eq!("reference".parse::<SearchKind>().unwrap(), SearchKind::Reference);
        assert_eq!("astar".parse::<SearchKind>().unwrap(), SearchKind::Astar);
        assert!("dijkstra".parse::<SearchKind>().is_err());
        assert!("".parse::<SearchKind>().is_err());
        assert!("Astar".parse::<SearchKind>().is_err());
        assert_eq!(SearchKind::Reference.to_string(), "reference");
        assert_eq!(SearchKind::Astar.to_string(), "astar");
        assert_eq!(SearchKind::default(), SearchKind::Astar);
    }

    #[test]
    fn model_key_separates_models_and_params() {
        let a = model_key(1, &[]);
        let b = model_key(2, &[]);
        let c = model_key(2, &[0.3f64.to_bits()]);
        let d = model_key(2, &[0.35f64.to_bits()]);
        assert_ne!(a, b);
        assert_ne!(c, d);
        assert_eq!(c, model_key(2, &[0.3f64.to_bits()]));
    }

    #[test]
    fn spt_stats_rates() {
        let mut s = SptStats { hits: 3, misses: 1, deferred: 0 };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        s.merge(&SptStats { hits: 1, misses: 1, deferred: 2 });
        assert_eq!(s, SptStats { hits: 4, misses: 2, deferred: 2 });
        assert_eq!(SptStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn strict_probe_promotes_on_second_sighting() {
        let mut cache = SptCache::new(4);
        let slot = SlotIndex(0);
        let src = NodeId(7);
        assert_eq!(cache.probe_strict(slot, src, 1, 10, 20, 30), StrictLookup::Defer);
        // Different generations re-defer (the pending note is stale).
        assert_eq!(cache.probe_strict(slot, src, 1, 11, 20, 30), StrictLookup::Defer);
        // Same key + same generations: promote.
        assert_eq!(cache.probe_strict(slot, src, 1, 11, 20, 30), StrictLookup::Build);
        cache.insert_strict(
            slot,
            src,
            1,
            11,
            20,
            30,
            SettledTree { dist: vec![], pred: vec![], user_edges: vec![] },
            Vec::new(),
        );
        assert_eq!(cache.probe_strict(slot, src, 1, 11, 20, 30), StrictLookup::Hit);
        // A generation bump invalidates; the stale entry defers again.
        assert_eq!(cache.probe_strict(slot, src, 1, 12, 20, 30), StrictLookup::Defer);
        assert_eq!(cache.stats, SptStats { hits: 1, misses: 1, deferred: 3 });
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let mut cache = SptCache::new(2);
        let empty = || SettledTree { dist: vec![], pred: vec![], user_edges: vec![] };
        for (i, model) in [1u64, 2, 3].iter().enumerate() {
            // Two sightings to promote, then insert.
            cache.probe_strict(SlotIndex(0), NodeId(i as u32), *model, 1, 1, 1);
            cache.probe_strict(SlotIndex(0), NodeId(i as u32), *model, 1, 1, 1);
            cache.insert_strict(SlotIndex(0), NodeId(i as u32), *model, 1, 1, 1, empty(), vec![]);
        }
        assert_eq!(cache.entries.len(), 2);
        // The first-inserted (oldest-tick) entry was evicted.
        assert_eq!(cache.probe_strict(SlotIndex(0), NodeId(0), 1, 1, 1, 1), StrictLookup::Defer);
        assert_eq!(cache.probe_strict(SlotIndex(0), NodeId(2), 3, 1, 1, 1), StrictLookup::Hit);
    }
}
