//! Battery-wear accounting.
//!
//! The paper's §I motivation: "excessive energy consumption can degrade
//! batteries, shorten satellite lifespans, and compromise overall network
//! performance", and batteries cannot be replaced on orbit. This module
//! turns a completed [`EnergyLedger`] into the standard wear figures used
//! in battery sizing:
//!
//! * **discharge throughput** — total energy drawn from the battery over
//!   the horizon (joules);
//! * **equivalent full cycles** — throughput ÷ capacity, the metric cycle
//!   ratings are quoted against;
//! * **maximum depth of discharge (DoD)** — the deepest excursion, which
//!   dominates Li-ion aging;
//! * a coarse **lifetime projection** from a rated cycle count at the
//!   observed cycling rate.

use crate::ledger::EnergyLedger;
use serde::{Deserialize, Serialize};

/// Rated full cycles of a LEO-qualified Li-ion pack at moderate DoD — the
/// order of magnitude used for 10–15-year missions (≈ 30 000 cycles at
/// ~25 % DoD).
pub const DEFAULT_RATED_CYCLES: f64 = 30_000.0;

/// Wear figures for one satellite over the simulated horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SatelliteWear {
    /// Total energy drawn from the battery, joules.
    pub discharge_throughput_j: f64,
    /// Equivalent full cycles = throughput / capacity.
    pub equivalent_cycles: f64,
    /// Deepest depth of discharge observed, fraction of capacity `[0, 1]`.
    pub max_depth_of_discharge: f64,
}

/// Computes per-satellite wear from a ledger's deficit history.
///
/// Discharge throughput is the sum of positive slot-to-slot deficit
/// increases (energy can only leave the battery when the cumulative
/// deficit grows; repayment by solar surplus is charging, not discharge).
pub fn wear_per_satellite(ledger: &EnergyLedger) -> Vec<SatelliteWear> {
    let capacity = ledger.params().battery_capacity_j;
    (0..ledger.num_satellites())
        .map(|s| {
            let mut throughput = 0.0;
            let mut max_deficit: f64 = 0.0;
            let mut prev = 0.0;
            for t in 0..ledger.horizon() {
                let d = ledger.deficit_j(s, t);
                if d > prev {
                    throughput += d - prev;
                }
                max_deficit = max_deficit.max(d);
                prev = d;
            }
            SatelliteWear {
                discharge_throughput_j: throughput,
                equivalent_cycles: if capacity > 0.0 { throughput / capacity } else { 0.0 },
                max_depth_of_discharge: if capacity > 0.0 {
                    (max_deficit / capacity).min(1.0)
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Fleet-level summary of [`wear_per_satellite`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetWear {
    /// Mean equivalent full cycles across the fleet.
    pub mean_equivalent_cycles: f64,
    /// Worst satellite's equivalent cycles.
    pub max_equivalent_cycles: f64,
    /// Worst satellite's depth of discharge.
    pub max_depth_of_discharge: f64,
}

impl FleetWear {
    /// Aggregates per-satellite wear.
    pub fn from_satellites(wear: &[SatelliteWear]) -> FleetWear {
        if wear.is_empty() {
            return FleetWear::default();
        }
        FleetWear {
            mean_equivalent_cycles: wear.iter().map(|w| w.equivalent_cycles).sum::<f64>()
                / wear.len() as f64,
            max_equivalent_cycles: wear.iter().map(|w| w.equivalent_cycles).fold(0.0, f64::max),
            max_depth_of_discharge: wear
                .iter()
                .map(|w| w.max_depth_of_discharge)
                .fold(0.0, f64::max),
        }
    }

    /// Years until the *worst-cycled* satellite exhausts `rated_cycles`,
    /// extrapolating the observed cycling rate over `horizon_s` seconds of
    /// simulated time. `None` when no cycling was observed.
    pub fn projected_lifetime_years(&self, rated_cycles: f64, horizon_s: f64) -> Option<f64> {
        if self.max_equivalent_cycles <= 0.0 || horizon_s <= 0.0 {
            return None;
        }
        let cycles_per_second = self.max_equivalent_cycles / horizon_s;
        Some(rated_cycles / cycles_per_second / (365.25 * 86_400.0))
    }
}

/// Convenience: fleet wear straight from a ledger.
pub fn fleet_wear(ledger: &EnergyLedger) -> FleetWear {
    FleetWear::from_satellites(&wear_per_satellite(ledger))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnergyParams;

    fn ledger(profiles: &[Vec<bool>]) -> EnergyLedger {
        EnergyLedger::new(&EnergyParams::default(), 60.0, profiles)
    }

    #[test]
    fn untouched_fleet_has_no_wear() {
        let l = ledger(&[vec![true; 4], vec![false; 4]]);
        let wear = wear_per_satellite(&l);
        assert!(wear.iter().all(|w| w.equivalent_cycles == 0.0));
        assert_eq!(FleetWear::from_satellites(&wear), FleetWear::default());
        assert_eq!(fleet_wear(&l).projected_lifetime_years(30_000.0, 240.0), None);
    }

    #[test]
    fn single_discharge_counts_once() {
        let mut l = ledger(&[vec![false, false, true, true]]);
        // 5000 J drawn in umbra, repaid in sunlight later.
        l.commit(0, 0, 5000.0);
        let w = &wear_per_satellite(&l)[0];
        assert!((w.discharge_throughput_j - 5000.0).abs() < 1e-9);
        assert!((w.equivalent_cycles - 5000.0 / 117_000.0).abs() < 1e-12);
        assert!((w.max_depth_of_discharge - 5000.0 / 117_000.0).abs() < 1e-12);
    }

    #[test]
    fn repayment_is_not_discharge() {
        // Deficit rises to 5000 then falls back to 0: throughput must be
        // 5000, not 10000.
        let mut l = ledger(&[vec![false, true, true, true, true, true]]);
        l.commit(0, 0, 5000.0);
        let w = &wear_per_satellite(&l)[0];
        assert!((w.discharge_throughput_j - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_cycling_accumulates() {
        // Discharge 2000 J in each umbra slot of an alternating profile:
        // each is repaid before the next, so deficits cycle 0→2000→0…
        let profile: Vec<bool> = (0..8).map(|t| t % 2 == 1).collect();
        let mut l = ledger(&[profile]);
        for t in [0, 2, 4, 6] {
            l.commit(0, t, 2000.0);
        }
        let w = &wear_per_satellite(&l)[0];
        // Solar repays 1200 of each 2000 within the same... actually each
        // commit lands in an umbra slot (deficit 2000), repaid next slot
        // (solar 1200 covers 1200, remainder 800 rolls)… total discharge
        // equals total committed energy not covered by same-slot solar.
        assert!(w.discharge_throughput_j > 2000.0, "cycling should accumulate");
        assert!(w.equivalent_cycles > 0.017);
    }

    #[test]
    fn fleet_summary_and_lifetime() {
        let mut l = ledger(&[vec![false; 4], vec![false; 4]]);
        l.commit(0, 0, 58_500.0); // 50% DoD
        let fleet = fleet_wear(&l);
        assert!((fleet.max_depth_of_discharge - 0.5).abs() < 1e-9);
        assert!(fleet.max_equivalent_cycles > 0.0);
        assert!(fleet.mean_equivalent_cycles < fleet.max_equivalent_cycles);
        // 0.5 equivalent cycles over 240 s → 30000 cycles last 0.0456 yr.
        let yrs = fleet.projected_lifetime_years(30_000.0, 240.0).unwrap();
        assert!(yrs > 0.0 && yrs < 1.0, "lifetime {yrs} years");
    }

    #[test]
    fn dod_capped_at_one() {
        let w = SatelliteWear {
            discharge_throughput_j: 1.0,
            equivalent_cycles: 1.0,
            max_depth_of_discharge: 1.0,
        };
        assert!(w.max_depth_of_discharge <= 1.0);
    }
}
