//! Satellite energy model: solar harvest, battery, and the deficit
//! recursion of the CEAR paper (Eqs. 1–5).
//!
//! The paper's key modeling insight is that satellite energy is neither a
//! purely instantaneous resource (like link bandwidth) nor a simple budget:
//!
//! * in **sunlight** the solar panel harvests a fixed power; energy used up
//!   to that input is free (and surplus input is *wasted* once the battery
//!   is full — it cannot be banked beyond capacity);
//! * in **umbra** (or when consumption exceeds solar input) the battery
//!   discharges, creating a **deficit** that persists — and keeps hurting —
//!   every slot until future solar surplus repays it.
//!
//! [`params`] holds the physical constants and the role-dependent
//! per-request consumption of Eq. (1); [`ledger`] implements the per-slot
//! deficit recursion of Eqs. (2)–(5) with both a non-mutating *peek* (used
//! by the pricing layer to cost a candidate path) and an exact *commit*
//! (Algorithm 1 lines 9–16).
//!
//! # Example
//!
//! ```
//! use sb_energy::params::{EnergyParams, SatelliteRole};
//! use sb_energy::ledger::EnergyLedger;
//!
//! let params = EnergyParams::default();
//! // One satellite, 4 slots of 60 s: sunlit, umbra, umbra, sunlit.
//! let sunlit = vec![vec![true, false, false, true]];
//! let mut ledger = EnergyLedger::new(&params, 60.0, &sunlit);
//!
//! // Relay 1250 Mbps through the satellite during the first umbra slot.
//! let joules = params.consumption_j(SatelliteRole::Middle, 1250.0, 60.0);
//! let trace = ledger.peek(0, 1, joules).expect("battery can absorb this");
//! assert!(trace.added_deficit_j > 0.0);
//! ledger.commit(0, 1, joules);
//! assert!(ledger.battery_level_j(0, 1) < params.battery_capacity_j);
//! ```

#![warn(missing_docs)]
pub mod ledger;
pub mod overlay;
pub mod params;
pub mod wear;

pub use ledger::{DeficitTrace, EnergyLedger};
pub use overlay::{LedgerDelta, LedgerOverlay};
pub use params::{EnergyParams, SatelliteRole};
pub use wear::{fleet_wear, FleetWear, SatelliteWear};
