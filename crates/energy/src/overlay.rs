//! Transactional view over an [`EnergyLedger`].
//!
//! Committing a multi-slot reservation plan must be atomic: a request that
//! is feasible slot-by-slot in isolation can become infeasible once its own
//! earlier slots have consumed the satellite's solar input. The overlay
//! runs the exact commit recursion against a copy-on-write view; the caller
//! either [`EnergyLedger::absorb`]s the overlay (all slots fit) or drops it
//! (no state was touched).

use crate::ledger::{DeficitTrace, EnergyLedger};
use std::collections::HashMap;

/// The pending changes of a [`LedgerOverlay`], detached from the ledger
/// borrow so they can be absorbed.
#[derive(Debug, Clone, Default)]
pub struct LedgerDelta {
    solar: HashMap<usize, f64>,
    deficit: HashMap<usize, f64>,
}

impl LedgerDelta {
    pub(crate) fn into_parts(self) -> (HashMap<usize, f64>, HashMap<usize, f64>) {
        (self.solar, self.deficit)
    }

    /// Flat ledger indices (see [`EnergyLedger::flat_index`]) whose
    /// cumulative deficit this delta modifies, in unspecified order.
    ///
    /// Deficit cells are exactly what
    /// [`EnergyLedger::battery_utilization`] reads, so absorbing the delta
    /// invalidates cached battery prices for these cells and no others.
    pub fn deficit_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.deficit.keys().copied()
    }
}

/// A copy-on-write transactional view of an [`EnergyLedger`].
///
/// Create with [`EnergyLedger::overlay`]; apply with
/// [`EnergyLedger::absorb`].
///
/// # Example
///
/// ```
/// use sb_energy::{EnergyLedger, EnergyParams};
///
/// let params = EnergyParams::default();
/// let mut ledger = EnergyLedger::new(&params, 60.0, &[vec![false, false]]);
/// let mut tx = ledger.overlay();
/// assert!(tx.try_commit(0, 0, 500.0).is_some());
/// assert_eq!(ledger.deficit_j(0, 0), 0.0); // nothing applied yet
/// let delta = tx.into_delta();
/// ledger.absorb(delta);
/// assert_eq!(ledger.deficit_j(0, 0), 500.0);
/// ```
#[derive(Debug)]
pub struct LedgerOverlay<'a> {
    base: &'a EnergyLedger,
    /// Modified remaining-solar entries, by flat index.
    solar: HashMap<usize, f64>,
    /// Modified cumulative-deficit entries, by flat index.
    deficit: HashMap<usize, f64>,
}

impl<'a> LedgerOverlay<'a> {
    pub(crate) fn new(base: &'a EnergyLedger) -> Self {
        LedgerOverlay { base, solar: HashMap::new(), deficit: HashMap::new() }
    }

    /// Detaches the pending changes from the borrowed ledger so they can
    /// be applied with [`EnergyLedger::absorb`].
    pub fn into_delta(self) -> LedgerDelta {
        LedgerDelta { solar: self.solar, deficit: self.deficit }
    }

    /// Is the overlay a ledger view with no pending changes?
    pub fn is_clean(&self) -> bool {
        self.solar.is_empty() && self.deficit.is_empty()
    }

    /// Remaining solar energy of `sat` at slot `t` as seen through the
    /// overlay.
    pub fn remaining_solar_j(&self, sat: usize, t: usize) -> f64 {
        let i = self.base.flat_index(sat, t);
        *self.solar.get(&i).unwrap_or(&self.base.solar_flat(i))
    }

    /// Cumulative deficit of `sat` at slot `t` as seen through the overlay.
    pub fn deficit_j(&self, sat: usize, t: usize) -> f64 {
        let i = self.base.flat_index(sat, t);
        *self.deficit.get(&i).unwrap_or(&self.base.deficit_flat(i))
    }

    /// Battery level `b_s(T)` as seen through the overlay.
    pub fn battery_level_j(&self, sat: usize, t: usize) -> f64 {
        self.base.params().battery_capacity_j - self.deficit_j(sat, t)
    }

    /// Runs the commit recursion **without mutating the overlay**: the
    /// deficits the consumption would add on top of the overlay's state,
    /// or `None` when some slot's battery would be over-drawn.
    pub fn peek(&self, sat: usize, t_a: usize, consumption_j: f64) -> Option<DeficitTrace> {
        let horizon = self.base.horizon();
        let cap = self.base.params().battery_capacity_j;
        let mut trace = DeficitTrace::default();
        let mut d = (consumption_j - self.remaining_solar_j(sat, t_a)).max(0.0);
        let mut t = t_a;
        while d > 0.0 && t < horizon {
            if t > t_a {
                d = (d - self.remaining_solar_j(sat, t)).max(0.0);
                if d <= 0.0 {
                    break;
                }
            }
            if self.deficit_j(sat, t) + d > cap {
                return None;
            }
            trace.per_slot.push((t, d));
            trace.added_deficit_j += d;
            t += 1;
        }
        Some(trace)
    }

    /// Runs the commit recursion (Algorithm 1 lines 9–16) against the
    /// overlay. Returns `None` — leaving the overlay dirty, discard it —
    /// when some slot's battery would be over-drawn.
    pub fn try_commit(
        &mut self,
        sat: usize,
        t_a: usize,
        consumption_j: f64,
    ) -> Option<DeficitTrace> {
        let horizon = self.base.horizon();
        let cap = self.base.params().battery_capacity_j;
        let mut trace = DeficitTrace::default();

        // Slot T_a: Ω̄ ← max(0, Ω − α); α ← max(0, α − Ω).
        let s0 = self.remaining_solar_j(sat, t_a);
        let mut d = (consumption_j - s0).max(0.0);
        self.solar.insert(self.base.flat_index(sat, t_a), (s0 - consumption_j).max(0.0));

        let mut t = t_a;
        while d > 0.0 && t < horizon {
            if t > t_a {
                // Slot T > T_a: α absorbs the carried deficit first.
                let s = self.remaining_solar_j(sat, t);
                let carried = d;
                d = (d - s).max(0.0);
                self.solar.insert(self.base.flat_index(sat, t), (s - carried).max(0.0));
                if d <= 0.0 {
                    break;
                }
            }
            let new_deficit = self.deficit_j(sat, t) + d;
            if new_deficit > cap {
                return None; // constraint (7c) would be violated
            }
            self.deficit.insert(self.base.flat_index(sat, t), new_deficit);
            trace.per_slot.push((t, d));
            trace.added_deficit_j += d;
            t += 1;
        }
        Some(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnergyParams;

    fn ledger(profiles: &[Vec<bool>]) -> EnergyLedger {
        EnergyLedger::new(&EnergyParams::default(), 60.0, profiles)
    }

    #[test]
    fn overlay_reads_through_to_base() {
        let mut l = ledger(&[vec![true, false]]);
        l.commit(0, 0, 700.0);
        let tx = l.overlay();
        assert!(tx.is_clean());
        assert_eq!(tx.remaining_solar_j(0, 0), 500.0);
        assert_eq!(tx.deficit_j(0, 1), 0.0);
        assert_eq!(tx.battery_level_j(0, 1), 117_000.0);
    }

    #[test]
    fn overlay_commit_matches_direct_commit() {
        let profiles = vec![vec![true, false, false, true]];
        let mut a = ledger(&profiles);
        let mut b = ledger(&profiles);

        let mut tx = a.overlay();
        let t1 = tx.try_commit(0, 0, 2000.0).unwrap();
        let t2 = tx.try_commit(0, 1, 900.0).unwrap();
        let delta = tx.into_delta();
        a.absorb(delta);

        let d1 = b.commit(0, 0, 2000.0);
        let d2 = b.commit(0, 1, 900.0);
        assert_eq!(t1, d1);
        assert_eq!(t2, d2);
        assert_eq!(a, b);
    }

    #[test]
    fn failed_overlay_leaves_base_untouched() {
        let l = ledger(&[vec![false, false]]);
        let before = l.clone();
        let mut tx = l.overlay();
        // First fits, second overdraws the battery.
        assert!(tx.try_commit(0, 0, 100_000.0).is_some());
        assert!(tx.try_commit(0, 1, 50_000.0).is_none());
        drop(tx);
        assert_eq!(l, before);
    }

    #[test]
    fn peek_matches_try_commit_and_does_not_mutate() {
        let l = ledger(&[vec![true, false, false, true]]);
        let mut tx = l.overlay();
        tx.try_commit(0, 0, 2000.0).unwrap();
        let peeked = tx.peek(0, 1, 900.0).unwrap();
        let committed = tx.try_commit(0, 1, 900.0).unwrap();
        assert_eq!(peeked, committed);
    }

    #[test]
    fn peek_detects_infeasibility_on_overlay_state() {
        let l = ledger(&[vec![false, false]]);
        let mut tx = l.overlay();
        tx.try_commit(0, 0, 116_500.0).unwrap();
        assert!(tx.peek(0, 1, 1000.0).is_none());
        assert!(tx.peek(0, 1, 400.0).is_some());
    }

    #[test]
    fn sequential_slots_interact_within_overlay() {
        // Sunlit both slots: a commit at slot 0 bigger than slot-0 solar
        // rolls into slot 1's solar, which the second commit then lacks.
        let l = ledger(&[vec![true, true]]);
        let mut tx = l.overlay();
        tx.try_commit(0, 0, 2000.0).unwrap(); // 800 J rolls into slot 1
        let t2 = tx.try_commit(0, 1, 1000.0).unwrap();
        // Slot 1 has only 400 J of solar left → 600 J deficit.
        assert_eq!(t2.per_slot, vec![(1, 600.0)]);
    }
}
