//! Physical energy parameters and the role-dependent consumption model.
//!
//! Defaults reproduce the paper's evaluation settings: 20 W solar harvest,
//! 117 kJ battery, and unit energies of 0.25/0.2 J/MByte for ISL
//! transmit/receive and 1.0/0.8 J/MByte for USL transmit/receive.

use serde::{Deserialize, Serialize};

/// Bits per megabyte, for converting Mbps·s to MByte.
const BITS_PER_MBYTE: f64 = 8.0;

/// Physical energy constants of a broadband satellite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Solar panel harvest power while sunlit, watts (paper: 20 W).
    pub solar_harvest_w: f64,
    /// Battery capacity ϖ_s, joules (paper: 117 kJ).
    pub battery_capacity_j: f64,
    /// ISL transmit unit energy ω_ISL^tx, J/MByte (paper: 0.25).
    pub isl_tx_j_per_mbyte: f64,
    /// ISL receive unit energy ω_ISL^rx, J/MByte (paper: 0.2).
    pub isl_rx_j_per_mbyte: f64,
    /// USL transmit unit energy ω_USL^tx, J/MByte (paper: 1.0).
    pub usl_tx_j_per_mbyte: f64,
    /// USL receive unit energy ω_USL^rx, J/MByte (paper: 0.8).
    pub usl_rx_j_per_mbyte: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            solar_harvest_w: 20.0,
            battery_capacity_j: 117_000.0,
            isl_tx_j_per_mbyte: 0.25,
            isl_rx_j_per_mbyte: 0.2,
            usl_tx_j_per_mbyte: 1.0,
            usl_rx_j_per_mbyte: 0.8,
        }
    }
}

impl EnergyParams {
    /// Solar energy harvested in one sunlit slot of `slot_s` seconds,
    /// joules (`α̂_s(T)` when sunlit; zero in umbra).
    pub fn solar_input_per_slot_j(&self, slot_s: f64) -> f64 {
        self.solar_harvest_w * slot_s
    }

    /// Megabytes carried in one slot at `rate_mbps`.
    pub fn mbytes_per_slot(rate_mbps: f64, slot_s: f64) -> f64 {
        rate_mbps * slot_s / BITS_PER_MBYTE
    }

    /// Energy consumed by a satellite in one slot for a request flowing at
    /// `rate_mbps`, given the satellite's role on the path — Eq. (1) of the
    /// paper.
    pub fn consumption_j(&self, role: SatelliteRole, rate_mbps: f64, slot_s: f64) -> f64 {
        let mb = Self::mbytes_per_slot(rate_mbps, slot_s);
        let unit = match role {
            SatelliteRole::Middle => self.isl_rx_j_per_mbyte + self.isl_tx_j_per_mbyte,
            SatelliteRole::IngressGateway => self.usl_rx_j_per_mbyte + self.isl_tx_j_per_mbyte,
            SatelliteRole::EgressGateway => self.isl_rx_j_per_mbyte + self.usl_tx_j_per_mbyte,
            SatelliteRole::BentPipe => self.usl_rx_j_per_mbyte + self.usl_tx_j_per_mbyte,
        };
        mb * unit
    }
}

/// A satellite's role on a request's path, which determines which link
/// types it transmits/receives on (Eq. 1).
///
/// Roles are derived purely from the link types adjacent to the satellite
/// on the path: users attach over USLs, satellites interconnect over ISLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SatelliteRole {
    /// ISL in, ISL out — a relay in the middle of the path.
    Middle,
    /// USL in (from the source user), ISL out — the ingress gateway.
    IngressGateway,
    /// ISL in, USL out (to the destination user) — the egress gateway.
    EgressGateway,
    /// USL in, USL out — the classic bent-pipe case where source and
    /// destination share one access satellite.
    BentPipe,
}

impl SatelliteRole {
    /// Derives the role from the link types entering and leaving the
    /// satellite along the path. `Isl=false` means USL.
    pub fn from_link_types(in_is_isl: bool, out_is_isl: bool) -> SatelliteRole {
        match (in_is_isl, out_is_isl) {
            (true, true) => SatelliteRole::Middle,
            (false, true) => SatelliteRole::IngressGateway,
            (true, false) => SatelliteRole::EgressGateway,
            (false, false) => SatelliteRole::BentPipe,
        }
    }
}

impl core::fmt::Display for SatelliteRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SatelliteRole::Middle => write!(f, "middle"),
            SatelliteRole::IngressGateway => write!(f, "ingress-gateway"),
            SatelliteRole::EgressGateway => write!(f, "egress-gateway"),
            SatelliteRole::BentPipe => write!(f, "bent-pipe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_match_paper() {
        let p = EnergyParams::default();
        assert_eq!(p.solar_harvest_w, 20.0);
        assert_eq!(p.battery_capacity_j, 117_000.0);
        assert_eq!(p.isl_tx_j_per_mbyte, 0.25);
        assert_eq!(p.isl_rx_j_per_mbyte, 0.2);
        assert_eq!(p.usl_tx_j_per_mbyte, 1.0);
        assert_eq!(p.usl_rx_j_per_mbyte, 0.8);
    }

    #[test]
    fn solar_input_one_minute() {
        // 20 W × 60 s = 1200 J per one-minute slot.
        assert_eq!(EnergyParams::default().solar_input_per_slot_j(60.0), 1200.0);
    }

    #[test]
    fn mbytes_conversion() {
        // 1250 Mbps × 60 s = 75000 Mbit = 9375 MByte.
        assert_eq!(EnergyParams::mbytes_per_slot(1250.0, 60.0), 9375.0);
    }

    #[test]
    fn consumption_per_role_matches_eq1() {
        let p = EnergyParams::default();
        let mb = EnergyParams::mbytes_per_slot(1000.0, 60.0); // 7500 MB
        assert_eq!(p.consumption_j(SatelliteRole::Middle, 1000.0, 60.0), mb * 0.45);
        assert_eq!(p.consumption_j(SatelliteRole::IngressGateway, 1000.0, 60.0), mb * 1.05);
        assert_eq!(p.consumption_j(SatelliteRole::EgressGateway, 1000.0, 60.0), mb * 1.2);
        assert_eq!(p.consumption_j(SatelliteRole::BentPipe, 1000.0, 60.0), mb * 1.8);
    }

    #[test]
    fn gateway_roles_cost_more_than_middle() {
        let p = EnergyParams::default();
        let mid = p.consumption_j(SatelliteRole::Middle, 500.0, 60.0);
        for role in
            [SatelliteRole::IngressGateway, SatelliteRole::EgressGateway, SatelliteRole::BentPipe]
        {
            assert!(p.consumption_j(role, 500.0, 60.0) > mid, "{role}");
        }
    }

    #[test]
    fn role_from_link_types() {
        assert_eq!(SatelliteRole::from_link_types(true, true), SatelliteRole::Middle);
        assert_eq!(SatelliteRole::from_link_types(false, true), SatelliteRole::IngressGateway);
        assert_eq!(SatelliteRole::from_link_types(true, false), SatelliteRole::EgressGateway);
        assert_eq!(SatelliteRole::from_link_types(false, false), SatelliteRole::BentPipe);
    }

    #[test]
    fn role_display() {
        assert_eq!(format!("{}", SatelliteRole::BentPipe), "bent-pipe");
    }

    proptest! {
        #[test]
        fn prop_consumption_linear_in_rate(rate in 1.0..5000.0f64, k in 1.0..4.0f64) {
            let p = EnergyParams::default();
            let a = p.consumption_j(SatelliteRole::Middle, rate, 60.0);
            let b = p.consumption_j(SatelliteRole::Middle, rate * k, 60.0);
            prop_assert!((b - a * k).abs() < 1e-6 * b.max(1.0));
        }

        #[test]
        fn prop_consumption_nonnegative(rate in 0.0..5000.0f64, slot in 1.0..600.0f64) {
            let p = EnergyParams::default();
            for role in [SatelliteRole::Middle, SatelliteRole::IngressGateway,
                         SatelliteRole::EgressGateway, SatelliteRole::BentPipe] {
                prop_assert!(p.consumption_j(role, rate, slot) >= 0.0);
            }
        }
    }
}
