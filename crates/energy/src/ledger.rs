//! The per-satellite, per-slot energy ledger: Eqs. (2)–(5) and Algorithm 1
//! lines 9–16 of the paper.
//!
//! For every satellite `s` and slot `T` the ledger tracks:
//!
//! * `α_s(T)` — **remaining solar energy**: the slot's solar input minus
//!   whatever committed consumptions (and their propagated deficits) have
//!   already absorbed (Eq. 3);
//! * `D_s(T) = ϖ_s − b_s(T)` — the **cumulative battery deficit** at the
//!   end of slot `T` from all committed requests (Eq. 4).
//!
//! Committing a consumption `Ω` at slot `T_a` runs the paper's recursion:
//! the part of `Ω` not covered by `α_s(T_a)` becomes a deficit that rolls
//! forward, being repaid by remaining solar input of subsequent slots, and
//! every slot the deficit persists it is added to that slot's cumulative
//! deficit (Eq. 2). [`EnergyLedger::peek`] runs the same recursion without
//! mutating, returning the would-be per-slot deficits so the pricing layer
//! can cost them — and reports infeasibility when the battery would be
//! over-drawn (`b_s(T) < 0`).

use crate::params::EnergyParams;
use serde::{Deserialize, Serialize};

/// The result of a [`EnergyLedger::peek`]: where a candidate consumption's
/// deficit would land.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeficitTrace {
    /// `(slot, deficit_j)` pairs: the deficit that would persist at the end
    /// of each affected slot, starting at the consumption slot and ending
    /// when the deficit is fully repaid (or the horizon ends).
    pub per_slot: Vec<(usize, f64)>,
    /// Total new deficit·slots added (the sum of `per_slot` values) —
    /// `Σ_T Ω̄_s(T_a, T, i)`, the quantity the pricing layer charges for.
    pub added_deficit_j: f64,
}

/// The energy state of every satellite over the whole horizon.
///
/// Indexing is satellite-major: entry `sat * horizon + t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    params: EnergyParams,
    horizon: usize,
    num_satellites: usize,
    /// Remaining solar energy α_s(T), joules.
    solar_j: Vec<f64>,
    /// Cumulative committed deficit D_s(T) = ϖ − b_s(T), joules.
    deficit_j: Vec<f64>,
    /// Solar input of one sunlit slot, joules (kept for row resets).
    solar_per_slot_j: f64,
    /// Flat sunlit profile (same indexing as `solar_j`), so a satellite's
    /// rows can be restored to their pristine state on release.
    sunlit: Vec<bool>,
}

impl EnergyLedger {
    /// Creates a ledger from per-satellite sunlit profiles.
    ///
    /// `sunlit[s][t]` says whether satellite `s` harvests solar energy in
    /// slot `t`; every profile must have the same length (the horizon).
    /// Batteries start full and solar energy unused, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if profiles have inconsistent lengths.
    pub fn new(params: &EnergyParams, slot_duration_s: f64, sunlit: &[Vec<bool>]) -> Self {
        let horizon = sunlit.first().map_or(0, Vec::len);
        let per_slot = params.solar_input_per_slot_j(slot_duration_s);
        let mut solar_j = Vec::with_capacity(sunlit.len() * horizon);
        let mut flat_sunlit = Vec::with_capacity(sunlit.len() * horizon);
        for profile in sunlit {
            assert_eq!(profile.len(), horizon, "ragged sunlit profiles");
            solar_j.extend(profile.iter().map(|&lit| if lit { per_slot } else { 0.0 }));
            flat_sunlit.extend(profile.iter().copied());
        }
        EnergyLedger {
            params: *params,
            horizon,
            num_satellites: sunlit.len(),
            deficit_j: vec![0.0; solar_j.len()],
            solar_j,
            solar_per_slot_j: per_slot,
            sunlit: flat_sunlit,
        }
    }

    /// The physical parameters this ledger was built with.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Number of slots tracked.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of satellites tracked.
    pub fn num_satellites(&self) -> usize {
        self.num_satellites
    }

    #[inline]
    fn idx(&self, sat: usize, t: usize) -> usize {
        debug_assert!(sat < self.num_satellites && t < self.horizon);
        sat * self.horizon + t
    }

    /// The flat satellite-major index of `(sat, t)`: `sat · horizon + t`.
    ///
    /// Public so callers keying per-(satellite, slot) side tables (e.g.
    /// cached battery prices invalidated via
    /// [`LedgerDelta::deficit_indices`](crate::overlay::LedgerDelta::deficit_indices))
    /// can share the ledger's cell addressing.
    #[inline]
    pub fn flat_index(&self, sat: usize, t: usize) -> usize {
        self.idx(sat, t)
    }

    #[inline]
    pub(crate) fn solar_flat(&self, i: usize) -> f64 {
        self.solar_j[i]
    }

    #[inline]
    pub(crate) fn deficit_flat(&self, i: usize) -> f64 {
        self.deficit_j[i]
    }

    /// Opens a copy-on-write transactional view for atomically validating
    /// and applying a multi-consumption reservation plan.
    pub fn overlay(&self) -> crate::overlay::LedgerOverlay<'_> {
        crate::overlay::LedgerOverlay::new(self)
    }

    /// Applies a successfully validated overlay's changes to the ledger.
    ///
    /// The delta must come from an overlay of this ledger on which every
    /// `try_commit` returned `Some`; absorbing a failed overlay's delta
    /// would corrupt the battery invariant.
    pub fn absorb(&mut self, delta: crate::overlay::LedgerDelta) {
        let (solar, deficit) = delta.into_parts();
        for (i, v) in solar {
            self.solar_j[i] = v;
        }
        for (i, v) in deficit {
            self.deficit_j[i] = v;
        }
    }

    /// Remaining (unconsumed) solar energy of satellite `sat` in slot `t`,
    /// joules — `α_s(T)` after all commits so far.
    pub fn remaining_solar_j(&self, sat: usize, t: usize) -> f64 {
        self.solar_j[self.idx(sat, t)]
    }

    /// Cumulative battery deficit of satellite `sat` at end of slot `t`,
    /// joules — `ϖ_s − b_s(T)`.
    pub fn deficit_j(&self, sat: usize, t: usize) -> f64 {
        self.deficit_j[self.idx(sat, t)]
    }

    /// Battery charge level `b_s(T)`, joules.
    pub fn battery_level_j(&self, sat: usize, t: usize) -> f64 {
        self.params.battery_capacity_j - self.deficit_j(sat, t)
    }

    /// Battery utilization `λ_s(T) = (ϖ_s − b_s(T)) / ϖ_s ∈ [0, 1]`
    /// (Eq. 9).
    ///
    /// Guarded against degenerate parameters: a zero, negative or NaN
    /// battery capacity yields 0.0 (an untracked battery is "unused")
    /// instead of leaking NaN/inf into the pricing layer, and the result
    /// is clamped to `[0, 1]` so callers can rely on Eq. 9's range even
    /// if the deficit rows were corrupted.
    pub fn battery_utilization(&self, sat: usize, t: usize) -> f64 {
        let capacity = self.params.battery_capacity_j;
        if capacity.is_nan() || capacity <= 0.0 {
            return 0.0;
        }
        let utilization = self.deficit_j(sat, t) / capacity;
        // A NaN deficit maps to 0.0 too (clamp would propagate it).
        if utilization.is_nan() {
            return 0.0;
        }
        utilization.clamp(0.0, 1.0)
    }

    /// Runs the deficit recursion for a candidate consumption of
    /// `consumption_j` joules by satellite `sat` at slot `t_a`, **without
    /// mutating the ledger**.
    ///
    /// Returns `None` when the consumption is infeasible — i.e. some slot's
    /// battery level would drop below zero (violating constraint 7c).
    /// Otherwise returns the per-slot deficits the consumption would add.
    pub fn peek(&self, sat: usize, t_a: usize, consumption_j: f64) -> Option<DeficitTrace> {
        self.overlay().peek(sat, t_a, consumption_j)
    }

    /// Commits a consumption of `consumption_j` joules by satellite `sat`
    /// at slot `t_a`: Algorithm 1 lines 9–16.
    ///
    /// Consumes remaining solar energy, rolls the uncovered deficit
    /// forward, and adds it to each affected slot's cumulative deficit.
    /// Returns the per-slot deficits actually added.
    ///
    /// # Panics
    ///
    /// Panics when the commit would over-draw the battery; call
    /// [`EnergyLedger::peek`] first to check feasibility.
    pub fn commit(&mut self, sat: usize, t_a: usize, consumption_j: f64) -> DeficitTrace {
        let mut tx = self.overlay();
        let trace = tx
            .try_commit(sat, t_a, consumption_j)
            .expect("battery over-drawn: peek before committing");
        let delta = tx.into_delta();
        self.absorb(delta);
        trace
    }

    /// Restores satellite `sat`'s rows to their pristine (no-commit) state:
    /// full solar input in every sunlit slot, zero deficit everywhere.
    ///
    /// Satellites are fully independent in the ledger, so this touches
    /// nothing else. Callers releasing one booking of several must replay
    /// the satellite's surviving commits afterwards (in original commit
    /// order) to land on a bit-identical state — the deficit recursion is
    /// deterministic, and every surviving commit was feasible against a
    /// state with *more* drain, so replay cannot fail.
    pub fn reset_satellite(&mut self, sat: usize) {
        let base = sat * self.horizon;
        for t in 0..self.horizon {
            self.solar_j[base + t] =
                if self.sunlit[base + t] { self.solar_per_slot_j } else { 0.0 };
            self.deficit_j[base + t] = 0.0;
        }
    }

    /// Number of satellites whose battery level at slot `t` is below
    /// `threshold_frac` of capacity — the paper's *energy-depleted
    /// satellites* metric uses `threshold_frac = 0.2`.
    pub fn depleted_count(&self, t: usize, threshold_frac: f64) -> usize {
        let cutoff = threshold_frac * self.params.battery_capacity_j;
        (0..self.num_satellites).filter(|&s| self.battery_level_j(s, t) < cutoff).count()
    }

    /// Mean battery utilization across all satellites at slot `t`.
    pub fn mean_utilization(&self, t: usize) -> f64 {
        if self.num_satellites == 0 {
            return 0.0;
        }
        (0..self.num_satellites).map(|s| self.battery_utilization(s, t)).sum::<f64>()
            / self.num_satellites as f64
    }

    /// Serializes the full ledger — parameters, dimensions, solar and
    /// deficit planes, sunlit profile — bit-exactly into `w`. Part of the
    /// checkpoint format: [`EnergyLedger::decode`] restores a ledger
    /// indistinguishable (`==`, which on f64 fields means bit-identical
    /// here because every value is written with `to_bits`) from the
    /// original.
    pub fn encode(&self, w: &mut sb_wire::Writer) {
        w.f64(self.params.solar_harvest_w);
        w.f64(self.params.battery_capacity_j);
        w.f64(self.params.isl_tx_j_per_mbyte);
        w.f64(self.params.isl_rx_j_per_mbyte);
        w.f64(self.params.usl_tx_j_per_mbyte);
        w.f64(self.params.usl_rx_j_per_mbyte);
        w.usize(self.horizon);
        w.usize(self.num_satellites);
        w.f64(self.solar_per_slot_j);
        w.seq(&self.solar_j, |w, v| w.f64(*v));
        w.seq(&self.deficit_j, |w, v| w.f64(*v));
        w.seq(&self.sunlit, |w, v| w.bool(*v));
    }

    /// Restores a ledger written by [`EnergyLedger::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`sb_wire::WireError`] on truncated input or when the
    /// encoded dimensions are inconsistent with the plane lengths.
    pub fn decode(r: &mut sb_wire::Reader<'_>) -> Result<Self, sb_wire::WireError> {
        let params = EnergyParams {
            solar_harvest_w: r.f64()?,
            battery_capacity_j: r.f64()?,
            isl_tx_j_per_mbyte: r.f64()?,
            isl_rx_j_per_mbyte: r.f64()?,
            usl_tx_j_per_mbyte: r.f64()?,
            usl_rx_j_per_mbyte: r.f64()?,
        };
        let horizon = r.usize()?;
        let num_satellites = r.usize()?;
        let solar_per_slot_j = r.f64()?;
        let cells = horizon.checked_mul(num_satellites).ok_or_else(|| {
            sb_wire::WireError::Invalid { detail: "ledger dimensions overflow".to_owned() }
        })?;
        let read_plane = |r: &mut sb_wire::Reader<'_>| -> Result<Vec<f64>, sb_wire::WireError> {
            let n = r.seq_len(8)?;
            if n != cells {
                return Err(sb_wire::WireError::Invalid {
                    detail: format!("ledger plane holds {n} cells, dimensions say {cells}"),
                });
            }
            (0..n).map(|_| r.f64()).collect()
        };
        let solar_j = read_plane(r)?;
        let deficit_j = read_plane(r)?;
        let n = r.seq_len(1)?;
        if n != cells {
            return Err(sb_wire::WireError::Invalid {
                detail: format!("sunlit profile holds {n} cells, dimensions say {cells}"),
            });
        }
        let sunlit = (0..n).map(|_| r.bool()).collect::<Result<Vec<bool>, _>>()?;
        Ok(EnergyLedger {
            params,
            horizon,
            num_satellites,
            solar_j,
            deficit_j,
            solar_per_slot_j,
            sunlit,
        })
    }

    /// Test-only corruption injector: adds `delta_j` straight to the
    /// cumulative deficit of `sat` at slot `t`, bypassing the recursion.
    /// Exists so the conservation auditor's detection paths can be
    /// exercised; never call it from production code.
    #[doc(hidden)]
    pub fn debug_add_deficit(&mut self, sat: usize, t: usize, delta_j: f64) {
        let i = self.idx(sat, t);
        self.deficit_j[i] += delta_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// 1-minute slots, default paper params: 1200 J solar per sunlit slot.
    fn ledger(profiles: &[Vec<bool>]) -> EnergyLedger {
        EnergyLedger::new(&EnergyParams::default(), 60.0, profiles)
    }

    #[test]
    fn fresh_ledger_is_full_and_charged() {
        let l = ledger(&[vec![true, false, true]]);
        assert_eq!(l.horizon(), 3);
        assert_eq!(l.num_satellites(), 1);
        assert_eq!(l.remaining_solar_j(0, 0), 1200.0);
        assert_eq!(l.remaining_solar_j(0, 1), 0.0);
        assert_eq!(l.deficit_j(0, 0), 0.0);
        assert_eq!(l.battery_level_j(0, 2), 117_000.0);
        assert_eq!(l.battery_utilization(0, 0), 0.0);
    }

    #[test]
    fn sunlit_consumption_within_solar_is_free() {
        let mut l = ledger(&[vec![true, true]]);
        let trace = l.commit(0, 0, 1000.0);
        assert!(trace.per_slot.is_empty());
        assert_eq!(trace.added_deficit_j, 0.0);
        assert_eq!(l.remaining_solar_j(0, 0), 200.0);
        assert_eq!(l.deficit_j(0, 0), 0.0);
    }

    #[test]
    fn umbra_consumption_creates_persistent_deficit() {
        // Umbra at slots 0–2, sun at slot 3 with 1200 J.
        let mut l = ledger(&[vec![false, false, false, true]]);
        let trace = l.commit(0, 0, 1000.0);
        // Deficit of 1000 J persists through slots 0,1,2 and is repaid at 3.
        assert_eq!(trace.per_slot, vec![(0, 1000.0), (1, 1000.0), (2, 1000.0)]);
        assert_eq!(trace.added_deficit_j, 3000.0);
        assert_eq!(l.deficit_j(0, 2), 1000.0);
        assert_eq!(l.deficit_j(0, 3), 0.0);
        // The repaying slot's solar is partially consumed.
        assert_eq!(l.remaining_solar_j(0, 3), 200.0);
    }

    #[test]
    fn partial_solar_coverage_rolls_remainder() {
        // Slot 0 sunlit (1200 J), consumption 2000 J → 800 J deficit.
        // Slot 1 umbra → persists. Slot 2 sunlit → repaid.
        let mut l = ledger(&[vec![true, false, true]]);
        let trace = l.commit(0, 0, 2000.0);
        assert_eq!(trace.per_slot, vec![(0, 800.0), (1, 800.0)]);
        assert_eq!(l.remaining_solar_j(0, 0), 0.0);
        assert_eq!(l.remaining_solar_j(0, 2), 400.0);
        assert_eq!(l.battery_level_j(0, 1), 117_000.0 - 800.0);
        assert_eq!(l.battery_level_j(0, 2), 117_000.0);
    }

    #[test]
    fn deficit_can_persist_to_horizon_end() {
        let mut l = ledger(&[vec![false, false]]);
        let trace = l.commit(0, 0, 500.0);
        assert_eq!(trace.per_slot, vec![(0, 500.0), (1, 500.0)]);
        assert_eq!(l.deficit_j(0, 1), 500.0);
    }

    #[test]
    fn sequential_commits_share_solar() {
        let mut l = ledger(&[vec![true, true]]);
        l.commit(0, 0, 700.0);
        // Only 500 J of slot-0 solar remains for the second request.
        let trace = l.commit(0, 0, 800.0);
        assert_eq!(trace.per_slot[0], (0, 300.0));
        assert_eq!(l.deficit_j(0, 0), 300.0);
        // Slot 1's solar (1200 J) repays it.
        assert_eq!(l.deficit_j(0, 1), 0.0);
        assert_eq!(l.remaining_solar_j(0, 1), 900.0);
    }

    #[test]
    fn peek_matches_commit() {
        let profiles = vec![vec![true, false, false, true, false]];
        let mut l = ledger(&profiles);
        l.commit(0, 0, 1500.0); // introduce prior state
        let peeked = l.peek(0, 1, 2500.0).unwrap();
        let committed = l.commit(0, 1, 2500.0);
        assert_eq!(peeked, committed);
    }

    #[test]
    fn peek_does_not_mutate() {
        let l = ledger(&[vec![false, true]]);
        let before = l.clone();
        let _ = l.peek(0, 0, 900.0);
        assert_eq!(l, before);
    }

    #[test]
    fn infeasible_when_battery_would_be_overdrawn() {
        let mut l = ledger(&[vec![false, false]]);
        // Nearly drain the battery with a prior commit.
        l.commit(0, 0, 116_500.0);
        // Another 1000 J in umbra would push the deficit past 117 kJ.
        assert!(l.peek(0, 0, 1000.0).is_none());
        assert!(l.peek(0, 1, 1000.0).is_none());
        // A small consumption still fits.
        assert!(l.peek(0, 1, 400.0).is_some());
    }

    #[test]
    fn depleted_count_thresholds() {
        let mut l = ledger(&[vec![false; 2], vec![false; 2]]);
        // Satellite 0 drained below 20%: deficit > 93600 J.
        l.commit(0, 0, 100_000.0);
        assert_eq!(l.depleted_count(0, 0.2), 1);
        assert_eq!(l.depleted_count(1, 0.2), 1);
        assert_eq!(l.depleted_count(0, 0.0), 0);
        // Mean utilization reflects one drained, one full.
        let mu = l.mean_utilization(0);
        assert!((mu - 0.5 * (100_000.0 / 117_000.0)).abs() < 1e-9);
    }

    #[test]
    fn independent_satellites_do_not_interact() {
        let mut l = ledger(&[vec![false, false], vec![false, false]]);
        l.commit(0, 0, 5000.0);
        assert_eq!(l.deficit_j(1, 0), 0.0);
        assert_eq!(l.battery_level_j(1, 1), 117_000.0);
    }

    #[test]
    fn reset_satellite_restores_pristine_rows() {
        let mut l = ledger(&[vec![true, false, true], vec![false, true, false]]);
        let pristine = l.clone();
        l.commit(0, 0, 2000.0);
        l.commit(1, 1, 3000.0);
        assert_ne!(l, pristine);
        l.reset_satellite(0);
        l.reset_satellite(1);
        assert_eq!(l, pristine);
    }

    #[test]
    fn reset_then_replay_is_bit_identical() {
        let mut l = ledger(&[vec![true, false, false, true]]);
        l.commit(0, 0, 1500.0);
        let after_first = l.clone();
        l.commit(0, 1, 2500.0);
        // Drop the second commit by reset + replaying only the first.
        l.reset_satellite(0);
        l.commit(0, 0, 1500.0);
        assert_eq!(l, after_first);
    }

    #[test]
    fn empty_ledger() {
        let l = ledger(&[]);
        assert_eq!(l.num_satellites(), 0);
        assert_eq!(l.horizon(), 0);
        assert_eq!(l.mean_utilization(0), 0.0);
    }

    #[test]
    fn battery_utilization_guards_degenerate_capacity() {
        // Zero capacity: utilization must be 0.0, not NaN or inf.
        let zero = EnergyParams { battery_capacity_j: 0.0, ..EnergyParams::default() };
        let l = EnergyLedger::new(&zero, 60.0, &[vec![false, false]]);
        assert_eq!(l.battery_utilization(0, 0), 0.0);
        assert_eq!(l.mean_utilization(0), 0.0);

        // NaN capacity: likewise.
        let nan = EnergyParams { battery_capacity_j: f64::NAN, ..EnergyParams::default() };
        let l = EnergyLedger::new(&nan, 60.0, &[vec![false, false]]);
        assert_eq!(l.battery_utilization(0, 1), 0.0);

        // Negative capacity: likewise.
        let neg = EnergyParams { battery_capacity_j: -5.0, ..EnergyParams::default() };
        let l = EnergyLedger::new(&neg, 60.0, &[vec![false]]);
        assert_eq!(l.battery_utilization(0, 0), 0.0);

        // A corrupted (NaN) deficit row must not leak NaN either.
        let mut l = ledger(&[vec![false, false]]);
        l.debug_add_deficit(0, 0, f64::NAN);
        assert_eq!(l.battery_utilization(0, 0), 0.0);
    }

    #[test]
    fn battery_utilization_is_always_finite_and_in_range() {
        let mut l = ledger(&[vec![false, true, false]]);
        l.commit(0, 0, 50_000.0);
        for t in 0..3 {
            let u = l.battery_utilization(0, t);
            assert!((0.0..=1.0).contains(&u), "t={t} u={u}");
        }
    }

    #[test]
    fn encode_decode_roundtrips_bit_exactly() {
        let mut l = ledger(&[vec![true, false, true], vec![false, false, true]]);
        l.commit(0, 0, 2000.0);
        l.commit(1, 1, 37_001.25);
        let mut w = sb_wire::Writer::new();
        l.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = sb_wire::Reader::new(&bytes);
        let back = EnergyLedger::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, l);
        // Decoded ledger keeps working: a release-style reset + replay
        // lands on the same rows.
        let mut replay = back.clone();
        replay.reset_satellite(0);
        replay.commit(0, 0, 2000.0);
        assert_eq!(replay, l);
    }

    #[test]
    fn decode_rejects_truncation_and_dimension_lies() {
        let mut l = ledger(&[vec![true, false]]);
        l.commit(0, 0, 900.0);
        let mut w = sb_wire::Writer::new();
        l.encode(&mut w);
        let bytes = w.into_bytes();
        // Every truncation point errors instead of panicking.
        for cut in 0..bytes.len() {
            let mut r = sb_wire::Reader::new(&bytes[..cut]);
            assert!(EnergyLedger::decode(&mut r).is_err(), "cut at {cut}");
        }
        // Corrupt the horizon field (offset 6×8 = 48): dimensions no
        // longer match the planes.
        let mut evil = bytes.clone();
        evil[48] = evil[48].wrapping_add(1);
        let mut r = sb_wire::Reader::new(&evil);
        assert!(EnergyLedger::decode(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_profiles_panic() {
        let _ = ledger(&[vec![true, false], vec![true]]);
    }

    proptest! {
        /// The fundamental invariant: deficits are non-negative and never
        /// exceed capacity; battery level stays within [0, ϖ].
        #[test]
        fn prop_battery_within_bounds(
            commits in proptest::collection::vec((0usize..8, 0.0..40_000.0f64), 0..12),
            sunlit in proptest::collection::vec(any::<bool>(), 8),
        ) {
            let mut l = ledger(&[sunlit]);
            for (t, e) in commits {
                if l.peek(0, t, e).is_some() {
                    l.commit(0, t, e);
                }
                for slot in 0..8 {
                    let b = l.battery_level_j(0, slot);
                    prop_assert!((-1e-6..=117_000.0 + 1e-6).contains(&b), "b={b}");
                    prop_assert!(l.remaining_solar_j(0, slot) >= 0.0);
                }
            }
        }

        /// Peek must always agree exactly with a subsequent commit.
        #[test]
        fn prop_peek_commit_agree(
            prior in proptest::collection::vec((0usize..6, 0.0..30_000.0f64), 0..6),
            t_a in 0usize..6,
            e in 0.0..50_000.0f64,
            sunlit in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let mut l = ledger(&[sunlit]);
            for (t, pe) in prior {
                if l.peek(0, t, pe).is_some() {
                    l.commit(0, t, pe);
                }
            }
            if let Some(peeked) = l.peek(0, t_a, e) {
                let committed = l.commit(0, t_a, e);
                prop_assert_eq!(peeked, committed);
            }
        }

        /// Deficit traces are contiguous slot runs starting at t_a with
        /// non-increasing magnitudes (solar can only repay, never add).
        #[test]
        fn prop_trace_monotone(
            t_a in 0usize..6,
            e in 0.0..80_000.0f64,
            sunlit in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let l = ledger(&[sunlit]);
            if let Some(trace) = l.peek(0, t_a, e) {
                for (k, &(slot, d)) in trace.per_slot.iter().enumerate() {
                    prop_assert_eq!(slot, t_a + k);
                    prop_assert!(d > 0.0);
                    if k > 0 {
                        prop_assert!(d <= trace.per_slot[k - 1].1 + 1e-9);
                    }
                }
            }
        }

        /// Monotonicity: more consumption never shrinks the added deficit.
        #[test]
        fn prop_deficit_monotone_in_consumption(
            e1 in 0.0..40_000.0f64,
            extra in 0.0..40_000.0f64,
            sunlit in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let l = ledger(&[sunlit]);
            if let (Some(a), Some(b)) = (l.peek(0, 0, e1), l.peek(0, 0, e1 + extra)) {
                prop_assert!(b.added_deficit_j >= a.added_deficit_j - 1e-9);
            }
        }
    }
}
