//! Crash-consistent runs: journaled execution, checkpoints and resume.
//!
//! [`run_durable`] wraps the deterministic engine core with three
//! artifacts in a run directory:
//!
//! * `journal.bin` — an append-only, fsync'd record of every engine event
//!   (see [`crate::journal`]);
//! * `ckpt_{slot:05}.bin` — periodic snapshots of the full engine state
//!   (see [`crate::checkpoint`]);
//! * `final.bin` — the finished run's metrics, so resuming a completed
//!   run returns instantly instead of recomputing.
//!
//! # Resume = checkpoint + verified replay
//!
//! The engine is deterministic, so restoring the newest valid checkpoint
//! and re-executing the remaining slots reproduces the uninterrupted run
//! bit-for-bit. The journal suffix past the checkpoint is not *applied* —
//! it is **verified**: every event the resumed engine regenerates is
//! compared against the journal's record, and any mismatch aborts with
//! [`EngineError::JournalDivergence`] rather than silently splicing two
//! different runs together. Once the suffix is exhausted the journal
//! switches back to append mode.
//!
//! Torn tails (a crash mid-append) are detected by the journal's
//! per-record checksums, reported, truncated away and overwritten.
//! Corrupt or foreign checkpoints are skipped in favor of older ones; with
//! no usable checkpoint at all the whole journal is replay-verified from
//! slot 0. A checkpoint or journal from a *different* run — any change to
//! the scenario, algorithm, or seed — is rejected up front via
//! [`crate::engine::run_digest`].

use crate::checkpoint;
use crate::engine::{run_digest, AlgorithmKind, EngineCore, ExecOptions, PreparedNetwork};
use crate::journal::{self, Journal, JournalRecord};
use crate::metrics::RunMetrics;
use crate::scenario::ScenarioConfig;
use sb_demand::Request;
use sb_wire::{Reader, Writer};
use std::collections::VecDeque;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic prefix of `final.bin` (cached finished-run metrics).
const FINAL_MAGIC: &[u8; 8] = b"SBFIN001";

/// Why a durable run could not proceed. Every variant names the artifact
/// involved so the operator knows *which file* to look at.
#[derive(Debug)]
pub enum EngineError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory being accessed.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// An artifact exists but cannot be trusted (bad framing, impossible
    /// offsets, undecodable state).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The journal belongs to a different (scenario, algorithm, seed)
    /// run and must not be resumed into this one.
    DigestMismatch {
        /// The journal file.
        path: PathBuf,
        /// This run's digest.
        expected: u64,
        /// The digest found in the file.
        found: u64,
    },
    /// Replay produced a different event than the journal recorded — the
    /// on-disk state and the current inputs disagree.
    JournalDivergence {
        /// The slot being replayed when the mismatch surfaced.
        slot: usize,
        /// The two sides of the disagreement.
        detail: String,
    },
    /// The conservation auditor found a violation at a slot boundary
    /// (only checked under the `strict-audit` feature).
    AuditFailed {
        /// The slot whose boundary failed the audit.
        slot: usize,
        /// The auditor's structured findings.
        report: sb_cear::AuditReport,
    },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            EngineError::Corrupt { path, detail } => {
                write!(f, "corrupt durability artifact {}: {detail}", path.display())
            }
            EngineError::DigestMismatch { path, expected, found } => write!(
                f,
                "{} belongs to a different run (digest {found:#018x}, expected {expected:#018x})",
                path.display()
            ),
            EngineError::JournalDivergence { slot, detail } => {
                write!(f, "resumed run diverged from the journal at slot {slot}: {detail}")
            }
            EngineError::AuditFailed { slot, report } => {
                write!(f, "conservation audit failed at slot {slot}: {report}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_at(path: &Path) -> impl FnOnce(io::Error) -> EngineError + '_ {
    move |source| EngineError::Io { path: path.to_path_buf(), source }
}

/// How [`run_durable`] should persist and resume.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding the journal, checkpoints and final metrics. One
    /// run per directory.
    pub dir: PathBuf,
    /// Write a checkpoint every this many slot boundaries; `0` disables
    /// checkpointing (the journal alone still allows resume, by verified
    /// replay from slot 0).
    pub checkpoint_every: usize,
    /// Resume from whatever `dir` holds instead of starting fresh. With
    /// nothing usable on disk this degrades to a fresh run.
    pub resume: bool,
    /// Stop (returning [`RunOutcome::Halted`]) before executing this
    /// slot — a testing hook that simulates a crash at an exact boundary.
    pub halt_before_slot: Option<usize>,
    /// Execution knobs (quote worker threads). Bit-identical for every
    /// configuration, so checkpoints and journals written under one
    /// thread count resume cleanly under another.
    pub exec: ExecOptions,
}

impl DurabilityOptions {
    /// Fresh run into `dir`, checkpointing every slot.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            checkpoint_every: 1,
            resume: false,
            halt_before_slot: None,
            exec: ExecOptions::default(),
        }
    }
}

/// The result of a durable run session.
#[derive(Debug)]
pub enum RunOutcome {
    /// The horizon finished; here are the metrics.
    Completed(Box<RunMetrics>),
    /// Execution stopped at [`DurabilityOptions::halt_before_slot`];
    /// resume later with [`DurabilityOptions::resume`].
    Halted {
        /// The first slot the resumed session will execute.
        next_slot: usize,
    },
}

fn run_start(
    digest: u64,
    kind: &AlgorithmKind,
    seed: u64,
    scenario: &ScenarioConfig,
) -> JournalRecord {
    JournalRecord::RunStart {
        config_digest: digest,
        algorithm: kind.name().to_owned(),
        seed,
        horizon: scenario.horizon_slots as u32,
    }
}

/// Feeds the events of the just-executed slot through the verify queue
/// (while resuming over journaled ground) or appends them (once past it).
fn sync_events(
    core: &mut EngineCore,
    verify: &mut VecDeque<JournalRecord>,
    journal: &mut Journal,
    journal_path: &Path,
    slot: usize,
) -> Result<(), EngineError> {
    for event in core.take_events() {
        match verify.pop_front() {
            Some(expected) if expected == event => {}
            Some(expected) => {
                return Err(EngineError::JournalDivergence {
                    slot,
                    detail: format!("journal recorded {expected:?}, replay produced {event:?}"),
                });
            }
            None => journal.append(&event).map_err(io_at(journal_path))?,
        }
    }
    Ok(())
}

fn write_final(path: &Path, digest: u64, metrics: &RunMetrics) -> io::Result<()> {
    let mut body = Writer::new();
    body.u64(digest);
    metrics.encode(&mut body);
    let body = body.into_bytes();
    let mut bytes = Vec::with_capacity(FINAL_MAGIC.len() + 8 + body.len());
    bytes.extend_from_slice(FINAL_MAGIC);
    bytes.extend_from_slice(&sb_wire::checksum(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

fn read_final(path: &Path, digest: u64) -> Option<RunMetrics> {
    let bytes = fs::read(path).ok()?;
    let body = bytes.strip_prefix(FINAL_MAGIC.as_slice())?;
    let (sum, body) = body.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*sum) != sb_wire::checksum(body) {
        return None;
    }
    let mut r = Reader::new(body);
    if r.u64().ok()? != digest {
        return None;
    }
    let metrics = RunMetrics::decode(&mut r).ok()?;
    r.is_exhausted().then_some(metrics)
}

/// Runs one `(scenario, algorithm, seed)` cell with journaling,
/// checkpointing and (optionally) resume, per `opts`. A resumed run is
/// bit-identical to an uninterrupted one in everything but wall-clock
/// timing.
///
/// # Errors
///
/// Returns an [`EngineError`] naming the failing artifact: I/O failures,
/// corrupt or foreign on-disk state, replay divergence, or (under the
/// `strict-audit` feature) a conservation-audit violation.
pub fn run_durable(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    kind: &AlgorithmKind,
    seed: u64,
    opts: &DurabilityOptions,
) -> Result<RunOutcome, EngineError> {
    let digest = run_digest(scenario, kind, seed);
    fs::create_dir_all(&opts.dir).map_err(io_at(&opts.dir))?;
    let journal_path = opts.dir.join("journal.bin");
    let final_path = opts.dir.join("final.bin");
    let mut algorithm = kind.instantiate_exec(&opts.exec);

    let mut core;
    let mut verify: VecDeque<JournalRecord> = VecDeque::new();
    let mut journal;
    if opts.resume {
        if let Some(metrics) = read_final(&final_path, digest) {
            return Ok(RunOutcome::Completed(Box::new(metrics)));
        }
        let scan = journal::scan(&journal_path).map_err(io_at(&journal_path))?;
        match scan.records.first() {
            Some(JournalRecord::RunStart { config_digest, .. }) if *config_digest == digest => {}
            Some(JournalRecord::RunStart { config_digest, .. }) => {
                return Err(EngineError::DigestMismatch {
                    path: journal_path,
                    expected: digest,
                    found: *config_digest,
                });
            }
            Some(other) => {
                return Err(EngineError::Corrupt {
                    path: journal_path,
                    detail: format!("journal begins with {other:?}, not a run-start record"),
                });
            }
            None => {}
        }
        match checkpoint::load_latest(&opts.dir, digest).map_err(io_at(&opts.dir))? {
            Some(ckpt) => {
                if ckpt.journal_len > scan.valid_len {
                    return Err(EngineError::Corrupt {
                        path: journal_path,
                        detail: format!(
                            "journal holds {} valid bytes but checkpoint {} expects at least {}",
                            scan.valid_len,
                            ckpt.path.display(),
                            ckpt.journal_len
                        ),
                    });
                }
                let mut r = Reader::new(&ckpt.payload);
                core = EngineCore::decode(scenario, prepared, requests, seed, &mut r).map_err(
                    |e| EngineError::Corrupt { path: ckpt.path.clone(), detail: e.to_string() },
                )?;
                let split = scan
                    .offsets
                    .iter()
                    .position(|&o| o >= ckpt.journal_len)
                    .unwrap_or(scan.records.len());
                let boundary_ok = scan
                    .offsets
                    .get(split)
                    .map_or(ckpt.journal_len == scan.valid_len, |&o| o == ckpt.journal_len);
                if !boundary_ok {
                    return Err(EngineError::Corrupt {
                        path: journal_path,
                        detail: format!(
                            "checkpoint {} records a journal offset inside a record",
                            ckpt.path.display()
                        ),
                    });
                }
                verify = scan.records[split..].iter().cloned().collect();
                journal = Journal::open_append(&journal_path, scan.valid_len)
                    .map_err(io_at(&journal_path))?;
            }
            None if scan.records.is_empty() => {
                // Nothing usable on disk: degrade to a fresh run.
                core = EngineCore::new(scenario, prepared, requests, seed);
                journal = Journal::create(&journal_path).map_err(io_at(&journal_path))?;
                journal
                    .append(&run_start(digest, kind, seed, scenario))
                    .map_err(io_at(&journal_path))?;
            }
            None => {
                // No checkpoint, but a journal: replay-verify from slot 0.
                core = EngineCore::new(scenario, prepared, requests, seed);
                verify = scan.records[1..].iter().cloned().collect();
                journal = Journal::open_append(&journal_path, scan.valid_len)
                    .map_err(io_at(&journal_path))?;
            }
        }
    } else {
        checkpoint::clear(&opts.dir).map_err(io_at(&opts.dir))?;
        match fs::remove_file(&final_path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => {
                return Err(io_at(&final_path)(e));
            }
            _ => {}
        }
        core = EngineCore::new(scenario, prepared, requests, seed);
        journal = Journal::create(&journal_path).map_err(io_at(&journal_path))?;
        journal.append(&run_start(digest, kind, seed, scenario)).map_err(io_at(&journal_path))?;
    }

    core.set_recording(true);
    while !core.is_complete() {
        if opts.halt_before_slot == Some(core.next_slot()) {
            return Ok(RunOutcome::Halted { next_slot: core.next_slot() });
        }
        core.step_slot(algorithm.as_mut());
        let slot = core.next_slot() - 1;
        sync_events(&mut core, &mut verify, &mut journal, &journal_path, slot)?;
        #[cfg(feature = "strict-audit")]
        {
            let report = core.audit();
            if !report.is_clean() {
                return Err(EngineError::AuditFailed { slot, report });
            }
        }
        // Checkpoints only once replay is re-verified: while the verify
        // queue is non-empty the journal is ahead of the engine, and a
        // checkpoint would record a journal_len it has not earned.
        if opts.checkpoint_every > 0
            && core.next_slot() % opts.checkpoint_every == 0
            && verify.is_empty()
        {
            let mut w = Writer::new();
            core.encode(&mut w);
            checkpoint::write(
                &opts.dir,
                core.next_slot() as u32,
                digest,
                journal.len(),
                &w.into_bytes(),
            )
            .map_err(io_at(&opts.dir))?;
        }
    }
    core.drain_final(algorithm.as_mut());
    let end_slot = core.next_slot();
    sync_events(&mut core, &mut verify, &mut journal, &journal_path, end_slot)?;
    if let Some(stale) = verify.front() {
        return Err(EngineError::JournalDivergence {
            slot: end_slot,
            detail: format!("journal continues with {stale:?} after the run completed"),
        });
    }
    let metrics = core.finalize(algorithm.as_ref());
    write_final(&final_path, digest, &metrics).map_err(io_at(&final_path))?;
    Ok(RunOutcome::Completed(Box::new(metrics)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{prepare, run_prepared, workload};
    use crate::scenario::UnforeseenFailures;
    use sb_cear::{CearParams, RepairPolicy};
    use sb_topology::failures::{FailureModel, LinkFailureModel};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb_durable_test_{tag}"));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn failing(scenario: &ScenarioConfig) -> ScenarioConfig {
        let mut s = scenario.clone();
        s.unforeseen = Some(UnforeseenFailures {
            model: FailureModel::IndependentLinks(LinkFailureModel::new(0.15, 0xfee1)),
            policy: RepairPolicy::RepairPaid,
        });
        s
    }

    fn completed(outcome: RunOutcome) -> RunMetrics {
        match outcome {
            RunOutcome::Completed(m) => *m,
            RunOutcome::Halted { next_slot } => panic!("unexpected halt before slot {next_slot}"),
        }
    }

    /// The ISSUE's headline acceptance test: kill the run at *every* slot
    /// boundary, resume, and require bit-identical metrics — for CEAR and
    /// a baseline, with and without the unforeseen-failure model.
    #[test]
    fn kill_at_every_slot_resumes_bit_identically() {
        let base = ScenarioConfig::tiny();
        let seed = 3;
        for scenario in [base.clone(), failing(&base)] {
            let prepared = prepare(&scenario, seed);
            let requests = workload(&scenario, &prepared, seed);
            for kind in [AlgorithmKind::Cear(CearParams::default()), AlgorithmKind::Ssp] {
                let mut reference = run_prepared(&scenario, &prepared, &requests, &kind, seed);
                reference.processing_ms = 0;
                for halt in 1..scenario.horizon_slots {
                    let dir = tmp_dir(&format!(
                        "kill_{}_{}_{halt}",
                        kind.name(),
                        scenario.unforeseen.is_some()
                    ));
                    let mut opts = DurabilityOptions::new(&dir);
                    opts.halt_before_slot = Some(halt);
                    match run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap()
                    {
                        RunOutcome::Halted { next_slot } => assert_eq!(next_slot, halt),
                        RunOutcome::Completed(_) => panic!("expected a halt at {halt}"),
                    }
                    opts.halt_before_slot = None;
                    opts.resume = true;
                    let mut resumed = completed(
                        run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap(),
                    );
                    resumed.processing_ms = 0;
                    assert_eq!(
                        resumed,
                        reference,
                        "kill before slot {halt}, {} unforeseen={}",
                        kind.name(),
                        scenario.unforeseen.is_some()
                    );
                    fs::remove_dir_all(&dir).ok();
                }
            }
        }
    }

    #[test]
    fn journal_only_resume_replays_from_slot_zero() {
        let scenario = failing(&ScenarioConfig::tiny());
        let seed = 5;
        let prepared = prepare(&scenario, seed);
        let requests = workload(&scenario, &prepared, seed);
        let kind = AlgorithmKind::Cear(CearParams::default());
        let mut reference = run_prepared(&scenario, &prepared, &requests, &kind, seed);
        reference.processing_ms = 0;

        let dir = tmp_dir("journal_only");
        let mut opts = DurabilityOptions::new(&dir);
        opts.checkpoint_every = 0; // journal is the only artifact
        opts.halt_before_slot = Some(scenario.horizon_slots / 2);
        run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap();
        opts.halt_before_slot = None;
        opts.resume = true;
        let mut resumed =
            completed(run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap());
        resumed.processing_ms = 0;
        assert_eq!(resumed, reference);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_journal_tail_is_discarded_on_resume() {
        let scenario = failing(&ScenarioConfig::tiny());
        let seed = 7;
        let prepared = prepare(&scenario, seed);
        let requests = workload(&scenario, &prepared, seed);
        let kind = AlgorithmKind::Ssp;
        let mut reference = run_prepared(&scenario, &prepared, &requests, &kind, seed);
        reference.processing_ms = 0;

        let dir = tmp_dir("torn_tail");
        let mut opts = DurabilityOptions::new(&dir);
        opts.checkpoint_every = 4;
        opts.halt_before_slot = Some(10);
        run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap();
        // A crash mid-append: garbage bytes on the end of the journal.
        {
            use std::io::Write as _;
            let mut f = fs::OpenOptions::new().append(true).open(dir.join("journal.bin")).unwrap();
            f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        }
        opts.halt_before_slot = None;
        opts.resume = true;
        let mut resumed =
            completed(run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap());
        resumed.processing_ms = 0;
        assert_eq!(resumed, reference);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_journal_is_refused_with_digest_mismatch() {
        let scenario = ScenarioConfig::tiny();
        let prepared = prepare(&scenario, 1);
        let requests = workload(&scenario, &prepared, 1);
        let kind = AlgorithmKind::Ssp;

        let dir = tmp_dir("digest");
        let mut opts = DurabilityOptions::new(&dir);
        opts.halt_before_slot = Some(3);
        run_durable(&scenario, &prepared, &requests, &kind, 1, &opts).unwrap();
        // Same directory, different seed: the journal must be refused.
        opts.resume = true;
        let err = run_durable(&scenario, &prepared, &requests, &kind, 2, &opts).unwrap_err();
        assert!(
            matches!(err, EngineError::DigestMismatch { .. }),
            "expected DigestMismatch, got: {err}"
        );
        assert!(format!("{err}").contains("journal.bin"), "error must name the file: {err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn completed_run_resume_returns_cached_metrics() {
        let scenario = ScenarioConfig::tiny();
        let seed = 11;
        let prepared = prepare(&scenario, seed);
        let requests = workload(&scenario, &prepared, seed);
        let kind = AlgorithmKind::Ssp;

        let dir = tmp_dir("cached");
        let mut opts = DurabilityOptions::new(&dir);
        let first =
            completed(run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap());
        opts.resume = true;
        let second =
            completed(run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap());
        assert_eq!(first, second, "cached metrics must round-trip bit-exactly");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_audit_passes_on_a_tiny_durable_run() {
        // With `strict-audit` on, every boundary runs the conservation
        // auditor inside run_durable; without it this is a plain smoke
        // test that the durable path completes.
        let scenario = failing(&ScenarioConfig::tiny());
        let seed = 13;
        let prepared = prepare(&scenario, seed);
        let requests = workload(&scenario, &prepared, seed);
        let kind = AlgorithmKind::Cear(CearParams::default());
        let dir = tmp_dir("strict_audit");
        let opts = DurabilityOptions::new(&dir);
        let metrics =
            completed(run_durable(&scenario, &prepared, &requests, &kind, seed, &opts).unwrap());
        assert_eq!(metrics.total_requests, requests.len());
        fs::remove_dir_all(&dir).ok();
    }
}
