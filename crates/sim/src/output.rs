//! CSV and Markdown emission for the figure harnesses.
//!
//! The figure binaries in `sb-bench` print paper-style tables to stdout
//! and write machine-readable CSV under `results/` so EXPERIMENTS.md can
//! reference exact numbers.

use crate::metrics::{mean_std, MeanStd, RunMetrics};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One aggregated point of a figure: an x value (arrival rate, valuation,
/// F₂, …) with per-algorithm mean ± std of some metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The x coordinate (e.g. arrival rate).
    pub x: f64,
    /// `(algorithm, mean ± std)` pairs in presentation order.
    pub values: Vec<(String, MeanStd)>,
}

/// Aggregates multiple seeds of the same `(algorithm, x)` cell into
/// mean ± std of the chosen metric.
pub fn aggregate<'a>(
    runs: impl IntoIterator<Item = &'a RunMetrics>,
    metric: impl Fn(&RunMetrics) -> f64,
) -> MeanStd {
    let values: Vec<f64> = runs.into_iter().map(metric).collect();
    mean_std(&values)
}

/// Renders a series as an aligned Markdown table:
/// one row per x, one `mean ± std` column per algorithm.
pub fn markdown_table(x_label: &str, points: &[SeriesPoint]) -> String {
    let mut out = String::new();
    if points.is_empty() {
        return out;
    }
    let algos: Vec<&str> = points[0].values.iter().map(|(a, _)| a.as_str()).collect();
    let _ = write!(out, "| {x_label} |");
    for a in &algos {
        let _ = write!(out, " {a} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &algos {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for p in points {
        let _ = write!(out, "| {} |", trim_float(p.x));
        for (_, ms) in &p.values {
            let _ = write!(out, " {:.4} ± {:.4} |", ms.mean, ms.std);
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes a series as CSV: `x,algorithm,mean,std`.
///
/// # Errors
///
/// Propagates I/O errors from file creation/writing.
pub fn write_series_csv(path: &Path, x_label: &str, points: &[SeriesPoint]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = format!("{x_label},algorithm,mean,std\n");
    for p in points {
        for (algo, ms) in &p.values {
            let _ = writeln!(body, "{},{algo},{},{}", trim_float(p.x), ms.mean, ms.std);
        }
    }
    std::fs::write(path, body)
}

/// Writes per-slot time series as CSV: `slot,algorithm,value` — the format
/// of the Fig. 7/8 data files.
///
/// # Errors
///
/// Propagates I/O errors from file creation/writing.
pub fn write_timeseries_csv(path: &Path, series: &[(String, Vec<f64>)]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::from("slot,algorithm,value\n");
    for (algo, values) in series {
        for (t, v) in values.iter().enumerate() {
            let _ = writeln!(body, "{t},{algo},{v}");
        }
    }
    std::fs::write(path, body)
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<SeriesPoint> {
        vec![
            SeriesPoint {
                x: 5.0,
                values: vec![
                    ("CEAR".into(), MeanStd { mean: 0.9, std: 0.01 }),
                    ("SSP".into(), MeanStd { mean: 0.7, std: 0.02 }),
                ],
            },
            SeriesPoint {
                x: 10.0,
                values: vec![
                    ("CEAR".into(), MeanStd { mean: 0.8, std: 0.015 }),
                    ("SSP".into(), MeanStd { mean: 0.5, std: 0.05 }),
                ],
            },
        ]
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = markdown_table("rate", &points());
        assert!(md.contains("| rate | CEAR | SSP |"));
        assert!(md.contains("| 5 |"));
        assert!(md.contains("0.9000 ± 0.0100"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn empty_series_is_empty_string() {
        assert!(markdown_table("x", &[]).is_empty());
    }

    #[test]
    fn csv_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join("sb_sim_output_test");
        let path = dir.join("series.csv");
        write_series_csv(&path, "rate", &points()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("rate,algorithm,mean,std\n"));
        assert!(text.contains("5,CEAR,0.9,0.01"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeseries_csv_format() {
        let dir = std::env::temp_dir().join("sb_sim_output_test_ts");
        let path = dir.join("ts.csv");
        write_timeseries_csv(&path, &[("SSP".into(), vec![1.0, 2.0])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("0,SSP,1"));
        assert!(text.contains("1,SSP,2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggregate_computes_mean_std() {
        let mk = |w: f64| RunMetrics {
            algorithm: "X".into(),
            scenario: "t".into(),
            seed: 0,
            total_requests: 1,
            accepted_requests: 1,
            accepted_after_retry: 0,
            total_valuation: 1.0,
            welfare: w,
            social_welfare_ratio: w,
            revenue: 0.0,
            depleted_satellites_over_time: vec![],
            congested_links_over_time: vec![],
            welfare_ratio_over_time: vec![],
            rejected_no_path: 0,
            rejected_by_price: 0,
            rejected_at_commit: 0,
            delivered_welfare: w,
            delivered_welfare_ratio: w,
            interrupted_requests: 0,
            sla_violations: 0,
            repair_attempts: 0,
            repairs_succeeded: 0,
            mean_repair_latency_slots: 0.0,
            refunded_revenue: 0.0,
            repair_revenue: 0.0,
            battery_wear: sb_energy::FleetWear::default(),
            processing_ms: 0,
        };
        let runs = [mk(0.4), mk(0.6)];
        let ms = aggregate(runs.iter(), |m| m.social_welfare_ratio);
        assert!((ms.mean - 0.5).abs() < 1e-12);
        assert!(ms.std > 0.0);
    }
}
