//! Shared prepared-network cache across sweep cells.
//!
//! A comparison sweep runs five algorithms on the same `(scenario, seed)`
//! point, and every cell used to call [`engine::prepare`] from scratch —
//! re-propagating the identical constellation and re-discovering the
//! identical ISLs/USLs five times. [`PreparedCache`] memoizes
//! `Arc<PreparedNetwork>` by a ([`engine::prepare_digest`], seed) key so
//! those cells share a single build.
//!
//! The cache is safe to consult from concurrent sweep workers: the first
//! requester of a key builds while later requesters for the same key block
//! on that one build (build-once semantics), and requests for *different*
//! keys build in parallel. Because `prepare` is deterministic in
//! `(scenario, seed)`, a cached network is bit-identical to a fresh one —
//! the cache tunes speed, never results.
//!
//! Entries live for the lifetime of the cache (one sweep), which is
//! bounded: the digest covers only the fields `prepare` reads, so e.g. a
//! rate sweep collapses to one entry per seed no matter how many load
//! points it evaluates.
//!
//! Setting the environment variable `SB_NO_PREPARE_CACHE` to anything but
//! `0` disables memoization (every `get` builds fresh) — the escape hatch
//! CI uses to diff cached sweeps against the uncached baseline.

use crate::engine::{self, PreparedNetwork};
use crate::scenario::ScenarioConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A build-once cell: the first requester initializes it, concurrent
/// requesters for the same key block on that one initialization.
type BuildCell = Arc<OnceLock<Arc<PreparedNetwork>>>;

/// Memoizes [`PreparedNetwork`]s by ([`engine::prepare_digest`], seed).
/// See the module docs for semantics.
#[derive(Debug)]
pub struct PreparedCache {
    /// One build-once cell per key. The map lock is held only to look up
    /// or insert a cell, never across a build, so workers building
    /// different keys proceed in parallel.
    cells: Mutex<HashMap<(u64, u64), BuildCell>>,
    hits: AtomicU64,
    misses: AtomicU64,
    build_threads: usize,
    disabled: bool,
}

impl PreparedCache {
    /// A cache whose builds fan snapshot construction across
    /// `build_threads` workers ([`engine::prepare_with`]). Honors the
    /// `SB_NO_PREPARE_CACHE` escape hatch (read once, here).
    pub fn new(build_threads: usize) -> Self {
        let disabled = std::env::var_os("SB_NO_PREPARE_CACHE").is_some_and(|v| v != "0");
        Self::with_disabled(build_threads, disabled)
    }

    /// [`PreparedCache::new`] with memoization explicitly on or off,
    /// ignoring the environment — for tests that must not race on a
    /// process-global variable.
    pub fn with_disabled(build_threads: usize, disabled: bool) -> Self {
        PreparedCache {
            cells: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            build_threads: build_threads.max(1),
            disabled,
        }
    }

    /// The prepared network for `(scenario, seed)` — built on first
    /// request, shared on every later one. Concurrent requests for the
    /// same key block on the single builder; requests for different keys
    /// build concurrently.
    pub fn get(&self, scenario: &ScenarioConfig, seed: u64) -> Arc<PreparedNetwork> {
        if self.disabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(engine::prepare_with(scenario, seed, self.build_threads));
        }
        let key = (engine::prepare_digest(scenario), seed);
        let cell = {
            let mut map = self.cells.lock().expect("prepared-cache map poisoned");
            map.entry(key).or_default().clone()
        };
        let mut built = false;
        let prepared = cell
            .get_or_init(|| {
                built = true;
                Arc::new(engine::prepare_with(scenario, seed, self.build_threads))
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        prepared
    }

    /// How many `get`s were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many `get`s had to build (every `get`, when disabled).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys built so far.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("prepared-cache map poisoned").len()
    }

    /// Whether no key has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether memoization is off (`SB_NO_PREPARE_CACHE`).
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn tiny() -> ScenarioConfig {
        ScenarioConfig::tiny()
    }

    #[test]
    fn same_key_shares_one_build() {
        let cache = PreparedCache::with_disabled(1, false);
        let a = cache.get(&tiny(), 7);
        let b = cache.get(&tiny(), 7);
        assert!(Arc::ptr_eq(&a, &b), "same (scenario, seed) must share the Arc");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_seeds_build_separately() {
        let cache = PreparedCache::with_disabled(1, false);
        let a = cache.get(&tiny(), 7);
        let b = cache.get(&tiny(), 8);
        assert!(!Arc::ptr_eq(&a, &b), "different seeds must not share");
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn workload_only_fields_share_the_prepared_network() {
        // The digest covers exactly what `prepare` reads: changing the
        // arrival rate must hit, changing the pair count must miss.
        let cache = PreparedCache::with_disabled(1, false);
        let base = tiny();
        let mut loaded = tiny();
        loaded.arrivals_per_slot *= 3.0;
        let mut reshaped = tiny();
        reshaped.num_pairs += 1;
        let a = cache.get(&base, 7);
        let b = cache.get(&loaded, 7);
        let c = cache.get(&reshaped, 7);
        assert!(Arc::ptr_eq(&a, &b), "arrival rate is workload-only");
        assert!(!Arc::ptr_eq(&a, &c), "pair count changes the prepared network");
    }

    #[test]
    fn disabled_cache_always_builds() {
        let cache = PreparedCache::with_disabled(1, true);
        let a = cache.get(&tiny(), 7);
        let b = cache.get(&tiny(), 7);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
        assert!(cache.is_disabled());
    }

    #[test]
    fn concurrent_requests_block_on_one_builder() {
        let cache = PreparedCache::with_disabled(1, false);
        let results: Vec<Arc<PreparedNetwork>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| cache.get(&tiny(), 7))).collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "all workers must share one build");
        }
        assert_eq!(cache.misses(), 1, "exactly one build for one key");
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn cached_network_is_bit_identical_to_fresh() {
        let cache = PreparedCache::with_disabled(4, false);
        let cached = cache.get(&tiny(), 7);
        let fresh = engine::prepare(&tiny(), 7);
        assert_eq!(cached.pairs, fresh.pairs);
        assert_eq!(cached.series.as_ref(), fresh.series.as_ref());
    }
}
