//! Slot-boundary failure discovery for the event-driven engine.
//!
//! Under unforeseen failures the engine routes requests on the *clean*
//! topology series and only learns which links are dead once a slot is
//! underway. [`FailureOracle`] is that discovery step: fed the horizon's
//! snapshots in slot order, it returns the edges that are down in each
//! slot and accumulates them into a [`KnownFailures`] set that repair
//! searches prune against.
//!
//! For [`FailureModel::GilbertElliott`] the oracle advances each satellite
//! pair's two-state chain incrementally — O(edges) per slot — instead of
//! replaying the walk from slot 0 as
//! [`GilbertElliottModel::is_down`](sb_topology::failures::GilbertElliottModel::is_down)
//! does, so a whole-horizon sweep stays linear in the horizon. A pair
//! absent from a slot's snapshot keeps its chain state frozen until the
//! link reappears.

use sb_cear::KnownFailures;
use sb_topology::failures::FailureModel;
use sb_topology::graph::{EdgeId, NodeKind, TopologySnapshot};
use sb_topology::LinkType;
use std::collections::HashMap;

/// Per-slot failure discovery over a topology series, driven by a
/// [`FailureModel`]. Call [`FailureOracle::advance`] once per slot, in
/// order.
#[derive(Debug, Clone)]
pub struct FailureOracle {
    model: FailureModel,
    /// Gilbert–Elliott chain state per unordered satellite pair.
    ge_down: HashMap<(u32, u32), bool>,
    /// The slot the next [`Self::advance`] call must carry.
    next_slot: u32,
    known: KnownFailures,
}

impl FailureOracle {
    /// An oracle starting before slot 0 with nothing known to be down.
    pub fn new(model: FailureModel) -> Self {
        FailureOracle { model, ge_down: HashMap::new(), next_slot: 0, known: KnownFailures::new() }
    }

    /// The failures observed so far, for pruning repair searches.
    pub fn known(&self) -> &KnownFailures {
        &self.known
    }

    /// Discovers the down edges of `snapshot`'s slot, records them in
    /// [`Self::known`] and returns them in edge-id order.
    ///
    /// # Panics
    ///
    /// Panics when snapshots are not fed in consecutive slot order — the
    /// Gilbert–Elliott chains advance exactly one slot per call.
    pub fn advance(&mut self, snapshot: &TopologySnapshot) -> Vec<EdgeId> {
        let slot = snapshot.slot();
        assert_eq!(slot.0, self.next_slot, "oracle must be fed consecutive slots");
        self.next_slot += 1;

        let mut down = Vec::new();
        match &self.model {
            FailureModel::None => {}
            FailureModel::IndependentLinks(m) => {
                for (idx, e) in snapshot.edges().enumerate() {
                    if e.link_type == LinkType::Isl && m.is_down(slot, e.src.0, e.dst.0) {
                        down.push(EdgeId(idx as u32));
                    }
                }
            }
            FailureModel::NodeOutages(m) => {
                // One outage draw per satellite, then every edge touching a
                // down satellite — USLs included.
                let mut out: HashMap<u32, bool> = HashMap::new();
                let mut sat_down = |n| match snapshot.kind(n) {
                    NodeKind::Satellite(i) => {
                        *out.entry(i as u32).or_insert_with(|| m.is_down(slot, i as u32))
                    }
                    _ => false,
                };
                for (idx, e) in snapshot.edges().enumerate() {
                    if sat_down(e.src) || sat_down(e.dst) {
                        down.push(EdgeId(idx as u32));
                    }
                }
            }
            FailureModel::GilbertElliott(m) => {
                // Both directed copies of an ISL share one chain; step each
                // pair at most once per slot.
                let mut stepped: HashMap<(u32, u32), bool> = HashMap::new();
                for (idx, e) in snapshot.edges().enumerate() {
                    if e.link_type != LinkType::Isl {
                        continue;
                    }
                    let (a, b) = (e.src.0, e.dst.0);
                    let key = if a <= b { (a, b) } else { (b, a) };
                    let state = *stepped.entry(key).or_insert_with(|| {
                        let prev = self.ge_down.get(&key).copied().unwrap_or(false);
                        m.step(prev, slot, key.0, key.1)
                    });
                    if state {
                        down.push(EdgeId(idx as u32));
                    }
                }
                self.ge_down.extend(stepped);
            }
        }
        for &e in &down {
            self.known.insert(slot, e);
        }
        down
    }

    /// Serializes the oracle's dynamic state — chain states, slot cursor
    /// and the accumulated failure set — in a canonical (sorted) order so
    /// identical oracles encode identically. The model itself is static
    /// scenario configuration and is re-supplied to
    /// [`FailureOracle::decode`].
    pub fn encode(&self, w: &mut sb_wire::Writer) {
        let mut chains: Vec<((u32, u32), bool)> =
            self.ge_down.iter().map(|(k, v)| (*k, *v)).collect();
        chains.sort_unstable_by_key(|(k, _)| *k);
        w.usize(chains.len());
        for ((a, b), down) in chains {
            w.u32(a);
            w.u32(b);
            w.bool(down);
        }
        w.u32(self.next_slot);
        let mut known: Vec<(sb_topology::SlotIndex, EdgeId)> = self.known.iter().collect();
        known.sort_unstable_by_key(|&(s, e)| (s.0, e.0));
        w.usize(known.len());
        for (s, e) in known {
            w.u32(s.0);
            w.u32(e.0);
        }
    }

    /// Restores an oracle written by [`FailureOracle::encode`], driven by
    /// the scenario's `model`.
    ///
    /// # Errors
    ///
    /// Returns a [`sb_wire::WireError`] on truncated or malformed input.
    pub fn decode(
        model: FailureModel,
        r: &mut sb_wire::Reader<'_>,
    ) -> Result<Self, sb_wire::WireError> {
        let n = r.seq_len(9)?;
        let mut ge_down = HashMap::with_capacity(n);
        for _ in 0..n {
            let a = r.u32()?;
            let b = r.u32()?;
            ge_down.insert((a, b), r.bool()?);
        }
        let next_slot = r.u32()?;
        let n = r.seq_len(8)?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            pairs.push((sb_topology::SlotIndex(r.u32()?), EdgeId(r.u32()?)));
        }
        Ok(FailureOracle { model, ge_down, next_slot, known: pairs.into_iter().collect() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_geo::coords::Eci;
    use sb_geo::Vec3;
    use sb_topology::failures::{GilbertElliottModel, LinkFailureModel, NodeOutageModel};
    use sb_topology::graph::Edge;
    use sb_topology::{NodeId, SlotIndex};

    /// user4 —USL→ sat0 —ISL↔ sat1 —ISL↔ sat2 —ISL↔ sat3, USL back down.
    fn snapshot(slot: u32) -> TopologySnapshot {
        let kinds = vec![
            NodeKind::Satellite(0),
            NodeKind::Satellite(1),
            NodeKind::Satellite(2),
            NodeKind::Satellite(3),
            NodeKind::GroundUser(0),
        ];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 4000.0,
            length_m: 1.0,
        };
        let mut edges = vec![mk(4, 0, LinkType::Usl), mk(3, 4, LinkType::Usl)];
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            edges.push(mk(a, b, LinkType::Isl));
            edges.push(mk(b, a, LinkType::Isl));
        }
        TopologySnapshot::from_edges(
            SlotIndex(slot),
            kinds,
            vec![Eci(Vec3::ZERO); 5],
            vec![true; 5],
            edges,
        )
    }

    #[test]
    fn gilbert_elliott_oracle_matches_the_model_walk() {
        let model = GilbertElliottModel::new(0.3, 0.4, 77);
        let mut oracle = FailureOracle::new(FailureModel::GilbertElliott(model));
        for t in 0..40 {
            let snap = snapshot(t);
            let down = oracle.advance(&snap);
            for (idx, e) in snap.edges().enumerate() {
                let expect =
                    e.link_type == LinkType::Isl && model.is_down(SlotIndex(t), e.src.0, e.dst.0);
                assert_eq!(down.contains(&EdgeId(idx as u32)), expect, "slot {t} edge {idx}");
            }
        }
    }

    #[test]
    fn node_outages_take_usls_down_too() {
        // Certain outage, so every satellite is out and every edge dies.
        let model = NodeOutageModel::new(1.0, 2, 2, 5);
        let mut oracle = FailureOracle::new(FailureModel::NodeOutages(model));
        let snap = snapshot(0);
        let down = oracle.advance(&snap);
        assert_eq!(down.len(), snap.num_edges(), "USLs of out satellites must fail");
    }

    #[test]
    fn independent_links_never_touch_usls() {
        let model = LinkFailureModel::new(1.0, 5);
        let mut oracle = FailureOracle::new(FailureModel::IndependentLinks(model));
        let snap = snapshot(0);
        let down = oracle.advance(&snap);
        assert_eq!(down.len(), 6, "all six directed ISLs down, both USLs up");
        for &e in &down {
            assert_eq!(snap.edge(e).link_type, LinkType::Isl);
        }
    }

    #[test]
    fn known_failures_accumulate_across_slots() {
        let model = LinkFailureModel::new(1.0, 5);
        let mut oracle = FailureOracle::new(FailureModel::IndependentLinks(model));
        for t in 0..3 {
            let _ = oracle.advance(&snapshot(t));
        }
        assert_eq!(oracle.known().len(), 18, "6 ISLs × 3 slots");
    }

    #[test]
    #[should_panic(expected = "consecutive slots")]
    fn skipping_a_slot_panics() {
        let mut oracle =
            FailureOracle::new(FailureModel::GilbertElliott(GilbertElliottModel::new(0.1, 0.5, 1)));
        let _ = oracle.advance(&snapshot(0));
        let _ = oracle.advance(&snapshot(2));
    }

    #[test]
    fn oracle_encode_decode_preserves_future_behavior() {
        let model = FailureModel::GilbertElliott(GilbertElliottModel::new(0.3, 0.4, 21));
        let mut original = FailureOracle::new(model);
        for t in 0..10 {
            let _ = original.advance(&snapshot(t));
        }
        let mut w = sb_wire::Writer::new();
        original.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = sb_wire::Reader::new(&bytes);
        let mut restored = FailureOracle::decode(model, &mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.known().len(), original.known().len());
        // The restored oracle must draw the exact same future.
        for t in 10..25 {
            assert_eq!(restored.advance(&snapshot(t)), original.advance(&snapshot(t)), "slot {t}");
        }
        // Truncations error, never panic.
        for cut in 0..bytes.len() {
            let mut r = sb_wire::Reader::new(&bytes[..cut]);
            assert!(FailureOracle::decode(model, &mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trivial_model_reports_nothing() {
        let mut oracle = FailureOracle::new(FailureModel::None);
        assert!(oracle.advance(&snapshot(0)).is_empty());
        assert!(oracle.known().is_empty());
    }
}
