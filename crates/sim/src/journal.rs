//! The append-only admission journal.
//!
//! Every engine event that changes run state gets one record, appended and
//! fsync'd before the run moves on, so a crashed sweep can be resumed from
//! `checkpoint + journal suffix` with nothing invented and nothing lost.
//!
//! # On-disk format
//!
//! The journal is a flat sequence of self-checking frames:
//!
//! ```text
//! ┌──────────┬───────────────┬────────────────┐
//! │ len: u32 │ checksum: u64 │ payload (len B)│   repeated
//! └──────────┴───────────────┴────────────────┘
//! ```
//!
//! * `len` — payload length in bytes, little-endian, capped at
//!   [`MAX_RECORD_BYTES`];
//! * `checksum` — FNV-1a 64 ([`sb_wire::checksum`]) of the payload;
//! * `payload` — one [`JournalRecord`], tag byte first (see
//!   [`JournalRecord::encode`] for the per-variant layouts).
//!
//! A crash can only tear the *last* frame (appends are sequential and
//! fsync'd). [`scan`] therefore reads frames until the first one that is
//! truncated, fails its checksum, or does not decode; everything from that
//! point on is reported as `discarded_tail_bytes` and the byte offset of
//! the cut as `valid_len`. Scanning never panics and never errors on
//! corruption — a corrupt journal is simply a shorter journal.
//!
//! # Record payloads
//!
//! Each payload starts with a one-byte tag:
//!
//! | tag | record | body |
//! |-----|--------|------|
//! | 0 | [`JournalRecord::RunStart`] | `config_digest: u64`, `algorithm: str`, `seed: u64`, `horizon: u32` |
//! | 1 | [`JournalRecord::SlotStart`] | `slot: u32` |
//! | 2 | [`JournalRecord::Admission`] | `slot: u32`, `original_arrival: u32`, `attempts_left: u32`, [`Request`], `price: f64`, `slot_paths: seq` [`SlotPath`] |
//! | 3 | [`JournalRecord::Rejection`] | `slot: u32`, `original_arrival: u32`, `attempts_left: u32`, `request_id: u32`, `reason: u8` |
//! | 4 | [`JournalRecord::FailureDraw`] | `slot: u32`, `edges: seq u32` |
//! | 5 | [`JournalRecord::Repair`] | `slot: u32`, `booking_index: u32`, `outcome: u8` (+ `price: f64` when repaired) |
//! | 6 | [`JournalRecord::SlotEnd`] | `slot: u32` |
//! | 7 | [`JournalRecord::Shed`] | `request_id: u32`, `reason: u8` |
//!
//! All integers are little-endian; `f64` fields are raw IEEE-754 bits, so
//! replaying a journal reproduces prices and valuations bit-for-bit.
//!
//! # IO backends
//!
//! [`Journal`] writes through the [`JournalIo`] trait: production code
//! uses the real file backend ([`Journal::create`] /
//! [`Journal::open_append`]), while robustness tests inject
//! [`crate::faultio::FaultIo`] to exercise short writes, `EINTR`, fsync
//! failure and crashes at every byte boundary. The append loop handles
//! short writes and `EINTR` transparently; any other error kills the
//! journal (the frame may be half-written) and surfaces as a typed
//! [`io::Error`], never a panic.

use sb_cear::{RejectReason, SlotPath};
use sb_demand::Request;
use sb_wire::frame::{self, FrameStatus};
use sb_wire::{Reader, WireError, Writer};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;

/// Upper bound on a single record payload — far above any real record,
/// low enough that a corrupt length prefix cannot ask for a huge buffer.
pub const MAX_RECORD_BYTES: u32 = 1 << 26;

/// Bytes of framing overhead per record (`len` + `checksum`).
const FRAME_HEADER_BYTES: usize = frame::HEADER_BYTES;

/// How a repair attempt ended, as recorded in the journal. The full
/// [`sb_cear::RepairOutcome`] carries the re-routed paths; the journal
/// only needs the branch taken (replay re-derives the paths
/// deterministically) plus the price actually charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairEvent {
    /// The booking was dropped (policy `Drop`, or the window closed).
    Dropped,
    /// The unserved suffix was re-routed and committed.
    Repaired {
        /// The extra price charged (0 under the free `Repair` policy).
        price: f64,
    },
    /// No feasible repair this slot; the booking stays pending.
    Pending,
}

/// One engine event, as written to the journal.
///
/// The sequence of records for a run is a complete, replayable account of
/// everything the engine decided: resuming from a checkpoint re-executes
/// the remaining slots and *verifies* each regenerated event against the
/// journal suffix, so divergence (corrupt state, changed binary, edited
/// file) is detected instead of silently producing a franken-run.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Written once, first, identifying the run.
    RunStart {
        /// Digest of the scenario + algorithm + seed (see
        /// [`crate::engine::run_digest`]); resuming against a journal
        /// with a different digest is refused.
        config_digest: u64,
        /// Algorithm display name, for humans inspecting the file.
        algorithm: String,
        /// Workload seed.
        seed: u64,
        /// Horizon length in slots.
        horizon: u32,
    },
    /// A slot began processing.
    SlotStart {
        /// The slot.
        slot: u32,
    },
    /// A request (arrival or retry) was admitted.
    Admission {
        /// Slot during which the decision was made.
        slot: u32,
        /// The slot the request originally arrived in (differs from
        /// `slot` for retries; welfare attributes here).
        original_arrival: u32,
        /// Retry attempts the request still had when admitted.
        attempts_left: u32,
        /// The request, in full (retries mutate start/end, so the
        /// admitted form is recorded, not the arrival form).
        request: Request,
        /// The price charged at admission.
        price: f64,
        /// The committed plan, one path per active slot.
        slot_paths: Vec<SlotPath>,
    },
    /// A request (arrival or retry) was rejected.
    Rejection {
        /// Slot during which the decision was made.
        slot: u32,
        /// The slot the request originally arrived in.
        original_arrival: u32,
        /// Retry attempts the request still had.
        attempts_left: u32,
        /// Which request.
        request_id: u32,
        /// Why it was rejected.
        reason: RejectReason,
    },
    /// The slot's unforeseen failures, as discovered at the boundary.
    FailureDraw {
        /// The slot.
        slot: u32,
        /// Edge ids (in the slot's snapshot) found down, in id order.
        edges: Vec<u32>,
    },
    /// A repair policy acted on one broken or pending booking.
    Repair {
        /// Slot of the boundary pass.
        slot: u32,
        /// Index into the run's booking table.
        booking_index: u32,
        /// How the attempt ended.
        outcome: RepairEvent,
    },
    /// A slot finished (boundary work included).
    SlotEnd {
        /// The slot.
        slot: u32,
    },
    /// The admission service (`sb-serve`) dropped a request without a
    /// quote-based decision. Never produced by the batch engine; recorded
    /// in the service WAL so resume knows the request's stream position
    /// was consumed. Shed decisions are load-dependent (queue occupancy,
    /// deadlines), so replay applies them as-is instead of re-deriving
    /// them.
    Shed {
        /// Which request.
        request_id: u32,
        /// Why it was dropped.
        reason: ShedReason,
    },
}

/// Why the admission service dropped a request without pricing it — the
/// load-shedding arm of [`JournalRecord::Shed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full and this request had the
    /// lowest value density of the candidates.
    QueueFull,
    /// The request's service deadline passed before its commit turn.
    DeadlineExceeded,
    /// Concurrent commits invalidated its quote more times than the
    /// retry limit allows.
    RetriesExhausted,
}

impl JournalRecord {
    /// Serializes the record payload (tag byte first) into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            JournalRecord::RunStart { config_digest, algorithm, seed, horizon } => {
                w.u8(0);
                w.u64(*config_digest);
                w.str(algorithm);
                w.u64(*seed);
                w.u32(*horizon);
            }
            JournalRecord::SlotStart { slot } => {
                w.u8(1);
                w.u32(*slot);
            }
            JournalRecord::Admission {
                slot,
                original_arrival,
                attempts_left,
                request,
                price,
                slot_paths,
            } => {
                w.u8(2);
                w.u32(*slot);
                w.u32(*original_arrival);
                w.u32(*attempts_left);
                request.encode(w);
                w.f64(*price);
                w.seq(slot_paths, |w, sp| sp.encode(w));
            }
            JournalRecord::Rejection {
                slot,
                original_arrival,
                attempts_left,
                request_id,
                reason,
            } => {
                w.u8(3);
                w.u32(*slot);
                w.u32(*original_arrival);
                w.u32(*attempts_left);
                w.u32(*request_id);
                w.u8(match reason {
                    RejectReason::NoFeasiblePath => 0,
                    RejectReason::PriceAboveValuation => 1,
                    RejectReason::CommitFailed => 2,
                });
            }
            JournalRecord::FailureDraw { slot, edges } => {
                w.u8(4);
                w.u32(*slot);
                w.seq(edges, |w, e| w.u32(*e));
            }
            JournalRecord::Repair { slot, booking_index, outcome } => {
                w.u8(5);
                w.u32(*slot);
                w.u32(*booking_index);
                match outcome {
                    RepairEvent::Dropped => w.u8(0),
                    RepairEvent::Repaired { price } => {
                        w.u8(1);
                        w.f64(*price);
                    }
                    RepairEvent::Pending => w.u8(2),
                }
            }
            JournalRecord::SlotEnd { slot } => {
                w.u8(6);
                w.u32(*slot);
            }
            JournalRecord::Shed { request_id, reason } => {
                w.u8(7);
                w.u32(*request_id);
                w.u8(match reason {
                    ShedReason::QueueFull => 0,
                    ShedReason::DeadlineExceeded => 1,
                    ShedReason::RetriesExhausted => 2,
                });
            }
        }
    }

    /// Restores a record payload written by [`JournalRecord::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or an unknown tag — the
    /// journal scanner treats either as the start of the torn tail.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(JournalRecord::RunStart {
                config_digest: r.u64()?,
                algorithm: r.str()?,
                seed: r.u64()?,
                horizon: r.u32()?,
            }),
            1 => Ok(JournalRecord::SlotStart { slot: r.u32()? }),
            2 => {
                let slot = r.u32()?;
                let original_arrival = r.u32()?;
                let attempts_left = r.u32()?;
                let request = Request::decode(r)?;
                let price = r.f64()?;
                let n = r.seq_len(20)?; // SlotPath is ≥ 20 bytes.
                let slot_paths =
                    (0..n).map(|_| SlotPath::decode(r)).collect::<Result<Vec<_>, _>>()?;
                Ok(JournalRecord::Admission {
                    slot,
                    original_arrival,
                    attempts_left,
                    request,
                    price,
                    slot_paths,
                })
            }
            3 => Ok(JournalRecord::Rejection {
                slot: r.u32()?,
                original_arrival: r.u32()?,
                attempts_left: r.u32()?,
                request_id: r.u32()?,
                reason: match r.u8()? {
                    0 => RejectReason::NoFeasiblePath,
                    1 => RejectReason::PriceAboveValuation,
                    2 => RejectReason::CommitFailed,
                    tag => return Err(WireError::BadTag { tag, context: "RejectReason" }),
                },
            }),
            4 => {
                let slot = r.u32()?;
                let n = r.seq_len(4)?;
                let edges = (0..n).map(|_| r.u32()).collect::<Result<Vec<_>, _>>()?;
                Ok(JournalRecord::FailureDraw { slot, edges })
            }
            5 => Ok(JournalRecord::Repair {
                slot: r.u32()?,
                booking_index: r.u32()?,
                outcome: match r.u8()? {
                    0 => RepairEvent::Dropped,
                    1 => RepairEvent::Repaired { price: r.f64()? },
                    2 => RepairEvent::Pending,
                    tag => return Err(WireError::BadTag { tag, context: "RepairEvent" }),
                },
            }),
            6 => Ok(JournalRecord::SlotEnd { slot: r.u32()? }),
            7 => Ok(JournalRecord::Shed {
                request_id: r.u32()?,
                reason: match r.u8()? {
                    0 => ShedReason::QueueFull,
                    1 => ShedReason::DeadlineExceeded,
                    2 => ShedReason::RetriesExhausted,
                    tag => return Err(WireError::BadTag { tag, context: "ShedReason" }),
                },
            }),
            tag => Err(WireError::BadTag { tag, context: "JournalRecord" }),
        }
    }
}

/// The result of scanning a journal file: every complete, checksummed
/// record plus an account of what (if anything) had to be discarded.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// The complete records, in file order.
    pub records: Vec<JournalRecord>,
    /// Byte offset of each record's frame, aligned with
    /// [`JournalScan::records`] — the resume logic splits the record list
    /// at the checkpoint's recorded journal length.
    pub offsets: Vec<u64>,
    /// File offset just past the last complete record; appending resumes
    /// here (the file is truncated to this length first).
    pub valid_len: u64,
    /// Bytes after `valid_len` that were torn, corrupt, or undecodable
    /// and are dropped on resume. 0 for a cleanly closed journal.
    pub discarded_tail_bytes: u64,
}

/// Scans journal `bytes`, stopping at the first torn or corrupt frame.
pub fn scan_bytes(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan::default();
    let mut pos = 0usize;
    loop {
        // Torn (`Incomplete`) and corrupt frames end the scan identically:
        // appends are sequential, so nothing past the first bad frame can
        // be trusted.
        let FrameStatus::Complete { payload, consumed } =
            frame::read_frame(&bytes[pos..], MAX_RECORD_BYTES)
        else {
            break;
        };
        let mut r = Reader::new(payload);
        let Ok(record) = JournalRecord::decode(&mut r) else { break };
        if !r.is_exhausted() {
            break; // trailing garbage inside a frame: treat as corrupt
        }
        scan.offsets.push(pos as u64);
        scan.records.push(record);
        pos += consumed;
    }
    scan.valid_len = pos as u64;
    scan.discarded_tail_bytes = (bytes.len() - pos) as u64;
    scan
}

/// Reads and scans the journal at `path`. A missing file scans as empty
/// (zero records, zero discarded bytes) — only real I/O failures error.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] when the file exists but cannot
/// be read. Corruption is never an error; see [`JournalScan`].
pub fn scan(path: &Path) -> io::Result<JournalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(scan_bytes(&bytes))
}

/// Backend behind [`Journal`]: the minimal file surface the journal
/// needs, abstracted so robustness tests can swap the real file for a
/// fault-injecting in-memory disk ([`crate::faultio::FaultIo`]).
///
/// Contract: [`JournalIo::write`] appends at the current position and may
/// accept fewer bytes than offered (short write) or fail with
/// [`io::ErrorKind::Interrupted`] (`EINTR`) having accepted none — the
/// journal's append loop retries both. Written bytes only count as
/// durable once [`JournalIo::sync_data`] returns `Ok`; a failed sync
/// means the bytes may be gone.
pub trait JournalIo: Send {
    /// Writes a prefix of `buf` at the current position, returning how
    /// many bytes were accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Flushes accepted bytes to durable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncates the backing store to `len` bytes.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Moves the write position to `pos`.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

/// The production [`JournalIo`]: a real file.
#[derive(Debug)]
pub struct FileIo(File);

impl JournalIo for FileIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.0, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

/// An open journal, positioned for appending.
pub struct Journal {
    io: Box<dyn JournalIo>,
    len: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("len", &self.len).finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates (or truncates) the journal at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`].
    pub fn create(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        Ok(Journal { io: Box::new(FileIo(file)), len: 0 })
    }

    /// Opens the journal at `path` for appending, first truncating it to
    /// `valid_len` (as reported by [`scan`]) so a torn tail from a crash
    /// is physically removed before new records follow it.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`].
    pub fn open_append(path: &Path, valid_len: u64) -> io::Result<Journal> {
        let file = OpenOptions::new().write(true).open(path)?;
        Journal::open_append_io(Box::new(FileIo(file)), valid_len)
    }

    /// A fresh, empty journal over a custom backend (fault injection,
    /// in-memory tests).
    pub fn from_io(io: Box<dyn JournalIo>) -> Journal {
        Journal { io, len: 0 }
    }

    /// [`Journal::open_append`] over a custom backend: truncates it to
    /// `valid_len`, positions the cursor there, and syncs the truncation.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`].
    pub fn open_append_io(mut io: Box<dyn JournalIo>, valid_len: u64) -> io::Result<Journal> {
        io.truncate(valid_len)?;
        io.seek_to(valid_len)?;
        io.sync_data()?;
        Ok(Journal { io, len: valid_len })
    }

    /// Current journal length in bytes (all of it complete records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no records have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one record and fsyncs, so the record survives anything
    /// short of media failure once this returns. Short writes and `EINTR`
    /// from the backend are retried transparently (resuming mid-frame, so
    /// no byte is written twice).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`]; the journal must be treated
    /// as dead after a failed append (the frame may be half-written, and
    /// after a failed sync the kernel may have dropped the dirty pages).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let mut w = Writer::new();
        record.encode(&mut w);
        let payload = w.into_bytes();
        let mut framed = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame::write_frame(&mut framed, &payload);
        let mut off = 0usize;
        while off < framed.len() {
            match self.io.write(&framed[off..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "journal backend accepted no bytes",
                    ));
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.io.sync_data()?;
        self.len += framed.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_topology::{NodeId, SlotIndex};

    fn sample_records() -> Vec<JournalRecord> {
        let request = Request {
            id: sb_demand::RequestId(4),
            source: NodeId(1),
            destination: NodeId(2),
            rate: sb_demand::RateProfile::Constant(900.0),
            start: SlotIndex(3),
            end: SlotIndex(6),
            valuation: 1.5e9,
        };
        vec![
            JournalRecord::RunStart {
                config_digest: 0xabcd_ef12,
                algorithm: "CEAR".into(),
                seed: 7,
                horizon: 24,
            },
            JournalRecord::SlotStart { slot: 3 },
            JournalRecord::Admission {
                slot: 3,
                original_arrival: 3,
                attempts_left: 2,
                request: request.clone(),
                price: 0.25,
                slot_paths: vec![SlotPath {
                    slot: SlotIndex(3),
                    nodes: vec![NodeId(1), NodeId(9), NodeId(2)],
                    edges: vec![sb_topology::graph::EdgeId(5), sb_topology::graph::EdgeId(11)],
                }],
            },
            JournalRecord::Rejection {
                slot: 3,
                original_arrival: 2,
                attempts_left: 0,
                request_id: 9,
                reason: RejectReason::PriceAboveValuation,
            },
            JournalRecord::FailureDraw { slot: 3, edges: vec![5, 17] },
            JournalRecord::Repair {
                slot: 3,
                booking_index: 0,
                outcome: RepairEvent::Repaired { price: 0.125 },
            },
            JournalRecord::Repair { slot: 3, booking_index: 1, outcome: RepairEvent::Pending },
            JournalRecord::Shed { request_id: 11, reason: ShedReason::QueueFull },
            JournalRecord::Shed { request_id: 12, reason: ShedReason::RetriesExhausted },
            JournalRecord::SlotEnd { slot: 3 },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for record in sample_records() {
            let mut w = Writer::new();
            record.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(JournalRecord::decode(&mut r).unwrap(), record);
            assert!(r.is_exhausted());
            for cut in 0..bytes.len() {
                let mut r = Reader::new(&bytes[..cut]);
                assert!(JournalRecord::decode(&mut r).is_err(), "cut at {cut}: {record:?}");
            }
        }
    }

    #[test]
    fn file_roundtrip_and_torn_tail_recovery() {
        let dir = std::env::temp_dir().join("sb_journal_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        let records = sample_records();
        {
            let mut j = Journal::create(&path).unwrap();
            for record in &records {
                j.append(record).unwrap();
            }
        }
        let clean = scan(&path).unwrap();
        assert_eq!(clean.records, records);
        assert_eq!(clean.discarded_tail_bytes, 0);
        assert_eq!(clean.offsets.len(), records.len());

        // Truncate the file at every possible byte length: the scan must
        // recover exactly the records whose frames survived intact and
        // report the rest as discarded — and never panic.
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            let scan = scan_bytes(&full[..cut]);
            assert!(scan.records.len() <= records.len());
            assert_eq!(scan.records[..], records[..scan.records.len()], "cut at {cut}");
            assert_eq!(scan.valid_len + scan.discarded_tail_bytes, cut as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_truncate_but_never_panic() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for record in &records {
            let mut w = Writer::new();
            record.encode(&mut w);
            frame::write_frame(&mut bytes, &w.into_bytes());
        }
        // Flip one bit at a time (stride keeps the test fast): everything
        // before the damaged frame must still be recovered verbatim.
        for bit in (0..bytes.len() * 8).step_by(13) {
            let mut copy = bytes.clone();
            copy[bit / 8] ^= 1 << (bit % 8);
            let scan = scan_bytes(&copy);
            let intact = scan.records.len();
            assert_eq!(scan.records[..], records[..intact], "flip at bit {bit}");
        }
    }

    #[test]
    fn open_append_truncates_the_torn_tail() {
        let dir = std::env::temp_dir().join("sb_journal_test_append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.bin");
        let records = sample_records();
        {
            let mut j = Journal::create(&path).unwrap();
            for record in &records[..3] {
                j.append(record).unwrap();
            }
        }
        // Simulate a crash mid-append: garbage half-frame at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 7]).unwrap();
        }
        let scan = scan(&path).unwrap();
        assert_eq!(scan.records, records[..3]);
        assert_eq!(scan.discarded_tail_bytes, 7);

        let mut j = Journal::open_append(&path, scan.valid_len).unwrap();
        j.append(&records[3]).unwrap();
        let rescan = scan_bytes(&std::fs::read(&path).unwrap());
        assert_eq!(rescan.records, records[..4]);
        assert_eq!(rescan.discarded_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
