//! The paper's evaluation metrics (§VI-A, "metrics" paragraph).

use serde::{Deserialize, Serialize};

/// Everything measured in one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Algorithm name.
    pub algorithm: String,
    /// Scenario name.
    pub scenario: String,
    /// Workload seed.
    pub seed: u64,
    /// Total requests generated.
    pub total_requests: usize,
    /// Requests accepted.
    pub accepted_requests: usize,
    /// Of the accepted requests, how many succeeded only on a
    /// resubmission (0 unless the scenario sets a retry policy).
    pub accepted_after_retry: usize,
    /// Sum of all valuations (the trivial offline upper bound).
    pub total_valuation: f64,
    /// Sum of accepted valuations — the social welfare, Eq. (6).
    pub welfare: f64,
    /// `welfare / total_valuation` — with constant valuations this is also
    /// the request success ratio.
    pub social_welfare_ratio: f64,
    /// Operator revenue: sum of prices charged (zero for baselines).
    pub revenue: f64,
    /// Per-slot count of satellites with battery below the depletion
    /// threshold, over the whole horizon.
    pub depleted_satellites_over_time: Vec<usize>,
    /// Per-slot count of congested links over the whole horizon.
    pub congested_links_over_time: Vec<usize>,
    /// Cumulative social-welfare ratio by arrival slot: among requests
    /// arriving in slots `0..=t`, the accepted-valuation fraction.
    pub welfare_ratio_over_time: Vec<f64>,
    /// Requests rejected for lack of any feasible path. With a retry
    /// policy, rejection counters count *attempts*, so their sum can
    /// exceed `total_requests − accepted_requests`.
    pub rejected_no_path: usize,
    /// Requests rejected by price-based admission control (CEAR only).
    pub rejected_by_price: usize,
    /// Requests rejected at atomic commit validation.
    pub rejected_at_commit: usize,
    /// Sum over accepted requests of `valuation × served/duration` — the
    /// welfare actually *delivered* once unforeseen failures eat booked
    /// slots. Equals [`RunMetrics::welfare`] bit-for-bit when the scenario
    /// configures no unforeseen failures.
    pub delivered_welfare: f64,
    /// `delivered_welfare / total_valuation` (1 when nothing was asked).
    pub delivered_welfare_ratio: f64,
    /// Accepted requests whose plan was broken by an unforeseen failure at
    /// least once.
    pub interrupted_requests: usize,
    /// Accepted requests that missed at least one booked slot — dropped,
    /// or not repaired in time.
    pub sla_violations: usize,
    /// Suffix re-route attempts under the Repair/RepairPaid policies (one
    /// per broken or still-pending booking per slot).
    pub repair_attempts: usize,
    /// Repair attempts that re-routed and committed the unserved suffix.
    pub repairs_succeeded: usize,
    /// Mean slots between a plan breaking and its successful repair
    /// (0 when nothing was repaired; a same-slot repair also counts 0).
    pub mean_repair_latency_slots: f64,
    /// Revenue refunded for missed slots: `price paid × missed/duration`
    /// summed over SLA-violated bookings.
    pub refunded_revenue: f64,
    /// Extra revenue charged by RepairPaid repairs (zero otherwise;
    /// [`RunMetrics::revenue`] keeps its booked-at-admission meaning).
    pub repair_revenue: f64,
    /// Fleet battery-wear summary over the horizon (the paper's
    /// lifetime-of-the-network motivation).
    pub battery_wear: sb_energy::FleetWear,
    /// Wall-clock milliseconds spent processing requests.
    pub processing_ms: u128,
}

impl RunMetrics {
    /// Serializes the metrics bit-exactly (part of the durable-run result
    /// cache; see [`RunMetrics::decode`]).
    pub fn encode(&self, w: &mut sb_wire::Writer) {
        w.str(&self.algorithm);
        w.str(&self.scenario);
        w.u64(self.seed);
        w.usize(self.total_requests);
        w.usize(self.accepted_requests);
        w.usize(self.accepted_after_retry);
        w.f64(self.total_valuation);
        w.f64(self.welfare);
        w.f64(self.social_welfare_ratio);
        w.f64(self.revenue);
        w.seq(&self.depleted_satellites_over_time, |w, v| w.usize(*v));
        w.seq(&self.congested_links_over_time, |w, v| w.usize(*v));
        w.seq(&self.welfare_ratio_over_time, |w, v| w.f64(*v));
        w.usize(self.rejected_no_path);
        w.usize(self.rejected_by_price);
        w.usize(self.rejected_at_commit);
        w.f64(self.delivered_welfare);
        w.f64(self.delivered_welfare_ratio);
        w.usize(self.interrupted_requests);
        w.usize(self.sla_violations);
        w.usize(self.repair_attempts);
        w.usize(self.repairs_succeeded);
        w.f64(self.mean_repair_latency_slots);
        w.f64(self.refunded_revenue);
        w.f64(self.repair_revenue);
        w.f64(self.battery_wear.mean_equivalent_cycles);
        w.f64(self.battery_wear.max_equivalent_cycles);
        w.f64(self.battery_wear.max_depth_of_discharge);
        w.u64((self.processing_ms >> 64) as u64);
        w.u64(self.processing_ms as u64);
    }

    /// Restores metrics written by [`RunMetrics::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`sb_wire::WireError`] on truncated or malformed input.
    pub fn decode(r: &mut sb_wire::Reader<'_>) -> Result<Self, sb_wire::WireError> {
        let algorithm = r.str()?;
        let scenario = r.str()?;
        let seed = r.u64()?;
        let total_requests = r.usize()?;
        let accepted_requests = r.usize()?;
        let accepted_after_retry = r.usize()?;
        let total_valuation = r.f64()?;
        let welfare = r.f64()?;
        let social_welfare_ratio = r.f64()?;
        let revenue = r.f64()?;
        let n = r.seq_len(8)?;
        let depleted_satellites_over_time =
            (0..n).map(|_| r.usize()).collect::<Result<Vec<_>, _>>()?;
        let n = r.seq_len(8)?;
        let congested_links_over_time = (0..n).map(|_| r.usize()).collect::<Result<Vec<_>, _>>()?;
        let n = r.seq_len(8)?;
        let welfare_ratio_over_time = (0..n).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
        Ok(RunMetrics {
            algorithm,
            scenario,
            seed,
            total_requests,
            accepted_requests,
            accepted_after_retry,
            total_valuation,
            welfare,
            social_welfare_ratio,
            revenue,
            depleted_satellites_over_time,
            congested_links_over_time,
            welfare_ratio_over_time,
            rejected_no_path: r.usize()?,
            rejected_by_price: r.usize()?,
            rejected_at_commit: r.usize()?,
            delivered_welfare: r.f64()?,
            delivered_welfare_ratio: r.f64()?,
            interrupted_requests: r.usize()?,
            sla_violations: r.usize()?,
            repair_attempts: r.usize()?,
            repairs_succeeded: r.usize()?,
            mean_repair_latency_slots: r.f64()?,
            refunded_revenue: r.f64()?,
            repair_revenue: r.f64()?,
            battery_wear: sb_energy::FleetWear {
                mean_equivalent_cycles: r.f64()?,
                max_equivalent_cycles: r.f64()?,
                max_depth_of_discharge: r.f64()?,
            },
            processing_ms: (u128::from(r.u64()?) << 64) | u128::from(r.u64()?),
        })
    }

    /// Peak number of energy-depleted satellites over the horizon.
    pub fn peak_depleted(&self) -> usize {
        self.depleted_satellites_over_time.iter().copied().max().unwrap_or(0)
    }

    /// Peak number of congested links over the horizon.
    pub fn peak_congested(&self) -> usize {
        self.congested_links_over_time.iter().copied().max().unwrap_or(0)
    }

    /// Mean number of energy-depleted satellites per slot.
    pub fn mean_depleted(&self) -> f64 {
        mean_usize(&self.depleted_satellites_over_time)
    }

    /// Mean number of congested links per slot.
    pub fn mean_congested(&self) -> f64 {
        mean_usize(&self.congested_links_over_time)
    }
}

fn mean_usize(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<usize>() as f64 / values.len() as f64
}

/// Mean and sample standard deviation of a set of values — the error bars
/// of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
}

/// Computes mean ± sample standard deviation.
pub fn mean_std(values: &[f64]) -> MeanStd {
    if values.is_empty() {
        return MeanStd::default();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return MeanStd { mean, std: 0.0 };
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    MeanStd { mean, std: var.sqrt() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            algorithm: "CEAR".into(),
            scenario: "tiny".into(),
            seed: 1,
            total_requests: 10,
            accepted_requests: 7,
            accepted_after_retry: 1,
            total_valuation: 10.0,
            welfare: 7.0,
            social_welfare_ratio: 0.7,
            revenue: 3.5,
            depleted_satellites_over_time: vec![0, 2, 5, 3],
            congested_links_over_time: vec![1, 1, 4, 0],
            welfare_ratio_over_time: vec![1.0, 0.9, 0.8, 0.7],
            rejected_no_path: 1,
            rejected_by_price: 2,
            rejected_at_commit: 0,
            delivered_welfare: 6.5,
            delivered_welfare_ratio: 0.65,
            interrupted_requests: 2,
            sla_violations: 1,
            repair_attempts: 3,
            repairs_succeeded: 1,
            mean_repair_latency_slots: 2.0,
            refunded_revenue: 0.25,
            repair_revenue: 0.1,
            battery_wear: sb_energy::FleetWear::default(),
            processing_ms: 12,
        }
    }

    #[test]
    fn peaks_and_means() {
        let m = sample();
        assert_eq!(m.peak_depleted(), 5);
        assert_eq!(m.peak_congested(), 4);
        assert!((m.mean_depleted() - 2.5).abs() < 1e-12);
        assert!((m.mean_congested() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let mut m = sample();
        m.depleted_satellites_over_time.clear();
        assert_eq!(m.peak_depleted(), 0);
        assert_eq!(m.mean_depleted(), 0.0);
    }

    #[test]
    fn mean_std_basics() {
        let ms = mean_std(&[1.0, 2.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), MeanStd::default());
        assert_eq!(mean_std(&[5.0]).std, 0.0);
    }

    #[test]
    fn wire_roundtrip_is_bit_exact() {
        let mut m = sample();
        m.processing_ms = u128::from(u64::MAX) + 17; // exercises both halves
        m.welfare = f64::from_bits(0x7ff8_0000_0000_1234); // NaN payload survives
        let mut w = sb_wire::Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = sb_wire::Reader::new(&bytes);
        let mut back = RunMetrics::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.processing_ms, m.processing_ms);
        assert_eq!(back.welfare.to_bits(), m.welfare.to_bits());
        // NaN != NaN would trip the whole-struct comparison below.
        back.welfare = 0.0;
        m.welfare = 0.0;
        assert_eq!(back, m);
        for cut in 0..bytes.len() {
            let mut r = sb_wire::Reader::new(&bytes[..cut]);
            assert!(RunMetrics::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
