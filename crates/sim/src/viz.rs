//! GeoJSON export for visualization.
//!
//! Every GIS tool, notebook plotting stack and web map speaks GeoJSON.
//! This module projects a snapshot's satellites, links and reservation
//! paths onto the Earth (sub-satellite points) so a run can be *seen*:
//! drop the output into geojson.io or kepler.gl and the +Grid, the
//! coverage gaps and the chosen detours are immediately visible.

use sb_cear::plan::SlotPath;
use sb_geo::coords::Eci;
use sb_geo::Epoch;
use sb_topology::{LinkType, NodeId, TopologySnapshot};
use serde_json::{json, Value};

/// Longitude/latitude (degrees) of a node's sub-satellite (or ground)
/// point at `epoch`.
fn lon_lat(position: Eci, epoch: Epoch) -> (f64, f64) {
    let g = position.to_ecef(epoch).to_geodetic();
    (g.longitude_rad.to_degrees(), g.latitude_rad.to_degrees())
}

/// GeoJSON `FeatureCollection` of every node in the snapshot: satellites
/// as points with `kind` and `sunlit` properties, users as points with
/// `kind: "user"`.
pub fn nodes_geojson(snapshot: &TopologySnapshot, epoch: Epoch) -> Value {
    let features: Vec<Value> = (0..snapshot.num_nodes())
        .map(|i| {
            let node = NodeId(i as u32);
            let (lon, lat) = lon_lat(snapshot.position(node), epoch);
            let kind = if snapshot.kind(node).is_satellite() { "satellite" } else { "user" };
            json!({
                "type": "Feature",
                "geometry": { "type": "Point", "coordinates": [lon, lat] },
                "properties": {
                    "node": i,
                    "kind": kind,
                    "sunlit": snapshot.is_sunlit(node),
                },
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

/// GeoJSON `FeatureCollection` of the snapshot's links as great-circle
/// chords (each undirected pair once), tagged `ISL`/`USL`.
pub fn links_geojson(snapshot: &TopologySnapshot, epoch: Epoch) -> Value {
    let mut features = Vec::new();
    for e in snapshot.edges() {
        if e.src >= e.dst {
            continue; // one feature per undirected pair
        }
        let (lon_a, lat_a) = lon_lat(snapshot.position(e.src), epoch);
        let (lon_b, lat_b) = lon_lat(snapshot.position(e.dst), epoch);
        features.push(json!({
            "type": "Feature",
            "geometry": {
                "type": "LineString",
                "coordinates": [[lon_a, lat_a], [lon_b, lat_b]],
            },
            "properties": {
                "link_type": match e.link_type { LinkType::Isl => "ISL", LinkType::Usl => "USL" },
                "capacity_mbps": e.capacity_mbps,
                "length_km": e.length_m / 1e3,
            },
        }));
    }
    json!({ "type": "FeatureCollection", "features": features })
}

/// GeoJSON `Feature` tracing one reservation path across the ground.
pub fn path_geojson(snapshot: &TopologySnapshot, path: &SlotPath, epoch: Epoch) -> Value {
    let coordinates: Vec<Value> = path
        .nodes
        .iter()
        .map(|&n| {
            let (lon, lat) = lon_lat(snapshot.position(n), epoch);
            json!([lon, lat])
        })
        .collect();
    json!({
        "type": "Feature",
        "geometry": { "type": "LineString", "coordinates": coordinates },
        "properties": { "slot": path.slot.0, "hops": path.num_hops() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, AlgorithmKind};
    use crate::scenario::ScenarioConfig;
    use sb_cear::Decision;
    use sb_topology::SlotIndex;

    fn snapshot_and_plan() -> (crate::engine::PreparedNetwork, SlotPath) {
        let scenario = ScenarioConfig::tiny();
        let prepared = engine::prepare(&scenario, 1);
        let requests = engine::workload(&scenario, &prepared, 1);
        let mut state = sb_cear::NetworkState::new(prepared.series.clone(), &scenario.energy);
        let mut algo = AlgorithmKind::Cear(scenario.cear).instantiate();
        for r in &requests {
            if let Decision::Accepted { plan, .. } = algo.process(r, &mut state) {
                return (prepared, plan.slot_paths[0].clone());
            }
        }
        panic!("tiny scenario should accept something");
    }

    #[test]
    fn nodes_geojson_is_valid_and_complete() {
        let (prepared, _) = snapshot_and_plan();
        let snap = prepared.series.snapshot(SlotIndex(0));
        let gj = nodes_geojson(snap, Epoch::from_seconds(0.0));
        assert_eq!(gj["type"], "FeatureCollection");
        assert_eq!(gj["features"].as_array().unwrap().len(), snap.num_nodes());
        for f in gj["features"].as_array().unwrap() {
            let coords = f["geometry"]["coordinates"].as_array().unwrap();
            let lon = coords[0].as_f64().unwrap();
            let lat = coords[1].as_f64().unwrap();
            assert!((-180.0..=180.0).contains(&lon));
            assert!((-90.0..=90.0).contains(&lat));
        }
    }

    #[test]
    fn links_geojson_halves_directed_edges() {
        let (prepared, _) = snapshot_and_plan();
        let snap = prepared.series.snapshot(SlotIndex(0));
        let gj = links_geojson(snap, Epoch::from_seconds(0.0));
        assert_eq!(gj["features"].as_array().unwrap().len(), snap.num_edges() / 2);
    }

    #[test]
    fn path_geojson_traces_the_plan() {
        let (prepared, path) = snapshot_and_plan();
        let snap = prepared.series.snapshot(path.slot);
        let epoch = Epoch::from_seconds(path.slot.0 as f64 * 60.0);
        let gj = path_geojson(snap, &path, epoch);
        assert_eq!(gj["geometry"]["coordinates"].as_array().unwrap().len(), path.nodes.len());
        assert_eq!(gj["properties"]["hops"], path.num_hops());
        // The whole document must serialize as valid JSON text.
        let text = serde_json::to_string(&gj).unwrap();
        assert!(text.contains("LineString"));
    }
}
