//! The space-booking simulation engine.
//!
//! Reproduces the paper's evaluation methodology (§VI-A): a Starlink
//! Shell-1 constellation simulated in one-minute slots over four orbital
//! periods, GDP-weighted ground users and a Planet-Labs-sized EO fleet as
//! endpoints, Poisson request arrivals, and the three headline metrics —
//! social-welfare ratio, energy-depleted satellite count and congested
//! link count.
//!
//! * [`scenario`] — named, fully-parameterized experiment configurations
//!   (paper scale and reduced scales for CI);
//! * [`engine`] — deterministic end-to-end runs: build topology, generate
//!   workload, dispatch to an algorithm, collect metrics;
//! * [`journal`] — append-only, checksummed admission journal that
//!   survives torn writes;
//! * [`checkpoint`] — atomic, versioned snapshots of the engine state;
//! * [`durable`] — crash-consistent runs: journal + checkpoints + resume
//!   with verified replay;
//! * [`faultio`] — a fault-injecting journal backend (short writes,
//!   `EINTR`, fsync failure, scripted crashes) for recovery tests;
//! * [`metrics`] — the paper's metrics plus reject-reason, delivered-
//!   welfare and repair accounting;
//! * [`outage`] — slot-boundary discovery of unforeseen failures (the
//!   oracle behind the engine's break/repair loop);
//! * [`output`] — CSV and Markdown emission for the figure harnesses;
//! * [`trace`] — per-request decision records for post-hoc analysis;
//! * [`viz`] — GeoJSON export of snapshots and reservation paths.
//!
//! # Example
//!
//! ```
//! use sb_sim::{engine, scenario::ScenarioConfig, AlgorithmKind};
//!
//! let mut scenario = ScenarioConfig::tiny();
//! scenario.arrivals_per_slot = 2.0;
//! let metrics = engine::run(&scenario, &AlgorithmKind::Ssp, 42);
//! assert!(metrics.social_welfare_ratio >= 0.0);
//! assert!(metrics.social_welfare_ratio <= 1.0);
//! ```

#![warn(missing_docs)]
pub mod checkpoint;
pub mod durable;
pub mod engine;
pub mod faultio;
pub mod journal;
pub mod metrics;
pub mod outage;
pub mod output;
pub mod prepared;
pub mod scenario;
pub mod trace;
pub mod viz;

pub use durable::{run_durable, DurabilityOptions, EngineError, RunOutcome};
pub use engine::{AlgorithmKind, ExecOptions};
pub use metrics::RunMetrics;
pub use outage::FailureOracle;
pub use prepared::PreparedCache;
pub use sb_cear::SearchKind;
pub use scenario::{ScenarioConfig, ShellConfig, UnforeseenFailures};
