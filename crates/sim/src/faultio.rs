//! A fault-injecting in-memory [`JournalIo`] backend.
//!
//! [`FaultIo`] models a file on a disk that misbehaves on a script: short
//! writes, `EINTR`, fsync failure, and crashes before or after a sync.
//! The backing "disk" distinguishes *accepted* bytes (written, sitting in
//! the page cache) from *durable* bytes (synced): a crash — or a failed
//! fsync, after which the kernel is free to drop dirty pages — loses
//! everything not yet durable. [`FaultIo::durable_bytes`] returns exactly
//! what a recovery scan would find on the real disk after the power came
//! back.
//!
//! Handles are cheap clones over shared state, so a test can hand one
//! clone to a [`Journal`](crate::journal::Journal) (or an entire
//! `sb-serve` instance) and keep another to inspect the wreckage after
//! the simulated crash.
//!
//! Faults are scripted by *operation index*: every [`JournalIo::write`]
//! and [`JournalIo::sync_data`] call increments a counter, and the
//! [`FaultPlan`] names the indices at which something goes wrong. This
//! makes fault runs perfectly reproducible — the same plan against the
//! same record sequence injects the same fault at the same byte.

use crate::journal::JournalIo;
use std::io;
use std::sync::{Arc, Mutex};

/// When, relative to the faulting operation's effect, the simulated
/// machine dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The operation has no effect: a crashing write persists nothing, a
    /// crashing sync leaves the accepted bytes un-durable (they are
    /// lost).
    Before,
    /// The operation takes effect first: a crashing write buffers its
    /// bytes (still lost, since no sync follows), a crashing sync makes
    /// the accepted bytes durable and *then* dies.
    After,
}

/// The fault script: operation indices (0-based, counting every `write`
/// and `sync_data` call) at which the disk misbehaves.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Writes at these indices accept only half the offered bytes.
    pub short_write_at: Vec<u64>,
    /// Writes at these indices fail with `EINTR` having accepted nothing.
    pub eintr_at: Vec<u64>,
    /// Syncs at these indices fail with `EIO`; the accepted-but-unsynced
    /// bytes are dropped (the kernel gave up on the dirty pages) and the
    /// disk is dead from then on.
    pub sync_fail_at: Vec<u64>,
    /// The machine dies at this operation index; every later operation
    /// fails too.
    pub crash_at: Option<(u64, CrashPoint)>,
}

impl FaultPlan {
    /// A plan that injects nothing — the in-memory disk behaves like a
    /// perfect file.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

#[derive(Debug)]
struct FaultDisk {
    /// The file image: `data[..synced_len]` is durable, the rest is
    /// accepted but would be lost by a crash.
    data: Vec<u8>,
    synced_len: usize,
    pos: usize,
    ops: u64,
    plan: FaultPlan,
    dead: Option<&'static str>,
}

impl FaultDisk {
    fn check_dead(&self) -> io::Result<()> {
        match self.dead {
            Some(detail) => Err(io::Error::other(detail)),
            None => Ok(()),
        }
    }

    /// Consumes one operation index, applying a crash if scripted there.
    /// Returns `true` if the operation should take effect before dying.
    fn tick(&mut self) -> io::Result<Option<CrashPoint>> {
        self.check_dead()?;
        let op = self.ops;
        self.ops += 1;
        if let Some((at, point)) = self.plan.crash_at {
            if op == at {
                self.dead = Some("simulated crash");
                return Ok(Some(point));
            }
        }
        Ok(None)
    }
}

/// A cloneable handle to a fault-injecting in-memory disk, usable as a
/// [`JournalIo`] backend.
#[derive(Debug, Clone)]
pub struct FaultIo {
    disk: Arc<Mutex<FaultDisk>>,
}

impl FaultIo {
    /// An empty disk with the given fault script.
    pub fn new(plan: FaultPlan) -> FaultIo {
        FaultIo::with_contents(Vec::new(), plan)
    }

    /// A disk pre-seeded with `bytes` (already durable) — the recovery
    /// side of a crash test.
    pub fn with_contents(bytes: Vec<u8>, plan: FaultPlan) -> FaultIo {
        let synced_len = bytes.len();
        FaultIo {
            disk: Arc::new(Mutex::new(FaultDisk {
                data: bytes,
                synced_len,
                pos: synced_len,
                ops: 0,
                plan,
                dead: None,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultDisk> {
        self.disk.lock().expect("fault disk poisoned")
    }

    /// What a recovery scan would find on disk: the synced prefix only.
    pub fn durable_bytes(&self) -> Vec<u8> {
        let disk = self.lock();
        disk.data[..disk.synced_len].to_vec()
    }

    /// Operations executed so far (writes + syncs) — for sizing crash
    /// scripts against a reference run.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether a scripted crash or failed sync has killed the disk.
    pub fn is_dead(&self) -> bool {
        self.lock().dead.is_some()
    }
}

impl JournalIo for FaultIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut disk = self.lock();
        let op = disk.ops;
        match disk.tick()? {
            Some(CrashPoint::Before) => return Err(io::Error::other("simulated crash")),
            Some(CrashPoint::After) => {
                // The bytes reach the page cache, then the machine dies:
                // they are accepted but never become durable.
                let pos = disk.pos;
                splice(&mut disk.data, pos, buf);
                disk.pos += buf.len();
                return Err(io::Error::other("simulated crash"));
            }
            None => {}
        }
        if disk.plan.eintr_at.contains(&op) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "simulated EINTR"));
        }
        let accept = if disk.plan.short_write_at.contains(&op) {
            (buf.len() / 2).max(1).min(buf.len())
        } else {
            buf.len()
        };
        let pos = disk.pos;
        splice(&mut disk.data, pos, &buf[..accept]);
        disk.pos += accept;
        Ok(accept)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut disk = self.lock();
        let op = disk.ops;
        match disk.tick()? {
            Some(CrashPoint::Before) => return Err(io::Error::other("simulated crash")),
            Some(CrashPoint::After) => {
                disk.synced_len = disk.data.len();
                return Err(io::Error::other("simulated crash"));
            }
            None => {}
        }
        if disk.plan.sync_fail_at.contains(&op) {
            // A failed fsync: the kernel may drop the dirty pages, so the
            // strict model loses every accepted-but-unsynced byte and the
            // file is untrustworthy from here on.
            let synced = disk.synced_len;
            disk.data.truncate(synced);
            disk.pos = disk.pos.min(synced);
            disk.dead = Some("sync failed; journal must be reopened");
            return Err(io::Error::other("simulated fsync failure"));
        }
        disk.synced_len = disk.data.len();
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut disk = self.lock();
        disk.check_dead()?;
        let len = len as usize;
        disk.data.resize(len, 0);
        disk.synced_len = disk.synced_len.min(len);
        Ok(())
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        let mut disk = self.lock();
        disk.check_dead()?;
        disk.pos = pos as usize;
        Ok(())
    }
}

/// Writes `bytes` into `data` at `at`, extending it as needed (the
/// journal only ever appends, but a seek past a truncation must behave
/// like a real file).
fn splice(data: &mut Vec<u8>, at: usize, bytes: &[u8]) {
    if at > data.len() {
        data.resize(at, 0);
    }
    let overlap = (data.len() - at).min(bytes.len());
    data[at..at + overlap].copy_from_slice(&bytes[..overlap]);
    data.extend_from_slice(&bytes[overlap..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{scan_bytes, Journal, JournalRecord, ShedReason};
    use proptest::prelude::*;

    fn records(n: u32) -> Vec<JournalRecord> {
        (0..n)
            .map(|i| match i % 3 {
                0 => JournalRecord::SlotStart { slot: i },
                1 => JournalRecord::Shed { request_id: i, reason: ShedReason::DeadlineExceeded },
                _ => JournalRecord::SlotEnd { slot: i },
            })
            .collect()
    }

    /// Writes `records` through a scripted disk, then "reboots": scans
    /// the durable bytes and checks the recovery contract — the scan
    /// yields a bit-identical prefix of the appended records, at least as
    /// long as the acknowledged (Ok-returned) appends, and appending past
    /// the recovered prefix works.
    fn check_recovery(recs: &[JournalRecord], plan: FaultPlan) {
        let io = FaultIo::new(plan);
        let mut journal = Journal::from_io(Box::new(io.clone()));
        let mut acked = 0usize;
        for record in recs {
            match journal.append(record) {
                Ok(()) => acked += 1,
                Err(_) => break, // journal is dead; a real writer stops here
            }
        }
        let durable = io.durable_bytes();
        let scan = scan_bytes(&durable);
        // Bit-identical prefix recovery...
        assert!(scan.records.len() <= recs.len());
        assert_eq!(scan.records[..], recs[..scan.records.len()]);
        // ...covering at least every acknowledged append.
        assert!(
            scan.records.len() >= acked,
            "acked {acked} appends but only {} survived",
            scan.records.len()
        );
        // The journal reopens on the recovered prefix and keeps going.
        let fresh = FaultIo::with_contents(durable, FaultPlan::none());
        let mut reopened =
            Journal::open_append_io(Box::new(fresh.clone()), scan.valid_len).unwrap();
        for record in &recs[scan.records.len()..] {
            reopened.append(record).unwrap();
        }
        assert_eq!(scan_bytes(&fresh.durable_bytes()).records[..], recs[..]);
    }

    #[test]
    fn clean_disk_roundtrips() {
        let recs = records(9);
        let io = FaultIo::new(FaultPlan::none());
        let mut journal = Journal::from_io(Box::new(io.clone()));
        for record in &recs {
            journal.append(record).unwrap();
        }
        assert_eq!(scan_bytes(&io.durable_bytes()).records, recs);
    }

    #[test]
    fn short_writes_and_eintr_are_healed() {
        let recs = records(9);
        let plan = FaultPlan {
            short_write_at: vec![0, 4, 8],
            eintr_at: vec![2, 6, 10],
            ..FaultPlan::default()
        };
        let io = FaultIo::new(plan);
        let mut journal = Journal::from_io(Box::new(io.clone()));
        for record in &recs {
            journal.append(record).unwrap();
        }
        assert_eq!(scan_bytes(&io.durable_bytes()).records, recs);
    }

    #[test]
    fn sync_failure_kills_the_journal_but_recovery_is_clean() {
        let recs = records(9);
        check_recovery(&recs, FaultPlan { sync_fail_at: vec![7], ..FaultPlan::default() });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Torn-tail / failed-fsync recovery: for ANY crash point, with
        /// short writes and EINTRs sprinkled in, the durable image
        /// recovers a bit-identical record prefix (covering every
        /// acknowledged append) or surfaces a typed error — never a panic
        /// and never an invented record.
        #[test]
        fn any_injected_fault_recovers_bit_identically(
            n in 1u32..14,
            crash_op in 0u64..64,
            after in proptest::bool::ANY,
            shorts in proptest::collection::vec(0u64..64, 0..4),
            eintrs in proptest::collection::vec(0u64..64, 0..4),
            sync_fail in proptest::option::of(0u64..64),
        ) {
            let plan = FaultPlan {
                short_write_at: shorts,
                eintr_at: eintrs,
                sync_fail_at: sync_fail.into_iter().collect(),
                crash_at: Some((crash_op, if after { CrashPoint::After } else { CrashPoint::Before })),
            };
            check_recovery(&records(n), plan);
        }
    }
}
