//! Versioned, checksummed engine checkpoints.
//!
//! A checkpoint is a single self-contained file capturing the engine at a
//! slot boundary: network state (reserved bandwidth, booking log, energy
//! ledger), run tally (counters, retry queue, active bookings), and the
//! failure oracle's chain state. Restoring one and replaying the journal
//! suffix reproduces an uninterrupted run bit-for-bit.
//!
//! # On-disk format
//!
//! ```text
//! ┌───────────────┬───────────────┬──────────────────────────────┐
//! │ magic 8 bytes │ checksum: u64 │ body                         │
//! └───────────────┴───────────────┴──────────────────────────────┘
//! body = config_digest: u64 | slot: u32 | journal_len: u64 | core payload
//! ```
//!
//! * `magic` — `b"SBCKPT01"`; the trailing digits version the format, and
//!   unknown versions are skipped, not guessed at;
//! * `checksum` — FNV-1a 64 of the body;
//! * `config_digest` — ties the checkpoint to one (scenario, algorithm,
//!   seed) triple;
//! * `journal_len` — the journal's byte length when the checkpoint was
//!   taken; resume replays only records past this offset;
//! * core payload — [`crate::engine::EngineCore`] state, see its
//!   `encode`.
//!
//! Files are named `ckpt_{slot:05}.bin` and written atomically (temp file,
//! fsync, rename, directory fsync), so a crash mid-checkpoint leaves at
//! worst a stale temp file, never a half-written checkpoint under the
//! final name. [`load_latest`] walks candidates newest-first and silently
//! skips any that fail validation — a corrupt latest checkpoint costs
//! some replay time, not the run.

use sb_wire::{checksum, Reader, Writer};
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Format magic; bump the digits when the layout changes.
const MAGIC: &[u8; 8] = b"SBCKPT01";

/// A checkpoint that passed magic, checksum and digest validation.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The file it came from (for error messages).
    pub path: PathBuf,
    /// The next slot to execute (all slots `< slot` are inside).
    pub slot: u32,
    /// Journal byte length at checkpoint time.
    pub journal_len: u64,
    /// The serialized [`crate::engine::EngineCore`].
    pub payload: Vec<u8>,
}

fn file_name(slot: u32) -> String {
    format!("ckpt_{slot:05}.bin")
}

/// Writes a checkpoint for `slot` into `dir` atomically, returning the
/// final path.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] from the write, fsync or rename.
pub fn write(
    dir: &Path,
    slot: u32,
    config_digest: u64,
    journal_len: u64,
    core_payload: &[u8],
) -> io::Result<PathBuf> {
    let mut body = Writer::new();
    body.u64(config_digest);
    body.u32(slot);
    body.u64(journal_len);
    body.raw(core_payload);
    let body = body.into_bytes();

    let mut bytes = Vec::with_capacity(MAGIC.len() + 8 + body.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&checksum(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let tmp = dir.join(format!("{}.tmp", file_name(slot)));
    let path = dir.join(file_name(slot));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    // Make the rename itself durable; best-effort where the platform
    // does not support fsync on directories.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// Parses one checkpoint file, returning `None` if it is malformed or
/// belongs to a different run.
fn parse(path: &Path, config_digest: u64) -> Option<LoadedCheckpoint> {
    let bytes = fs::read(path).ok()?;
    let body = bytes.strip_prefix(MAGIC.as_slice())?;
    let (sum, body) = body.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*sum) != checksum(body) {
        return None;
    }
    let mut r = Reader::new(body);
    let digest = r.u64().ok()?;
    if digest != config_digest {
        return None;
    }
    let slot = r.u32().ok()?;
    let journal_len = r.u64().ok()?;
    let payload = body[(body.len() - r.remaining())..].to_vec();
    Some(LoadedCheckpoint { path: path.to_path_buf(), slot, journal_len, payload })
}

/// Finds the newest valid checkpoint for this run in `dir`: highest slot
/// whose file passes magic, checksum and digest checks. Invalid or
/// foreign files are skipped without error.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] only when the directory itself
/// cannot be listed (a missing directory reads as "no checkpoint").
pub fn load_latest(dir: &Path, config_digest: u64) -> io::Result<Option<LoadedCheckpoint>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut slots: Vec<(u32, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(digits) = name.strip_prefix("ckpt_").and_then(|s| s.strip_suffix(".bin")) {
            if let Ok(slot) = digits.parse::<u32>() {
                slots.push((slot, entry.path()));
            }
        }
    }
    slots.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    for (_, path) in slots {
        if let Some(loaded) = parse(&path, config_digest) {
            return Ok(Some(loaded));
        }
    }
    Ok(None)
}

/// Removes every checkpoint file in `dir` (fresh runs call this so a
/// later resume cannot pick up checkpoints from an earlier attempt whose
/// journal was overwritten).
///
/// # Errors
///
/// Returns the underlying [`io::Error`]; a missing directory is fine.
pub fn clear(dir: &Path) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("ckpt_") && (name.ends_with(".bin") || name.ends_with(".tmp")) {
                fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb_checkpoint_test_{tag}"));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_latest_roundtrips() {
        let dir = tmp_dir("roundtrip");
        write(&dir, 3, 42, 100, b"three").unwrap();
        write(&dir, 7, 42, 200, b"seven").unwrap();
        let loaded = load_latest(&dir, 42).unwrap().expect("checkpoint");
        assert_eq!(loaded.slot, 7);
        assert_eq!(loaded.journal_len, 200);
        assert_eq!(loaded.payload, b"seven");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        write(&dir, 3, 42, 100, b"three").unwrap();
        let latest = write(&dir, 7, 42, 200, b"seven").unwrap();
        // Flip a byte in the newest file: it must be skipped, not trusted.
        let mut bytes = fs::read(&latest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&latest, bytes).unwrap();
        let loaded = load_latest(&dir, 42).unwrap().expect("older checkpoint");
        assert_eq!(loaded.slot, 3);
        assert_eq!(loaded.payload, b"three");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_digest_is_skipped() {
        let dir = tmp_dir("digest");
        write(&dir, 3, 42, 100, b"three").unwrap();
        assert!(load_latest(&dir, 43).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_and_clear() {
        let dir = tmp_dir("clear");
        let missing = dir.join("nope");
        assert!(load_latest(&missing, 1).unwrap().is_none());
        clear(&missing).unwrap();
        write(&dir, 1, 9, 0, b"x").unwrap();
        clear(&dir).unwrap();
        assert!(load_latest(&dir, 9).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
