//! Per-request decision tracing.
//!
//! The aggregate metrics answer "how did the run go"; a trace answers
//! *why*: which requests paid what, which were refused and for which
//! resource, how long their paths were and how much propagation delay
//! they got. Traces are plain data — CSV/JSON friendly — and are produced
//! by [`run_traced`], a drop-in variant of
//! [`crate::engine::run_with_algorithm`].

use crate::engine::PreparedNetwork;
use crate::scenario::ScenarioConfig;
use sb_cear::{Decision, NetworkState, RoutingAlgorithm};
use sb_demand::Request;
use sb_topology::delay::path_delay_s;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The outcome of one request, flattened for analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Request id (arrival order).
    pub request: u32,
    /// Arrival/start slot.
    pub start_slot: u32,
    /// Duration in slots.
    pub duration_slots: u32,
    /// Demanded rate, Mbps (peak over the profile).
    pub rate_mbps: f64,
    /// The request's valuation.
    pub valuation: f64,
    /// Accepted?
    pub accepted: bool,
    /// Price charged (0 for rejected requests and baselines).
    pub price: f64,
    /// Reject reason, when rejected.
    pub reject_reason: Option<String>,
    /// Maximum hop count over the plan's slot paths (accepted only).
    pub max_hops: Option<usize>,
    /// Propagation delay of the first slot's path, milliseconds
    /// (accepted only).
    pub first_slot_delay_ms: Option<f64>,
}

/// Runs an algorithm over a workload recording one [`DecisionRecord`] per
/// request. Returns the records; the caller keeps the final state.
pub fn run_traced(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    algorithm: &mut dyn RoutingAlgorithm,
) -> (Vec<DecisionRecord>, NetworkState) {
    let mut state = NetworkState::new(prepared.series.clone(), &scenario.energy);
    let mut records = Vec::with_capacity(requests.len());
    for request in requests {
        let decision = algorithm.process(request, &mut state);
        let record = match &decision {
            Decision::Accepted { plan, price } => {
                let first = &plan.slot_paths[0];
                let snapshot = state.series().snapshot(first.slot);
                DecisionRecord {
                    request: request.id.0,
                    start_slot: request.start.0,
                    duration_slots: request.duration_slots() as u32,
                    rate_mbps: request.rate.peak_rate(),
                    valuation: request.valuation,
                    accepted: true,
                    price: *price,
                    reject_reason: None,
                    max_hops: Some(plan.max_hops()),
                    first_slot_delay_ms: Some(path_delay_s(snapshot, &first.edges) * 1e3),
                }
            }
            Decision::Rejected { reason } => DecisionRecord {
                request: request.id.0,
                start_slot: request.start.0,
                duration_slots: request.duration_slots() as u32,
                rate_mbps: request.rate.peak_rate(),
                valuation: request.valuation,
                accepted: false,
                price: 0.0,
                reject_reason: Some(reason.to_string()),
                max_hops: None,
                first_slot_delay_ms: None,
            },
        };
        records.push(record);
    }
    (records, state)
}

/// Renders records as CSV (header + one row per request).
pub fn records_to_csv(records: &[DecisionRecord]) -> String {
    let mut out = String::from(
        "request,start_slot,duration_slots,rate_mbps,valuation,accepted,price,reject_reason,max_hops,first_slot_delay_ms\n",
    );
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.request,
            r.start_slot,
            r.duration_slots,
            r.rate_mbps,
            r.valuation,
            r.accepted,
            r.price,
            r.reject_reason.as_deref().unwrap_or(""),
            r.max_hops.map(|h| h.to_string()).unwrap_or_default(),
            r.first_slot_delay_ms.map(|d| format!("{d:.3}")).unwrap_or_default(),
        );
    }
    out
}

/// Summary statistics over a trace: acceptance by reject reason, price
/// quartiles, hop/delay distributions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Accepted requests.
    pub accepted: usize,
    /// Rejections keyed by reason string.
    pub rejections: Vec<(String, usize)>,
    /// Median price among accepted (0 if none).
    pub median_price: f64,
    /// Median hop count among accepted.
    pub median_hops: usize,
    /// Median first-slot delay among accepted, milliseconds.
    pub median_delay_ms: f64,
}

/// Computes a [`TraceSummary`].
pub fn summarize(records: &[DecisionRecord]) -> TraceSummary {
    let mut prices: Vec<f64> = Vec::new();
    let mut hops: Vec<usize> = Vec::new();
    let mut delays: Vec<f64> = Vec::new();
    let mut rejections: std::collections::BTreeMap<String, usize> = Default::default();
    for r in records {
        if r.accepted {
            prices.push(r.price);
            if let Some(h) = r.max_hops {
                hops.push(h);
            }
            if let Some(d) = r.first_slot_delay_ms {
                delays.push(d);
            }
        } else if let Some(reason) = &r.reject_reason {
            *rejections.entry(reason.clone()).or_insert(0) += 1;
        }
    }
    prices.sort_by(f64::total_cmp);
    hops.sort_unstable();
    delays.sort_by(f64::total_cmp);
    TraceSummary {
        accepted: prices.len(),
        rejections: rejections.into_iter().collect(),
        median_price: median_f(&prices),
        median_hops: hops.get(hops.len() / 2).copied().unwrap_or(0),
        median_delay_ms: median_f(&delays),
    }
}

fn median_f(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, AlgorithmKind};
    use crate::scenario::ScenarioConfig;

    fn traced() -> (Vec<DecisionRecord>, NetworkState) {
        let scenario = ScenarioConfig::tiny();
        let prepared = engine::prepare(&scenario, 3);
        let requests = engine::workload(&scenario, &prepared, 3);
        let mut algo = AlgorithmKind::Cear(scenario.cear).instantiate();
        run_traced(&scenario, &prepared, &requests, algo.as_mut())
    }

    #[test]
    fn one_record_per_request() {
        let scenario = ScenarioConfig::tiny();
        let prepared = engine::prepare(&scenario, 3);
        let requests = engine::workload(&scenario, &prepared, 3);
        let (records, _) = traced();
        assert_eq!(records.len(), requests.len());
        for (r, req) in records.iter().zip(&requests) {
            assert_eq!(r.request, req.id.0);
            assert_eq!(r.start_slot, req.start.0);
        }
    }

    #[test]
    fn accepted_records_have_paths_rejected_have_reasons() {
        let (records, _) = traced();
        for r in &records {
            if r.accepted {
                assert!(r.max_hops.unwrap() >= 1);
                assert!(r.first_slot_delay_ms.unwrap() > 0.0);
                assert!(r.reject_reason.is_none());
            } else {
                assert!(r.reject_reason.is_some());
                assert!(r.max_hops.is_none());
            }
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (records, _) = traced();
        let csv = records_to_csv(&records);
        assert!(csv.starts_with("request,start_slot"));
        assert_eq!(csv.lines().count(), records.len() + 1);
    }

    #[test]
    fn summary_accounts_for_everything() {
        let (records, _) = traced();
        let summary = summarize(&records);
        let rejected: usize = summary.rejections.iter().map(|(_, n)| n).sum();
        assert_eq!(summary.accepted + rejected, records.len());
        if summary.accepted > 0 {
            assert!(summary.median_hops >= 1);
            assert!(summary.median_delay_ms > 0.0);
        }
    }

    #[test]
    fn trace_agrees_with_engine_metrics() {
        let scenario = ScenarioConfig::tiny();
        let prepared = engine::prepare(&scenario, 3);
        let requests = engine::workload(&scenario, &prepared, 3);
        let metrics = engine::run_prepared(
            &scenario,
            &prepared,
            &requests,
            &AlgorithmKind::Cear(scenario.cear),
            3,
        );
        let (records, _) = traced();
        let accepted = records.iter().filter(|r| r.accepted).count();
        assert_eq!(accepted, metrics.accepted_requests);
        let revenue: f64 = records.iter().map(|r| r.price).sum();
        assert!((revenue - metrics.revenue).abs() < 1e-6 * (1.0 + metrics.revenue));
    }
}
