//! Named experiment configurations.
//!
//! A [`ScenarioConfig`] pins down everything a run needs: constellation
//! shape, topology and energy parameters, workload distributions and
//! endpoint selection. Three presets are provided:
//!
//! * [`ScenarioConfig::paper`] — the paper's full evaluation setting
//!   (1584 satellites, 384 one-minute slots, 1761 candidate ground sites,
//!   223 EO satellites, 10 endpoint pairs, constant valuation 2.3 × 10⁹);
//! * [`ScenarioConfig::fast`] — a reduced setting with the same *shape*
//!   (denser-than-coverage shell, four orbital periods scaled down) that
//!   runs in seconds — used by integration tests and CI-speed figure
//!   regeneration;
//! * [`ScenarioConfig::tiny`] — a minimal setting for unit tests.

use sb_cear::{CearParams, RepairPolicy};
use sb_demand::{ArrivalPattern, SizeDistribution, ValuationModel};
use sb_energy::EnergyParams;
use sb_topology::failures::FailureModel;
use sb_topology::TopologyConfig;
use serde::{Deserialize, Serialize};

/// How rejected requests are resubmitted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Slots to wait before resubmitting.
    pub delay_slots: u32,
    /// Maximum resubmissions per request (beyond the first attempt).
    pub max_attempts: u32,
}

/// Unforeseen failures: a failure process drawn *after* admission plus the
/// operator's reaction to the reservations it breaks.
///
/// Unlike [`ScenarioConfig::isl_failure_prob`] — which removes failed links
/// from the topology *before* any request is routed, giving every algorithm
/// perfect foresight — this model leaves the routed topology clean. The
/// engine discovers outages at slot boundaries, marks the reservations
/// whose current-slot path crosses a dead link as broken, and applies
/// `policy` ([`RepairPolicy::Drop`] / [`RepairPolicy::Repair`] /
/// [`RepairPolicy::RepairPaid`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnforeseenFailures {
    /// The failure process (independent links, whole-satellite outages or
    /// Gilbert–Elliott bursts).
    pub model: FailureModel,
    /// What the operator does with broken reservations.
    pub policy: RepairPolicy,
}

/// One additional Walker shell of a multi-shell constellation.
///
/// The primary shell stays in [`ScenarioConfig`]'s flat fields (so every
/// existing preset, digest and sweep is untouched); mega-scale scenarios
/// append shells here. Satellite node ids are assigned shell by shell in
/// order: primary first, then each extra shell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShellConfig {
    /// Number of orbital planes.
    pub planes: usize,
    /// Satellites per plane.
    pub sats_per_plane: usize,
    /// Phasing factor.
    pub phasing: usize,
    /// Orbit altitude, meters.
    pub altitude_m: f64,
    /// Orbit inclination, degrees.
    pub inclination_deg: f64,
}

impl ShellConfig {
    /// Satellites in this shell.
    pub fn num_satellites(&self) -> usize {
        self.planes * self.sats_per_plane
    }
}

/// A complete experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario name for reports.
    pub name: String,
    /// Walker shell: number of orbital planes.
    pub planes: usize,
    /// Walker shell: satellites per plane.
    pub sats_per_plane: usize,
    /// Walker shell: phasing factor.
    pub phasing: usize,
    /// Orbit altitude, meters.
    pub altitude_m: f64,
    /// Orbit inclination, degrees.
    pub inclination_deg: f64,
    /// Additional Walker shells beyond the primary one (empty for every
    /// single-shell preset; see [`ShellConfig`]).
    pub extra_shells: Vec<ShellConfig>,
    /// Topology construction parameters.
    pub topology: TopologyConfig,
    /// Physical energy parameters.
    pub energy: EnergyParams,
    /// CEAR pricing parameters.
    pub cear: CearParams,
    /// Number of time slots simulated.
    pub horizon_slots: usize,
    /// Slot duration, seconds.
    pub slot_duration_s: f64,
    /// Number of source-destination pairs (paper: 10).
    pub num_pairs: usize,
    /// Fraction of pairs whose source is an EO satellite (space user).
    pub eo_pair_fraction: f64,
    /// Size of the synthetic EO fleet from which space users are drawn.
    pub eo_fleet_size: usize,
    /// Number of candidate ground sites kept from the GDP-weighted grid.
    pub ground_site_count: usize,
    /// Icosphere subdivision level of the ground grid.
    pub grid_subdivisions: u32,
    /// Mean request arrivals per slot (paper: 10 per minute).
    pub arrivals_per_slot: f64,
    /// Request duration bounds, slots (paper: 1–10 minutes).
    pub min_duration_slots: u32,
    /// Maximum request duration, slots.
    pub max_duration_slots: u32,
    /// Request rate distribution.
    pub size: SizeDistribution,
    /// Valuation model.
    pub valuation: ValuationModel,
    /// Time-varying modulation of the arrival rate.
    pub pattern: ArrivalPattern,
    /// Per-slot, per-link ISL failure probability (0 = the paper's
    /// failure-free setting). Failures drawn here are *foreseen*: the
    /// topology series is pruned before routing.
    pub isl_failure_prob: f64,
    /// Unforeseen failures and the repair policy applied to the
    /// reservations they break. `None` (the paper's setting) keeps the
    /// engine's behavior bit-identical to the foresight-only path.
    pub unforeseen: Option<UnforeseenFailures>,
    /// Resubmission of rejected requests (§III-B: "if a request from a
    /// space user is rejected, the user can wait for a period before
    /// resubmitting"). `None` = no retries (the paper's evaluation).
    pub retry: Option<RetryPolicy>,
    /// Battery threshold fraction for the *energy-depleted satellites*
    /// metric (paper: 0.2).
    pub depleted_threshold_frac: f64,
    /// Residual-capacity threshold fraction for the *congested links*
    /// metric (paper: 0.1).
    pub congested_threshold_frac: f64,
}

impl ScenarioConfig {
    /// The paper's full evaluation configuration.
    pub fn paper() -> Self {
        ScenarioConfig {
            name: "paper".to_owned(),
            planes: 22,
            sats_per_plane: 72,
            phasing: 17,
            altitude_m: 550_000.0,
            inclination_deg: 53.0,
            extra_shells: Vec::new(),
            topology: TopologyConfig::default(),
            energy: EnergyParams::default(),
            cear: CearParams::default(),
            horizon_slots: 384, // 96 min × 4 revolutions
            slot_duration_s: 60.0,
            num_pairs: 10,
            eo_pair_fraction: 0.3,
            eo_fleet_size: 223,
            ground_site_count: 1761,
            grid_subdivisions: 4,
            arrivals_per_slot: 10.0,
            min_duration_slots: 1,
            max_duration_slots: 10,
            size: SizeDistribution::paper_default(),
            valuation: ValuationModel::paper_default(),
            pattern: ArrivalPattern::Constant,
            isl_failure_prob: 0.0,
            unforeseen: None,
            retry: None,
            depleted_threshold_frac: 0.2,
            congested_threshold_frac: 0.1,
        }
    }

    /// A reduced configuration preserving the experiment's *shape*: a
    /// 16×16 shell (coverage-complete at a 15° mask), 96 slots (one
    /// orbital period), fewer pairs, lighter load. Runs a full 5-algorithm
    /// comparison in seconds.
    pub fn fast() -> Self {
        ScenarioConfig {
            name: "fast".to_owned(),
            planes: 16,
            sats_per_plane: 16,
            phasing: 5,
            topology: sb_topology::TopologyConfig {
                min_elevation_rad: 15f64.to_radians(),
                ..sb_topology::TopologyConfig::default()
            },
            horizon_slots: 96,
            num_pairs: 6,
            eo_fleet_size: 20,
            ground_site_count: 400,
            grid_subdivisions: 3,
            arrivals_per_slot: 4.0,
            ..Self::paper()
        }
    }

    /// A minimal configuration for unit tests: a 12×12 shell, 24 slots,
    /// 3 pairs, light load.
    pub fn tiny() -> Self {
        ScenarioConfig {
            name: "tiny".to_owned(),
            planes: 12,
            sats_per_plane: 12,
            phasing: 3,
            topology: sb_topology::TopologyConfig {
                min_elevation_rad: 10f64.to_radians(),
                ..sb_topology::TopologyConfig::default()
            },
            horizon_slots: 24,
            num_pairs: 3,
            eo_fleet_size: 8,
            ground_site_count: 120,
            grid_subdivisions: 2,
            arrivals_per_slot: 1.0,
            ..Self::paper()
        }
    }

    /// A mega-constellation configuration: two dense Walker shells
    /// totalling 10 368 satellites (production-scale, Starlink-Gen2-like)
    /// over a short horizon. Exists to exercise the delta-compiled
    /// shared-structure topology representation at scale — the workload
    /// is kept light because the interesting costs are series build time
    /// and memory, not admission.
    pub fn mega() -> Self {
        ScenarioConfig {
            name: "mega".to_owned(),
            planes: 72,
            sats_per_plane: 72,
            phasing: 17,
            altitude_m: 550_000.0,
            inclination_deg: 53.0,
            extra_shells: vec![ShellConfig {
                planes: 72,
                sats_per_plane: 72,
                phasing: 11,
                altitude_m: 570_000.0,
                inclination_deg: 70.0,
            }],
            horizon_slots: 12,
            num_pairs: 4,
            eo_fleet_size: 8,
            ground_site_count: 200,
            grid_subdivisions: 3,
            arrivals_per_slot: 2.0,
            ..Self::paper()
        }
    }

    /// The three-shell mega-constellation: 30 000 satellites across a
    /// low broadband shell, a higher inclined shell and a near-polar
    /// shell — the next constellation generation up from [`mega`].
    /// Same philosophy: an even shorter horizon and a minimal workload,
    /// because what this preset stresses is topology construction,
    /// delta compilation and series shipping at scale.
    ///
    /// [`mega`]: ScenarioConfig::mega
    pub fn mega3() -> Self {
        ScenarioConfig {
            name: "mega3".to_owned(),
            planes: 100,
            sats_per_plane: 100,
            phasing: 17,
            altitude_m: 550_000.0,
            inclination_deg: 53.0,
            extra_shells: vec![
                ShellConfig {
                    planes: 100,
                    sats_per_plane: 100,
                    phasing: 11,
                    altitude_m: 570_000.0,
                    inclination_deg: 70.0,
                },
                ShellConfig {
                    planes: 100,
                    sats_per_plane: 100,
                    phasing: 23,
                    altitude_m: 590_000.0,
                    inclination_deg: 97.6,
                },
            ],
            horizon_slots: 8,
            num_pairs: 2,
            eo_fleet_size: 4,
            ground_site_count: 100,
            grid_subdivisions: 3,
            arrivals_per_slot: 1.0,
            ..Self::paper()
        }
    }

    /// Total satellites across the primary shell and every extra shell.
    pub fn total_satellites(&self) -> usize {
        self.planes * self.sats_per_plane
            + self.extra_shells.iter().map(ShellConfig::num_satellites).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_evaluation_section() {
        let p = ScenarioConfig::paper();
        assert_eq!(p.total_satellites(), 1584);
        assert_eq!(p.horizon_slots, 384);
        assert_eq!(p.num_pairs, 10);
        assert_eq!(p.ground_site_count, 1761);
        assert_eq!(p.eo_fleet_size, 223);
        assert_eq!(p.arrivals_per_slot, 10.0);
        assert_eq!(p.topology.isl_capacity_mbps, 20_000.0);
        assert_eq!(p.topology.usl_capacity_mbps, 4_000.0);
        assert_eq!(p.energy.battery_capacity_j, 117_000.0);
        assert_eq!(p.depleted_threshold_frac, 0.2);
        assert_eq!(p.congested_threshold_frac, 0.1);
    }

    #[test]
    fn presets_are_distinct_scales() {
        let paper = ScenarioConfig::paper();
        let fast = ScenarioConfig::fast();
        let tiny = ScenarioConfig::tiny();
        assert!(paper.total_satellites() > fast.total_satellites());
        assert!(fast.total_satellites() > tiny.total_satellites());
        assert!(paper.horizon_slots > fast.horizon_slots);
        assert!(fast.horizon_slots > tiny.horizon_slots);
    }

    #[test]
    fn mega_is_multi_shell_at_scale() {
        let m = ScenarioConfig::mega();
        assert!(m.total_satellites() >= 10_000);
        assert!(!m.extra_shells.is_empty());
        assert!(m.horizon_slots <= 24, "mega keeps the horizon short");
        assert_eq!(m.total_satellites(), 72 * 72 * 2);
    }

    #[test]
    fn mega3_is_three_shells_at_thirty_thousand() {
        let m = ScenarioConfig::mega3();
        assert_eq!(m.extra_shells.len(), 2, "one primary + two extra shells");
        assert!(m.total_satellites() >= 30_000);
        assert_eq!(m.total_satellites(), 3 * 100 * 100);
        assert!(m.horizon_slots <= ScenarioConfig::mega().horizon_slots);
        // Every shell is phased differently and flies at its own altitude.
        let mut alts = vec![m.altitude_m];
        alts.extend(m.extra_shells.iter().map(|s| s.altitude_m));
        alts.sort_by(f64::total_cmp);
        alts.dedup();
        assert_eq!(alts.len(), 3, "shells must not coincide");
    }

    #[test]
    fn serde_roundtrip() {
        let p = ScenarioConfig::fast();
        let json = serde_json::to_string(&p).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
