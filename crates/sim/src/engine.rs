//! End-to-end deterministic simulation runs.
//!
//! [`run`] executes the full pipeline for one `(scenario, algorithm,
//! seed)` triple:
//!
//! 1. build the Walker shell, ground grid and EO fleet;
//! 2. draw the scenario's source-destination pairs (GDP-weighted ground
//!    sites; EO satellites for space-user pairs) with the seeded RNG;
//! 3. build the per-slot topology series and a fresh [`NetworkState`];
//! 4. generate the Poisson workload with the same seed;
//! 5. feed requests in arrival order to the algorithm;
//! 6. collect the paper's metrics.
//!
//! Identical inputs give bit-identical outputs — the error bars in the
//! figures come solely from varying the seed.

use crate::metrics::RunMetrics;
use crate::scenario::ScenarioConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_cear::{AblationFlags, Cear, CearParams, Decision, NetworkState, RejectReason, RoutingAlgorithm};
use sb_demand::generator::{generate_workload, WorkloadConfig};
use sb_demand::Request;
use sb_orbit::walker::WalkerConstellation;
use sb_topology::ground::GroundGrid;
use sb_topology::{NetworkNodes, NodeId, SlotIndex, TopologySeries};
use serde::{Deserialize, Serialize};

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// CEAR with the given pricing parameters.
    Cear(CearParams),
    /// An ablated CEAR variant (for ablation studies).
    CearAblated(CearParams, AblationFlags),
    /// Single Shortest Path.
    Ssp,
    /// ECARS with default factors.
    Ecars,
    /// ERU with its default depth-of-discharge threshold.
    Eru,
    /// ERA with its default threshold and factor pairs.
    Era,
}

impl AlgorithmKind {
    /// All five algorithms of the paper's comparison, CEAR configured from
    /// the scenario.
    pub fn all(scenario: &ScenarioConfig) -> Vec<AlgorithmKind> {
        vec![
            AlgorithmKind::Cear(scenario.cear),
            AlgorithmKind::Ssp,
            AlgorithmKind::Ecars,
            AlgorithmKind::Eru,
            AlgorithmKind::Era,
        ]
    }

    /// Instantiates the algorithm.
    pub fn instantiate(&self) -> Box<dyn RoutingAlgorithm> {
        match self {
            AlgorithmKind::Cear(params) => Box::new(Cear::new(*params)),
            AlgorithmKind::CearAblated(params, flags) => {
                Box::new(Cear::with_ablation(*params, *flags))
            }
            AlgorithmKind::Ssp => Box::new(sb_cear::Ssp::new()),
            AlgorithmKind::Ecars => Box::new(sb_cear::Ecars::new()),
            AlgorithmKind::Eru => Box::new(sb_cear::Eru::new()),
            AlgorithmKind::Era => Box::new(sb_cear::Era::new()),
        }
    }

    /// The algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Cear(_) => "CEAR",
            AlgorithmKind::CearAblated(_, flags) => match flags.suffix() {
                "-nobw" => "CEAR-nobw",
                "-noenergy" => "CEAR-noenergy",
                "-noadmission" => "CEAR-noadmission",
                "-noprice" => "CEAR-noprice",
                "" => "CEAR",
                _ => "CEAR-custom",
            },
            AlgorithmKind::Ssp => "SSP",
            AlgorithmKind::Ecars => "ECARS",
            AlgorithmKind::Eru => "ERU",
            AlgorithmKind::Era => "ERA",
        }
    }
}

/// The prepared, workload-independent part of a run: node table, topology
/// series and endpoint pairs. Building this is the expensive step at paper
/// scale, so it is exposed separately for reuse across algorithms (the
/// comparison figures run all five algorithms on the *same* prepared
/// network and workload).
#[derive(Debug, Clone)]
pub struct PreparedNetwork {
    /// The node table used to build the series.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// The topology snapshots for the whole horizon.
    pub series: TopologySeries,
}

/// Builds the constellation, selects endpoint pairs and builds the
/// topology series for a scenario. Endpoint selection uses its own RNG
/// stream derived from `seed` so workload and topology draws never
/// interfere.
pub fn prepare(scenario: &ScenarioConfig, seed: u64) -> PreparedNetwork {
    let shell = WalkerConstellation::delta(
        scenario.planes,
        scenario.sats_per_plane,
        scenario.phasing,
        scenario.altitude_m,
        scenario.inclination_deg.to_radians(),
    );
    let mut nodes = NetworkNodes::from_walker(&shell);

    let grid = GroundGrid::generate(scenario.grid_subdivisions, scenario.ground_site_count);
    let fleet = sb_orbit::eo::synthetic_fleet(scenario.eo_fleet_size);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_7090_dead_beef);
    let mut pairs = Vec::with_capacity(scenario.num_pairs);
    for _ in 0..scenario.num_pairs {
        let dst_site = grid.weighted_site_index(rng.gen_range(0.0..1.0));
        let dst = nodes.add_ground_site(grid.sites()[dst_site].0);
        let src = if rng.gen_range(0.0..1.0) < scenario.eo_pair_fraction && !fleet.is_empty() {
            // A space-user pair: EO satellite downlinking to the ground.
            let eo = rng.gen_range(0..fleet.len());
            nodes.add_space_user(fleet[eo].clone())
        } else {
            let src_site = grid.weighted_site_index(rng.gen_range(0.0..1.0));
            nodes.add_ground_site(grid.sites()[src_site].0)
        };
        pairs.push((src, dst));
    }

    let mut series = TopologySeries::build(
        &nodes,
        &scenario.topology,
        scenario.horizon_slots,
        scenario.slot_duration_s,
    );
    if scenario.isl_failure_prob > 0.0 {
        let model = sb_topology::failures::LinkFailureModel::new(
            scenario.isl_failure_prob,
            seed ^ 0xfa11_fa11,
        );
        series = series.with_failures(&model);
    }
    PreparedNetwork { pairs, series }
}

/// Generates the workload for a prepared network.
pub fn workload(scenario: &ScenarioConfig, prepared: &PreparedNetwork, seed: u64) -> Vec<Request> {
    let config = WorkloadConfig {
        pairs: prepared.pairs.clone(),
        arrivals_per_slot: scenario.arrivals_per_slot,
        horizon_slots: scenario.horizon_slots as u32,
        min_duration_slots: scenario.min_duration_slots,
        max_duration_slots: scenario.max_duration_slots,
        size: scenario.size,
        valuation: scenario.valuation,
        slot_duration_s: scenario.slot_duration_s,
        pattern: scenario.pattern,
    };
    generate_workload(&config, seed)
}

/// Runs one algorithm over a prepared network and workload, returning the
/// metrics. The state is built fresh, so the same `PreparedNetwork` can be
/// reused across algorithms.
pub fn run_prepared(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    kind: &AlgorithmKind,
    seed: u64,
) -> RunMetrics {
    let mut algorithm = kind.instantiate();
    run_with_algorithm(scenario, prepared, requests, algorithm.as_mut(), seed)
}

/// Like [`run_prepared`] but with a caller-supplied algorithm instance —
/// for stateful algorithms outside the [`AlgorithmKind`] enum (e.g.
/// [`sb_cear::AdaptiveCear`]).
pub fn run_with_algorithm(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    algorithm: &mut dyn RoutingAlgorithm,
    seed: u64,
) -> RunMetrics {
    let mut state = NetworkState::new(prepared.series.clone(), &scenario.energy);

    let start = std::time::Instant::now();
    let mut welfare = 0.0;
    let mut revenue = 0.0;
    let mut accepted = 0usize;
    let mut accepted_after_retry = 0usize;
    let (mut no_path, mut by_price, mut at_commit) = (0usize, 0usize, 0usize);
    // Cumulative welfare ratio by arrival slot.
    let mut accepted_value_by_slot = vec![0.0; scenario.horizon_slots];
    let mut total_value_by_slot = vec![0.0; scenario.horizon_slots];

    // Retry queue (§III-B resubmission): rejected requests come back
    // `delay_slots` later with the same duration and valuation, ordered by
    // their new start slot. Welfare attributes to the *original* arrival.
    // Entries: (new_start_slot, original_arrival, attempts_left, request).
    let mut retries: std::collections::VecDeque<(u32, usize, u32, Request)> =
        Default::default();

    let handle = |request: &Request,
                      original_arrival: usize,
                      attempts_left: u32,
                      algorithm: &mut dyn RoutingAlgorithm,
                      state: &mut NetworkState,
                      welfare: &mut f64,
                      revenue: &mut f64,
                      accepted: &mut usize,
                      accepted_after_retry: &mut usize,
                      no_path: &mut usize,
                      by_price: &mut usize,
                      at_commit: &mut usize,
                      accepted_value_by_slot: &mut [f64],
                      retries: &mut std::collections::VecDeque<(u32, usize, u32, Request)>| {
        match algorithm.process(request, state) {
            Decision::Accepted { price, .. } => {
                *welfare += request.valuation;
                *revenue += price;
                *accepted += 1;
                if attempts_left < scenario.retry.map_or(0, |r| r.max_attempts) {
                    *accepted_after_retry += 1;
                }
                accepted_value_by_slot[original_arrival] += request.valuation;
            }
            Decision::Rejected { reason } => {
                match reason {
                    RejectReason::NoFeasiblePath => *no_path += 1,
                    RejectReason::PriceAboveValuation => *by_price += 1,
                    RejectReason::CommitFailed => *at_commit += 1,
                }
                if let Some(policy) = scenario.retry {
                    if attempts_left > 0 {
                        let new_start = request.start.0 + policy.delay_slots;
                        let duration = request.end.0 - request.start.0;
                        if (new_start as usize) < scenario.horizon_slots {
                            let mut retried = request.clone();
                            retried.start = SlotIndex(new_start);
                            retried.end = SlotIndex(
                                (new_start + duration)
                                    .min(scenario.horizon_slots as u32 - 1),
                            );
                            retries.push_back((
                                new_start,
                                original_arrival,
                                attempts_left - 1,
                                retried,
                            ));
                        }
                    }
                }
            }
        }
    };

    let initial_attempts = scenario.retry.map_or(0, |r| r.max_attempts);
    for request in requests {
        let arrival = request.start.index().min(scenario.horizon_slots - 1);
        // Process any retries due before this arrival (queue is in
        // insertion order; delays are constant so it stays slot-sorted).
        while retries
            .front()
            .is_some_and(|(due, _, _, _)| (*due as usize) <= arrival)
        {
            let (_, orig, left, retried) = retries.pop_front().unwrap();
            handle(
                &retried, orig, left, algorithm, &mut state, &mut welfare, &mut revenue,
                &mut accepted, &mut accepted_after_retry, &mut no_path, &mut by_price,
                &mut at_commit, &mut accepted_value_by_slot, &mut retries,
            );
        }
        total_value_by_slot[arrival] += request.valuation;
        handle(
            request, arrival, initial_attempts, algorithm, &mut state, &mut welfare,
            &mut revenue, &mut accepted, &mut accepted_after_retry, &mut no_path,
            &mut by_price, &mut at_commit, &mut accepted_value_by_slot, &mut retries,
        );
    }
    // Drain retries that fall after the last arrival.
    while let Some((_, orig, left, retried)) = retries.pop_front() {
        handle(
            &retried, orig, left, algorithm, &mut state, &mut welfare, &mut revenue,
            &mut accepted, &mut accepted_after_retry, &mut no_path, &mut by_price,
            &mut at_commit, &mut accepted_value_by_slot, &mut retries,
        );
    }
    let processing_ms = start.elapsed().as_millis();

    let total_valuation: f64 = requests.iter().map(|r| r.valuation).sum();
    let mut welfare_ratio_over_time = Vec::with_capacity(scenario.horizon_slots);
    let (mut cum_acc, mut cum_tot) = (0.0, 0.0);
    for t in 0..scenario.horizon_slots {
        cum_acc += accepted_value_by_slot[t];
        cum_tot += total_value_by_slot[t];
        welfare_ratio_over_time.push(if cum_tot > 0.0 { cum_acc / cum_tot } else { 1.0 });
    }

    let depleted_satellites_over_time = (0..scenario.horizon_slots)
        .map(|t| state.depleted_satellite_count(SlotIndex(t as u32), scenario.depleted_threshold_frac))
        .collect();
    let congested_links_over_time = (0..scenario.horizon_slots)
        .map(|t| state.congested_link_count(SlotIndex(t as u32), scenario.congested_threshold_frac))
        .collect();

    RunMetrics {
        algorithm: algorithm.name().to_owned(),
        scenario: scenario.name.clone(),
        seed,
        total_requests: requests.len(),
        accepted_requests: accepted,
        accepted_after_retry,
        total_valuation,
        welfare,
        social_welfare_ratio: if total_valuation > 0.0 { welfare / total_valuation } else { 1.0 },
        revenue,
        depleted_satellites_over_time,
        congested_links_over_time,
        welfare_ratio_over_time,
        rejected_no_path: no_path,
        rejected_by_price: by_price,
        rejected_at_commit: at_commit,
        battery_wear: sb_energy::fleet_wear(state.ledger()),
        processing_ms,
    }
}

/// Convenience: prepare, generate and run in one call.
pub fn run(scenario: &ScenarioConfig, kind: &AlgorithmKind, seed: u64) -> RunMetrics {
    let prepared = prepare(scenario, seed);
    let requests = workload(scenario, &prepared, seed);
    run_prepared(scenario, &prepared, &requests, kind, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_deterministic() {
        let scenario = ScenarioConfig::tiny();
        let a = run(&scenario, &AlgorithmKind::Ssp, 3);
        let mut b = run(&scenario, &AlgorithmKind::Ssp, 3);
        b.processing_ms = a.processing_ms; // wall clock may differ
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let scenario = ScenarioConfig::tiny();
        let a = run(&scenario, &AlgorithmKind::Ssp, 1);
        let b = run(&scenario, &AlgorithmKind::Ssp, 2);
        assert_ne!(a.total_requests, 0);
        // Workloads differ, so at least the request count or welfare
        // should (with overwhelming probability) differ.
        assert!(a.total_requests != b.total_requests || a.welfare != b.welfare);
    }

    #[test]
    fn accounting_adds_up() {
        let scenario = ScenarioConfig::tiny();
        for kind in [AlgorithmKind::Cear(CearParams::default()), AlgorithmKind::Ecars] {
            let m = run(&scenario, &kind, 7);
            assert_eq!(
                m.accepted_requests
                    + m.rejected_no_path
                    + m.rejected_by_price
                    + m.rejected_at_commit,
                m.total_requests,
                "{}",
                m.algorithm
            );
            assert!(m.social_welfare_ratio >= 0.0 && m.social_welfare_ratio <= 1.0);
            assert_eq!(m.depleted_satellites_over_time.len(), scenario.horizon_slots);
            assert_eq!(m.congested_links_over_time.len(), scenario.horizon_slots);
            // Final cumulative ratio equals the overall ratio.
            let last = *m.welfare_ratio_over_time.last().unwrap();
            assert!((last - m.social_welfare_ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn all_algorithms_run_on_shared_network() {
        let scenario = ScenarioConfig::tiny();
        let prepared = prepare(&scenario, 5);
        let requests = workload(&scenario, &prepared, 5);
        assert_eq!(prepared.pairs.len(), scenario.num_pairs);
        for kind in AlgorithmKind::all(&scenario) {
            let m = run_prepared(&scenario, &prepared, &requests, &kind, 5);
            assert_eq!(m.total_requests, requests.len(), "{}", m.algorithm);
        }
    }

    #[test]
    fn baseline_revenue_is_zero_cear_nonnegative() {
        let scenario = ScenarioConfig::tiny();
        let ssp = run(&scenario, &AlgorithmKind::Ssp, 11);
        assert_eq!(ssp.revenue, 0.0);
        let cear = run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 11);
        assert!(cear.revenue >= 0.0);
    }
}
