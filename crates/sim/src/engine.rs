//! End-to-end deterministic simulation runs.
//!
//! [`run`] executes the full pipeline for one `(scenario, algorithm,
//! seed)` triple:
//!
//! 1. build the Walker shell, ground grid and EO fleet;
//! 2. draw the scenario's source-destination pairs (GDP-weighted ground
//!    sites; EO satellites for space-user pairs) with the seeded RNG;
//! 3. build the per-slot topology series and a fresh [`NetworkState`];
//! 4. generate the Poisson workload with the same seed;
//! 5. step the horizon slot by slot — each slot admits its due retries and
//!    arrivals in workload order, then (when the scenario configures
//!    unforeseen failures) discovers the slot's outages and applies the
//!    repair policy to every reservation they broke;
//! 6. collect the paper's metrics plus the delivered-welfare and repair
//!    accounting.
//!
//! Unforeseen failures are drawn *after* admission: requests route on the
//! clean topology series, outages surface only at slot boundaries via
//! [`FailureOracle`], and a request admitted in the very slot an outage is
//! active is caught by the same boundary pass. With no unforeseen failures
//! configured the slot loop performs exactly the request-ordered
//! processing sequence of the foresight-only engine, so those runs stay
//! bit-identical.
//!
//! Identical inputs give bit-identical outputs — the error bars in the
//! figures come solely from varying the seed.

use crate::journal::{JournalRecord, RepairEvent};
use crate::metrics::RunMetrics;
use crate::outage::FailureOracle;
use crate::scenario::{ScenarioConfig, UnforeseenFailures};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_cear::{
    repair, try_repair, AblationFlags, BookingId, Cear, CearParams, Decision, KnownFailures,
    NetworkState, RejectReason, RepairOutcome, RepairPolicy, RoutingAlgorithm, SearchKind,
    SlotPath,
};
use sb_demand::generator::{generate_workload, WorkloadConfig};
use sb_demand::Request;
use sb_orbit::walker::WalkerConstellation;
use sb_topology::ground::GroundGrid;
use sb_topology::{NetworkNodes, NodeId, SeriesPackage, SlotIndex, TopologySeries};
use sb_wire::{Reader, WireError, Writer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// CEAR with the given pricing parameters.
    Cear(CearParams),
    /// An ablated CEAR variant (for ablation studies).
    CearAblated(CearParams, AblationFlags),
    /// Single Shortest Path.
    Ssp,
    /// ECARS with default factors.
    Ecars,
    /// ERU with its default depth-of-discharge threshold.
    Eru,
    /// ERA with its default threshold and factor pairs.
    Era,
}

impl AlgorithmKind {
    /// All five algorithms of the paper's comparison, CEAR configured from
    /// the scenario.
    pub fn all(scenario: &ScenarioConfig) -> Vec<AlgorithmKind> {
        vec![
            AlgorithmKind::Cear(scenario.cear),
            AlgorithmKind::Ssp,
            AlgorithmKind::Ecars,
            AlgorithmKind::Eru,
            AlgorithmKind::Era,
        ]
    }

    /// Instantiates the algorithm with default execution options.
    pub fn instantiate(&self) -> Box<dyn RoutingAlgorithm> {
        self.instantiate_exec(&ExecOptions::default())
    }

    /// Instantiates the algorithm with explicit execution options.
    ///
    /// Execution options tune *how* the algorithm computes (worker
    /// threads), never *what* it computes — every configuration is
    /// bit-identical, so `ExecOptions` deliberately stays out of
    /// [`ScenarioConfig`] and the run digest.
    pub fn instantiate_exec(&self, exec: &ExecOptions) -> Box<dyn RoutingAlgorithm> {
        match self {
            AlgorithmKind::Cear(params) => Box::new(
                Cear::new(*params).with_quote_threads(exec.quote_threads).with_search(exec.search),
            ),
            AlgorithmKind::CearAblated(params, flags) => Box::new(
                Cear::with_ablation(*params, *flags)
                    .with_quote_threads(exec.quote_threads)
                    .with_search(exec.search),
            ),
            AlgorithmKind::Ssp => Box::new(sb_cear::Ssp::new().with_search(exec.search)),
            AlgorithmKind::Ecars => Box::new(sb_cear::Ecars::new().with_search(exec.search)),
            AlgorithmKind::Eru => Box::new(sb_cear::Eru::new().with_search(exec.search)),
            AlgorithmKind::Era => Box::new(sb_cear::Era::new().with_search(exec.search)),
        }
    }

    /// The algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Cear(_) => "CEAR",
            AlgorithmKind::CearAblated(_, flags) => match flags.suffix() {
                "-nobw" => "CEAR-nobw",
                "-noenergy" => "CEAR-noenergy",
                "-noadmission" => "CEAR-noadmission",
                "-noprice" => "CEAR-noprice",
                "" => "CEAR",
                _ => "CEAR-custom",
            },
            AlgorithmKind::Ssp => "SSP",
            AlgorithmKind::Ecars => "ECARS",
            AlgorithmKind::Eru => "ERU",
            AlgorithmKind::Era => "ERA",
        }
    }
}

/// Execution knobs that tune *how* a run computes, never *what* it
/// computes: every setting is bit-identical to the default. Kept apart
/// from [`ScenarioConfig`] so checkpoints and run digests are portable
/// across hosts and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for speculative slot-parallel admission quoting
    /// (CEAR variants only; floored at 1 = serial).
    pub quote_threads: usize,
    /// The per-slot search kernel (all algorithms): the reference Dijkstra
    /// or goal-directed A\* with SPT caching — bit-identical results
    /// either way (see `sb_cear::SearchKind`).
    pub search: SearchKind,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { quote_threads: 1, search: SearchKind::default() }
    }
}

/// The prepared, workload-independent part of a run: node table, topology
/// series and endpoint pairs. Building this is the expensive step at paper
/// scale, so it is exposed separately for reuse across algorithms (the
/// comparison figures run all five algorithms on the *same* prepared
/// network and workload), and memoized across sweep cells by
/// [`crate::prepared::PreparedCache`].
#[derive(Debug, Clone)]
pub struct PreparedNetwork {
    /// The node table used to build the series.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// The topology snapshots for the whole horizon, shared so that the
    /// per-algorithm [`NetworkState`]s built from one prepared network
    /// bump a refcount instead of cloning every snapshot.
    pub series: std::sync::Arc<TopologySeries>,
}

/// Builds the constellation, selects endpoint pairs and builds the
/// topology series for a scenario. Endpoint selection uses its own RNG
/// stream derived from `seed` so workload and topology draws never
/// interfere.
pub fn prepare(scenario: &ScenarioConfig, seed: u64) -> PreparedNetwork {
    prepare_with(scenario, seed, 1)
}

/// [`prepare`] with the per-slot snapshot builds fanned across
/// `build_threads` worker threads ([`TopologySeries::build_par`]). The
/// result is bit-identical for every thread count — the knob tunes build
/// speed, never what gets built, which is why it is a plain argument and
/// not part of [`ScenarioConfig`] or any digest.
pub fn prepare_with(scenario: &ScenarioConfig, seed: u64, build_threads: usize) -> PreparedNetwork {
    let (nodes, pairs) = draw_nodes_and_pairs(scenario, seed);
    let series = TopologySeries::build_par(
        &nodes,
        &scenario.topology,
        scenario.horizon_slots,
        scenario.slot_duration_s,
        build_threads,
    );
    let series = apply_foreseen_failures(scenario, seed, series);
    PreparedNetwork { pairs, series: std::sync::Arc::new(series) }
}

/// The node-table half of [`prepare`]: builds the constellation shells and
/// draws the endpoint pairs (mutating the node table with the ground sites
/// and space users each pair adds). Cheap compared to the series build, so
/// a worker receiving a shipped series redoes this part locally.
fn draw_nodes_and_pairs(
    scenario: &ScenarioConfig,
    seed: u64,
) -> (NetworkNodes, Vec<(NodeId, NodeId)>) {
    let mut shells = Vec::with_capacity(1 + scenario.extra_shells.len());
    shells.push(WalkerConstellation::delta(
        scenario.planes,
        scenario.sats_per_plane,
        scenario.phasing,
        scenario.altitude_m,
        scenario.inclination_deg.to_radians(),
    ));
    for s in &scenario.extra_shells {
        shells.push(WalkerConstellation::delta(
            s.planes,
            s.sats_per_plane,
            s.phasing,
            s.altitude_m,
            s.inclination_deg.to_radians(),
        ));
    }
    let mut nodes = NetworkNodes::from_shells(&shells);

    let grid = GroundGrid::generate(scenario.grid_subdivisions, scenario.ground_site_count);
    let fleet = sb_orbit::eo::synthetic_fleet(scenario.eo_fleet_size);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_7090_dead_beef);
    let mut pairs = Vec::with_capacity(scenario.num_pairs);
    for _ in 0..scenario.num_pairs {
        let dst_site = grid.weighted_site_index(rng.gen_range(0.0..1.0));
        let dst = nodes.add_ground_site(grid.sites()[dst_site].0);
        let src = if rng.gen_range(0.0..1.0) < scenario.eo_pair_fraction && !fleet.is_empty() {
            // A space-user pair: EO satellite downlinking to the ground.
            let eo = rng.gen_range(0..fleet.len());
            nodes.add_space_user(fleet[eo].clone())
        } else {
            let src_site = grid.weighted_site_index(rng.gen_range(0.0..1.0));
            nodes.add_ground_site(grid.sites()[src_site].0)
        };
        pairs.push((src, dst));
    }
    (nodes, pairs)
}

/// Prunes the series with the foreseen ISL-failure model when the
/// scenario has one — the deterministic post-build step both the local
/// and the shipped preparation paths share.
fn apply_foreseen_failures(
    scenario: &ScenarioConfig,
    seed: u64,
    series: TopologySeries,
) -> TopologySeries {
    if scenario.isl_failure_prob > 0.0 {
        let model = sb_topology::failures::LinkFailureModel::new(
            scenario.isl_failure_prob,
            seed ^ 0xfa11_fa11,
        );
        series.with_failures(&model)
    } else {
        series
    }
}

/// Compiles the shippable topology package for `(scenario, seed)`: the
/// series a fleet coordinator sends instead of having every worker rebuild
/// it. The package covers the **pre-failure** series over the nodes the
/// pair draw adds — exactly what [`prepare_from_series`] needs on the
/// receiving side, and exactly the reuse unit keyed by
/// `(prepare_digest, seed)` in [`crate::prepared::PreparedCache`].
pub fn compile_series_package(scenario: &ScenarioConfig, seed: u64) -> SeriesPackage {
    let (nodes, _pairs) = draw_nodes_and_pairs(scenario, seed);
    SeriesPackage::compile(
        &nodes,
        &scenario.topology,
        scenario.horizon_slots,
        scenario.slot_duration_s,
    )
}

/// Builds a [`PreparedNetwork`] from a received, already-materialized
/// series (see [`compile_series_package`]): redraws the cheap endpoint
/// pairs locally and applies the foreseen failure model, which operates
/// *after* the shipped pre-failure series. Bit-identical to
/// [`prepare_with`] for every thread count — proven by the
/// `prop_prepare_from_shipped_series_bit_identical` proptest.
pub fn prepare_from_series(
    scenario: &ScenarioConfig,
    seed: u64,
    series: &std::sync::Arc<TopologySeries>,
) -> PreparedNetwork {
    let (_nodes, pairs) = draw_nodes_and_pairs(scenario, seed);
    let series = if scenario.isl_failure_prob > 0.0 {
        std::sync::Arc::new(apply_foreseen_failures(scenario, seed, (**series).clone()))
    } else {
        std::sync::Arc::clone(series)
    };
    PreparedNetwork { pairs, series }
}

/// Digest of exactly the [`ScenarioConfig`] fields [`prepare`] reads —
/// constellation shape, topology knobs, horizon, endpoint selection and
/// the foreseen ISL-failure probability. Workload-only fields (arrival
/// rate, valuation, CEAR pricing, energy) deliberately stay out, so two
/// sweep cells that differ only in load share one prepared network in
/// [`crate::prepared::PreparedCache`].
pub fn prepare_digest(scenario: &ScenarioConfig) -> u64 {
    let mut w = Writer::new();
    w.usize(scenario.planes);
    w.usize(scenario.sats_per_plane);
    w.usize(scenario.phasing);
    w.f64(scenario.altitude_m);
    w.f64(scenario.inclination_deg);
    // Extra shells are appended only when present so every single-shell
    // scenario keeps its pre-multi-shell digest (prepared caches and
    // recorded digests stay valid).
    for s in &scenario.extra_shells {
        w.usize(s.planes);
        w.usize(s.sats_per_plane);
        w.usize(s.phasing);
        w.f64(s.altitude_m);
        w.f64(s.inclination_deg);
    }
    w.str(&format!("{:?}", scenario.topology));
    w.usize(scenario.horizon_slots);
    w.f64(scenario.slot_duration_s);
    w.usize(scenario.num_pairs);
    w.f64(scenario.eo_pair_fraction);
    w.usize(scenario.eo_fleet_size);
    w.usize(scenario.ground_site_count);
    w.u32(scenario.grid_subdivisions);
    w.f64(scenario.isl_failure_prob);
    sb_wire::checksum(&w.into_bytes())
}

/// Generates the workload for a prepared network.
pub fn workload(scenario: &ScenarioConfig, prepared: &PreparedNetwork, seed: u64) -> Vec<Request> {
    let config = WorkloadConfig {
        pairs: prepared.pairs.clone(),
        arrivals_per_slot: scenario.arrivals_per_slot,
        horizon_slots: scenario.horizon_slots as u32,
        min_duration_slots: scenario.min_duration_slots,
        max_duration_slots: scenario.max_duration_slots,
        size: scenario.size,
        valuation: scenario.valuation,
        slot_duration_s: scenario.slot_duration_s,
        pattern: scenario.pattern,
    };
    generate_workload(&config, seed)
}

/// Runs one algorithm over a prepared network and workload, returning the
/// metrics. The state is built fresh, so the same `PreparedNetwork` can be
/// reused across algorithms.
pub fn run_prepared(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    kind: &AlgorithmKind,
    seed: u64,
) -> RunMetrics {
    run_prepared_exec(scenario, prepared, requests, kind, seed, &ExecOptions::default())
}

/// [`run_prepared`] with explicit execution options (bit-identical for
/// every `exec` configuration — the options tune speed, not results).
pub fn run_prepared_exec(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    kind: &AlgorithmKind,
    seed: u64,
    exec: &ExecOptions,
) -> RunMetrics {
    let mut algorithm = kind.instantiate_exec(exec);
    run_with_algorithm(scenario, prepared, requests, algorithm.as_mut(), seed)
}

/// One admitted reservation, tracked across the horizon so unforeseen
/// failures can break it and the repair policy can act on it.
struct ActiveBooking {
    request: Request,
    /// Admission price plus any paid repairs — the basis for refunds and
    /// for RepairPaid affordability checks.
    paid: f64,
    /// Every [`BookingId`] backing the plan (admission plus repairs); a
    /// later break releases the suffix of all of them.
    ids: Vec<BookingId>,
    /// The current plan view: admission paths, truncated at breaks,
    /// extended by repaired suffixes.
    slot_paths: Vec<SlotPath>,
    /// The slot at which the plan broke, while a repair is still pending.
    pending_since: Option<SlotIndex>,
    /// Booked slots that went unserved (dropped or awaiting repair).
    missed_slots: u32,
    dropped: bool,
    interrupted: bool,
}

impl ActiveBooking {
    fn encode(&self, w: &mut Writer) {
        self.request.encode(w);
        w.f64(self.paid);
        w.seq(&self.ids, |w, id| w.usize(id.0));
        w.seq(&self.slot_paths, |w, sp| sp.encode(w));
        match self.pending_since {
            None => w.bool(false),
            Some(s) => {
                w.bool(true);
                w.u32(s.0);
            }
        }
        w.u32(self.missed_slots);
        w.bool(self.dropped);
        w.bool(self.interrupted);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let request = Request::decode(r)?;
        let paid = r.f64()?;
        let n = r.seq_len(8)?;
        let ids = (0..n).map(|_| r.usize().map(BookingId)).collect::<Result<_, _>>()?;
        let n = r.seq_len(20)?; // SlotPath is ≥ 20 bytes.
        let slot_paths = (0..n).map(|_| SlotPath::decode(r)).collect::<Result<_, _>>()?;
        let pending_since = if r.bool()? { Some(SlotIndex(r.u32()?)) } else { None };
        Ok(ActiveBooking {
            request,
            paid,
            ids,
            slot_paths,
            pending_since,
            missed_slots: r.u32()?,
            dropped: r.bool()?,
            interrupted: r.bool()?,
        })
    }
}

/// The mutable bookkeeping of one run: counters, the §III-B retry queue
/// and the active-booking table.
struct Tally {
    welfare: f64,
    revenue: f64,
    accepted: usize,
    accepted_after_retry: usize,
    no_path: usize,
    by_price: usize,
    at_commit: usize,
    accepted_value_by_slot: Vec<f64>,
    /// Retry queue (§III-B resubmission): rejected requests come back
    /// `delay_slots` later with the same duration and valuation. Entries:
    /// `(new_start_slot, original_arrival, attempts_left, request)`; the
    /// queue stays due-sorted because delays are constant and pushes
    /// happen in slot order.
    retries: VecDeque<(u32, usize, u32, Request)>,
    bookings: Vec<ActiveBooking>,
    repair_attempts: usize,
    repairs_succeeded: usize,
    repair_latency_sum: u64,
    repair_revenue: f64,
    /// When set, every decision pushes a [`JournalRecord`] onto
    /// [`Tally::events`] for the durable driver to persist or verify.
    record: bool,
    events: Vec<JournalRecord>,
}

impl Tally {
    fn new(horizon: usize) -> Self {
        Tally {
            welfare: 0.0,
            revenue: 0.0,
            accepted: 0,
            accepted_after_retry: 0,
            no_path: 0,
            by_price: 0,
            at_commit: 0,
            accepted_value_by_slot: vec![0.0; horizon],
            retries: VecDeque::new(),
            bookings: Vec::new(),
            repair_attempts: 0,
            repairs_succeeded: 0,
            repair_latency_sum: 0,
            repair_revenue: 0.0,
            record: false,
            events: Vec::new(),
        }
    }

    /// Serializes the tally's durable state; the transient recording
    /// buffer is not part of a checkpoint.
    fn encode(&self, w: &mut Writer) {
        w.f64(self.welfare);
        w.f64(self.revenue);
        w.usize(self.accepted);
        w.usize(self.accepted_after_retry);
        w.usize(self.no_path);
        w.usize(self.by_price);
        w.usize(self.at_commit);
        w.seq(&self.accepted_value_by_slot, |w, v| w.f64(*v));
        w.usize(self.retries.len());
        for (due, orig, left, request) in &self.retries {
            w.u32(*due);
            w.usize(*orig);
            w.u32(*left);
            request.encode(w);
        }
        w.usize(self.bookings.len());
        for booking in &self.bookings {
            booking.encode(w);
        }
        w.usize(self.repair_attempts);
        w.usize(self.repairs_succeeded);
        w.u64(self.repair_latency_sum);
        w.f64(self.repair_revenue);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let welfare = r.f64()?;
        let revenue = r.f64()?;
        let accepted = r.usize()?;
        let accepted_after_retry = r.usize()?;
        let no_path = r.usize()?;
        let by_price = r.usize()?;
        let at_commit = r.usize()?;
        let n = r.seq_len(8)?;
        let accepted_value_by_slot = (0..n).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
        let n = r.seq_len(16)?; // retry entries are ≥ 16 bytes
        let mut retries = VecDeque::with_capacity(n);
        for _ in 0..n {
            let due = r.u32()?;
            let orig = r.usize()?;
            let left = r.u32()?;
            retries.push_back((due, orig, left, Request::decode(r)?));
        }
        let n = r.seq_len(32)?; // bookings are ≥ 32 bytes
        let bookings = (0..n).map(|_| ActiveBooking::decode(r)).collect::<Result<Vec<_>, _>>()?;
        Ok(Tally {
            welfare,
            revenue,
            accepted,
            accepted_after_retry,
            no_path,
            by_price,
            at_commit,
            accepted_value_by_slot,
            retries,
            bookings,
            repair_attempts: r.usize()?,
            repairs_succeeded: r.usize()?,
            repair_latency_sum: r.u64()?,
            repair_revenue: r.f64()?,
            record: false,
            events: Vec::new(),
        })
    }

    /// Admits or rejects one request (arrival or retry), updating the
    /// counters and the booking table. `now` is the slot the decision is
    /// made in; welfare attributes to the *original* arrival slot.
    #[allow(clippy::too_many_arguments)]
    fn handle(
        &mut self,
        request: &Request,
        now: usize,
        original_arrival: usize,
        attempts_left: u32,
        algorithm: &mut dyn RoutingAlgorithm,
        state: &mut NetworkState,
        scenario: &ScenarioConfig,
    ) {
        let ids_before = state.booking_count();
        match algorithm.process(request, state) {
            Decision::Accepted { plan, price } => {
                if self.record {
                    self.events.push(JournalRecord::Admission {
                        slot: now as u32,
                        original_arrival: original_arrival as u32,
                        attempts_left,
                        request: request.clone(),
                        price,
                        slot_paths: plan.slot_paths.clone(),
                    });
                }
                self.welfare += request.valuation;
                self.revenue += price;
                self.accepted += 1;
                if attempts_left < scenario.retry.map_or(0, |r| r.max_attempts) {
                    self.accepted_after_retry += 1;
                }
                self.accepted_value_by_slot[original_arrival] += request.valuation;
                self.bookings.push(ActiveBooking {
                    request: request.clone(),
                    paid: price,
                    ids: (ids_before..state.booking_count()).map(BookingId).collect(),
                    slot_paths: plan.slot_paths,
                    pending_since: None,
                    missed_slots: 0,
                    dropped: false,
                    interrupted: false,
                });
            }
            Decision::Rejected { reason } => {
                if self.record {
                    self.events.push(JournalRecord::Rejection {
                        slot: now as u32,
                        original_arrival: original_arrival as u32,
                        attempts_left,
                        request_id: request.id.0,
                        reason,
                    });
                }
                match reason {
                    RejectReason::NoFeasiblePath => self.no_path += 1,
                    RejectReason::PriceAboveValuation => self.by_price += 1,
                    RejectReason::CommitFailed => self.at_commit += 1,
                }
                if let Some(policy) = scenario.retry {
                    if attempts_left > 0 {
                        let new_start = request.start.0 + policy.delay_slots;
                        let duration = request.end.0 - request.start.0;
                        if (new_start as usize) < scenario.horizon_slots {
                            let mut retried = request.clone();
                            retried.start = SlotIndex(new_start);
                            retried.end = SlotIndex(
                                (new_start + duration).min(scenario.horizon_slots as u32 - 1),
                            );
                            self.retries.push_back((
                                new_start,
                                original_arrival,
                                attempts_left - 1,
                                retried,
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Pops and handles every queued retry due at or before slot `t`, in
    /// queue order.
    fn drain_due_retries(
        &mut self,
        t: usize,
        algorithm: &mut dyn RoutingAlgorithm,
        state: &mut NetworkState,
        scenario: &ScenarioConfig,
    ) {
        while self.retries.front().is_some_and(|&(due, ..)| due as usize <= t) {
            let (_, orig, left, retried) = self.retries.pop_front().unwrap();
            self.handle(&retried, t, orig, left, algorithm, state, scenario);
        }
    }

    /// Reacts to the slot's freshly discovered failures: retries pending
    /// repairs, and breaks every reservation whose current-slot path
    /// crosses a dead edge, applying the operator's policy.
    fn slot_boundary(
        &mut self,
        slot: SlotIndex,
        policy: RepairPolicy,
        known: &KnownFailures,
        algorithm: &mut dyn RoutingAlgorithm,
        state: &mut NetworkState,
    ) {
        for i in 0..self.bookings.len() {
            if self.bookings[i].dropped || self.bookings[i].request.end < slot {
                continue;
            }
            if let Some(broke) = self.bookings[i].pending_since {
                // Resources were already released at the break; keep
                // trying the suffix while the window is still open.
                self.repair_attempts += 1;
                let request = self.bookings[i].request.clone();
                let paid = self.bookings[i].paid;
                let outcome = try_repair(algorithm, policy, &request, paid, state, slot, known);
                self.apply_outcome(i, outcome, slot, broke);
                continue;
            }
            let broken = self.bookings[i]
                .slot_paths
                .iter()
                .any(|sp| sp.slot == slot && sp.edges.iter().any(|&e| known.is_down(slot, e)));
            if !broken {
                continue;
            }
            let b = &mut self.bookings[i];
            b.interrupted = true;
            b.slot_paths.retain(|sp| sp.slot < slot);
            let request = b.request.clone();
            let paid = b.paid;
            let ids = b.ids.clone();
            if policy != RepairPolicy::Drop {
                self.repair_attempts += 1;
            }
            let outcome = repair(algorithm, policy, &request, paid, &ids, state, slot, known);
            self.apply_outcome(i, outcome, slot, slot);
        }
    }

    /// Folds one repair outcome into booking `i`. `broke` is the slot the
    /// plan originally broke at (repair latency measures from there).
    fn apply_outcome(
        &mut self,
        i: usize,
        outcome: RepairOutcome,
        now: SlotIndex,
        broke: SlotIndex,
    ) {
        if self.record {
            self.events.push(JournalRecord::Repair {
                slot: now.0,
                booking_index: i as u32,
                outcome: match &outcome {
                    RepairOutcome::Dropped => RepairEvent::Dropped,
                    RepairOutcome::Repaired { price, .. } => {
                        RepairEvent::Repaired { price: *price }
                    }
                    RepairOutcome::Pending { .. } => RepairEvent::Pending,
                },
            });
        }
        let b = &mut self.bookings[i];
        match outcome {
            RepairOutcome::Dropped => {
                b.dropped = true;
                b.pending_since = None;
                b.missed_slots += b.request.end.0 - now.0 + 1;
            }
            RepairOutcome::Repaired { price, slot_paths, booking } => {
                b.paid += price;
                b.ids.push(booking);
                b.slot_paths.extend(slot_paths);
                b.pending_since = None;
                self.repairs_succeeded += 1;
                self.repair_latency_sum += u64::from(now.0 - broke.0);
                self.repair_revenue += price;
            }
            RepairOutcome::Pending { .. } => {
                // This slot goes unserved; try again at the next boundary.
                b.pending_since = Some(broke);
                b.missed_slots += 1;
            }
        }
    }
}

/// A stable digest of everything that determines a run: the full scenario
/// and algorithm configurations (via their `Debug` forms, which list every
/// field) and the seed. The engine is deterministic, so two runs with
/// equal digests produce bit-identical journals, checkpoints and metrics —
/// and a checkpoint or journal carrying a *different* digest must never be
/// resumed into this run.
pub fn run_digest(scenario: &ScenarioConfig, kind: &AlgorithmKind, seed: u64) -> u64 {
    let mut w = Writer::new();
    w.str(&format!("{scenario:?}"));
    w.str(&format!("{kind:?}"));
    w.u64(seed);
    sb_wire::checksum(&w.into_bytes())
}

/// The resumable core of one run: all the mutable state
/// [`run_with_algorithm`] tracks, behind a slot-stepped interface so the
/// durable driver ([`crate::durable::run_durable`]) can journal events,
/// checkpoint between slots and resume later.
///
/// Checkpoints capture only the *dynamic* state (network, tally, oracle,
/// timing); the static inputs — scenario, prepared topology, workload —
/// are re-supplied on restore and guarded by [`run_digest`].
pub struct EngineCore {
    scenario: ScenarioConfig,
    unforeseen: Option<UnforeseenFailures>,
    state: NetworkState,
    tally: Tally,
    oracle: Option<FailureOracle>,
    /// Arrivals grouped by (clamped) start slot, preserving workload
    /// order within each slot.
    arrivals_by_slot: Vec<Vec<Request>>,
    total_value_by_slot: Vec<f64>,
    initial_attempts: u32,
    next_slot: usize,
    total_requests: usize,
    total_valuation: f64,
    seed: u64,
    /// Wall-clock milliseconds accumulated across sessions (a resumed run
    /// reports the total, not just the final session).
    elapsed_ms: u64,
}

impl EngineCore {
    /// A fresh core at slot 0.
    pub fn new(
        scenario: &ScenarioConfig,
        prepared: &PreparedNetwork,
        requests: &[Request],
        seed: u64,
    ) -> Self {
        let horizon = scenario.horizon_slots;
        let mut arrivals_by_slot: Vec<Vec<Request>> = vec![Vec::new(); horizon];
        for request in requests {
            arrivals_by_slot[request.start.index().min(horizon - 1)].push(request.clone());
        }
        let unforeseen = scenario.unforeseen.filter(|u| !u.model.is_trivial());
        EngineCore {
            scenario: scenario.clone(),
            unforeseen,
            state: NetworkState::new(prepared.series.clone(), &scenario.energy),
            tally: Tally::new(horizon),
            oracle: unforeseen.map(|u| FailureOracle::new(u.model)),
            arrivals_by_slot,
            total_value_by_slot: vec![0.0; horizon],
            initial_attempts: scenario.retry.map_or(0, |r| r.max_attempts),
            next_slot: 0,
            total_requests: requests.len(),
            total_valuation: requests.iter().map(|r| r.valuation).sum(),
            seed,
            elapsed_ms: 0,
        }
    }

    /// The next slot [`EngineCore::step_slot`] will execute.
    pub fn next_slot(&self) -> usize {
        self.next_slot
    }

    /// Whether every slot of the horizon has been executed (the final
    /// retry drain may still be pending; see [`EngineCore::drain_final`]).
    pub fn is_complete(&self) -> bool {
        self.next_slot >= self.scenario.horizon_slots
    }

    /// The network state, for audits and inspection.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Turns journal-event recording on or off. Off by default; recording
    /// changes nothing about the decisions, only collects them.
    pub fn set_recording(&mut self, on: bool) {
        self.tally.record = on;
    }

    /// Drains the events recorded since the last call.
    pub fn take_events(&mut self) -> Vec<JournalRecord> {
        std::mem::take(&mut self.tally.events)
    }

    /// Runs the conservation auditor over the current network state.
    pub fn audit(&self) -> sb_cear::AuditReport {
        sb_cear::audit(&self.state)
    }

    /// Executes one slot: due retries, this slot's arrivals (interleaved
    /// exactly as the request-ordered loop would — a zero-delay retry
    /// pushed mid-slot re-enters before the next same-slot arrival), then
    /// the failure-discovery and repair boundary pass when the scenario
    /// configures unforeseen failures.
    ///
    /// # Panics
    ///
    /// Panics when called after the horizon is complete.
    pub fn step_slot(&mut self, algorithm: &mut dyn RoutingAlgorithm) {
        assert!(!self.is_complete(), "stepping past the horizon");
        let started = std::time::Instant::now();
        let t = self.next_slot;
        let slot = SlotIndex(t as u32);
        if self.tally.record {
            self.tally.events.push(JournalRecord::SlotStart { slot: slot.0 });
        }
        self.tally.drain_due_retries(t, algorithm, &mut self.state, &self.scenario);
        for i in 0..self.arrivals_by_slot[t].len() {
            let request = self.arrivals_by_slot[t][i].clone();
            self.tally.drain_due_retries(t, algorithm, &mut self.state, &self.scenario);
            self.total_value_by_slot[t] += request.valuation;
            self.tally.handle(
                &request,
                t,
                t,
                self.initial_attempts,
                algorithm,
                &mut self.state,
                &self.scenario,
            );
        }
        // Unforeseen failures strike during the slot; the operator detects
        // broken plans and reacts at the boundary — admission never saw
        // the outage coming.
        if let (Some(u), Some(oracle)) = (self.unforeseen, self.oracle.as_mut()) {
            let down = oracle.advance(self.state.series().snapshot(slot));
            if self.tally.record {
                let edges = down.iter().map(|e| e.0).collect();
                self.tally.events.push(JournalRecord::FailureDraw { slot: slot.0, edges });
            }
            self.tally.slot_boundary(slot, u.policy, oracle.known(), algorithm, &mut self.state);
        }
        self.next_slot += 1;
        if self.tally.record {
            self.tally.events.push(JournalRecord::SlotEnd { slot: slot.0 });
        }
        self.elapsed_ms += started.elapsed().as_millis() as u64;
    }

    /// Admits or rejects the retries still queued once the horizon is
    /// done (pushed by the very last slot's decisions). Their journal
    /// events carry `slot = horizon`.
    pub fn drain_final(&mut self, algorithm: &mut dyn RoutingAlgorithm) {
        let started = std::time::Instant::now();
        let horizon = self.scenario.horizon_slots;
        while let Some((_, orig, left, retried)) = self.tally.retries.pop_front() {
            self.tally.handle(
                &retried,
                horizon,
                orig,
                left,
                algorithm,
                &mut self.state,
                &self.scenario,
            );
        }
        self.elapsed_ms += started.elapsed().as_millis() as u64;
    }

    /// Computes the run's metrics. Call after the horizon is complete and
    /// [`EngineCore::drain_final`] has run.
    pub fn finalize(self, algorithm: &dyn RoutingAlgorithm) -> RunMetrics {
        let EngineCore {
            scenario,
            state,
            tally,
            total_value_by_slot,
            total_valuation,
            total_requests,
            seed,
            elapsed_ms,
            ..
        } = self;
        let horizon = scenario.horizon_slots;
        let mut welfare_ratio_over_time = Vec::with_capacity(horizon);
        let (mut cum_acc, mut cum_tot) = (0.0, 0.0);
        for (acc, tot) in tally.accepted_value_by_slot.iter().zip(&total_value_by_slot) {
            cum_acc += acc;
            cum_tot += tot;
            welfare_ratio_over_time.push(if cum_tot > 0.0 { cum_acc / cum_tot } else { 1.0 });
        }

        // Delivered-vs-booked accounting, pro-rata on served slots. With no
        // unforeseen failures every booking has zero missed slots, the served
        // fraction is exactly 1.0 and `delivered_welfare` reproduces `welfare`
        // bit-for-bit (same additions in the same order).
        let mut delivered_welfare = 0.0;
        let mut interrupted_requests = 0usize;
        let mut sla_violations = 0usize;
        let mut refunded_revenue = 0.0;
        for b in &tally.bookings {
            let duration = b.request.end.0 - b.request.start.0 + 1;
            let missed = b.missed_slots.min(duration);
            let served_frac = f64::from(duration - missed) / f64::from(duration);
            delivered_welfare += b.request.valuation * served_frac;
            if b.interrupted {
                interrupted_requests += 1;
            }
            if missed > 0 {
                sla_violations += 1;
                refunded_revenue += b.paid * f64::from(missed) / f64::from(duration);
            }
        }

        let depleted_satellites_over_time = (0..horizon)
            .map(|t| {
                state
                    .depleted_satellite_count(SlotIndex(t as u32), scenario.depleted_threshold_frac)
            })
            .collect();
        let congested_links_over_time = (0..horizon)
            .map(|t| {
                state.congested_link_count(SlotIndex(t as u32), scenario.congested_threshold_frac)
            })
            .collect();

        RunMetrics {
            algorithm: algorithm.name().to_owned(),
            scenario: scenario.name.clone(),
            seed,
            total_requests,
            accepted_requests: tally.accepted,
            accepted_after_retry: tally.accepted_after_retry,
            total_valuation,
            welfare: tally.welfare,
            social_welfare_ratio: if total_valuation > 0.0 {
                tally.welfare / total_valuation
            } else {
                1.0
            },
            revenue: tally.revenue,
            depleted_satellites_over_time,
            congested_links_over_time,
            welfare_ratio_over_time,
            rejected_no_path: tally.no_path,
            rejected_by_price: tally.by_price,
            rejected_at_commit: tally.at_commit,
            delivered_welfare,
            delivered_welfare_ratio: if total_valuation > 0.0 {
                delivered_welfare / total_valuation
            } else {
                1.0
            },
            interrupted_requests,
            sla_violations,
            repair_attempts: tally.repair_attempts,
            repairs_succeeded: tally.repairs_succeeded,
            mean_repair_latency_slots: if tally.repairs_succeeded > 0 {
                tally.repair_latency_sum as f64 / tally.repairs_succeeded as f64
            } else {
                0.0
            },
            refunded_revenue,
            repair_revenue: tally.repair_revenue,
            battery_wear: sb_energy::fleet_wear(state.ledger()),
            processing_ms: u128::from(elapsed_ms),
        }
    }

    /// Serializes the dynamic state for a checkpoint.
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.usize(self.next_slot);
        w.u64(self.elapsed_ms);
        self.state.encode_snapshot(w);
        self.tally.encode(w);
        w.seq(&self.total_value_by_slot, |w, v| w.f64(*v));
        match &self.oracle {
            None => w.bool(false),
            Some(oracle) => {
                w.bool(true);
                oracle.encode(w);
            }
        }
    }

    /// Restores a core from a checkpoint payload, re-deriving everything
    /// static from the same inputs [`EngineCore::new`] takes. Every
    /// decoded index is validated against the rebuilt static state so a
    /// corrupt payload fails loudly instead of corrupting the run.
    pub(crate) fn decode(
        scenario: &ScenarioConfig,
        prepared: &PreparedNetwork,
        requests: &[Request],
        seed: u64,
        r: &mut Reader<'_>,
    ) -> Result<Self, WireError> {
        let mut core = EngineCore::new(scenario, prepared, requests, seed);
        core.next_slot = r.usize()?;
        if core.next_slot > scenario.horizon_slots {
            return Err(WireError::Invalid {
                detail: format!(
                    "checkpoint slot {} past the horizon {}",
                    core.next_slot, scenario.horizon_slots
                ),
            });
        }
        core.elapsed_ms = r.u64()?;
        core.state = NetworkState::decode_snapshot(prepared.series.clone(), r)?;
        core.tally = Tally::decode(r)?;
        if core.tally.accepted_value_by_slot.len() != scenario.horizon_slots {
            return Err(WireError::Invalid {
                detail: "tally slot-value series does not match the horizon".into(),
            });
        }
        for booking in &core.tally.bookings {
            for id in &booking.ids {
                if id.0 >= core.state.booking_count() {
                    return Err(WireError::Invalid {
                        detail: format!("active booking references unknown booking id {}", id.0),
                    });
                }
            }
        }
        let n = r.seq_len(8)?;
        if n != scenario.horizon_slots {
            return Err(WireError::Invalid {
                detail: "slot-value series does not match the horizon".into(),
            });
        }
        core.total_value_by_slot = (0..n).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
        core.oracle = if r.bool()? {
            let model = core.unforeseen.map(|u| u.model).ok_or_else(|| WireError::Invalid {
                detail: "checkpoint has a failure oracle but the scenario has no unforeseen \
                         failures"
                    .into(),
            })?;
            Some(FailureOracle::decode(model, r)?)
        } else {
            if core.unforeseen.is_some() {
                return Err(WireError::Invalid {
                    detail: "checkpoint lacks the failure oracle the scenario requires".into(),
                });
            }
            None
        };
        Ok(core)
    }
}

/// Like [`run_prepared`] but with a caller-supplied algorithm instance —
/// for stateful algorithms outside the [`AlgorithmKind`] enum (e.g.
/// [`sb_cear::AdaptiveCear`]).
pub fn run_with_algorithm(
    scenario: &ScenarioConfig,
    prepared: &PreparedNetwork,
    requests: &[Request],
    algorithm: &mut dyn RoutingAlgorithm,
    seed: u64,
) -> RunMetrics {
    let mut core = EngineCore::new(scenario, prepared, requests, seed);
    while !core.is_complete() {
        core.step_slot(algorithm);
    }
    core.drain_final(algorithm);
    core.finalize(&*algorithm)
}

/// Convenience: prepare, generate and run in one call.
pub fn run(scenario: &ScenarioConfig, kind: &AlgorithmKind, seed: u64) -> RunMetrics {
    let prepared = prepare(scenario, seed);
    let requests = workload(scenario, &prepared, seed);
    run_prepared(scenario, &prepared, &requests, kind, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_deterministic() {
        let scenario = ScenarioConfig::tiny();
        let a = run(&scenario, &AlgorithmKind::Ssp, 3);
        let mut b = run(&scenario, &AlgorithmKind::Ssp, 3);
        b.processing_ms = a.processing_ms; // wall clock may differ
        assert_eq!(a, b);
    }

    #[test]
    fn hot_path_caches_leave_run_metrics_bit_identical() {
        // The reusable search arena and the epoch-validated price cache
        // are pure accelerations: a full engine run through the cached
        // CEAR must equal a run through the cache-free reference path in
        // every metric (only wall clock may differ).
        let scenario = ScenarioConfig::tiny();
        let params = CearParams::default();
        for seed in [0, 3] {
            let prepared = prepare(&scenario, seed);
            let requests = workload(&scenario, &prepared, seed);
            let mut reference = sb_cear::Cear::reference(params);
            let a = run_with_algorithm(&scenario, &prepared, &requests, &mut reference, seed);
            let mut b =
                run_prepared(&scenario, &prepared, &requests, &AlgorithmKind::Cear(params), seed);
            b.processing_ms = a.processing_ms; // wall clock may differ
            assert_eq!(a, b, "seed {seed}");
            assert!(a.accepted_requests > 0, "seed {seed}: vacuous equivalence");
        }
    }

    #[test]
    fn quote_threads_leave_run_metrics_bit_identical() {
        // Speculative slot-parallel quoting is validated against the
        // overlay replay per slot, so a full engine run must produce the
        // same metrics for any worker count (only wall clock may differ).
        let scenario = ScenarioConfig::tiny();
        let params = CearParams::default();
        let no_bw = AblationFlags { price_bandwidth: false, ..AblationFlags::default() };
        for kind in [AlgorithmKind::Cear(params), AlgorithmKind::CearAblated(params, no_bw)] {
            for seed in [0, 3] {
                let prepared = prepare(&scenario, seed);
                let requests = workload(&scenario, &prepared, seed);
                let a = run_prepared_exec(
                    &scenario,
                    &prepared,
                    &requests,
                    &kind,
                    seed,
                    &ExecOptions { quote_threads: 1, ..ExecOptions::default() },
                );
                let mut b = run_prepared_exec(
                    &scenario,
                    &prepared,
                    &requests,
                    &kind,
                    seed,
                    &ExecOptions { quote_threads: 4, ..ExecOptions::default() },
                );
                b.processing_ms = a.processing_ms; // wall clock may differ
                assert_eq!(a, b, "{} seed {seed}", kind.name());
                assert!(a.accepted_requests > 0, "seed {seed}: vacuous equivalence");
            }
        }
    }

    #[test]
    fn search_kinds_leave_run_metrics_bit_identical() {
        // Goal-directed A* with SPT caching is a pure acceleration: full
        // engine runs — all five algorithms, failure-free and with
        // unforeseen failures (repair quotes go through the pruned,
        // reference-style path) — must produce identical metrics for both
        // kernels. This covers admission, commit, release and repair
        // epochs against live SPT caches.
        use crate::scenario::UnforeseenFailures;
        use sb_topology::failures::{FailureModel, LinkFailureModel};

        let mut with_failures = ScenarioConfig::tiny();
        with_failures.unforeseen = Some(UnforeseenFailures {
            model: FailureModel::IndependentLinks(LinkFailureModel::new(0.1, 0xfee1)),
            policy: RepairPolicy::Repair,
        });
        for scenario in [ScenarioConfig::tiny(), with_failures] {
            for kind in AlgorithmKind::all(&scenario) {
                for seed in [0, 3] {
                    let prepared = prepare(&scenario, seed);
                    let requests = workload(&scenario, &prepared, seed);
                    let a = run_prepared_exec(
                        &scenario,
                        &prepared,
                        &requests,
                        &kind,
                        seed,
                        &ExecOptions { search: SearchKind::Reference, ..ExecOptions::default() },
                    );
                    let mut b = run_prepared_exec(
                        &scenario,
                        &prepared,
                        &requests,
                        &kind,
                        seed,
                        &ExecOptions { search: SearchKind::Astar, ..ExecOptions::default() },
                    );
                    b.processing_ms = a.processing_ms; // wall clock may differ
                    assert_eq!(a, b, "{} seed {seed}", kind.name());
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let scenario = ScenarioConfig::tiny();
        let a = run(&scenario, &AlgorithmKind::Ssp, 1);
        let b = run(&scenario, &AlgorithmKind::Ssp, 2);
        assert_ne!(a.total_requests, 0);
        // Workloads differ, so at least the request count or welfare
        // should (with overwhelming probability) differ.
        assert!(a.total_requests != b.total_requests || a.welfare != b.welfare);
    }

    #[test]
    fn accounting_adds_up() {
        let scenario = ScenarioConfig::tiny();
        for kind in [AlgorithmKind::Cear(CearParams::default()), AlgorithmKind::Ecars] {
            let m = run(&scenario, &kind, 7);
            assert_eq!(
                m.accepted_requests
                    + m.rejected_no_path
                    + m.rejected_by_price
                    + m.rejected_at_commit,
                m.total_requests,
                "{}",
                m.algorithm
            );
            assert!(m.social_welfare_ratio >= 0.0 && m.social_welfare_ratio <= 1.0);
            assert_eq!(m.depleted_satellites_over_time.len(), scenario.horizon_slots);
            assert_eq!(m.congested_links_over_time.len(), scenario.horizon_slots);
            // Final cumulative ratio equals the overall ratio.
            let last = *m.welfare_ratio_over_time.last().unwrap();
            assert!((last - m.social_welfare_ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn all_algorithms_run_on_shared_network() {
        let scenario = ScenarioConfig::tiny();
        let prepared = prepare(&scenario, 5);
        let requests = workload(&scenario, &prepared, 5);
        assert_eq!(prepared.pairs.len(), scenario.num_pairs);
        for kind in AlgorithmKind::all(&scenario) {
            let m = run_prepared(&scenario, &prepared, &requests, &kind, 5);
            assert_eq!(m.total_requests, requests.len(), "{}", m.algorithm);
        }
    }

    #[test]
    fn baseline_revenue_is_zero_cear_nonnegative() {
        let scenario = ScenarioConfig::tiny();
        let ssp = run(&scenario, &AlgorithmKind::Ssp, 11);
        assert_eq!(ssp.revenue, 0.0);
        let cear = run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 11);
        assert!(cear.revenue >= 0.0);
    }

    #[test]
    fn trivial_unforeseen_reproduces_the_failure_free_run_bit_identically() {
        use crate::scenario::UnforeseenFailures;
        use sb_topology::failures::{FailureModel, GilbertElliottModel, LinkFailureModel};

        let base = ScenarioConfig::tiny();
        let kind = AlgorithmKind::Cear(CearParams::default());
        let reference = run(&base, &kind, 3);
        assert_eq!(
            reference.delivered_welfare.to_bits(),
            reference.welfare.to_bits(),
            "no failures: delivered must equal booked welfare bit-for-bit"
        );
        for policy in RepairPolicy::all() {
            for model in [
                FailureModel::None,
                FailureModel::IndependentLinks(LinkFailureModel::new(0.0, 9)),
                FailureModel::GilbertElliott(GilbertElliottModel::new(0.0, 0.5, 9)),
            ] {
                let mut scenario = base.clone();
                scenario.unforeseen = Some(UnforeseenFailures { model, policy });
                let mut m = run(&scenario, &kind, 3);
                m.processing_ms = reference.processing_ms; // wall clock may differ
                assert_eq!(m, reference, "policy {policy:?}, model {model:?}");
            }
        }
    }

    #[test]
    fn repair_delivers_strictly_more_welfare_than_drop() {
        use crate::scenario::UnforeseenFailures;
        use sb_topology::failures::{FailureModel, LinkFailureModel};

        let delivered_with = |policy: RepairPolicy| -> (f64, usize) {
            let mut scenario = ScenarioConfig::tiny();
            scenario.unforeseen = Some(UnforeseenFailures {
                model: FailureModel::IndependentLinks(LinkFailureModel::new(0.1, 0xfee1)),
                policy,
            });
            let kind = AlgorithmKind::Cear(CearParams::default());
            (1..=3)
                .map(|seed| run(&scenario, &kind, seed))
                .fold((0.0, 0), |(w, i), m| (w + m.delivered_welfare, i + m.interrupted_requests))
        };
        let (drop_welfare, drop_interrupted) = delivered_with(RepairPolicy::Drop);
        let (repair_welfare, _) = delivered_with(RepairPolicy::Repair);
        assert!(drop_interrupted > 0, "failures must actually break reservations");
        assert!(
            repair_welfare > drop_welfare,
            "Repair must deliver strictly more than Drop: {repair_welfare} vs {drop_welfare}"
        );
    }

    #[test]
    fn unforeseen_failure_accounting_is_consistent() {
        use crate::scenario::UnforeseenFailures;
        use sb_topology::failures::{FailureModel, NodeOutageModel};

        let mut scenario = ScenarioConfig::tiny();
        scenario.unforeseen = Some(UnforeseenFailures {
            model: FailureModel::NodeOutages(NodeOutageModel::new(0.02, 1, 3, 7)),
            policy: RepairPolicy::RepairPaid,
        });
        let m = run(&scenario, &AlgorithmKind::Cear(CearParams::default()), 5);
        assert_eq!(
            m.accepted_requests + m.rejected_no_path + m.rejected_by_price + m.rejected_at_commit,
            m.total_requests
        );
        assert!(m.delivered_welfare <= m.welfare * (1.0 + 1e-12));
        assert!((0.0..=1.0).contains(&m.delivered_welfare_ratio));
        assert!(m.repairs_succeeded <= m.repair_attempts);
        assert!(m.interrupted_requests <= m.accepted_requests);
        assert!(m.sla_violations <= m.accepted_requests);
        assert!(m.mean_repair_latency_slots >= 0.0);
        assert!(m.refunded_revenue >= 0.0 && m.repair_revenue >= 0.0);
    }

    /// Steps `scenario` one slot at a time and runs the conservation
    /// auditor at every boundary.
    fn audit_every_boundary(scenario: &ScenarioConfig, kind: &AlgorithmKind, seed: u64) {
        let prepared = prepare(scenario, seed);
        let requests = workload(scenario, &prepared, seed);
        let mut algorithm = kind.instantiate();
        let mut core = EngineCore::new(scenario, &prepared, &requests, seed);
        while !core.is_complete() {
            core.step_slot(algorithm.as_mut());
            let report = core.audit();
            assert!(
                report.is_clean(),
                "{} violated conservation at slot {}: {report}",
                kind.name(),
                core.next_slot() - 1
            );
        }
    }

    #[test]
    fn auditor_is_green_at_every_boundary_on_fast() {
        let mut scenario = ScenarioConfig::fast();
        for seed in [1, 2] {
            audit_every_boundary(&scenario, &AlgorithmKind::Cear(CearParams::default()), seed);
        }
        scenario.unforeseen = Some(crate::scenario::UnforeseenFailures {
            model: sb_topology::failures::FailureModel::IndependentLinks(
                sb_topology::failures::LinkFailureModel::new(0.1, 9),
            ),
            policy: RepairPolicy::RepairPaid,
        });
        audit_every_boundary(&scenario, &AlgorithmKind::Cear(CearParams::default()), 1);
        audit_every_boundary(&scenario, &AlgorithmKind::Ssp, 1);
    }

    #[test]
    #[ignore = "paper-scale run, minutes of wall clock; run explicitly"]
    fn auditor_is_green_at_every_boundary_on_paper() {
        audit_every_boundary(
            &ScenarioConfig::paper(),
            &AlgorithmKind::Cear(CearParams::default()),
            1,
        );
    }

    /// Builds a small scenario, ships its series through the full wire
    /// round trip (compile → encode → decode → materialize) and asserts
    /// the received preparation is bit-identical to the local one —
    /// pairs, every snapshot, for any build thread count.
    fn check_shipped_identity(
        extra: Option<(usize, usize)>,
        failure_prob: f64,
        seed: u64,
        build_threads: usize,
    ) {
        let mut scenario = ScenarioConfig::tiny();
        scenario.planes = 4;
        scenario.sats_per_plane = 4;
        scenario.phasing = 1;
        scenario.horizon_slots = 6;
        scenario.num_pairs = 2;
        scenario.ground_site_count = 60;
        scenario.isl_failure_prob = failure_prob;
        if let Some((planes, sats_per_plane)) = extra {
            scenario.extra_shells.push(crate::scenario::ShellConfig {
                planes,
                sats_per_plane,
                phasing: 0,
                altitude_m: 600_000.0,
                inclination_deg: 70.0,
            });
        }
        let local = prepare_with(&scenario, seed, build_threads);
        let bytes = compile_series_package(&scenario, seed).encode();
        let package = SeriesPackage::decode(&bytes).expect("shipped bytes decode");
        let series = std::sync::Arc::new(package.materialize().expect("shipped bytes materialize"));
        let shipped = prepare_from_series(&scenario, seed, &series);
        assert_eq!(shipped.pairs, local.pairs, "pair draw must be identical");
        assert_eq!(shipped.series, local.series, "shipped series must be bit-identical");
    }

    #[test]
    fn shipped_series_round_trip_matches_local_prepare_bitwise() {
        for (extra, failure_prob) in
            [(None, 0.0), (None, 0.05), (Some((3, 4)), 0.0), (Some((3, 4)), 0.05)]
        {
            for build_threads in [1, 3] {
                check_shipped_identity(extra, failure_prob, 7, build_threads);
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
        #[test]
        fn prop_prepare_from_shipped_series_bit_identical(
            extra in proptest::option::of((2usize..4, 2usize..5)),
            failure_model in 0u8..2,
            seed in 0u64..1_000,
            build_threads in 1usize..4,
        ) {
            let failure_prob = if failure_model == 0 { 0.0 } else { 0.05 };
            check_shipped_identity(extra, failure_prob, seed, build_threads);
        }
    }
}
