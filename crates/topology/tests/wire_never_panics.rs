//! The series-package wire decoder must return `WireError` on any input —
//! truncated, bit-flipped or pure noise — and never panic. A panicking
//! decoder would let one corrupt shipment byte take down a fleet worker,
//! defeating the "shipment is only a hint" fallback design.
//!
//! Two layers, mirroring the fleet's `proto_never_panics` suite: plain
//! `#[test]` seeded-fuzz versions that run everywhere (exhaustive
//! truncations, deterministic bit flips, random noise, checksummed
//! noise), and `proptest!` versions for richer exploration where the
//! real proptest crate is available.

use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_topology::series::{NetworkNodes, TopologyConfig};
use sb_topology::shipping::SERIES_WIRE_VERSION;
use sb_topology::SeriesPackage;

/// A one-shell constellation with both user kinds.
fn single_shell_nodes() -> NetworkNodes {
    let shell = WalkerConstellation::delta(4, 6, 1, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    for eo in sb_orbit::eo::synthetic_fleet(1) {
        nodes.add_space_user(eo);
    }
    nodes
}

/// A two-shell constellation with ground and space users.
fn two_shell_nodes() -> NetworkNodes {
    let shells = [
        WalkerConstellation::delta(4, 8, 1, 550e3, 53f64.to_radians()),
        WalkerConstellation::delta(3, 6, 0, 570e3, 70f64.to_radians()),
    ];
    let mut nodes = NetworkNodes::from_shells(&shells);
    nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    for eo in sb_orbit::eo::synthetic_fleet(2) {
        nodes.add_space_user(eo);
    }
    nodes
}

/// Every wire shape the encoder can produce: single- and multi-shell,
/// single-slot (no deltas) and multi-slot (delta stream).
fn corpus() -> Vec<Vec<u8>> {
    let cfg = TopologyConfig::default();
    vec![
        SeriesPackage::compile(&single_shell_nodes(), &cfg, 1, 60.0).encode(),
        SeriesPackage::compile(&single_shell_nodes(), &cfg, 3, 120.0).encode(),
        SeriesPackage::compile(&two_shell_nodes(), &cfg, 2, 120.0).encode(),
    ]
}

/// Throws `bytes` at the decoder; the only requirement is "no panic".
/// When the bytes happen to decode, materialization must not panic
/// either — that is the layer catching checksum-colliding corruption.
fn decode_all(bytes: &[u8]) {
    if let Ok(package) = SeriesPackage::decode(bytes) {
        let _ = package.materialize();
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn every_truncation_of_every_package_is_rejected_not_panicked() {
    for payload in corpus() {
        for cut in 0..payload.len() {
            assert!(SeriesPackage::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }
}

#[test]
fn seeded_bit_flips_never_panic_the_decoder() {
    let mut rng = 0x5eed_f1ee_u64;
    for payload in corpus() {
        for _ in 0..200 {
            let mut bytes = payload.clone();
            let flips = 1 + (splitmix64(&mut rng) % 4) as usize;
            for _ in 0..flips {
                let bit = (splitmix64(&mut rng) as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            decode_all(&bytes);
        }
    }
}

#[test]
fn random_noise_never_panics_the_decoder() {
    let mut rng = 0xbad_cafe_u64;
    for len in [0usize, 1, 2, 11, 12, 13, 64, 512, 4096] {
        for _ in 0..50 {
            let bytes: Vec<u8> = (0..len).map(|_| (splitmix64(&mut rng) & 0xff) as u8).collect();
            decode_all(&bytes);
        }
    }
}

#[test]
fn checksummed_noise_reaches_the_structural_decoders_without_panicking() {
    // Pure noise dies at the checksum; wrapping noise in a *valid*
    // header drives the structural layer underneath — node counts,
    // bounded allocations, index validation — which must reject without
    // panicking or allocating absurdly.
    let mut rng = 0xc0de_c0de_u64;
    for len in [0usize, 1, 8, 24, 64, 256, 2048] {
        for _ in 0..50 {
            let body: Vec<u8> = (0..len).map(|_| (splitmix64(&mut rng) & 0xff) as u8).collect();
            let mut w = sb_wire::Writer::new();
            w.u32(SERIES_WIRE_VERSION);
            w.u64(sb_wire::checksum(&body));
            w.raw(&body);
            decode_all(&w.into_bytes());
        }
    }
}

#[test]
fn corpus_itself_roundtrips() {
    // Sanity anchor: the fuzz tests above exercise real reject paths,
    // not a corpus that was already broken.
    for payload in corpus() {
        let package = SeriesPackage::decode(&payload).expect("corpus entry must decode");
        assert_eq!(package.encode(), payload, "encode ∘ decode must be the identity");
        package.materialize().expect("corpus entry must materialize");
    }
}

// Property-test layer: explores arbitrary byte soup, arbitrary cut
// points and arbitrary flips. With the offline proptest stub these
// compile but stay inert; under the real crate (networked CI) they fuzz
// for real.
mod prop {
    // Used by the expanded proptest! bodies; an inert stub leaves it unused.
    #[allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            decode_all(&bytes);
        }

        #[test]
        fn arbitrary_mutations_of_valid_packages_never_panic(
            idx in 0usize..3,
            cut in any::<u16>(),
            flip in any::<u64>(),
        ) {
            let corpus = corpus();
            let payload = &corpus[idx % corpus.len()];
            let mut bytes = payload[..(cut as usize) % (payload.len() + 1)].to_vec();
            if !bytes.is_empty() {
                let bit = (flip as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            decode_all(&bytes);
        }
    }
}
