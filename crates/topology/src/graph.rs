//! The per-slot snapshot graph.
//!
//! Node identities are *stable across slots* (satellite k is node k in every
//! snapshot); edges change from slot to slot as satellites move. Two storage
//! layouts back the same accessor API:
//!
//! * **Dense** — a flat edge list with a CSR-style adjacency index, built by
//!   [`TopologySnapshot::from_edges`]. Used for hand-built test graphs and
//!   for the full-rebuild reference path.
//! * **Split** — a static/dynamic CSR split for delta-compiled series
//!   ([`crate::delta::SeriesBuilder`]): the +Grid ISL template (a
//!   [`StaticCore`]) is stored once per series behind an `Arc`, and each
//!   slot owns only its positions, sunlight flags, the sorted list of
//!   template edges *absent* this slot (line-of-sight blocked or failed),
//!   and a small CSR of dynamic USL edges. Edge lengths are recomputed from
//!   positions on access; IEEE negation symmetry makes them bit-identical
//!   to the dense build in both directions.
//!
//! Edge ids number the same logical edge list in both layouts: edges sorted
//! by source node, and within a source the static ISL template entries first
//! (in template order) followed by dynamic USL entries (in discovery order).
//! This matches the dense path's stable sort over the builder's push order,
//! so the two layouts are observationally identical.

use std::sync::Arc;

use sb_geo::coords::Eci;
use serde::{Deserialize, Serialize};

/// Stable identifier of a network node across all time slots.
///
/// Numbering convention (enforced by [`crate::series::NetworkNodes`]):
/// broadband satellites first, then ground users, then space users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A broadband relay satellite; `usize` is the constellation index.
    Satellite(usize),
    /// A ground user site; `usize` is the site index.
    GroundUser(usize),
    /// A space user (Earth-observation satellite); `usize` is the EO index.
    SpaceUser(usize),
}

impl NodeKind {
    /// `true` for broadband satellites (the only nodes that route traffic
    /// and consume battery energy).
    pub fn is_satellite(self) -> bool {
        matches!(self, NodeKind::Satellite(_))
    }

    /// `true` for ground or space users.
    pub fn is_user(self) -> bool {
        !self.is_satellite()
    }
}

impl core::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeKind::Satellite(i) => write!(f, "sat[{i}]"),
            NodeKind::GroundUser(i) => write!(f, "ground[{i}]"),
            NodeKind::SpaceUser(i) => write!(f, "eo[{i}]"),
        }
    }
}

/// The physical type of a link, which determines its capacity and its unit
/// energy consumption (the paper's `m_e ∈ {ISL, USL}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkType {
    /// Inter-satellite link between two broadband satellites.
    Isl,
    /// User-satellite link (ground terminal or space user to a broadband
    /// satellite).
    Usl,
}

impl core::fmt::Display for LinkType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkType::Isl => write!(f, "ISL"),
            LinkType::Usl => write!(f, "USL"),
        }
    }
}

/// A directed edge in one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Physical link type.
    pub link_type: LinkType,
    /// Bandwidth capacity `c_e(T)`, Mbps.
    pub capacity_mbps: f64,
    /// Straight-line length of the link, meters (for delay estimates).
    pub length_m: f64,
}

/// Index of an edge within one snapshot's edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The slot-invariant structure shared by every snapshot of a
/// delta-compiled series: node kinds, the directed +Grid ISL template
/// (CSR by source), and the uniform link capacities.
///
/// Stored once per series behind an [`Arc`]; a snapshot's marginal cost is
/// only its per-slot dynamic data.
#[derive(Debug, PartialEq)]
pub struct StaticCore {
    pub(crate) kinds: Vec<NodeKind>,
    /// CSR: `tmpl_offsets[n] .. tmpl_offsets[n+1]` indexes `tmpl_dst` for
    /// the directed ISL template entries whose source is node `n`.
    pub(crate) tmpl_offsets: Vec<u32>,
    pub(crate) tmpl_dst: Vec<NodeId>,
    /// Undirected pair index → its two directed template indices.
    pub(crate) pair_dirs: Vec<[u32; 2]>,
    /// Undirected pair index → endpoints `(a, b)` with `a < b`, in the
    /// builder's enumeration order (matches the dense push order).
    pub(crate) pair_nodes: Vec<(NodeId, NodeId)>,
    pub(crate) isl_capacity_mbps: f64,
    pub(crate) usl_capacity_mbps: f64,
}

impl StaticCore {
    /// Number of undirected ISL template pairs.
    pub fn num_pairs(&self) -> usize {
        self.pair_nodes.len()
    }

    /// Estimated heap bytes of the shared template.
    pub fn heap_bytes(&self) -> usize {
        self.kinds.len() * core::mem::size_of::<NodeKind>()
            + self.tmpl_offsets.len() * 4
            + self.tmpl_dst.len() * 4
            + self.pair_dirs.len() * 8
            + self.pair_nodes.len() * 8
    }
}

#[derive(Debug, Clone)]
struct DenseData {
    kinds: Vec<NodeKind>,
    positions: Vec<Eci>,
    sunlit: Vec<bool>,
    edges: Vec<Edge>,
    /// CSR: `adj_offsets[n] .. adj_offsets[n+1]` indexes `edges` for the
    /// out-edges of node `n` (edges are sorted by source, so the adjacency
    /// permutation is the identity).
    adj_offsets: Vec<u32>,
}

#[derive(Debug, Clone)]
struct SplitData {
    core: Arc<StaticCore>,
    positions: Vec<Eci>,
    sunlit: Vec<bool>,
    /// Sorted directed template indices absent at this slot (line-of-sight
    /// blocked or removed by a failure model). Both directions of a pair are
    /// always removed together.
    removed: Vec<u32>,
    /// CSR over the dynamic (USL) out-edges per node: `dyn_offsets[n] ..
    /// dyn_offsets[n+1]` indexes `dyn_peers`.
    dyn_offsets: Vec<u32>,
    dyn_peers: Vec<NodeId>,
}

impl SplitData {
    /// Number of removed template entries strictly below directed index `i`.
    fn removed_below(&self, i: u32) -> u32 {
        self.removed.partition_point(|&r| r < i) as u32
    }

    fn is_removed(&self, i: u32) -> bool {
        self.removed.binary_search(&i).is_ok()
    }

    /// Rank of directed template index `i` among *present* entries (also
    /// valid for `i == tmpl_dst.len()`, giving the present total).
    fn present_rank(&self, i: u32) -> u32 {
        i - self.removed_below(i)
    }

    /// The edge id of node `v`'s first out-edge.
    fn first_edge_id(&self, v: usize) -> u32 {
        self.present_rank(self.core.tmpl_offsets[v]) + self.dyn_offsets[v]
    }

    fn num_edges(&self) -> usize {
        self.core.tmpl_dst.len() - self.removed.len() + self.dyn_peers.len()
    }

    fn length(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance(self.positions[b.index()])
    }
}

/// The network graph at one time slot: `G(T) = (V(T), E(T))`.
///
/// Construct via [`crate::series::TopologySeries::build`] or
/// [`TopologySnapshot::from_edges`] (for hand-built test graphs).
#[derive(Debug, Clone)]
pub struct TopologySnapshot {
    slot: crate::SlotIndex,
    storage: Storage,
}

#[derive(Debug, Clone)]
enum Storage {
    Dense(DenseData),
    Split(SplitData),
}

impl TopologySnapshot {
    /// Builds a dense snapshot from node metadata and a directed edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node outside `kinds`, or if the
    /// metadata vectors disagree in length.
    pub fn from_edges(
        slot: crate::SlotIndex,
        kinds: Vec<NodeKind>,
        positions: Vec<Eci>,
        sunlit: Vec<bool>,
        mut edges: Vec<Edge>,
    ) -> Self {
        let n = kinds.len();
        assert_eq!(positions.len(), n, "positions length mismatch");
        assert_eq!(sunlit.len(), n, "sunlit length mismatch");
        for e in &edges {
            assert!(e.src.index() < n && e.dst.index() < n, "edge endpoint out of range");
        }
        // Sort edges by source for CSR layout; stable so test graphs keep
        // deterministic edge order within a source.
        edges.sort_by_key(|e| e.src);
        let mut adj_offsets = vec![0u32; n + 1];
        for e in &edges {
            adj_offsets[e.src.index() + 1] += 1;
        }
        for i in 0..n {
            adj_offsets[i + 1] += adj_offsets[i];
        }
        TopologySnapshot {
            slot,
            storage: Storage::Dense(DenseData { kinds, positions, sunlit, edges, adj_offsets }),
        }
    }

    /// Builds a shared-structure snapshot over a series' [`StaticCore`].
    ///
    /// `removed` lists the directed template indices absent at this slot
    /// (sorted, both directions of a pair together); `dyn_offsets` /
    /// `dyn_peers` form the per-node CSR of dynamic USL out-edges.
    pub(crate) fn from_split(
        slot: crate::SlotIndex,
        core: Arc<StaticCore>,
        positions: Vec<Eci>,
        sunlit: Vec<bool>,
        removed: Vec<u32>,
        dyn_offsets: Vec<u32>,
        dyn_peers: Vec<NodeId>,
    ) -> Self {
        let n = core.kinds.len();
        debug_assert_eq!(positions.len(), n);
        debug_assert_eq!(sunlit.len(), n);
        debug_assert_eq!(dyn_offsets.len(), n + 1);
        debug_assert!(removed.windows(2).all(|w| w[0] < w[1]), "removed must be sorted");
        TopologySnapshot {
            slot,
            storage: Storage::Split(SplitData {
                core,
                positions,
                sunlit,
                removed,
                dyn_offsets,
                dyn_peers,
            }),
        }
    }

    /// The slot this snapshot describes.
    pub fn slot(&self) -> crate::SlotIndex {
        self.slot
    }

    /// Number of nodes (same in every snapshot of a series).
    pub fn num_nodes(&self) -> usize {
        self.kinds().len()
    }

    /// Number of directed edges in this snapshot.
    pub fn num_edges(&self) -> usize {
        match &self.storage {
            Storage::Dense(d) => d.edges.len(),
            Storage::Split(s) => s.num_edges(),
        }
    }

    /// The kind of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds()[node.index()]
    }

    /// All node kinds, indexed by node id.
    pub fn kinds(&self) -> &[NodeKind] {
        match &self.storage {
            Storage::Dense(d) => &d.kinds,
            Storage::Split(s) => &s.core.kinds,
        }
    }

    fn positions(&self) -> &[Eci] {
        match &self.storage {
            Storage::Dense(d) => &d.positions,
            Storage::Split(s) => &s.positions,
        }
    }

    fn sunlit_flags(&self) -> &[bool] {
        match &self.storage {
            Storage::Dense(d) => &d.sunlit,
            Storage::Split(s) => &s.sunlit,
        }
    }

    /// The inertial position of a node at this slot.
    pub fn position(&self, node: NodeId) -> Eci {
        self.positions()[node.index()]
    }

    /// Whether a node is in sunlight at this slot (always `true` for ground
    /// users).
    pub fn is_sunlit(&self, node: NodeId) -> bool {
        self.sunlit_flags()[node.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> Edge {
        match &self.storage {
            Storage::Dense(d) => d.edges[id.index()],
            Storage::Split(s) => {
                assert!(id.index() < s.num_edges(), "edge id out of range");
                // Find the source node: the last v with first_edge_id(v) <= id.
                let n = s.core.kinds.len();
                let mut lo = 0usize;
                let mut hi = n;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if s.first_edge_id(mid) <= id.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let v = NodeId(lo as u32);
                let offset = id.0 - s.first_edge_id(lo);
                let t_lo = s.core.tmpl_offsets[lo];
                let t_hi = s.core.tmpl_offsets[lo + 1];
                let present_isl = s.present_rank(t_hi) - s.present_rank(t_lo);
                if offset < present_isl {
                    // The offset-th *present* template entry of this block.
                    let mut rank = 0;
                    for i in t_lo..t_hi {
                        if s.is_removed(i) {
                            continue;
                        }
                        if rank == offset {
                            let dst = s.core.tmpl_dst[i as usize];
                            return Edge {
                                src: v,
                                dst,
                                link_type: LinkType::Isl,
                                capacity_mbps: s.core.isl_capacity_mbps,
                                length_m: s.length(v, dst),
                            };
                        }
                        rank += 1;
                    }
                    unreachable!("present template entry not found");
                }
                let dst = s.dyn_peers[(s.dyn_offsets[lo] + (offset - present_isl)) as usize];
                Edge {
                    src: v,
                    dst,
                    link_type: LinkType::Usl,
                    capacity_mbps: s.core.usl_capacity_mbps,
                    length_m: s.length(v, dst),
                }
            }
        }
    }

    /// All edges in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |v| self.out_edges(NodeId(v)).map(|(_, e)| e))
    }

    /// Iterates over the out-edges of `node` as `(EdgeId, Edge)`.
    pub fn out_edges(&self, node: NodeId) -> OutEdges<'_> {
        let inner = match &self.storage {
            Storage::Dense(d) => OutEdgesInner::Dense {
                edges: &d.edges,
                idx: d.adj_offsets[node.index()],
                end: d.adj_offsets[node.index() + 1],
            },
            Storage::Split(s) => OutEdgesInner::Split {
                data: s,
                src: node,
                tmpl_idx: s.core.tmpl_offsets[node.index()],
                tmpl_end: s.core.tmpl_offsets[node.index() + 1],
                dyn_idx: s.dyn_offsets[node.index()],
                dyn_end: s.dyn_offsets[node.index() + 1],
                next_id: s.first_edge_id(node.index()),
            },
        };
        OutEdges { inner }
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        match &self.storage {
            Storage::Dense(d) => {
                (d.adj_offsets[node.index() + 1] - d.adj_offsets[node.index()]) as usize
            }
            Storage::Split(s) => {
                let t_lo = s.core.tmpl_offsets[node.index()];
                let t_hi = s.core.tmpl_offsets[node.index() + 1];
                let isl = (s.present_rank(t_hi) - s.present_rank(t_lo)) as usize;
                isl + (s.dyn_offsets[node.index() + 1] - s.dyn_offsets[node.index()]) as usize
            }
        }
    }

    /// Finds the edge from `src` to `dst`, if present.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src).find(|(_, e)| e.dst == dst).map(|(id, _)| id)
    }

    /// Total capacity (Mbps) of all directed edges — a sanity metric.
    pub fn total_capacity_mbps(&self) -> f64 {
        self.edges().map(|e| e.capacity_mbps).sum()
    }

    /// `true` when this snapshot uses the shared-structure (split) layout.
    pub fn is_split(&self) -> bool {
        matches!(self.storage, Storage::Split(_))
    }

    /// Estimated heap bytes owned by this snapshot alone; for split
    /// snapshots the `Arc`-shared [`StaticCore`] is excluded (see
    /// [`TopologySnapshot::shared_heap_bytes`]).
    pub fn marginal_heap_bytes(&self) -> usize {
        match &self.storage {
            Storage::Dense(d) => {
                d.kinds.len() * core::mem::size_of::<NodeKind>()
                    + d.positions.len() * core::mem::size_of::<Eci>()
                    + d.sunlit.len()
                    + d.edges.len() * core::mem::size_of::<Edge>()
                    + d.adj_offsets.len() * 4
            }
            Storage::Split(s) => {
                s.positions.len() * core::mem::size_of::<Eci>()
                    + s.sunlit.len()
                    + s.removed.len() * 4
                    + s.dyn_offsets.len() * 4
                    + s.dyn_peers.len() * 4
            }
        }
    }

    /// Estimated heap bytes of the structure shared across the series
    /// (0 for dense snapshots).
    pub fn shared_heap_bytes(&self) -> usize {
        match &self.storage {
            Storage::Dense(_) => 0,
            Storage::Split(s) => s.core.heap_bytes(),
        }
    }

    /// Removes edges according to the two predicates, preserving edge
    /// order, and returns the filtered snapshot — or `None` when either the
    /// snapshot is dense (caller must take the dense rebuild path) or no
    /// edge matched (the snapshot is unchanged).
    ///
    /// `isl_down` is consulted once per *present* undirected ISL pair;
    /// `node_down` removes every edge touching a down node.
    pub(crate) fn split_filtered(
        &self,
        mut isl_down: impl FnMut(NodeId, NodeId) -> bool,
        mut node_down: impl FnMut(NodeId) -> bool,
    ) -> Option<TopologySnapshot> {
        let s = match &self.storage {
            Storage::Split(s) => s,
            Storage::Dense(_) => return None,
        };
        let mut extra: Vec<u32> = Vec::new();
        for (p, &(a, b)) in s.core.pair_nodes.iter().enumerate() {
            let dirs = s.core.pair_dirs[p];
            if s.is_removed(dirs[0]) {
                continue;
            }
            if isl_down(a, b) || node_down(a) || node_down(b) {
                extra.extend_from_slice(&dirs);
            }
        }
        let n = s.core.kinds.len();
        let mut dyn_changed = false;
        let mut dyn_offsets = Vec::with_capacity(n + 1);
        let mut dyn_peers = Vec::with_capacity(s.dyn_peers.len());
        dyn_offsets.push(0u32);
        for v in 0..n {
            let v_down = node_down(NodeId(v as u32));
            let lo = s.dyn_offsets[v] as usize;
            let hi = s.dyn_offsets[v + 1] as usize;
            for &peer in &s.dyn_peers[lo..hi] {
                if v_down || node_down(peer) {
                    dyn_changed = true;
                } else {
                    dyn_peers.push(peer);
                }
            }
            dyn_offsets.push(dyn_peers.len() as u32);
        }
        if extra.is_empty() && !dyn_changed {
            return None;
        }
        let mut removed = s.removed.clone();
        removed.extend_from_slice(&extra);
        removed.sort_unstable();
        Some(TopologySnapshot::from_split(
            self.slot,
            Arc::clone(&s.core),
            s.positions.clone(),
            s.sunlit.clone(),
            removed,
            dyn_offsets,
            dyn_peers,
        ))
    }
}

impl PartialEq for TopologySnapshot {
    /// Logical equality: the two snapshots describe the same graph,
    /// regardless of storage layout.
    fn eq(&self, other: &Self) -> bool {
        self.slot == other.slot
            && self.kinds() == other.kinds()
            && self.positions() == other.positions()
            && self.sunlit_flags() == other.sunlit_flags()
            && self.num_edges() == other.num_edges()
            && self.edges().eq(other.edges())
    }
}

/// Iterator over a node's out-edges; see
/// [`TopologySnapshot::out_edges`].
pub struct OutEdges<'a> {
    inner: OutEdgesInner<'a>,
}

enum OutEdgesInner<'a> {
    Dense {
        edges: &'a [Edge],
        idx: u32,
        end: u32,
    },
    Split {
        data: &'a SplitData,
        src: NodeId,
        tmpl_idx: u32,
        tmpl_end: u32,
        dyn_idx: u32,
        dyn_end: u32,
        next_id: u32,
    },
}

impl Iterator for OutEdges<'_> {
    type Item = (EdgeId, Edge);

    fn next(&mut self) -> Option<(EdgeId, Edge)> {
        match &mut self.inner {
            OutEdgesInner::Dense { edges, idx, end } => {
                if idx < end {
                    let id = EdgeId(*idx);
                    let e = edges[*idx as usize];
                    *idx += 1;
                    Some((id, e))
                } else {
                    None
                }
            }
            OutEdgesInner::Split { data, src, tmpl_idx, tmpl_end, dyn_idx, dyn_end, next_id } => {
                while tmpl_idx < tmpl_end {
                    let i = *tmpl_idx;
                    *tmpl_idx += 1;
                    if data.is_removed(i) {
                        continue;
                    }
                    let dst = data.core.tmpl_dst[i as usize];
                    let id = EdgeId(*next_id);
                    *next_id += 1;
                    return Some((
                        id,
                        Edge {
                            src: *src,
                            dst,
                            link_type: LinkType::Isl,
                            capacity_mbps: data.core.isl_capacity_mbps,
                            length_m: data.length(*src, dst),
                        },
                    ));
                }
                if dyn_idx < dyn_end {
                    let dst = data.dyn_peers[*dyn_idx as usize];
                    *dyn_idx += 1;
                    let id = EdgeId(*next_id);
                    *next_id += 1;
                    return Some((
                        id,
                        Edge {
                            src: *src,
                            dst,
                            link_type: LinkType::Usl,
                            capacity_mbps: data.core.usl_capacity_mbps,
                            length_m: data.length(*src, dst),
                        },
                    ));
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlotIndex;
    use sb_geo::Vec3;

    fn tiny() -> TopologySnapshot {
        // user0 -> sat1 -> sat2 -> user3
        let kinds = vec![
            NodeKind::GroundUser(0),
            NodeKind::Satellite(0),
            NodeKind::Satellite(1),
            NodeKind::GroundUser(1),
        ];
        let pos = vec![Eci(Vec3::ZERO); 4];
        let sunlit = vec![true; 4];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 1000.0,
            length_m: 1.0e6,
        };
        let edges = vec![
            mk(0, 1, LinkType::Usl),
            mk(1, 0, LinkType::Usl),
            mk(1, 2, LinkType::Isl),
            mk(2, 1, LinkType::Isl),
            mk(2, 3, LinkType::Usl),
            mk(3, 2, LinkType::Usl),
        ];
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, sunlit, edges)
    }

    #[test]
    fn csr_adjacency_complete() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(NodeId(1)), 2);
        let dsts: Vec<u32> = g.out_edges(NodeId(1)).map(|(_, e)| e.dst.0).collect();
        assert!(dsts.contains(&0) && dsts.contains(&2));
    }

    #[test]
    fn find_edge_works() {
        let g = tiny();
        assert!(g.find_edge(NodeId(0), NodeId(1)).is_some());
        assert!(g.find_edge(NodeId(0), NodeId(2)).is_none());
        let id = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(g.edge(id).link_type, LinkType::Usl);
    }

    #[test]
    fn kinds_and_predicates() {
        let g = tiny();
        assert!(g.kind(NodeId(1)).is_satellite());
        assert!(g.kind(NodeId(0)).is_user());
        assert_eq!(format!("{}", g.kind(NodeId(0))), "ground[0]");
        assert_eq!(format!("{}", g.kind(NodeId(1))), "sat[0]");
    }

    #[test]
    fn total_capacity() {
        let g = tiny();
        assert!((g.total_capacity_mbps() - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn edge_ids_enumerate_in_csr_order() {
        let g = tiny();
        for (i, e) in g.edges().enumerate() {
            assert_eq!(g.edge(EdgeId(i as u32)), e);
        }
        let ids: Vec<u32> = (0..g.num_nodes() as u32)
            .flat_map(|v| g.out_edges(NodeId(v)).map(|(id, _)| id.0))
            .collect();
        assert_eq!(ids, (0..g.num_edges() as u32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn rejects_dangling_edge() {
        let kinds = vec![NodeKind::Satellite(0)];
        let pos = vec![Eci(Vec3::ZERO)];
        let edges = vec![Edge {
            src: NodeId(0),
            dst: NodeId(7),
            link_type: LinkType::Isl,
            capacity_mbps: 1.0,
            length_m: 1.0,
        }];
        let _ = TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true], edges);
    }

    #[test]
    fn isolated_node_has_no_edges() {
        let kinds = vec![NodeKind::Satellite(0), NodeKind::Satellite(1)];
        let pos = vec![Eci(Vec3::ZERO); 2];
        let g = TopologySnapshot::from_edges(SlotIndex(1), kinds, pos, vec![true, false], vec![]);
        assert_eq!(g.out_degree(NodeId(0)), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_sunlit(NodeId(1)));
        assert_eq!(g.slot(), SlotIndex(1));
    }
}
