//! The per-slot snapshot graph.
//!
//! Node identities are *stable across slots* (satellite k is node k in every
//! snapshot); edges change from slot to slot as satellites move. The edge
//! set is stored flat with a CSR-style adjacency index so that the pricing
//! layer's Dijkstra runs allocation-free over a snapshot.

use sb_geo::coords::Eci;
use serde::{Deserialize, Serialize};

/// Stable identifier of a network node across all time slots.
///
/// Numbering convention (enforced by [`crate::series::NetworkNodes`]):
/// broadband satellites first, then ground users, then space users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A broadband relay satellite; `usize` is the constellation index.
    Satellite(usize),
    /// A ground user site; `usize` is the site index.
    GroundUser(usize),
    /// A space user (Earth-observation satellite); `usize` is the EO index.
    SpaceUser(usize),
}

impl NodeKind {
    /// `true` for broadband satellites (the only nodes that route traffic
    /// and consume battery energy).
    pub fn is_satellite(self) -> bool {
        matches!(self, NodeKind::Satellite(_))
    }

    /// `true` for ground or space users.
    pub fn is_user(self) -> bool {
        !self.is_satellite()
    }
}

impl core::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeKind::Satellite(i) => write!(f, "sat[{i}]"),
            NodeKind::GroundUser(i) => write!(f, "ground[{i}]"),
            NodeKind::SpaceUser(i) => write!(f, "eo[{i}]"),
        }
    }
}

/// The physical type of a link, which determines its capacity and its unit
/// energy consumption (the paper's `m_e ∈ {ISL, USL}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkType {
    /// Inter-satellite link between two broadband satellites.
    Isl,
    /// User-satellite link (ground terminal or space user to a broadband
    /// satellite).
    Usl,
}

impl core::fmt::Display for LinkType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkType::Isl => write!(f, "ISL"),
            LinkType::Usl => write!(f, "USL"),
        }
    }
}

/// A directed edge in one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Physical link type.
    pub link_type: LinkType,
    /// Bandwidth capacity `c_e(T)`, Mbps.
    pub capacity_mbps: f64,
    /// Straight-line length of the link, meters (for delay estimates).
    pub length_m: f64,
}

/// Index of an edge within one snapshot's edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The network graph at one time slot: `G(T) = (V(T), E(T))`.
///
/// Construct via [`crate::series::TopologySeries::build`] or
/// [`TopologySnapshot::from_edges`] (for hand-built test graphs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySnapshot {
    slot: crate::SlotIndex,
    kinds: Vec<NodeKind>,
    positions: Vec<Eci>,
    sunlit: Vec<bool>,
    edges: Vec<Edge>,
    /// CSR: `adj_offsets[n] .. adj_offsets[n+1]` indexes `adj_edges` for the
    /// out-edges of node `n`.
    adj_offsets: Vec<u32>,
    adj_edges: Vec<EdgeId>,
}

impl TopologySnapshot {
    /// Builds a snapshot from node metadata and a directed edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node outside `kinds`, or if the
    /// metadata vectors disagree in length.
    pub fn from_edges(
        slot: crate::SlotIndex,
        kinds: Vec<NodeKind>,
        positions: Vec<Eci>,
        sunlit: Vec<bool>,
        mut edges: Vec<Edge>,
    ) -> Self {
        let n = kinds.len();
        assert_eq!(positions.len(), n, "positions length mismatch");
        assert_eq!(sunlit.len(), n, "sunlit length mismatch");
        for e in &edges {
            assert!(e.src.index() < n && e.dst.index() < n, "edge endpoint out of range");
        }
        // Sort edges by source for CSR layout; stable so test graphs keep
        // deterministic edge order within a source.
        edges.sort_by_key(|e| e.src);
        let mut adj_offsets = vec![0u32; n + 1];
        for e in &edges {
            adj_offsets[e.src.index() + 1] += 1;
        }
        for i in 0..n {
            adj_offsets[i + 1] += adj_offsets[i];
        }
        let adj_edges = (0..edges.len() as u32).map(EdgeId).collect();
        TopologySnapshot { slot, kinds, positions, sunlit, edges, adj_offsets, adj_edges }
    }

    /// The slot this snapshot describes.
    pub fn slot(&self) -> crate::SlotIndex {
        self.slot
    }

    /// Number of nodes (same in every snapshot of a series).
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of directed edges in this snapshot.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The kind of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// All node kinds, indexed by node id.
    pub fn kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// The inertial position of a node at this slot.
    pub fn position(&self, node: NodeId) -> Eci {
        self.positions[node.index()]
    }

    /// Whether a node is in sunlight at this slot (always `true` for ground
    /// users).
    pub fn is_sunlit(&self, node: NodeId) -> bool {
        self.sunlit[node.index()]
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All edges in CSR order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over the out-edges of `node` as `(EdgeId, &Edge)`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        let lo = self.adj_offsets[node.index()] as usize;
        let hi = self.adj_offsets[node.index() + 1] as usize;
        self.adj_edges[lo..hi].iter().map(move |&id| (id, &self.edges[id.index()]))
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        (self.adj_offsets[node.index() + 1] - self.adj_offsets[node.index()]) as usize
    }

    /// Finds the edge from `src` to `dst`, if present.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src).find(|(_, e)| e.dst == dst).map(|(id, _)| id)
    }

    /// Total capacity (Mbps) of all directed edges — a sanity metric.
    pub fn total_capacity_mbps(&self) -> f64 {
        self.edges.iter().map(|e| e.capacity_mbps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlotIndex;
    use sb_geo::Vec3;

    fn tiny() -> TopologySnapshot {
        // user0 -> sat1 -> sat2 -> user3
        let kinds = vec![
            NodeKind::GroundUser(0),
            NodeKind::Satellite(0),
            NodeKind::Satellite(1),
            NodeKind::GroundUser(1),
        ];
        let pos = vec![Eci(Vec3::ZERO); 4];
        let sunlit = vec![true; 4];
        let mk = |s: u32, d: u32, lt| Edge {
            src: NodeId(s),
            dst: NodeId(d),
            link_type: lt,
            capacity_mbps: 1000.0,
            length_m: 1.0e6,
        };
        let edges = vec![
            mk(0, 1, LinkType::Usl),
            mk(1, 0, LinkType::Usl),
            mk(1, 2, LinkType::Isl),
            mk(2, 1, LinkType::Isl),
            mk(2, 3, LinkType::Usl),
            mk(3, 2, LinkType::Usl),
        ];
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, sunlit, edges)
    }

    #[test]
    fn csr_adjacency_complete() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(NodeId(1)), 2);
        let dsts: Vec<u32> = g.out_edges(NodeId(1)).map(|(_, e)| e.dst.0).collect();
        assert!(dsts.contains(&0) && dsts.contains(&2));
    }

    #[test]
    fn find_edge_works() {
        let g = tiny();
        assert!(g.find_edge(NodeId(0), NodeId(1)).is_some());
        assert!(g.find_edge(NodeId(0), NodeId(2)).is_none());
        let id = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(g.edge(id).link_type, LinkType::Usl);
    }

    #[test]
    fn kinds_and_predicates() {
        let g = tiny();
        assert!(g.kind(NodeId(1)).is_satellite());
        assert!(g.kind(NodeId(0)).is_user());
        assert_eq!(format!("{}", g.kind(NodeId(0))), "ground[0]");
        assert_eq!(format!("{}", g.kind(NodeId(1))), "sat[0]");
    }

    #[test]
    fn total_capacity() {
        let g = tiny();
        assert!((g.total_capacity_mbps() - 6000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn rejects_dangling_edge() {
        let kinds = vec![NodeKind::Satellite(0)];
        let pos = vec![Eci(Vec3::ZERO)];
        let edges = vec![Edge {
            src: NodeId(0),
            dst: NodeId(7),
            link_type: LinkType::Isl,
            capacity_mbps: 1.0,
            length_m: 1.0,
        }];
        let _ = TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true], edges);
    }

    #[test]
    fn isolated_node_has_no_edges() {
        let kinds = vec![NodeKind::Satellite(0), NodeKind::Satellite(1)];
        let pos = vec![Eci(Vec3::ZERO); 2];
        let g = TopologySnapshot::from_edges(SlotIndex(1), kinds, pos, vec![true, false], vec![]);
        assert_eq!(g.out_degree(NodeId(0)), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_sunlit(NodeId(1)));
        assert_eq!(g.slot(), SlotIndex(1));
    }
}
