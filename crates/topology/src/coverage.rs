//! Constellation coverage analysis.
//!
//! Whether a request can be admitted at all starts with coverage: does the
//! source see any satellite above its elevation mask *right now*? This
//! module measures that — per latitude band and over time — which is how
//! constellation designers size shells (and how this repository picked the
//! test shells whose coverage holes would otherwise masquerade as
//! algorithmic rejections).

use crate::SlotIndex;
use sb_geo::coords::{Eci, Geodetic};
use sb_geo::{visibility, Epoch};
use sb_orbit::Constellation;
use serde::{Deserialize, Serialize};

/// Coverage statistics for one latitude band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandCoverage {
    /// Band center latitude, degrees.
    pub latitude_deg: f64,
    /// Fraction of sampled longitudes with at least one visible satellite.
    pub covered_fraction: f64,
    /// Mean number of visible satellites over the sampled points.
    pub mean_visible: f64,
}

/// Samples coverage of a constellation at one epoch.
///
/// For each latitude band (spaced `lat_step_deg` apart) a ring of
/// `lon_samples` test points is checked against the elevation mask.
pub fn coverage_by_latitude(
    constellation: &Constellation,
    epoch: Epoch,
    min_elevation_rad: f64,
    lat_step_deg: f64,
    lon_samples: usize,
) -> Vec<BandCoverage> {
    assert!(lat_step_deg > 0.0, "latitude step must be positive");
    assert!(lon_samples > 0, "need at least one longitude sample");
    let positions: Vec<Eci> = constellation.propagate(epoch).iter().map(|s| s.position).collect();

    let mut bands = Vec::new();
    let mut lat = -90.0 + lat_step_deg / 2.0;
    while lat < 90.0 {
        let mut covered = 0usize;
        let mut visible_total = 0usize;
        for k in 0..lon_samples {
            let lon = -180.0 + 360.0 * k as f64 / lon_samples as f64;
            let p = Geodetic::from_degrees(lat, lon, 0.0).to_ecef().to_eci(epoch);
            let visible = positions
                .iter()
                .filter(|&&sp| visibility::visible_above_elevation(p, sp, min_elevation_rad))
                .count();
            if visible > 0 {
                covered += 1;
            }
            visible_total += visible;
        }
        bands.push(BandCoverage {
            latitude_deg: lat,
            covered_fraction: covered as f64 / lon_samples as f64,
            mean_visible: visible_total as f64 / lon_samples as f64,
        });
        lat += lat_step_deg;
    }
    bands
}

/// Global coverage fraction (area-weighted by cos(latitude)) at one epoch.
pub fn global_coverage(constellation: &Constellation, epoch: Epoch, min_elevation_rad: f64) -> f64 {
    let bands = coverage_by_latitude(constellation, epoch, min_elevation_rad, 10.0, 24);
    let (mut num, mut den) = (0.0, 0.0);
    for b in &bands {
        let w = b.latitude_deg.to_radians().cos().max(0.0);
        num += b.covered_fraction * w;
        den += w;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Worst-case (minimum) global coverage over a window of slots.
pub fn min_coverage_over_time(
    constellation: &Constellation,
    slots: impl IntoIterator<Item = SlotIndex>,
    slot_duration_s: f64,
    min_elevation_rad: f64,
) -> f64 {
    slots
        .into_iter()
        .map(|t| {
            global_coverage(
                constellation,
                Epoch::from_seconds(t.0 as f64 * slot_duration_s),
                min_elevation_rad,
            )
        })
        .fold(1.0, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_orbit::walker::WalkerConstellation;

    fn shell(planes: usize, spp: usize) -> Constellation {
        Constellation::from_walker(&WalkerConstellation::delta(
            planes,
            spp,
            1,
            550e3,
            53f64.to_radians(),
        ))
    }

    #[test]
    fn paper_shell_covers_mid_latitudes_at_25_degrees() {
        let c = shell(22, 72);
        let bands =
            coverage_by_latitude(&c, Epoch::from_seconds(0.0), 25f64.to_radians(), 10.0, 36);
        for b in bands.iter().filter(|b| b.latitude_deg.abs() < 50.0) {
            assert!(
                b.covered_fraction > 0.99,
                "band {}° only {:.0}% covered",
                b.latitude_deg,
                b.covered_fraction * 100.0
            );
        }
    }

    #[test]
    fn inclination_limits_polar_coverage() {
        let c = shell(22, 72);
        let bands =
            coverage_by_latitude(&c, Epoch::from_seconds(0.0), 25f64.to_radians(), 10.0, 24);
        let polar = bands.iter().find(|b| b.latitude_deg > 80.0).unwrap();
        assert!(
            polar.covered_fraction < 0.5,
            "a 53° shell cannot cover the pole: {:.0}%",
            polar.covered_fraction * 100.0
        );
    }

    #[test]
    fn small_shell_has_holes_at_25_but_fewer_at_10_degrees() {
        let c = shell(12, 12);
        let epoch = Epoch::from_seconds(0.0);
        let at25 = global_coverage(&c, epoch, 25f64.to_radians());
        let at10 = global_coverage(&c, epoch, 10f64.to_radians());
        assert!(at10 > at25, "lower mask must widen coverage: {at10} vs {at25}");
        assert!(at25 < 0.9, "144 satellites cannot blanket the Earth at 25°");
    }

    #[test]
    fn min_coverage_over_time_is_a_lower_bound() {
        let c = shell(12, 12);
        let slots: Vec<SlotIndex> = (0..4).map(SlotIndex).collect();
        let min = min_coverage_over_time(&c, slots.clone(), 60.0, 10f64.to_radians());
        for t in slots {
            let g = global_coverage(&c, Epoch::from_seconds(t.0 as f64 * 60.0), 10f64.to_radians());
            assert!(g >= min - 1e-12);
        }
    }

    #[test]
    fn empty_constellation_covers_nothing() {
        let c = Constellation::new();
        assert_eq!(global_coverage(&c, Epoch::from_seconds(0.0), 0.4), 0.0);
    }

    #[test]
    #[should_panic(expected = "latitude step")]
    fn invalid_step_panics() {
        let c = shell(2, 2);
        let _ = coverage_by_latitude(&c, Epoch::from_seconds(0.0), 0.4, 0.0, 4);
    }
}
