//! Delta compilation of topology series.
//!
//! At mega-constellation scale, rebuilding and storing a dense snapshot
//! per slot is wasteful: the +Grid ISL structure never changes (only its
//! line-of-sight blockage does), and USL visibility churns slowly. The
//! [`SeriesBuilder`] exploits this:
//!
//! * the **static template** — node kinds, the directed ISL adjacency and
//!   the uniform capacities — is built once per series as a
//!   [`StaticCore`] and shared across every slot behind an `Arc`;
//! * slot 0 is computed as a full **base state**; every later slot is
//!   expressed as a [`SlotDelta`] against its predecessor (new positions
//!   and sunlight, ISL blockage adds/removes, and replacement visible-sat
//!   lists for users whose USLs changed) and materialized by *applying*
//!   the delta;
//! * materialized snapshots use the split static/dynamic CSR layout of
//!   [`TopologySnapshot`], so each slot owns only its dynamic data.
//!
//! Every snapshot remains a pure function of `(nodes, config, slot
//! epoch)`: deltas change how a slot is *computed*, never what it
//! contains, so the compiled series is bit-identical to
//! [`TopologySeries::build_full`] — and identical for every parallel
//! range partition in [`SeriesBuilder::compile_par`].

use std::sync::Arc;

use crate::graph::{NodeId, StaticCore, TopologySnapshot};
use crate::series::{node_states, NetworkNodes, TopologyConfig, TopologySeries};
use crate::usl;
use crate::SlotIndex;
use sb_geo::coords::Eci;
use sb_geo::{visibility, Epoch};

/// The change from one slot to the next, relative to the shared
/// [`StaticCore`] template.
///
/// Applying a delta to the predecessor's state reproduces the successor's
/// state exactly (see [`SeriesBuilder`] module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotDelta {
    /// The slot this delta produces.
    pub slot: SlotIndex,
    /// New positions for every node (satellites all move every slot, so
    /// positions are inherently per-slot dense).
    pub positions: Vec<Eci>,
    /// New sunlight flags for every node.
    pub sunlit: Vec<bool>,
    /// Directed template indices newly blocked (line of sight lost since
    /// the previous slot), sorted.
    pub isl_blocked_add: Vec<u32>,
    /// Directed template indices newly unblocked, sorted.
    pub isl_blocked_remove: Vec<u32>,
    /// Users whose ordered visible-satellite list changed: `(user ordinal,
    /// new list)`. The full list is carried because its nearest-first
    /// order is part of the edge-id contract.
    pub usl_changed: Vec<(u32, Vec<u32>)>,
}

impl SlotDelta {
    /// Estimated heap bytes of this delta.
    pub fn heap_bytes(&self) -> usize {
        self.positions.len() * core::mem::size_of::<Eci>()
            + self.sunlit.len()
            + (self.isl_blocked_add.len() + self.isl_blocked_remove.len()) * 4
            + self
                .usl_changed
                .iter()
                .map(|(_, l)| core::mem::size_of::<(u32, Vec<u32>)>() + l.len() * 4)
                .sum::<usize>()
    }
}

/// The fully-resolved dynamic state of one slot (what a delta applies to
/// and produces). Crate-visible so [`crate::shipping`] can carry the base
/// state of a compiled series over the wire.
#[derive(Clone)]
pub(crate) struct SlotState {
    pub(crate) slot: u32,
    pub(crate) positions: Vec<Eci>,
    pub(crate) sunlit: Vec<bool>,
    /// Sorted directed template indices blocked at this slot.
    pub(crate) blocked: Vec<u32>,
    /// Per user ordinal (ground users then space users): visible
    /// satellite constellation indices, nearest-first.
    pub(crate) user_lists: Vec<Vec<u32>>,
}

/// A compiled series: the materialized snapshots plus the delta stream
/// that produced slots `1..`.
pub struct CompiledSeries {
    series: TopologySeries,
    deltas: Vec<SlotDelta>,
}

impl CompiledSeries {
    /// The materialized series.
    pub fn series(&self) -> &TopologySeries {
        &self.series
    }

    /// Consumes the compilation, keeping only the series.
    pub fn into_series(self) -> TopologySeries {
        self.series
    }

    /// The deltas for slots `1..num_slots` (empty for horizons ≤ 1).
    pub fn deltas(&self) -> &[SlotDelta] {
        &self.deltas
    }
}

/// Compiles a [`TopologySeries`] as a shared static template plus
/// per-slot deltas. See the module docs for the representation.
pub struct SeriesBuilder<'a> {
    nodes: &'a NetworkNodes,
    config: &'a TopologyConfig,
    core: Arc<StaticCore>,
}

impl<'a> SeriesBuilder<'a> {
    /// Builds the static template for `nodes` once; subsequent compiles
    /// share it.
    pub fn new(nodes: &'a NetworkNodes, config: &'a TopologyConfig) -> Self {
        let core = Arc::new(build_core(nodes, config));
        SeriesBuilder { nodes, config, core }
    }

    /// The shared static template.
    pub fn core(&self) -> &Arc<StaticCore> {
        &self.core
    }

    /// Compiles slots `0..num_slots` serially: a base state, then one
    /// [`SlotDelta`] per subsequent slot, each applied and materialized.
    pub fn compile(&self, num_slots: usize, slot_duration_s: f64) -> CompiledSeries {
        let mut snapshots = Vec::with_capacity(num_slots);
        let mut deltas = Vec::with_capacity(num_slots.saturating_sub(1));
        let mut prev: Option<SlotState> = None;
        for t in 0..num_slots {
            let fresh = self.slot_state(t as u32, slot_duration_s);
            let state = match prev.take() {
                None => fresh,
                Some(p) => {
                    let delta = delta_between(&p, &fresh);
                    let applied = apply_delta(&p, &delta);
                    deltas.push(delta);
                    applied
                }
            };
            snapshots.push(self.materialize(&state));
            prev = Some(state);
        }
        CompiledSeries {
            series: TopologySeries::from_snapshots(snapshots, slot_duration_s),
            deltas,
        }
    }

    /// Compiles the slot range in `threads` contiguous chunks, each
    /// delta-compiled independently (fresh base at the chunk start).
    /// Chunk results land in write-once cells indexed by chunk, so the
    /// assembled series is bit-identical to [`SeriesBuilder::compile`]
    /// for every thread count.
    pub fn compile_par(
        &self,
        num_slots: usize,
        slot_duration_s: f64,
        threads: usize,
    ) -> TopologySeries {
        let threads = threads.clamp(1, num_slots.max(1));
        if threads == 1 {
            return self.compile(num_slots, slot_duration_s).into_series();
        }
        let chunk = num_slots / threads;
        let rem = num_slots % threads;
        let mut ranges = Vec::with_capacity(threads);
        let mut start = 0usize;
        for i in 0..threads {
            let len = chunk + usize::from(i < rem);
            ranges.push(start..start + len);
            start += len;
        }
        let cells: Vec<std::sync::OnceLock<Vec<TopologySnapshot>>> =
            (0..threads).map(|_| std::sync::OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for (i, range) in ranges.into_iter().enumerate() {
                let cells = &cells;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(range.len());
                    let mut prev: Option<SlotState> = None;
                    for t in range {
                        let fresh = self.slot_state(t as u32, slot_duration_s);
                        let state = match prev.take() {
                            None => fresh,
                            Some(p) => {
                                let delta = delta_between(&p, &fresh);
                                apply_delta(&p, &delta)
                            }
                        };
                        out.push(self.materialize(&state));
                        prev = Some(state);
                    }
                    assert!(cells[i].set(out).is_ok(), "chunk cell set twice");
                });
            }
        });
        let snapshots = cells
            .into_iter()
            .flat_map(|c| c.into_inner().expect("worker compiled its chunk"))
            .collect();
        TopologySeries::from_snapshots(snapshots, slot_duration_s)
    }

    /// Computes the fully-resolved dynamic state of one slot from orbits
    /// alone (no predecessor needed).
    pub(crate) fn slot_state(&self, t: u32, slot_duration_s: f64) -> SlotState {
        let epoch = Epoch::from_seconds(f64::from(t) * slot_duration_s);
        let (positions, sunlit) = node_states(self.nodes, epoch);

        let mut blocked = Vec::new();
        for (q, &(a, b)) in self.core.pair_nodes.iter().enumerate() {
            if !visibility::line_of_sight_clear(
                positions[a.index()],
                positions[b.index()],
                self.config.isl_grazing_margin_m,
            ) {
                blocked.extend_from_slice(&self.core.pair_dirs[q]);
            }
        }
        blocked.sort_unstable();

        let sat_positions = &positions[..self.nodes.num_satellites()];
        let mut user_lists =
            Vec::with_capacity(self.nodes.num_ground_users() + self.nodes.num_space_users());
        for gi in 0..self.nodes.num_ground_users() {
            let user_pos = positions[self.nodes.ground_node(gi).index()];
            let visible = usl::visible_sats_from_ground(
                user_pos,
                sat_positions,
                self.config.min_elevation_rad,
                self.config.max_usl_per_ground,
            );
            user_lists.push(visible.into_iter().map(|i| i as u32).collect());
        }
        for ei in 0..self.nodes.num_space_users() {
            let user_pos = positions[self.nodes.space_user_node(ei).index()];
            let visible = usl::visible_sats_from_space(
                user_pos,
                sat_positions,
                self.config.eo_link_range_m,
                self.config.grazing_margin_m,
                self.config.max_usl_per_eo,
            );
            user_lists.push(visible.into_iter().map(|i| i as u32).collect());
        }
        SlotState { slot: t, positions, sunlit, blocked, user_lists }
    }

    /// Materializes a state as a split snapshot over the shared core.
    ///
    /// Edge-id order contract (must match the dense stable sort): per
    /// source node, present template ISLs first in template order, then
    /// dynamic USLs in push order — a user's own entries nearest-first,
    /// a satellite's entries in ascending user node id.
    fn materialize(&self, st: &SlotState) -> TopologySnapshot {
        materialize_split(&self.core, self.nodes.num_satellites(), st)
    }
}

/// Materializes a state as a split snapshot over a shared core, with the
/// satellite count passed explicitly so callers without a [`NetworkNodes`]
/// (a decoded wire package) can materialize too. See
/// [`SeriesBuilder::materialize`] for the edge-id order contract.
pub(crate) fn materialize_split(
    core: &Arc<StaticCore>,
    num_sats: usize,
    st: &SlotState,
) -> TopologySnapshot {
    let n = core.kinds.len();
    let mut counts = vec![0u32; n];
    for (u, list) in st.user_lists.iter().enumerate() {
        counts[num_sats + u] += list.len() as u32;
        for &s in list {
            counts[s as usize] += 1;
        }
    }
    let mut dyn_offsets = vec![0u32; n + 1];
    for i in 0..n {
        dyn_offsets[i + 1] = dyn_offsets[i] + counts[i];
    }
    let mut cursor: Vec<u32> = dyn_offsets[..n].to_vec();
    let mut dyn_peers = vec![NodeId(0); dyn_offsets[n] as usize];
    for (u, list) in st.user_lists.iter().enumerate() {
        let unode = (num_sats + u) as u32;
        for &s in list {
            dyn_peers[cursor[unode as usize] as usize] = NodeId(s);
            cursor[unode as usize] += 1;
            dyn_peers[cursor[s as usize] as usize] = NodeId(unode);
            cursor[s as usize] += 1;
        }
    }
    TopologySnapshot::from_split(
        SlotIndex(st.slot),
        Arc::clone(core),
        st.positions.clone(),
        st.sunlit.clone(),
        st.blocked.clone(),
        dyn_offsets,
        dyn_peers,
    )
}

/// Builds the static template: ISL pairs enumerated exactly as
/// [`crate::isl::plus_grid_edges`] does (per shell, +Grid neighbors with
/// `a < b`), minus the per-slot line-of-sight check.
fn build_core(nodes: &NetworkNodes, config: &TopologyConfig) -> StaticCore {
    let kinds = nodes.kinds();
    let mut pair_nodes: Vec<(NodeId, NodeId)> = Vec::new();
    for &(base, ref grid) in nodes.shell_grids() {
        for p in 0..grid.planes() {
            for k in 0..grid.sats_per_plane() {
                let a = grid.at(p as isize, k as isize);
                for b in grid.neighbors(p, k) {
                    if a >= b {
                        continue;
                    }
                    pair_nodes.push((NodeId((base + a) as u32), NodeId((base + b) as u32)));
                }
            }
        }
    }
    core_from_pairs(kinds, pair_nodes, config.isl_capacity_mbps, config.usl_capacity_mbps)
}

/// Derives the full static template from its irreducible parts: node
/// kinds, the undirected ISL pair list and the uniform capacities. The
/// directed adjacency (`tmpl_offsets`/`tmpl_dst`/`pair_dirs`) is a pure
/// function of `pair_nodes`, so the wire format ([`crate::shipping`])
/// ships only the parts and rebuilds the rest here.
pub(crate) fn core_from_pairs(
    kinds: Vec<crate::graph::NodeKind>,
    pair_nodes: Vec<(NodeId, NodeId)>,
    isl_capacity_mbps: f64,
    usl_capacity_mbps: f64,
) -> StaticCore {
    let n = kinds.len();
    // Directed entries in the dense push order — per pair `(a, b)` then
    // `(b, a)` — stably sorted by source, so each source's block keeps
    // the push order exactly as `from_edges`'s stable sort would.
    let mut dirs: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(pair_nodes.len() * 2);
    for (q, &(a, b)) in pair_nodes.iter().enumerate() {
        dirs.push((a, b, q as u32));
        dirs.push((b, a, q as u32));
    }
    dirs.sort_by_key(|d| d.0);
    let mut tmpl_offsets = vec![0u32; n + 1];
    for d in &dirs {
        tmpl_offsets[d.0.index() + 1] += 1;
    }
    for i in 0..n {
        tmpl_offsets[i + 1] += tmpl_offsets[i];
    }
    let tmpl_dst: Vec<NodeId> = dirs.iter().map(|d| d.1).collect();
    let mut pair_dirs = vec![[u32::MAX; 2]; pair_nodes.len()];
    for (i, d) in dirs.iter().enumerate() {
        let entry = &mut pair_dirs[d.2 as usize];
        if entry[0] == u32::MAX {
            entry[0] = i as u32;
        } else {
            entry[1] = i as u32;
        }
    }
    StaticCore {
        kinds,
        tmpl_offsets,
        tmpl_dst,
        pair_dirs,
        pair_nodes,
        isl_capacity_mbps,
        usl_capacity_mbps,
    }
}

/// Expresses `next` as a delta against `prev`.
pub(crate) fn delta_between(prev: &SlotState, next: &SlotState) -> SlotDelta {
    debug_assert_eq!(prev.slot + 1, next.slot);
    let mut isl_blocked_add = Vec::new();
    let mut isl_blocked_remove = Vec::new();
    // Both lists are sorted: a merge walk yields the symmetric difference.
    let (mut i, mut j) = (0usize, 0usize);
    while i < prev.blocked.len() || j < next.blocked.len() {
        match (prev.blocked.get(i), next.blocked.get(j)) {
            (Some(&p), Some(&q)) if p == q => {
                i += 1;
                j += 1;
            }
            (Some(&p), Some(&q)) if p < q => {
                isl_blocked_remove.push(p);
                i += 1;
            }
            (Some(_), Some(&q)) => {
                isl_blocked_add.push(q);
                j += 1;
            }
            (Some(&p), None) => {
                isl_blocked_remove.push(p);
                i += 1;
            }
            (None, Some(&q)) => {
                isl_blocked_add.push(q);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    let usl_changed = prev
        .user_lists
        .iter()
        .zip(&next.user_lists)
        .enumerate()
        .filter(|(_, (p, q))| p != q)
        .map(|(u, (_, q))| (u as u32, q.clone()))
        .collect();
    SlotDelta {
        slot: SlotIndex(next.slot),
        positions: next.positions.clone(),
        sunlit: next.sunlit.clone(),
        isl_blocked_add,
        isl_blocked_remove,
        usl_changed,
    }
}

/// Applies a delta to a state, producing the successor state.
pub(crate) fn apply_delta(prev: &SlotState, delta: &SlotDelta) -> SlotState {
    debug_assert_eq!(prev.slot + 1, delta.slot.0);
    let mut blocked: Vec<u32> = prev
        .blocked
        .iter()
        .copied()
        .filter(|b| delta.isl_blocked_remove.binary_search(b).is_err())
        .collect();
    blocked.extend_from_slice(&delta.isl_blocked_add);
    blocked.sort_unstable();
    let mut user_lists = prev.user_lists.clone();
    for (u, list) in &delta.usl_changed {
        user_lists[*u as usize] = list.clone();
    }
    SlotState {
        slot: delta.slot.0,
        positions: delta.positions.clone(),
        sunlit: delta.sunlit.clone(),
        blocked,
        user_lists,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::{FailureModel, GilbertElliottModel, LinkFailureModel, NodeOutageModel};
    use crate::graph::LinkType;
    use proptest::prelude::*;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;

    fn two_shell_nodes() -> NetworkNodes {
        let shells = [
            WalkerConstellation::delta(4, 8, 1, 550e3, 53f64.to_radians()),
            WalkerConstellation::delta(3, 6, 0, 570e3, 70f64.to_radians()),
        ];
        let mut nodes = NetworkNodes::from_shells(&shells);
        nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        nodes.add_ground_site(Geodetic::from_degrees(-33.9, 151.2, 0.0));
        for eo in sb_orbit::eo::synthetic_fleet(2) {
            nodes.add_space_user(eo);
        }
        nodes
    }

    #[test]
    fn core_template_covers_all_plus_grid_pairs() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let builder = SeriesBuilder::new(&nodes, &cfg);
        let core = builder.core();
        // +Grid: 2 undirected links per satellite in a regular shell.
        assert_eq!(core.num_pairs(), 2 * 32 + 2 * 18);
        // Every pair is within one shell.
        for &(a, b) in &core.pair_nodes {
            assert!(a < b);
            assert_eq!(a.index() < 32, b.index() < 32, "cross-shell pair");
        }
    }

    #[test]
    fn compiled_series_matches_full_rebuild_bitwise() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let compiled = SeriesBuilder::new(&nodes, &cfg).compile(5, 120.0);
        assert_eq!(compiled.deltas().len(), 4);
        let full = TopologySeries::build_full(&nodes, &cfg, 5, 120.0);
        assert_eq!(compiled.series(), &full);
    }

    #[test]
    fn deltas_are_smaller_than_dense_snapshots() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let compiled = SeriesBuilder::new(&nodes, &cfg).compile(5, 120.0);
        let full = TopologySeries::build_full(&nodes, &cfg, 5, 120.0);
        for (delta, snap) in compiled.deltas().iter().zip(&full.snapshots()[1..]) {
            assert!(
                delta.heap_bytes() < snap.marginal_heap_bytes(),
                "delta {} B vs dense {} B",
                delta.heap_bytes(),
                snap.marginal_heap_bytes()
            );
        }
    }

    #[test]
    fn split_snapshots_report_isl_and_usl_edges() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let series = SeriesBuilder::new(&nodes, &cfg).compile(1, 120.0).into_series();
        let snap = series.snapshot(SlotIndex(0));
        assert!(snap.is_split());
        let isls = snap.edges().filter(|e| e.link_type == LinkType::Isl).count();
        let usls = snap.edges().filter(|e| e.link_type == LinkType::Usl).count();
        // Present ISLs are the directed template minus line-of-sight
        // blocked entries; USLs come in src/dst pairs.
        assert!(isls > 0 && isls <= 2 * (2 * 32 + 2 * 18));
        assert!(usls > 0 && usls % 2 == 0);
        assert_eq!(isls + usls, snap.num_edges());
    }

    #[test]
    fn delta_build_matches_full_rebuild_under_failures_and_threads() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let models = [
            FailureModel::None,
            FailureModel::IndependentLinks(LinkFailureModel::new(0.05, 7)),
            FailureModel::NodeOutages(NodeOutageModel::new(0.03, 1, 3, 11)),
            FailureModel::GilbertElliott(GilbertElliottModel::new(0.05, 0.3, 13)),
        ];
        for model in &models {
            let full = TopologySeries::build_full(&nodes, &cfg, 4, 120.0).with_failure_model(model);
            for threads in [1usize, 2, 4] {
                let delta = TopologySeries::build_par(&nodes, &cfg, 4, 120.0, threads)
                    .with_failure_model(model);
                assert_eq!(delta, full, "threads={threads}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_delta_series_bit_identical_to_full_rebuild(
            planes1 in 2usize..4,
            spp1 in 2usize..5,
            second_shell in proptest::option::of((2usize..4, 2usize..5)),
            num_slots in 1usize..5,
            model_kind in 0u8..4,
            seed in 0u64..1_000,
        ) {
            let mut shells = vec![WalkerConstellation::delta(
                planes1, spp1, 1 % planes1, 550e3, 53f64.to_radians(),
            )];
            if let Some((planes2, spp2)) = second_shell {
                shells.push(WalkerConstellation::delta(
                    planes2, spp2, 0, 600e3, 70f64.to_radians(),
                ));
            }
            let mut nodes = NetworkNodes::from_shells(&shells);
            nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
            nodes.add_ground_site(Geodetic::from_degrees(48.8, 2.3, 0.0));
            for eo in sb_orbit::eo::synthetic_fleet(2) {
                nodes.add_space_user(eo);
            }
            let cfg = TopologyConfig::default();
            let model = match model_kind {
                0 => FailureModel::None,
                1 => FailureModel::IndependentLinks(LinkFailureModel::new(0.05, seed)),
                2 => FailureModel::NodeOutages(NodeOutageModel::new(0.03, 1, 3, seed)),
                _ => FailureModel::GilbertElliott(GilbertElliottModel::new(0.05, 0.3, seed)),
            };
            let full = TopologySeries::build_full(&nodes, &cfg, num_slots, 120.0)
                .with_failure_model(&model);
            for threads in [1usize, 2, 4] {
                let delta = TopologySeries::build_par(&nodes, &cfg, num_slots, 120.0, threads)
                    .with_failure_model(&model);
                prop_assert_eq!(&delta, &full, "threads={}", threads);
            }
        }
    }
}
