//! Building the time-slotted snapshot series.
//!
//! [`NetworkNodes`] fixes the node table (broadband satellites — possibly
//! across several Walker shells — ground users, space users) with stable
//! [`NodeId`]s; [`TopologySeries::build`] then produces one
//! [`TopologySnapshot`] per time slot.
//!
//! Two construction paths exist and are bit-identical:
//!
//! * the default **delta-compiled** path ([`crate::delta::SeriesBuilder`]):
//!   the static +Grid ISL template is built once and shared across slots
//!   behind an `Arc`, and each slot stores only its dynamic data;
//! * the **full-rebuild** reference path ([`TopologySeries::build_full`]),
//!   which assembles a dense edge list per slot. Setting the environment
//!   variable `SB_FULL_REBUILD=1` forces every build through this path
//!   (used by CI to byte-diff sweep outputs against the delta compiler).

use crate::graph::{NodeId, NodeKind, TopologySnapshot};
use crate::ground;
use crate::isl::{self, GridIndex};
use crate::usl;
use crate::SlotIndex;
use sb_geo::coords::{Eci, Geodetic};
use sb_geo::{visibility, Epoch};
use sb_orbit::{Constellation, Satellite, SatelliteKind};
use serde::{Deserialize, Serialize};

/// Tunable parameters of topology construction.
///
/// Defaults follow the paper's evaluation: ISL capacity 20 Gbps, USL
/// capacity 4 Gbps, a 25° ground elevation mask, and up to 4 simultaneous
/// links per user terminal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// ISL bandwidth capacity, Mbps (paper: 20 Gbps).
    pub isl_capacity_mbps: f64,
    /// USL bandwidth capacity, Mbps (paper: 4 Gbps).
    pub usl_capacity_mbps: f64,
    /// Minimum elevation for ground-user visibility, radians.
    pub min_elevation_rad: f64,
    /// Earth-grazing margin for space-user line-of-sight tests, meters.
    pub grazing_margin_m: f64,
    /// Earth-grazing margin for ISL line-of-sight tests, meters. Defaults
    /// to zero: +Grid ISLs are engineered to stay above the horizon and are
    /// blocked only by the solid Earth (sparse test shells would otherwise
    /// lose their intra-plane rings).
    pub isl_grazing_margin_m: f64,
    /// Maximum simultaneous USLs per ground user.
    pub max_usl_per_ground: usize,
    /// Maximum simultaneous links per space user.
    pub max_usl_per_eo: usize,
    /// Maximum space-user link range, meters.
    pub eo_link_range_m: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            isl_capacity_mbps: 20_000.0,
            usl_capacity_mbps: 4_000.0,
            min_elevation_rad: visibility::DEFAULT_MIN_ELEVATION_RAD,
            grazing_margin_m: visibility::DEFAULT_GRAZING_MARGIN_M,
            isl_grazing_margin_m: 0.0,
            max_usl_per_ground: 4,
            max_usl_per_eo: 4,
            eo_link_range_m: 1_500_000.0,
        }
    }
}

/// The canonical node table: who exists in the network.
///
/// Node ids are assigned contiguously — broadband satellites first (shells
/// concatenated in declaration order), then ground users, then space users
/// — and remain stable across every slot.
#[derive(Debug, Clone)]
pub struct NetworkNodes {
    broadband: Constellation,
    /// One +Grid index per Walker shell, with the constellation index of
    /// the shell's first satellite. ISLs are wired within shells only.
    grids: Vec<(usize, GridIndex)>,
    ground_sites: Vec<Geodetic>,
    space_users: Vec<Satellite>,
}

impl NetworkNodes {
    /// Creates a node table from a broadband constellation.
    ///
    /// The +Grid index is derived from the satellites' plane/slot
    /// annotations; constellations without full annotations get no ISLs
    /// (useful only for degenerate tests).
    pub fn new(broadband: Constellation) -> Self {
        let grids = GridIndex::from_satellites(broadband.satellites())
            .map(|g| vec![(0, g)])
            .unwrap_or_default();
        NetworkNodes { broadband, grids, ground_sites: Vec::new(), space_users: Vec::new() }
    }

    /// Convenience: node table for a single Walker shell.
    pub fn from_walker(shell: &sb_orbit::walker::WalkerConstellation) -> Self {
        Self::from_shells(std::slice::from_ref(shell))
    }

    /// Node table for a multi-shell constellation: shells are concatenated
    /// in order, each keeping its own +Grid (no cross-shell ISLs — distinct
    /// shells differ in altitude/inclination, so +Grid wiring is undefined
    /// between them; traffic crosses shells via ground/space users).
    pub fn from_shells(shells: &[sb_orbit::walker::WalkerConstellation]) -> Self {
        let mut broadband = Constellation::new();
        let mut grids = Vec::with_capacity(shells.len());
        for shell in shells {
            let c = Constellation::from_walker(shell);
            let base = broadband.len();
            if let Some(grid) = GridIndex::from_satellites(c.satellites()) {
                grids.push((base, grid));
            }
            broadband.extend_from(&c);
        }
        NetworkNodes { broadband, grids, ground_sites: Vec::new(), space_users: Vec::new() }
    }

    /// Adds a ground-user site, returning its [`NodeId`].
    pub fn add_ground_site(&mut self, site: Geodetic) -> NodeId {
        self.ground_sites.push(site);
        self.ground_node(self.ground_sites.len() - 1)
    }

    /// Adds ground-user sites sampled from a [`ground::GroundGrid`] by
    /// index, returning their [`NodeId`]s.
    pub fn add_sites_from_grid(
        &mut self,
        grid: &ground::GroundGrid,
        indices: impl IntoIterator<Item = usize>,
    ) -> Vec<NodeId> {
        indices.into_iter().map(|i| self.add_ground_site(grid.sites()[i].0)).collect()
    }

    /// Adds a space user (Earth-observation satellite), returning its
    /// [`NodeId`].
    ///
    /// # Panics
    ///
    /// Panics if the satellite is not [`SatelliteKind::EarthObservation`].
    pub fn add_space_user(&mut self, satellite: Satellite) -> NodeId {
        assert_eq!(
            satellite.kind,
            SatelliteKind::EarthObservation,
            "space users must be EO satellites"
        );
        self.space_users.push(satellite);
        self.space_user_node(self.space_users.len() - 1)
    }

    /// Number of broadband satellites (all shells).
    pub fn num_satellites(&self) -> usize {
        self.broadband.len()
    }

    /// Number of ground-user sites.
    pub fn num_ground_users(&self) -> usize {
        self.ground_sites.len()
    }

    /// Number of space users.
    pub fn num_space_users(&self) -> usize {
        self.space_users.len()
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.num_satellites() + self.num_ground_users() + self.num_space_users()
    }

    /// The broadband constellation (shells concatenated).
    pub fn broadband(&self) -> &Constellation {
        &self.broadband
    }

    /// The per-shell +Grid indices with each shell's base constellation
    /// index.
    pub fn shell_grids(&self) -> &[(usize, GridIndex)] {
        &self.grids
    }

    /// The ground sites in index order.
    pub fn ground_sites(&self) -> &[Geodetic] {
        &self.ground_sites
    }

    /// The space users in index order.
    pub fn space_users(&self) -> &[Satellite] {
        &self.space_users
    }

    /// [`NodeId`] of broadband satellite `i`.
    pub fn satellite_node(&self, i: usize) -> NodeId {
        debug_assert!(i < self.num_satellites());
        NodeId(i as u32)
    }

    /// [`NodeId`] of ground user `i`.
    pub fn ground_node(&self, i: usize) -> NodeId {
        debug_assert!(i < self.num_ground_users());
        NodeId((self.num_satellites() + i) as u32)
    }

    /// [`NodeId`] of space user `i`.
    pub fn space_user_node(&self, i: usize) -> NodeId {
        debug_assert!(i < self.num_space_users());
        NodeId((self.num_satellites() + self.num_ground_users() + i) as u32)
    }

    /// The kind of a node id.
    pub fn kind_of(&self, node: NodeId) -> NodeKind {
        let i = node.index();
        let s = self.num_satellites();
        let g = self.num_ground_users();
        if i < s {
            NodeKind::Satellite(i)
        } else if i < s + g {
            NodeKind::GroundUser(i - s)
        } else {
            NodeKind::SpaceUser(i - s - g)
        }
    }

    /// Builds the node-kind table in node-id order.
    pub(crate) fn kinds(&self) -> Vec<NodeKind> {
        (0..self.num_nodes()).map(|i| self.kind_of(NodeId(i as u32))).collect()
    }
}

/// `true` when `SB_FULL_REBUILD=1` forces the dense full-rebuild path.
pub(crate) fn full_rebuild_forced() -> bool {
    std::env::var_os("SB_FULL_REBUILD").is_some_and(|v| v == "1")
}

/// The full time-slotted topology: one snapshot per slot.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySeries {
    slot_duration_s: f64,
    snapshots: Vec<TopologySnapshot>,
}

impl TopologySeries {
    /// Builds snapshots for slots `0..num_slots`, each `slot_duration_s`
    /// seconds long. Orbits are sampled at each slot's start epoch.
    ///
    /// Uses the delta compiler with shared static structure (see
    /// [`crate::delta::SeriesBuilder`]); set `SB_FULL_REBUILD=1` to force
    /// the bit-identical dense reference path.
    pub fn build(
        nodes: &NetworkNodes,
        config: &TopologyConfig,
        num_slots: usize,
        slot_duration_s: f64,
    ) -> TopologySeries {
        if full_rebuild_forced() {
            return Self::build_full(nodes, config, num_slots, slot_duration_s);
        }
        crate::delta::SeriesBuilder::new(nodes, config)
            .compile(num_slots, slot_duration_s)
            .into_series()
    }

    /// [`TopologySeries::build`] with construction fanned across `threads`
    /// worker threads.
    ///
    /// The slot range is split into `threads` contiguous chunks and each
    /// worker delta-compiles its chunk independently (a fresh base state at
    /// the chunk start, deltas within). Every snapshot is a pure function
    /// of `(nodes, config, slot epoch)`, so the result is **bit-identical**
    /// to the serial build for every thread count — the same determinism
    /// discipline as the sweep runner and the speculative quote.
    ///
    /// `threads <= 1` takes the serial path with no thread machinery.
    pub fn build_par(
        nodes: &NetworkNodes,
        config: &TopologyConfig,
        num_slots: usize,
        slot_duration_s: f64,
        threads: usize,
    ) -> TopologySeries {
        if full_rebuild_forced() {
            return Self::build_full_par(nodes, config, num_slots, slot_duration_s, threads);
        }
        let threads = threads.clamp(1, num_slots.max(1));
        if threads == 1 {
            return Self::build(nodes, config, num_slots, slot_duration_s);
        }
        crate::delta::SeriesBuilder::new(nodes, config).compile_par(
            num_slots,
            slot_duration_s,
            threads,
        )
    }

    /// The dense full-rebuild reference: one independent
    /// [`build_snapshot`] per slot, no shared structure. Kept as the
    /// correctness oracle for the delta compiler.
    pub fn build_full(
        nodes: &NetworkNodes,
        config: &TopologyConfig,
        num_slots: usize,
        slot_duration_s: f64,
    ) -> TopologySeries {
        let snapshots = (0..num_slots)
            .map(|t| {
                build_snapshot(
                    nodes,
                    config,
                    SlotIndex(t as u32),
                    Epoch::from_seconds(t as f64 * slot_duration_s),
                )
            })
            .collect();
        TopologySeries { slot_duration_s, snapshots }
    }

    /// [`TopologySeries::build_full`] fanned across `threads` workers.
    /// Workers pull slots from a shared atomic counter and deposit each
    /// snapshot into its slot's write-once cell, so collection order never
    /// depends on completion order.
    pub fn build_full_par(
        nodes: &NetworkNodes,
        config: &TopologyConfig,
        num_slots: usize,
        slot_duration_s: f64,
        threads: usize,
    ) -> TopologySeries {
        let threads = threads.clamp(1, num_slots.max(1));
        if threads == 1 {
            return Self::build_full(nodes, config, num_slots, slot_duration_s);
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let cells: Vec<std::sync::OnceLock<TopologySnapshot>> =
            (0..num_slots).map(|_| std::sync::OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= num_slots {
                        break;
                    }
                    let snapshot = build_snapshot(
                        nodes,
                        config,
                        SlotIndex(t as u32),
                        Epoch::from_seconds(t as f64 * slot_duration_s),
                    );
                    assert!(cells[t].set(snapshot).is_ok(), "slot cell set twice");
                });
            }
        });
        let snapshots =
            cells.into_iter().map(|c| c.into_inner().expect("worker built every slot")).collect();
        TopologySeries { slot_duration_s, snapshots }
    }

    /// Assembles a series from pre-built snapshots — hand-built test
    /// topologies or replayed captures. Snapshots must be in slot order
    /// and describe the same node set.
    pub fn from_snapshots(
        snapshots: Vec<TopologySnapshot>,
        slot_duration_s: f64,
    ) -> TopologySeries {
        TopologySeries { slot_duration_s, snapshots }
    }

    /// Number of slots in the series.
    pub fn num_slots(&self) -> usize {
        self.snapshots.len()
    }

    /// Slot duration in seconds.
    pub fn slot_duration_s(&self) -> f64 {
        self.slot_duration_s
    }

    /// The snapshot for a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the built horizon.
    pub fn snapshot(&self, slot: SlotIndex) -> &TopologySnapshot {
        &self.snapshots[slot.index()]
    }

    /// All snapshots in slot order.
    pub fn snapshots(&self) -> &[TopologySnapshot] {
        &self.snapshots
    }

    /// Per-slot sunlit flags for broadband satellite `sat_idx` across the
    /// whole horizon (consumed by the energy model).
    pub fn sunlit_profile(&self, sat_node: NodeId) -> Vec<bool> {
        self.snapshots.iter().map(|s| s.is_sunlit(sat_node)).collect()
    }

    /// Estimated heap bytes of the whole series: per-slot marginal bytes
    /// plus each distinct shared static core counted once.
    pub fn heap_bytes(&self) -> usize {
        let marginal: usize = self.snapshots.iter().map(|s| s.marginal_heap_bytes()).sum();
        // All split snapshots of one series share one core.
        let shared = self.snapshots.iter().map(|s| s.shared_heap_bytes()).max().unwrap_or(0);
        marginal + shared
    }

    /// Returns the series with an ISL failure model applied to every
    /// snapshot (see [`crate::failures::LinkFailureModel`]).
    ///
    /// Takes `self` by value and moves every snapshot the model leaves
    /// untouched — slots where no drawn failure hits an existing ISL are
    /// *not* rebuilt or cloned, so applying a sparse overlay to a
    /// paper-scale series costs only the slots that actually change.
    pub fn with_failures(self, model: &crate::failures::LinkFailureModel) -> TopologySeries {
        TopologySeries {
            slot_duration_s: self.slot_duration_s,
            snapshots: self.snapshots.into_iter().map(|s| model.apply_owned(s)).collect(),
        }
    }

    /// Returns the series with any [`crate::failures::FailureModel`]
    /// applied to every snapshot. Unchanged slots are moved, not rebuilt
    /// (see [`TopologySeries::with_failures`]).
    pub fn with_failure_model(self, model: &crate::failures::FailureModel) -> TopologySeries {
        TopologySeries {
            slot_duration_s: self.slot_duration_s,
            snapshots: self.snapshots.into_iter().map(|s| model.apply_owned(s)).collect(),
        }
    }
}

/// Propagates every node to `epoch`: positions and sunlight flags in
/// node-id order (shared by the dense and delta-compiled builders so the
/// two paths can never drift).
pub(crate) fn node_states(nodes: &NetworkNodes, epoch: Epoch) -> (Vec<Eci>, Vec<bool>) {
    let sat_states = nodes.broadband.propagate(epoch);
    let mut positions: Vec<Eci> = Vec::with_capacity(nodes.num_nodes());
    let mut sunlit: Vec<bool> = Vec::with_capacity(nodes.num_nodes());
    positions.extend(sat_states.iter().map(|s| s.position));
    sunlit.extend(sat_states.iter().map(|s| s.sunlit));

    for site in nodes.ground_sites() {
        positions.push(site.to_ecef().to_eci(epoch));
        sunlit.push(true); // ground users draw no satellite battery power
    }
    for eo in nodes.space_users() {
        let p = eo.elements.position_at(epoch);
        positions.push(p);
        sunlit.push(!sb_geo::sun::in_umbra(p, epoch));
    }
    (positions, sunlit)
}

/// Builds the dense snapshot graph for one slot (the full-rebuild
/// reference path).
pub fn build_snapshot(
    nodes: &NetworkNodes,
    config: &TopologyConfig,
    slot: SlotIndex,
    epoch: Epoch,
) -> TopologySnapshot {
    let (positions, sunlit) = node_states(nodes, epoch);
    let sat_positions = &positions[..nodes.num_satellites()];

    let mut edges = Vec::new();

    // ISLs: +Grid within each shell.
    for &(base, ref grid) in nodes.shell_grids() {
        let count = grid.planes() * grid.sats_per_plane();
        edges.extend(isl::plus_grid_edges(
            grid,
            &sat_positions[base..base + count],
            |i| nodes.satellite_node(base + i),
            config.isl_capacity_mbps,
            config.isl_grazing_margin_m,
        ));
    }

    // Ground USLs.
    for (gi, _site) in nodes.ground_sites().iter().enumerate() {
        let user_node = nodes.ground_node(gi);
        let user_pos = positions[user_node.index()];
        let visible = usl::visible_sats_from_ground(
            user_pos,
            sat_positions,
            config.min_elevation_rad,
            config.max_usl_per_ground,
        );
        edges.extend(usl::usl_edges(
            user_node,
            user_pos,
            &visible,
            sat_positions,
            |i| nodes.satellite_node(i),
            config.usl_capacity_mbps,
        ));
    }

    // Space-user links (modelled as USLs per the paper's two link classes).
    for (ei, _eo) in nodes.space_users().iter().enumerate() {
        let user_node = nodes.space_user_node(ei);
        let user_pos = positions[user_node.index()];
        let visible = usl::visible_sats_from_space(
            user_pos,
            sat_positions,
            config.eo_link_range_m,
            config.grazing_margin_m,
            config.max_usl_per_eo,
        );
        edges.extend(usl::usl_edges(
            user_node,
            user_pos,
            &visible,
            sat_positions,
            |i| nodes.satellite_node(i),
            config.usl_capacity_mbps,
        ));
    }

    TopologySnapshot::from_edges(slot, nodes.kinds(), positions, sunlit, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::LinkFailureModel;
    use crate::graph::LinkType;
    use proptest::prelude::*;
    use sb_orbit::walker::WalkerConstellation;

    fn small_nodes() -> NetworkNodes {
        let shell = WalkerConstellation::delta(12, 8, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        nodes.add_ground_site(Geodetic::from_degrees(-33.9, 151.2, 0.0));
        for eo in sb_orbit::eo::synthetic_fleet(3) {
            nodes.add_space_user(eo);
        }
        nodes
    }

    #[test]
    fn node_numbering_is_contiguous() {
        let nodes = small_nodes();
        assert_eq!(nodes.num_nodes(), 96 + 2 + 3);
        assert_eq!(nodes.satellite_node(0), NodeId(0));
        assert_eq!(nodes.ground_node(0), NodeId(96));
        assert_eq!(nodes.space_user_node(0), NodeId(98));
        assert_eq!(nodes.kind_of(NodeId(0)), NodeKind::Satellite(0));
        assert_eq!(nodes.kind_of(NodeId(97)), NodeKind::GroundUser(1));
        assert_eq!(nodes.kind_of(NodeId(100)), NodeKind::SpaceUser(2));
    }

    #[test]
    fn multi_shell_nodes_concatenate() {
        let shells = [
            WalkerConstellation::delta(4, 6, 1, 550e3, 53f64.to_radians()),
            WalkerConstellation::delta(3, 5, 0, 570e3, 70f64.to_radians()),
        ];
        let nodes = NetworkNodes::from_shells(&shells);
        assert_eq!(nodes.num_satellites(), 24 + 15);
        assert_eq!(nodes.shell_grids().len(), 2);
        assert_eq!(nodes.shell_grids()[0].0, 0);
        assert_eq!(nodes.shell_grids()[1].0, 24);
        assert_eq!(nodes.shell_grids()[1].1.planes(), 3);
    }

    #[test]
    fn multi_shell_isls_stay_within_shells() {
        // Denser shells so intra-plane neighbors clear the Earth-grazing
        // line-of-sight check (sparse rings are mostly blocked).
        let shells = [
            WalkerConstellation::delta(6, 10, 1, 550e3, 53f64.to_radians()),
            WalkerConstellation::delta(5, 8, 0, 570e3, 70f64.to_radians()),
        ];
        let cfg = TopologyConfig::default();
        let nodes = NetworkNodes::from_shells(&shells);
        let snap = build_snapshot(&nodes, &cfg, SlotIndex(0), Epoch::from_seconds(0.0));
        let isls: Vec<_> = snap.edges().filter(|e| e.link_type == LinkType::Isl).collect();
        assert!(!isls.is_empty());
        for e in &isls {
            let same_shell = (e.src.index() < 60) == (e.dst.index() < 60);
            assert!(same_shell, "cross-shell ISL {:?}", (e.src, e.dst));
        }
        // The combined graph has exactly the union of the per-shell ISLs:
        // each shell wired independently, with shifted node ids.
        let per_shell: usize = shells
            .iter()
            .map(|shell| {
                let solo = NetworkNodes::from_walker(shell);
                build_snapshot(&solo, &cfg, SlotIndex(0), Epoch::from_seconds(0.0))
                    .edges()
                    .filter(|e| e.link_type == LinkType::Isl)
                    .count()
            })
            .sum();
        assert_eq!(isls.len(), per_shell);
    }

    #[test]
    fn snapshot_has_isls_and_usls() {
        let nodes = small_nodes();
        let snap = build_snapshot(
            &nodes,
            &TopologyConfig::default(),
            SlotIndex(0),
            Epoch::from_seconds(0.0),
        );
        let isls = snap.edges().filter(|e| e.link_type == LinkType::Isl).count();
        let usls = snap.edges().filter(|e| e.link_type == LinkType::Usl).count();
        assert_eq!(isls, 4 * 96, "+Grid should give 4 directed ISLs per sat");
        assert!(usls > 0, "users should see some satellites");
        assert!(usls % 2 == 0, "USLs come in directed pairs");
    }

    #[test]
    fn series_builds_and_changes_over_time() {
        let nodes = small_nodes();
        let series = TopologySeries::build(&nodes, &TopologyConfig::default(), 4, 300.0);
        assert_eq!(series.num_slots(), 4);
        assert_eq!(series.slot_duration_s(), 300.0);
        // Edge sets should differ across 5-minute slots (satellites move
        // ~1400 km per slot).
        let e0: Vec<_> = series.snapshot(SlotIndex(0)).edges().map(|e| (e.src, e.dst)).collect();
        let e3: Vec<_> = series.snapshot(SlotIndex(3)).edges().map(|e| (e.src, e.dst)).collect();
        assert_ne!(e0, e3, "topology should evolve");
    }

    #[test]
    fn usl_capacity_from_config() {
        let nodes = small_nodes();
        let cfg = TopologyConfig { usl_capacity_mbps: 1234.0, ..TopologyConfig::default() };
        let snap = build_snapshot(&nodes, &cfg, SlotIndex(0), Epoch::from_seconds(0.0));
        for e in snap.edges().filter(|e| e.link_type == LinkType::Usl) {
            assert_eq!(e.capacity_mbps, 1234.0);
        }
    }

    #[test]
    fn ground_users_always_sunlit() {
        let nodes = small_nodes();
        let snap = build_snapshot(
            &nodes,
            &TopologyConfig::default(),
            SlotIndex(0),
            Epoch::from_seconds(0.0),
        );
        assert!(snap.is_sunlit(nodes.ground_node(0)));
        assert!(snap.is_sunlit(nodes.ground_node(1)));
    }

    #[test]
    fn sunlit_profile_varies_over_orbit() {
        let shell = WalkerConstellation::delta(2, 4, 0, 550e3, 53f64.to_radians());
        let nodes = NetworkNodes::from_walker(&shell);
        // Sample a full orbit at 1-minute slots.
        let series = TopologySeries::build(&nodes, &TopologyConfig::default(), 96, 60.0);
        let profile = series.sunlit_profile(nodes.satellite_node(0));
        let lit = profile.iter().filter(|&&b| b).count();
        // At 53° inclination near equinox the satellite must see both
        // sunlight and umbra within one orbit.
        assert!(lit > 0 && lit < 96, "lit {lit}/96");
    }

    #[test]
    fn eo_sats_link_to_nearby_broadband() {
        let shell = WalkerConstellation::delta(22, 72, 17, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        let eo_node = nodes.add_space_user(sb_orbit::eo::synthetic_fleet(1).pop().unwrap());
        let snap = build_snapshot(
            &nodes,
            &TopologyConfig::default(),
            SlotIndex(0),
            Epoch::from_seconds(0.0),
        );
        // At paper density, an EO sat at ~500 km should see the shell.
        assert!(snap.out_degree(eo_node) > 0, "EO sat sees no broadband satellites");
    }

    #[test]
    #[should_panic(expected = "space users must be EO satellites")]
    fn rejects_broadband_as_space_user() {
        let shell = WalkerConstellation::delta(2, 2, 0, 550e3, 0.9);
        let mut nodes = NetworkNodes::from_walker(&shell);
        let sat = nodes.broadband().satellites()[0].clone();
        nodes.add_space_user(sat);
    }

    #[test]
    fn delta_build_matches_full_rebuild() {
        let nodes = small_nodes();
        let cfg = TopologyConfig::default();
        let full = TopologySeries::build_full(&nodes, &cfg, 6, 120.0);
        let delta = TopologySeries::build(&nodes, &cfg, 6, 120.0);
        assert!(delta.snapshots().iter().all(|s| s.is_split()));
        assert_eq!(delta, full);
    }

    #[test]
    fn build_par_matches_serial_build() {
        let nodes = small_nodes();
        let cfg = TopologyConfig::default();
        let serial = TopologySeries::build(&nodes, &cfg, 6, 120.0);
        let full = TopologySeries::build_full(&nodes, &cfg, 6, 120.0);
        for threads in [1, 2, 4, 16] {
            let par = TopologySeries::build_par(&nodes, &cfg, 6, 120.0, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(par, full, "threads={threads} vs full rebuild");
            let par_full = TopologySeries::build_full_par(&nodes, &cfg, 6, 120.0, threads);
            assert_eq!(par_full, full, "full par threads={threads}");
        }
    }

    #[test]
    fn build_par_empty_series() {
        let nodes = small_nodes();
        let par = TopologySeries::build_par(&nodes, &TopologyConfig::default(), 0, 60.0, 4);
        assert_eq!(par.num_slots(), 0);
    }

    #[test]
    fn series_heap_bytes_counts_shared_core_once() {
        let nodes = small_nodes();
        let cfg = TopologyConfig::default();
        let delta = TopologySeries::build(&nodes, &cfg, 4, 120.0);
        let full = TopologySeries::build_full(&nodes, &cfg, 4, 120.0);
        assert!(delta.heap_bytes() > 0);
        assert!(
            delta.heap_bytes() < full.heap_bytes(),
            "shared-structure series should be smaller: {} vs {}",
            delta.heap_bytes(),
            full.heap_bytes()
        );
    }

    #[test]
    fn failure_overlay_bit_identical_through_owned_path() {
        // Pins the by-value `with_failures` (move-unchanged-slots fast
        // path) to the per-snapshot reference overlay, on a shell sparse
        // enough that both the "slot untouched" and "slot rebuilt" paths
        // are exercised.
        let shell = WalkerConstellation::delta(4, 8, 0, 550e3, 53f64.to_radians());
        let nodes = NetworkNodes::from_walker(&shell);
        let original = TopologySeries::build(&nodes, &TopologyConfig::default(), 16, 300.0);
        let model = LinkFailureModel::new(0.01, 0xfa11_0005);
        let expected: Vec<TopologySnapshot> =
            original.snapshots().iter().map(|s| model.apply(s)).collect();
        let overlaid = original.clone().with_failures(&model);
        assert_eq!(overlaid.snapshots(), expected.as_slice());
        assert_eq!(overlaid.slot_duration_s(), original.slot_duration_s());
        let changed =
            overlaid.snapshots().iter().zip(original.snapshots()).filter(|(a, b)| a != b).count();
        assert!(changed > 0, "overlay should drop at least one ISL at p=0.01");
        assert!(changed < original.num_slots(), "some slots should survive untouched");
    }

    #[test]
    fn apply_owned_reuses_untouched_split_slots() {
        // Regression: the move-unchanged-slot fast path must hold on the
        // shared-structure representation — untouched split snapshots come
        // back split (moved, not rebuilt dense) and changed ones stay
        // split with the same shared core.
        let shell = WalkerConstellation::delta(4, 8, 0, 550e3, 53f64.to_radians());
        let nodes = NetworkNodes::from_walker(&shell);
        let original = TopologySeries::build(&nodes, &TopologyConfig::default(), 16, 300.0);
        assert!(original.snapshots().iter().all(|s| s.is_split()));
        let shared_before = original.snapshot(SlotIndex(0)).shared_heap_bytes();
        let model = LinkFailureModel::new(0.01, 0xfa11_0005);
        let overlaid = original.with_failures(&model);
        for s in overlaid.snapshots() {
            assert!(s.is_split(), "slot {:?} lost its split storage", s.slot());
            assert_eq!(s.shared_heap_bytes(), shared_before, "core must stay shared");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_build_par_bit_identical(
            planes in 2usize..5,
            sats_per_plane in 2usize..6,
            phasing in 0usize..4,
            num_slots in 1usize..4,
            threads in 1usize..5,
        ) {
            let shell = WalkerConstellation::delta(
                planes,
                sats_per_plane,
                phasing % planes,
                550e3,
                53f64.to_radians(),
            );
            let mut nodes = NetworkNodes::from_walker(&shell);
            nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
            for eo in sb_orbit::eo::synthetic_fleet(1) {
                nodes.add_space_user(eo);
            }
            let cfg = TopologyConfig::default();
            let serial = TopologySeries::build(&nodes, &cfg, num_slots, 60.0);
            let par = TopologySeries::build_par(&nodes, &cfg, num_slots, 60.0, threads);
            prop_assert_eq!(par, serial);
        }
    }
}
