//! Propagation-delay estimation.
//!
//! The whole point of an LSN backbone is latency: the paper's motivating
//! applications (tele-conferencing, live broadcast) are delay-sensitive,
//! and LEO paths beat terrestrial fiber on long routes because light
//! travels ~1.5× faster in vacuum than in glass. This module turns paths
//! through a snapshot into end-to-end propagation delays so reservations
//! can be assessed against application latency budgets.

use crate::graph::{EdgeId, TopologySnapshot};
use sb_geo::SPEED_OF_LIGHT;

/// Speed of light in optical fiber (refractive index ≈ 1.468), m/s — for
/// comparing a satellite path against a terrestrial great-circle route.
pub const FIBER_SPEED: f64 = SPEED_OF_LIGHT / 1.468;

/// One-way propagation delay over a single edge, seconds.
pub fn edge_delay_s(snapshot: &TopologySnapshot, edge: EdgeId) -> f64 {
    snapshot.edge(edge).length_m / SPEED_OF_LIGHT
}

/// One-way propagation delay along a path of edges, seconds.
///
/// Only free-space propagation is counted; per-hop processing/queueing is
/// deployment-specific and excluded (reservations eliminate queueing for
/// admitted traffic by construction).
pub fn path_delay_s(snapshot: &TopologySnapshot, edges: &[EdgeId]) -> f64 {
    edges.iter().map(|&e| edge_delay_s(snapshot, e)).sum()
}

/// Total path length in meters.
pub fn path_length_m(snapshot: &TopologySnapshot, edges: &[EdgeId]) -> f64 {
    edges.iter().map(|&e| snapshot.edge(e).length_m).sum()
}

/// Delay of a hypothetical terrestrial fiber route covering
/// `surface_distance_m` of great-circle distance, seconds. The classic
/// benchmark a LEO path must beat on long routes.
pub fn fiber_delay_s(surface_distance_m: f64) -> f64 {
    surface_distance_m / FIBER_SPEED
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, LinkType, NodeId, NodeKind};
    use crate::SlotIndex;
    use sb_geo::coords::Eci;
    use sb_geo::Vec3;

    fn snapshot_with_lengths(lengths: &[f64]) -> TopologySnapshot {
        let n = lengths.len() + 1;
        let kinds: Vec<NodeKind> = (0..n).map(NodeKind::Satellite).collect();
        let pos = vec![Eci(Vec3::ZERO); n];
        let edges = lengths
            .iter()
            .enumerate()
            .map(|(i, &length_m)| Edge {
                src: NodeId(i as u32),
                dst: NodeId(i as u32 + 1),
                link_type: LinkType::Isl,
                capacity_mbps: 1.0,
                length_m,
            })
            .collect();
        TopologySnapshot::from_edges(SlotIndex(0), kinds, pos, vec![true; n], edges)
    }

    #[test]
    fn single_edge_delay() {
        let g = snapshot_with_lengths(&[299_792_458.0]);
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert!((edge_delay_s(&g, e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_delay_sums_edges() {
        let g = snapshot_with_lengths(&[1.0e6, 2.0e6, 3.0e6]);
        let edges: Vec<EdgeId> =
            (0..3).map(|i| g.find_edge(NodeId(i), NodeId(i + 1)).unwrap()).collect();
        let expected = 6.0e6 / SPEED_OF_LIGHT;
        assert!((path_delay_s(&g, &edges) - expected).abs() < 1e-15);
        assert!((path_length_m(&g, &edges) - 6.0e6).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_instant() {
        let g = snapshot_with_lengths(&[1.0e6]);
        assert_eq!(path_delay_s(&g, &[]), 0.0);
    }

    #[test]
    fn vacuum_beats_fiber_on_long_routes() {
        // NY–Singapore great circle ≈ 15300 km; a LEO path is ~25% longer
        // but propagates ~47% faster, so it wins. (On short routes like
        // NY–London the up/down legs eat the advantage — also checked.)
        let long = 15.3e6;
        let leo_long = (long * 1.25 + 2.0 * 550e3) / SPEED_OF_LIGHT;
        assert!(leo_long < fiber_delay_s(long), "LEO should win NY–Singapore");

        let short = 1.0e6;
        let leo_short = (short * 1.25 + 2.0 * 550e3) / SPEED_OF_LIGHT;
        assert!(leo_short > fiber_delay_s(short), "fiber should win 1000 km routes");
    }

    #[test]
    fn fiber_speed_is_slower_than_light() {
        // Both bounds are on constants, so check them at compile time.
        const _: () = assert!(FIBER_SPEED < SPEED_OF_LIGHT);
        const _: () = assert!(FIBER_SPEED > 0.6 * SPEED_OF_LIGHT);
    }
}
