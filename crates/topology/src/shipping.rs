//! Canonical sb-wire shipping of compiled topology series.
//!
//! At fleet scale the expensive part of preparing a sweep cell is the
//! topology series build; the [`crate::delta`] compiler already expresses
//! a series as a shared [`StaticCore`] plus a base state and per-slot
//! [`SlotDelta`]s. This module gives that representation a canonical wire
//! form so a coordinator can **compile once and ship many**: a
//! [`SeriesPackage`] is compiled from nodes, encoded to checksummed,
//! version-tagged bytes, and materialized on the receiving side into a
//! [`TopologySeries`] bit-identical to a local
//! [`TopologySeries::build_par`] of the same nodes.
//!
//! Wire layout (everything little-endian, per [`sb_wire`]):
//!
//! ```text
//! u32  version tag (SERIES_WIRE_VERSION)
//! u64  FNV-1a checksum of every byte that follows
//! f64  slot duration, seconds
//! usize×3  node counts: satellites, ground users, space users
//! seq  undirected ISL pairs (u32 a, u32 b), a < b
//! f64×2    ISL and USL capacities, Mbps
//! state    base slot state (slot 0)
//! seq  one SlotDelta per subsequent slot
//! ```
//!
//! Only the irreducible parts travel: node kinds collapse to three
//! counts (node order is satellites, then ground users, then space
//! users, by construction of [`NetworkNodes`]), and the directed ISL
//! adjacency is rebuilt from the pair list on decode — the same pure
//! function the local builder uses, so a decoded core is structurally
//! identical to a locally built one.
//!
//! Decoders never panic: every length is bounded by the remaining input,
//! every index is validated against the decoded node counts, and
//! [`SeriesPackage::materialize`] re-checks the cross-slot invariants
//! (slot continuity, strictly-sorted blocked lists) that a bit-flipped
//! but checksum-colliding payload could violate, returning
//! [`WireError::Invalid`] instead of corrupting a snapshot.

use std::sync::Arc;

use crate::delta::{
    apply_delta, core_from_pairs, delta_between, materialize_split, SeriesBuilder, SlotDelta,
    SlotState,
};
use crate::graph::{NodeId, NodeKind, StaticCore};
use crate::series::{NetworkNodes, TopologyConfig, TopologySeries};
use crate::SlotIndex;
use sb_geo::coords::Eci;
use sb_geo::Vec3;
use sb_wire::{Reader, WireError, Writer};

/// Version tag leading every encoded series package.
pub const SERIES_WIRE_VERSION: u32 = 1;

/// Bytes of the version tag + checksum header preceding the body.
const HEADER_BYTES: usize = 4 + 8;

/// A compiled, shippable topology series: the static template, the base
/// slot state and the delta stream. Compile with
/// [`SeriesPackage::compile`], move as bytes via
/// [`encode`](SeriesPackage::encode) / [`decode`](SeriesPackage::decode),
/// and turn back into snapshots with
/// [`materialize`](SeriesPackage::materialize).
pub struct SeriesPackage {
    core: Arc<StaticCore>,
    base: SlotState,
    deltas: Vec<SlotDelta>,
    slot_duration_s: f64,
}

impl SeriesPackage {
    /// Compiles the package for `num_slots` slots. Unlike
    /// [`SeriesBuilder::compile`] this does **not** materialize any
    /// snapshot — the sender only needs states and deltas, so compiling
    /// a package is cheaper than building the series.
    ///
    /// # Panics
    ///
    /// Panics if `num_slots` is zero (an empty series cannot carry a
    /// base state).
    pub fn compile(
        nodes: &NetworkNodes,
        config: &TopologyConfig,
        num_slots: usize,
        slot_duration_s: f64,
    ) -> SeriesPackage {
        assert!(num_slots >= 1, "a series package needs at least one slot");
        let builder = SeriesBuilder::new(nodes, config);
        let base = builder.slot_state(0, slot_duration_s);
        let mut deltas = Vec::with_capacity(num_slots - 1);
        let mut prev = base.clone();
        for t in 1..num_slots {
            let fresh = builder.slot_state(t as u32, slot_duration_s);
            let delta = delta_between(&prev, &fresh);
            prev = apply_delta(&prev, &delta);
            deltas.push(delta);
        }
        SeriesPackage { core: Arc::clone(builder.core()), base, deltas, slot_duration_s }
    }

    /// Number of slots the package materializes to.
    pub fn num_slots(&self) -> usize {
        1 + self.deltas.len()
    }

    /// Slot duration in seconds.
    pub fn slot_duration_s(&self) -> f64 {
        self.slot_duration_s
    }

    /// Materializes the full series: base state first, then each delta
    /// applied in order, every slot rendered as a split snapshot over the
    /// shared decoded core — byte-for-byte what the sender's own
    /// [`TopologySeries::build_par`] produces.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Invalid`] when the delta stream violates a
    /// cross-slot invariant (non-contiguous slots, a blocked-list
    /// add/remove that leaves duplicates) — possible only for corrupt or
    /// hand-built packages, never for [`SeriesPackage::compile`] output.
    pub fn materialize(&self) -> Result<TopologySeries, WireError> {
        let num_sats = self.core.kinds.iter().filter(|k| k.is_satellite()).count();
        if self.base.slot != 0 {
            return Err(invalid(format!("series base state is slot {}, not 0", self.base.slot)));
        }
        let mut snapshots = Vec::with_capacity(self.num_slots());
        let mut state = self.base.clone();
        snapshots.push(materialize_split(&self.core, num_sats, &state));
        for delta in &self.deltas {
            if delta.slot.0 != state.slot + 1 {
                return Err(invalid(format!(
                    "delta for slot {} follows slot {}",
                    delta.slot.0, state.slot
                )));
            }
            state = apply_delta(&state, delta);
            check_strictly_sorted(&state.blocked, "applied blocked list")?;
            snapshots.push(materialize_split(&self.core, num_sats, &state));
        }
        Ok(TopologySeries::from_snapshots(snapshots, self.slot_duration_s))
    }

    /// Encodes the package to its canonical checksummed wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.f64(self.slot_duration_s);
        let (num_sats, num_ground, num_space) = kind_counts(&self.core.kinds);
        body.usize(num_sats);
        body.usize(num_ground);
        body.usize(num_space);
        body.seq(&self.core.pair_nodes, |w, &(a, b)| {
            w.u32(a.0);
            w.u32(b.0);
        });
        body.f64(self.core.isl_capacity_mbps);
        body.f64(self.core.usl_capacity_mbps);
        encode_state(&self.base, &mut body);
        body.seq(&self.deltas, encode_delta);
        let body = body.into_bytes();
        let mut w = Writer::new();
        w.u32(SERIES_WIRE_VERSION);
        w.u64(sb_wire::checksum(&body));
        w.raw(&body);
        w.into_bytes()
    }

    /// Decodes a package from its wire form, validating the version tag,
    /// the checksum and every structural invariant a later
    /// [`materialize`](SeriesPackage::materialize) relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any truncated, corrupt or
    /// wrong-version input; never panics.
    pub fn decode(bytes: &[u8]) -> Result<SeriesPackage, WireError> {
        let mut r = Reader::new(bytes);
        let version = r.u32()?;
        if version != SERIES_WIRE_VERSION {
            return Err(invalid(format!(
                "series package version {version}, expected {SERIES_WIRE_VERSION}"
            )));
        }
        let sum = r.u64()?;
        let body = &bytes[HEADER_BYTES..];
        if sb_wire::checksum(body) != sum {
            return Err(invalid("series package checksum mismatch".to_owned()));
        }

        let slot_duration_s = r.f64()?;
        let num_sats = r.usize()?;
        let num_ground = r.usize()?;
        let num_space = r.usize()?;
        let n = num_sats
            .checked_add(num_ground)
            .and_then(|v| v.checked_add(num_space))
            .ok_or_else(|| invalid("node counts overflow".to_owned()))?;
        // Every node carries at least a 1-byte sunlit flag in the base
        // state, so a count beyond the remaining input is garbage — bound
        // it before allocating the kind table.
        if n > r.remaining() {
            return Err(WireError::Truncated { needed: n, remaining: r.remaining() });
        }
        let mut kinds = Vec::with_capacity(n);
        kinds.extend((0..num_sats).map(NodeKind::Satellite));
        kinds.extend((0..num_ground).map(NodeKind::GroundUser));
        kinds.extend((0..num_space).map(NodeKind::SpaceUser));

        let num_pairs = r.seq_len(8)?;
        let mut pair_nodes = Vec::with_capacity(num_pairs);
        for _ in 0..num_pairs {
            let a = r.u32()?;
            let b = r.u32()?;
            if a >= b || b as usize >= num_sats {
                return Err(invalid(format!("bad ISL pair ({a}, {b}) for {num_sats} satellites")));
            }
            pair_nodes.push((NodeId(a), NodeId(b)));
        }
        let dirs_len = pair_nodes.len() * 2;
        let isl_capacity_mbps = r.f64()?;
        let usl_capacity_mbps = r.f64()?;
        let core =
            Arc::new(core_from_pairs(kinds, pair_nodes, isl_capacity_mbps, usl_capacity_mbps));

        let num_users = num_ground + num_space;
        let base = decode_state(&mut r, n, num_sats, num_users, dirs_len)?;
        let num_deltas = r.seq_len(1)?;
        let mut deltas = Vec::with_capacity(num_deltas.min(r.remaining()));
        for _ in 0..num_deltas {
            deltas.push(decode_delta(&mut r, n, num_sats, num_users, dirs_len)?);
        }
        if !r.is_exhausted() {
            return Err(invalid(format!("{} trailing bytes after series package", r.remaining())));
        }
        Ok(SeriesPackage { core, base, deltas, slot_duration_s })
    }
}

fn invalid(detail: String) -> WireError {
    WireError::Invalid { detail }
}

fn kind_counts(kinds: &[NodeKind]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for k in kinds {
        match k {
            NodeKind::Satellite(_) => counts.0 += 1,
            NodeKind::GroundUser(_) => counts.1 += 1,
            NodeKind::SpaceUser(_) => counts.2 += 1,
        }
    }
    counts
}

fn encode_eci(w: &mut Writer, p: &Eci) {
    w.f64(p.0.x);
    w.f64(p.0.y);
    w.f64(p.0.z);
}

fn decode_eci(r: &mut Reader<'_>) -> Result<Eci, WireError> {
    let x = r.f64()?;
    let y = r.f64()?;
    let z = r.f64()?;
    Ok(Eci(Vec3::new(x, y, z)))
}

fn encode_state(st: &SlotState, w: &mut Writer) {
    w.u32(st.slot);
    w.seq(&st.positions, encode_eci);
    w.seq(&st.sunlit, |w, &s| w.bool(s));
    w.seq(&st.blocked, |w, &b| w.u32(b));
    w.seq(&st.user_lists, |w, list| w.seq(list, |w, &s| w.u32(s)));
}

fn decode_positions(r: &mut Reader<'_>, n: usize) -> Result<Vec<Eci>, WireError> {
    let len = r.seq_len(24)?;
    if len != n {
        return Err(invalid(format!("{len} positions for {n} nodes")));
    }
    (0..n).map(|_| decode_eci(r)).collect()
}

fn decode_sunlit(r: &mut Reader<'_>, n: usize) -> Result<Vec<bool>, WireError> {
    let len = r.seq_len(1)?;
    if len != n {
        return Err(invalid(format!("{len} sunlit flags for {n} nodes")));
    }
    (0..n).map(|_| r.bool()).collect()
}

/// Decodes a strictly-increasing directed-template index list.
fn decode_dir_list(r: &mut Reader<'_>, dirs_len: usize, what: &str) -> Result<Vec<u32>, WireError> {
    let len = r.seq_len(4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let v = r.u32()?;
        if v as usize >= dirs_len {
            return Err(invalid(format!("{what} entry {v} out of range ({dirs_len} dirs)")));
        }
        if out.last().is_some_and(|&last| last >= v) {
            return Err(invalid(format!("{what} not strictly sorted at {v}")));
        }
        out.push(v);
    }
    Ok(out)
}

/// Decodes one user's visible-satellite list (order matters, no sort).
fn decode_sat_list(r: &mut Reader<'_>, num_sats: usize) -> Result<Vec<u32>, WireError> {
    let len = r.seq_len(4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let s = r.u32()?;
        if s as usize >= num_sats {
            return Err(invalid(format!("visible satellite {s} out of range ({num_sats})")));
        }
        out.push(s);
    }
    Ok(out)
}

fn decode_state(
    r: &mut Reader<'_>,
    n: usize,
    num_sats: usize,
    num_users: usize,
    dirs_len: usize,
) -> Result<SlotState, WireError> {
    let slot = r.u32()?;
    let positions = decode_positions(r, n)?;
    let sunlit = decode_sunlit(r, n)?;
    let blocked = decode_dir_list(r, dirs_len, "base blocked list")?;
    let len = r.seq_len(8)?;
    if len != num_users {
        return Err(invalid(format!("{len} user lists for {num_users} users")));
    }
    let user_lists =
        (0..num_users).map(|_| decode_sat_list(r, num_sats)).collect::<Result<_, _>>()?;
    Ok(SlotState { slot, positions, sunlit, blocked, user_lists })
}

fn encode_delta(w: &mut Writer, d: &SlotDelta) {
    w.u32(d.slot.0);
    w.seq(&d.positions, encode_eci);
    w.seq(&d.sunlit, |w, &s| w.bool(s));
    w.seq(&d.isl_blocked_add, |w, &b| w.u32(b));
    w.seq(&d.isl_blocked_remove, |w, &b| w.u32(b));
    w.seq(&d.usl_changed, |w, (u, list)| {
        w.u32(*u);
        w.seq(list, |w, &s| w.u32(s));
    });
}

fn decode_delta(
    r: &mut Reader<'_>,
    n: usize,
    num_sats: usize,
    num_users: usize,
    dirs_len: usize,
) -> Result<SlotDelta, WireError> {
    let slot = SlotIndex(r.u32()?);
    let positions = decode_positions(r, n)?;
    let sunlit = decode_sunlit(r, n)?;
    let isl_blocked_add = decode_dir_list(r, dirs_len, "blocked adds")?;
    let isl_blocked_remove = decode_dir_list(r, dirs_len, "blocked removes")?;
    let len = r.seq_len(12)?;
    let mut usl_changed = Vec::with_capacity(len);
    for _ in 0..len {
        let u = r.u32()?;
        if u as usize >= num_users {
            return Err(invalid(format!("changed user {u} out of range ({num_users} users)")));
        }
        usl_changed.push((u, decode_sat_list(r, num_sats)?));
    }
    Ok(SlotDelta { slot, positions, sunlit, isl_blocked_add, isl_blocked_remove, usl_changed })
}

fn check_strictly_sorted(list: &[u32], what: &str) -> Result<(), WireError> {
    if list.windows(2).all(|w| w[0] < w[1]) {
        Ok(())
    } else {
        Err(invalid(format!("{what} has duplicates or disorder")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_geo::coords::Geodetic;
    use sb_orbit::walker::WalkerConstellation;

    fn two_shell_nodes() -> NetworkNodes {
        let shells = [
            WalkerConstellation::delta(4, 8, 1, 550e3, 53f64.to_radians()),
            WalkerConstellation::delta(3, 6, 0, 570e3, 70f64.to_radians()),
        ];
        let mut nodes = NetworkNodes::from_shells(&shells);
        nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
        nodes.add_ground_site(Geodetic::from_degrees(-33.9, 151.2, 0.0));
        for eo in sb_orbit::eo::synthetic_fleet(2) {
            nodes.add_space_user(eo);
        }
        nodes
    }

    #[test]
    fn materialized_package_matches_local_build_bitwise() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let package = SeriesPackage::compile(&nodes, &cfg, 5, 120.0);
        assert_eq!(package.num_slots(), 5);
        let local = TopologySeries::build_par(&nodes, &cfg, 5, 120.0, 2);
        assert_eq!(package.materialize().unwrap(), local);
    }

    #[test]
    fn encode_decode_is_identity() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let package = SeriesPackage::compile(&nodes, &cfg, 4, 120.0);
        let bytes = package.encode();
        let back = SeriesPackage::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes, "encode ∘ decode must be the identity");
        assert_eq!(back.materialize().unwrap(), package.materialize().unwrap());
    }

    #[test]
    fn single_slot_package_has_no_deltas() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let package = SeriesPackage::compile(&nodes, &cfg, 1, 60.0);
        assert_eq!(package.num_slots(), 1);
        let bytes = package.encode();
        let back = SeriesPackage::decode(&bytes).unwrap();
        assert_eq!(back.materialize().unwrap(), TopologySeries::build_full(&nodes, &cfg, 1, 60.0));
    }

    #[test]
    fn wire_bytes_beat_dense_snapshot_bytes() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let package = SeriesPackage::compile(&nodes, &cfg, 5, 120.0);
        let dense: usize = TopologySeries::build_full(&nodes, &cfg, 5, 120.0)
            .snapshots()
            .iter()
            .map(|s| s.marginal_heap_bytes())
            .sum();
        assert!(package.encode().len() < dense, "wire form should undercut the dense snapshots");
    }

    #[test]
    fn corrupt_checksum_and_version_are_refused() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let mut bytes = SeriesPackage::compile(&nodes, &cfg, 2, 120.0).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(SeriesPackage::decode(&bytes).is_err(), "payload flip must fail the checksum");
        bytes[last] ^= 0x10;
        bytes[0] ^= 0xff;
        assert!(SeriesPackage::decode(&bytes).is_err(), "wrong version tag must be refused");
    }

    #[test]
    fn truncations_never_panic_and_never_decode() {
        let nodes = two_shell_nodes();
        let cfg = TopologyConfig::default();
        let bytes = SeriesPackage::compile(&nodes, &cfg, 2, 120.0).encode();
        for cut in 0..bytes.len() {
            assert!(SeriesPackage::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
