//! Ground-user site grid.
//!
//! The paper divides the Earth's surface into triangles via a triangular
//! tiling, takes each triangle's centroid as a potential ground-user site,
//! and excludes areas unlikely to have users based on GDP distribution,
//! "leaving 1761 potential source/destination locations globally".
//!
//! We reproduce the construction with:
//!
//! * an **icosphere** tiling — a regular icosahedron subdivided `n` times
//!   gives `20·4ⁿ` near-equal spherical triangles (`n = 4` → 5120);
//! * a **synthetic GDP density**: a Gaussian mixture over an embedded
//!   gazetteer of the world's major metropolitan regions, weighted by a
//!   rough GDP share. The top-`k` centroids by density form the candidate
//!   site list (`k = 1761` at paper scale).
//!
//! The real GDP raster used by ICARUS is proprietary; DESIGN.md records the
//! substitution. What matters to the algorithms downstream is only that
//! demand concentrates in a few hot regions and oceans are empty — which
//! the mixture preserves.

use sb_geo::coords::Geodetic;
use sb_geo::Vec3;
use serde::{Deserialize, Serialize};

/// Number of candidate ground sites at paper scale.
pub const PAPER_SITE_COUNT: usize = 1761;

/// Icosphere subdivision level at paper scale (20·4⁴ = 5120 triangles).
pub const PAPER_SUBDIVISIONS: u32 = 4;

/// Spatial spread (meters) of each gazetteer entry's economic footprint.
const CITY_SIGMA_M: f64 = 900_000.0;

/// Major metropolitan regions with rough relative GDP weights.
///
/// (latitude °, longitude °, weight). Weights are order-of-magnitude GDP
/// shares, not precise figures — they only shape the demand density.
const GAZETTEER: &[(f64, f64, f64)] = &[
    // North America
    (40.7, -74.0, 10.0), // New York
    (34.1, -118.2, 8.0), // Los Angeles
    (41.9, -87.6, 6.0),  // Chicago
    (37.8, -122.4, 7.0), // San Francisco Bay
    (29.8, -95.4, 5.0),  // Houston
    (32.8, -96.8, 5.0),  // Dallas
    (38.9, -77.0, 5.0),  // Washington DC
    (42.4, -71.1, 4.0),  // Boston
    (47.6, -122.3, 4.0), // Seattle
    (33.7, -84.4, 4.0),  // Atlanta
    (25.8, -80.2, 4.0),  // Miami
    (43.7, -79.4, 5.0),  // Toronto
    (45.5, -73.6, 3.0),  // Montreal
    (19.4, -99.1, 5.0),  // Mexico City
    // South America
    (-23.6, -46.6, 5.0), // São Paulo
    (-22.9, -43.2, 3.0), // Rio de Janeiro
    (-34.6, -58.4, 3.0), // Buenos Aires
    (-33.4, -70.7, 2.0), // Santiago
    (4.7, -74.1, 2.0),   // Bogotá
    (-12.0, -77.0, 2.0), // Lima
    // Europe
    (51.5, -0.1, 8.0), // London
    (48.9, 2.3, 7.0),  // Paris
    (52.5, 13.4, 4.0), // Berlin
    (50.1, 8.7, 4.0),  // Frankfurt
    (48.1, 11.6, 4.0), // Munich
    (52.4, 4.9, 4.0),  // Amsterdam
    (40.4, -3.7, 4.0), // Madrid
    (41.4, 2.2, 3.0),  // Barcelona
    (45.5, 9.2, 4.0),  // Milan
    (41.9, 12.5, 3.0), // Rome
    (59.3, 18.1, 2.5), // Stockholm
    (55.7, 12.6, 2.5), // Copenhagen
    (48.2, 16.4, 2.5), // Vienna
    (47.4, 8.5, 3.0),  // Zurich
    (52.2, 21.0, 2.5), // Warsaw
    (55.8, 37.6, 5.0), // Moscow
    (59.9, 30.3, 2.5), // St. Petersburg
    (41.0, 29.0, 4.0), // Istanbul
    (37.9, 23.7, 1.5), // Athens
    (38.7, -9.1, 1.5), // Lisbon
    (53.3, -6.3, 2.0), // Dublin
    // Middle East & Africa
    (25.2, 55.3, 4.0),  // Dubai
    (24.7, 46.7, 3.0),  // Riyadh
    (32.1, 34.8, 2.5),  // Tel Aviv
    (30.0, 31.2, 3.0),  // Cairo
    (6.5, 3.4, 2.5),    // Lagos
    (-26.2, 28.0, 2.5), // Johannesburg
    (-1.3, 36.8, 1.5),  // Nairobi
    (33.6, -7.6, 1.5),  // Casablanca
    // South & Central Asia
    (28.6, 77.2, 5.0), // Delhi
    (19.1, 72.9, 5.0), // Mumbai
    (12.9, 77.6, 4.0), // Bangalore
    (13.1, 80.3, 2.5), // Chennai
    (22.6, 88.4, 2.5), // Kolkata
    (24.9, 67.0, 2.0), // Karachi
    (23.8, 90.4, 2.0), // Dhaka
    // East Asia
    (35.7, 139.7, 10.0), // Tokyo
    (34.7, 135.5, 5.0),  // Osaka
    (37.6, 127.0, 6.0),  // Seoul
    (31.2, 121.5, 8.0),  // Shanghai
    (39.9, 116.4, 8.0),  // Beijing
    (22.5, 114.1, 5.0),  // Shenzhen
    (23.1, 113.3, 5.0),  // Guangzhou
    (30.6, 104.1, 3.0),  // Chengdu
    (22.3, 114.2, 5.0),  // Hong Kong
    (25.0, 121.6, 4.0),  // Taipei
    // Southeast Asia & Oceania
    (1.35, 103.8, 5.0),  // Singapore
    (13.8, 100.5, 3.0),  // Bangkok
    (-6.2, 106.8, 3.5),  // Jakarta
    (14.6, 121.0, 2.5),  // Manila
    (10.8, 106.7, 2.5),  // Ho Chi Minh City
    (3.1, 101.7, 2.5),   // Kuala Lumpur
    (-33.9, 151.2, 4.0), // Sydney
    (-37.8, 145.0, 3.5), // Melbourne
    (-27.5, 153.0, 2.0), // Brisbane
    (-36.8, 174.8, 1.5), // Auckland
];

/// Synthetic GDP density (arbitrary units) at a point: a Gaussian mixture
/// over the embedded gazetteer using great-circle distances.
///
/// # Example
///
/// ```
/// use sb_geo::coords::Geodetic;
/// use sb_topology::ground::gdp_weight;
/// let tokyo = Geodetic::from_degrees(35.7, 139.7, 0.0);
/// let south_pacific = Geodetic::from_degrees(-45.0, -140.0, 0.0);
/// assert!(gdp_weight(tokyo) > 100.0 * gdp_weight(south_pacific));
/// ```
pub fn gdp_weight(site: Geodetic) -> f64 {
    GAZETTEER
        .iter()
        .map(|&(lat, lon, w)| {
            let city = Geodetic::from_degrees(lat, lon, 0.0);
            let d = site.surface_distance_to(city);
            w * (-0.5 * (d / CITY_SIGMA_M).powi(2)).exp()
        })
        .sum()
}

/// Returns the centroids of a `subdivisions`-times subdivided icosahedron's
/// faces as geodetic sites (altitude 0): `20·4^subdivisions` triangles.
pub fn icosphere_face_centroids(subdivisions: u32) -> Vec<Geodetic> {
    let (vertices, faces) = icosphere(subdivisions);
    faces
        .iter()
        .map(|&[a, b, c]| {
            let centroid = ((vertices[a] + vertices[b] + vertices[c]) / 3.0).normalized();
            let g = sb_geo::coords::Ecef(centroid * sb_geo::EARTH_RADIUS_M).to_geodetic();
            Geodetic::new(g.latitude_rad, g.longitude_rad, 0.0)
        })
        .collect()
}

/// Builds a unit icosphere: vertices and triangular faces.
fn icosphere(subdivisions: u32) -> (Vec<Vec3>, Vec<[usize; 3]>) {
    // Golden-ratio icosahedron.
    let phi = (1.0 + 5f64.sqrt()) / 2.0;
    let mut vertices: Vec<Vec3> = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ]
    .iter()
    .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
    .collect();

    let mut faces: Vec<[usize; 3]> = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];

    for _ in 0..subdivisions {
        let mut midpoint_cache: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        let mut new_faces = Vec::with_capacity(faces.len() * 4);
        let mut midpoint = |a: usize, b: usize, vertices: &mut Vec<Vec3>| -> usize {
            let key = (a.min(b), a.max(b));
            *midpoint_cache.entry(key).or_insert_with(|| {
                let m = ((vertices[a] + vertices[b]) / 2.0).normalized();
                vertices.push(m);
                vertices.len() - 1
            })
        };
        for &[a, b, c] in &faces {
            let ab = midpoint(a, b, &mut vertices);
            let bc = midpoint(b, c, &mut vertices);
            let ca = midpoint(c, a, &mut vertices);
            new_faces.push([a, ab, ca]);
            new_faces.push([b, bc, ab]);
            new_faces.push([c, ca, bc]);
            new_faces.push([ab, bc, ca]);
        }
        faces = new_faces;
    }
    (vertices, faces)
}

/// A weighted list of candidate ground-user sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundGrid {
    sites: Vec<(Geodetic, f64)>,
}

impl GroundGrid {
    /// Generates a grid: subdivide, weight by GDP density, keep the top
    /// `keep` sites by weight (ties broken deterministically by index).
    pub fn generate(subdivisions: u32, keep: usize) -> GroundGrid {
        let mut weighted: Vec<(Geodetic, f64)> = icosphere_face_centroids(subdivisions)
            .into_iter()
            .map(|g| (g, gdp_weight(g)))
            .collect();
        // Stable sort by descending weight keeps index order on ties.
        weighted.sort_by(|a, b| b.1.total_cmp(&a.1));
        weighted.truncate(keep);
        GroundGrid { sites: weighted }
    }

    /// The paper-scale grid: 5120 triangles filtered to the top
    /// [`PAPER_SITE_COUNT`] sites.
    pub fn paper_scale() -> GroundGrid {
        Self::generate(PAPER_SUBDIVISIONS, PAPER_SITE_COUNT)
    }

    /// The sites with their weights, ordered by descending weight.
    pub fn sites(&self) -> &[(Geodetic, f64)] {
        &self.sites
    }

    /// Number of sites in the grid.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Samples a site index with probability proportional to its GDP
    /// weight, using a uniform draw `u ∈ [0, 1)` supplied by the caller
    /// (keeps this crate RNG-free).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn weighted_site_index(&self, u: f64) -> usize {
        assert!(!self.is_empty(), "cannot sample an empty grid");
        let total: f64 = self.sites.iter().map(|(_, w)| w).sum();
        let mut target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
        for (i, (_, w)) in self.sites.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        self.sites.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn icosphere_face_counts() {
        assert_eq!(icosphere_face_centroids(0).len(), 20);
        assert_eq!(icosphere_face_centroids(1).len(), 80);
        assert_eq!(icosphere_face_centroids(2).len(), 320);
    }

    #[test]
    fn icosphere_vertex_count() {
        // V = 10·4ⁿ + 2 for subdivided icosahedra.
        let (v1, _) = icosphere(1);
        assert_eq!(v1.len(), 42);
        let (v2, _) = icosphere(2);
        assert_eq!(v2.len(), 162);
    }

    #[test]
    fn centroids_on_surface() {
        for g in icosphere_face_centroids(2) {
            assert!(g.altitude_m.abs() < 1.0, "altitude {}", g.altitude_m);
        }
    }

    #[test]
    fn centroids_cover_both_hemispheres() {
        let cents = icosphere_face_centroids(3);
        let north = cents.iter().filter(|g| g.latitude_rad > 0.0).count();
        let south = cents.len() - north;
        let ratio = north as f64 / south as f64;
        assert!((0.8..1.25).contains(&ratio), "N/S ratio {ratio}");
    }

    #[test]
    fn paper_scale_site_count() {
        let grid = GroundGrid::paper_scale();
        assert_eq!(grid.len(), PAPER_SITE_COUNT);
    }

    #[test]
    fn sites_sorted_by_weight() {
        let grid = GroundGrid::generate(2, 100);
        for w in grid.sites().windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn hot_regions_beat_oceans() {
        // Every selected paper-scale site should have meaningfully more GDP
        // density than the middle of the South Pacific.
        let grid = GroundGrid::generate(3, 400);
        let ocean = gdp_weight(Geodetic::from_degrees(-45.0, -140.0, 0.0));
        for (_, w) in grid.sites() {
            assert!(*w > ocean);
        }
    }

    #[test]
    fn weighted_sampling_prefers_heavy_sites() {
        let grid = GroundGrid::generate(2, 50);
        // u=0 must select the heaviest site (index 0).
        assert_eq!(grid.weighted_site_index(0.0), 0);
        // u→1 selects one of the later (lighter) sites.
        assert!(grid.weighted_site_index(0.999_999) > 0);
    }

    #[test]
    fn generate_keep_larger_than_faces_keeps_all() {
        let grid = GroundGrid::generate(0, 10_000);
        assert_eq!(grid.len(), 20);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn sampling_empty_grid_panics() {
        let grid = GroundGrid { sites: Vec::new() };
        let _ = grid.weighted_site_index(0.5);
    }

    proptest! {
        #[test]
        fn prop_weighted_index_in_range(u in 0.0..1.0f64) {
            let grid = GroundGrid::generate(1, 30);
            let i = grid.weighted_site_index(u);
            prop_assert!(i < grid.len());
        }

        #[test]
        fn prop_gdp_weight_nonnegative(lat in -1.5..1.5f64, lon in -3.1..3.1f64) {
            let w = gdp_weight(Geodetic::new(lat, lon, 0.0));
            prop_assert!(w >= 0.0);
            prop_assert!(w.is_finite());
        }
    }
}
