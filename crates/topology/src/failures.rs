//! Deterministic failure injection.
//!
//! Real LSNs lose resources mid-flight: ISLs fail from pointing losses,
//! radiation upsets and hardware death, and whole satellites drop out when
//! an attitude-control or power subsystem safes the bus. The related work
//! the paper builds on (e.g. resilient routing in space-terrestrial
//! networks) treats link failure as a first-class concern, and any
//! reservation scheme must at least degrade gracefully when resources
//! vanish. This module provides three seeded, reproducible models:
//!
//! * [`LinkFailureModel`] — each unordered satellite pair fails
//!   *independently* per slot with a configured probability;
//! * [`NodeOutageModel`] — whole-satellite outages: every link of the
//!   satellite (ISLs *and* USLs) is down for a seeded duration;
//! * [`GilbertElliottModel`] — *correlated burst* link failures via a
//!   per-link two-state Gilbert–Elliott chain, so a failed ISL tends to
//!   stay failed for several slots.
//!
//! All draws come from seeded [`splitmix64`] chains, so identical seeds
//! give bit-identical failure patterns and both directions of a link
//! always agree. [`FailureModel`] wraps the three (plus "no failures")
//! behind one enum for configuration plumbing.

use crate::graph::{Edge, LinkType, TopologySnapshot};
use crate::{NodeKind, SlotIndex};
use serde::{Deserialize, Serialize};

/// Per-slot, per-link independent ISL failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFailureModel {
    /// Probability that a given ISL is down in a given slot, `[0, 1]`.
    pub isl_failure_prob: f64,
    /// Seed decoupling failure draws from everything else.
    pub seed: u64,
}

impl LinkFailureModel {
    /// A model with no failures (identity).
    pub fn none() -> Self {
        LinkFailureModel { isl_failure_prob: 0.0, seed: 0 }
    }

    /// Creates a failure model.
    ///
    /// # Panics
    ///
    /// Panics if the probability is NaN or outside `[0, 1]`.
    pub fn new(isl_failure_prob: f64, seed: u64) -> Self {
        assert!(!isl_failure_prob.is_nan(), "failure probability must not be NaN");
        assert!((0.0..=1.0).contains(&isl_failure_prob), "failure probability must be in [0,1]");
        LinkFailureModel { isl_failure_prob, seed }
    }

    /// Whether the ISL between nodes `a` and `b` is down at `slot`.
    /// Symmetric in `a`/`b` so both directions agree.
    pub fn is_down(&self, slot: SlotIndex, a: u32, b: u32) -> bool {
        if self.isl_failure_prob <= 0.0 {
            return false;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Each value gets its own full mixing round: a shifted-XOR pre-mix
        // (`slot<<40 ^ lo<<20 ^ hi`) collides fields once node ids exceed
        // 2^20, which paper-scale constellations with added user nodes can
        // approach in principle and which silently correlates draws.
        let h = mix3(self.seed, u64::from(slot.0), u64::from(lo), u64::from(hi));
        unit_f64(h) < self.isl_failure_prob
    }

    /// Returns a copy of `snapshot` with failed ISLs removed. USLs are
    /// never failed by this model (terminal outages are a user-side
    /// phenomenon, not a network one).
    ///
    /// Split (shared-structure) snapshots are filtered structurally —
    /// failed pairs join the slot's removed-template list — which is
    /// order-preserving and therefore bit-identical to the dense rebuild.
    pub fn apply(&self, snapshot: &TopologySnapshot) -> TopologySnapshot {
        if self.isl_failure_prob <= 0.0 {
            return snapshot.clone();
        }
        let slot = snapshot.slot();
        if snapshot.is_split() {
            return snapshot
                .split_filtered(|a, b| self.is_down(slot, a.0, b.0), |_| false)
                .unwrap_or_else(|| snapshot.clone());
        }
        rebuild_without(snapshot, |e| {
            e.link_type == LinkType::Isl && self.is_down(slot, e.src.0, e.dst.0)
        })
    }

    /// [`LinkFailureModel::apply`] on an owned snapshot: when no drawn
    /// failure hits an existing ISL the snapshot is returned unchanged
    /// (moved), skipping the rebuild entirely. Bit-identical to `apply`.
    pub fn apply_owned(&self, snapshot: TopologySnapshot) -> TopologySnapshot {
        if self.isl_failure_prob <= 0.0 {
            return snapshot;
        }
        let slot = snapshot.slot();
        if snapshot.is_split() {
            return match snapshot.split_filtered(|a, b| self.is_down(slot, a.0, b.0), |_| false) {
                Some(out) => out,
                None => snapshot,
            };
        }
        rebuild_owned_without(snapshot, |e| {
            e.link_type == LinkType::Isl && self.is_down(slot, e.src.0, e.dst.0)
        })
    }
}

/// Whole-satellite outage model: with probability `outage_prob` a new
/// outage *starts* at a given satellite in a given slot and lasts a seeded
/// number of slots in `[min_duration_slots, max_duration_slots]`. While a
/// satellite is out, **all** of its links — ISLs and USLs — are down.
///
/// Overlapping outages simply merge: the satellite is down whenever at
/// least one outage covers the slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutageModel {
    /// Probability that an outage starts at a given satellite in a given
    /// slot, `[0, 1]`.
    pub outage_prob: f64,
    /// Minimum outage duration, slots (≥ 1).
    pub min_duration_slots: u32,
    /// Maximum outage duration, slots (≥ min).
    pub max_duration_slots: u32,
    /// Seed decoupling outage draws from everything else.
    pub seed: u64,
}

/// Domain-separation constants so the start and duration draws of
/// [`NodeOutageModel`] never reuse a hash.
const STREAM_OUTAGE_START: u64 = 0x6f75_7461_6765_0001;
const STREAM_OUTAGE_DURATION: u64 = 0x6f75_7461_6765_0002;

impl NodeOutageModel {
    /// Creates an outage model.
    ///
    /// # Panics
    ///
    /// Panics if the probability is NaN or outside `[0, 1]`, or if the
    /// duration bounds are zero or inverted.
    pub fn new(
        outage_prob: f64,
        min_duration_slots: u32,
        max_duration_slots: u32,
        seed: u64,
    ) -> Self {
        assert!(!outage_prob.is_nan(), "outage probability must not be NaN");
        assert!((0.0..=1.0).contains(&outage_prob), "outage probability must be in [0,1]");
        assert!(min_duration_slots >= 1, "outage duration must be at least one slot");
        assert!(min_duration_slots <= max_duration_slots, "inverted outage duration bounds");
        NodeOutageModel { outage_prob, min_duration_slots, max_duration_slots, seed }
    }

    fn outage_starts(&self, slot: u32, sat: u32) -> bool {
        let h = mix3(self.seed ^ STREAM_OUTAGE_START, u64::from(slot), u64::from(sat), 0);
        unit_f64(h) < self.outage_prob
    }

    fn outage_duration(&self, slot: u32, sat: u32) -> u32 {
        let span = u64::from(self.max_duration_slots - self.min_duration_slots + 1);
        let h = mix3(self.seed ^ STREAM_OUTAGE_DURATION, u64::from(slot), u64::from(sat), 0);
        self.min_duration_slots + (h % span) as u32
    }

    /// Whether satellite `sat` (constellation index) is out at `slot`:
    /// some outage started at `s ≤ slot` and still covers `slot`.
    pub fn is_down(&self, slot: SlotIndex, sat: u32) -> bool {
        if self.outage_prob <= 0.0 {
            return false;
        }
        let t = slot.0;
        let earliest = t.saturating_sub(self.max_duration_slots - 1);
        (earliest..=t).any(|s| self.outage_starts(s, sat) && s + self.outage_duration(s, sat) > t)
    }

    /// Returns a copy of `snapshot` with every link of every out satellite
    /// removed (ISLs and USLs alike — a safed bus serves no one).
    pub fn apply(&self, snapshot: &TopologySnapshot) -> TopologySnapshot {
        if self.outage_prob <= 0.0 {
            return snapshot.clone();
        }
        let slot = snapshot.slot();
        let node_down = |n: crate::NodeId| match snapshot.kind(n) {
            NodeKind::Satellite(i) => self.is_down(slot, i as u32),
            _ => false,
        };
        if snapshot.is_split() {
            return snapshot
                .split_filtered(|_, _| false, node_down)
                .unwrap_or_else(|| snapshot.clone());
        }
        rebuild_without(snapshot, |e| node_down(e.src) || node_down(e.dst))
    }

    /// [`NodeOutageModel::apply`] on an owned snapshot: slots with no
    /// active outage touching an edge are returned unchanged (moved).
    pub fn apply_owned(&self, snapshot: TopologySnapshot) -> TopologySnapshot {
        if self.outage_prob <= 0.0 {
            return snapshot;
        }
        let slot = snapshot.slot();
        let node_down = |snap: &TopologySnapshot, n: crate::NodeId| match snap.kind(n) {
            NodeKind::Satellite(i) => self.is_down(slot, i as u32),
            _ => false,
        };
        if snapshot.is_split() {
            return match snapshot.split_filtered(|_, _| false, |n| node_down(&snapshot, n)) {
                Some(out) => out,
                None => snapshot,
            };
        }
        if !snapshot.edges().any(|e| node_down(&snapshot, e.src) || node_down(&snapshot, e.dst)) {
            return snapshot;
        }
        rebuild_without(&snapshot, |e| node_down(&snapshot, e.src) || node_down(&snapshot, e.dst))
    }
}

/// Correlated burst ISL failures: each unordered satellite pair carries an
/// independent two-state Gilbert–Elliott chain over slots. In the *good*
/// state the link works; in the *bad* state it is down. Per slot the chain
/// moves good→bad with probability `p_fail` and bad→good with probability
/// `p_recover`, so failures arrive in bursts of mean length
/// `1 / p_recover` and the steady-state down fraction is
/// `p_fail / (p_fail + p_recover)`.
///
/// Chains start in the good state before slot 0 and are driven by seeded
/// per-slot hashes, so the walk is reproducible and symmetric in the node
/// pair. Querying slot `t` costs `O(t)` (the walk from slot 0); callers
/// that sweep slots in order should advance incrementally via [`Self::step`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliottModel {
    /// Good→bad transition probability per slot, `[0, 1]`.
    pub p_fail: f64,
    /// Bad→good transition probability per slot, `[0, 1]`.
    pub p_recover: f64,
    /// Seed decoupling the chains from everything else.
    pub seed: u64,
}

impl GilbertElliottModel {
    /// Creates a burst-failure model.
    ///
    /// # Panics
    ///
    /// Panics if either probability is NaN or outside `[0, 1]`.
    pub fn new(p_fail: f64, p_recover: f64, seed: u64) -> Self {
        assert!(!p_fail.is_nan() && !p_recover.is_nan(), "transition probability must not be NaN");
        assert!((0.0..=1.0).contains(&p_fail), "p_fail must be in [0,1]");
        assert!((0.0..=1.0).contains(&p_recover), "p_recover must be in [0,1]");
        GilbertElliottModel { p_fail, p_recover, seed }
    }

    /// Advances the chain of the `(a, b)` pair by one slot: given the state
    /// *after* slot `slot − 1` (`down`), returns the state at `slot`.
    /// Symmetric in `a`/`b`.
    pub fn step(&self, down: bool, slot: SlotIndex, a: u32, b: u32) -> bool {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let u = unit_f64(mix3(self.seed, u64::from(slot.0), u64::from(lo), u64::from(hi)));
        if down {
            u >= self.p_recover
        } else {
            u < self.p_fail
        }
    }

    /// Whether the ISL between `a` and `b` is down at `slot`: the chain
    /// walked from its good start through slots `0..=slot`.
    pub fn is_down(&self, slot: SlotIndex, a: u32, b: u32) -> bool {
        if self.p_fail <= 0.0 {
            return false;
        }
        let mut down = false;
        for s in 0..=slot.0 {
            down = self.step(down, SlotIndex(s), a, b);
        }
        down
    }

    /// Returns a copy of `snapshot` with burst-failed ISLs removed. USLs
    /// are never failed by this model.
    pub fn apply(&self, snapshot: &TopologySnapshot) -> TopologySnapshot {
        if self.p_fail <= 0.0 {
            return snapshot.clone();
        }
        let slot = snapshot.slot();
        if snapshot.is_split() {
            return snapshot
                .split_filtered(|a, b| self.is_down(slot, a.0, b.0), |_| false)
                .unwrap_or_else(|| snapshot.clone());
        }
        rebuild_without(snapshot, |e| {
            e.link_type == LinkType::Isl && self.is_down(slot, e.src.0, e.dst.0)
        })
    }

    /// [`GilbertElliottModel::apply`] on an owned snapshot: slots where no
    /// chain is in the bad state on an existing ISL are returned unchanged
    /// (moved).
    pub fn apply_owned(&self, snapshot: TopologySnapshot) -> TopologySnapshot {
        if self.p_fail <= 0.0 {
            return snapshot;
        }
        let slot = snapshot.slot();
        if snapshot.is_split() {
            return match snapshot.split_filtered(|a, b| self.is_down(slot, a.0, b.0), |_| false) {
                Some(out) => out,
                None => snapshot,
            };
        }
        rebuild_owned_without(snapshot, |e| {
            e.link_type == LinkType::Isl && self.is_down(slot, e.src.0, e.dst.0)
        })
    }
}

/// One of the failure models (or none), for configuration plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureModel {
    /// No failures ever.
    None,
    /// Independent per-slot, per-link ISL failures.
    IndependentLinks(LinkFailureModel),
    /// Whole-satellite outages with seeded durations.
    NodeOutages(NodeOutageModel),
    /// Correlated burst ISL failures (Gilbert–Elliott chains).
    GilbertElliott(GilbertElliottModel),
}

impl FailureModel {
    /// `true` when the model can never fail anything (so callers can skip
    /// per-slot scans entirely).
    pub fn is_trivial(&self) -> bool {
        match self {
            FailureModel::None => true,
            FailureModel::IndependentLinks(m) => m.isl_failure_prob <= 0.0,
            FailureModel::NodeOutages(m) => m.outage_prob <= 0.0,
            FailureModel::GilbertElliott(m) => m.p_fail <= 0.0,
        }
    }

    /// Whether the ISL between satellites `a` and `b` is down at `slot`
    /// due to a *link-level* failure (node outages are reported via
    /// [`Self::is_satellite_down`] instead). Symmetric in `a`/`b`.
    pub fn is_isl_down(&self, slot: SlotIndex, a: u32, b: u32) -> bool {
        match self {
            FailureModel::None | FailureModel::NodeOutages(_) => false,
            FailureModel::IndependentLinks(m) => m.is_down(slot, a, b),
            FailureModel::GilbertElliott(m) => m.is_down(slot, a, b),
        }
    }

    /// Whether satellite `sat` (constellation index) is entirely out at
    /// `slot` — all of its links, ISL and USL, are down.
    pub fn is_satellite_down(&self, slot: SlotIndex, sat: u32) -> bool {
        match self {
            FailureModel::NodeOutages(m) => m.is_down(slot, sat),
            _ => false,
        }
    }

    /// Returns a copy of `snapshot` with every failed edge removed. The
    /// link-level models never remove USLs; node outages remove every edge
    /// of the out satellite.
    pub fn apply(&self, snapshot: &TopologySnapshot) -> TopologySnapshot {
        match self {
            FailureModel::None => snapshot.clone(),
            FailureModel::IndependentLinks(m) => m.apply(snapshot),
            FailureModel::NodeOutages(m) => m.apply(snapshot),
            FailureModel::GilbertElliott(m) => m.apply(snapshot),
        }
    }

    /// [`FailureModel::apply`] on an owned snapshot: unchanged slots are
    /// moved instead of rebuilt. Bit-identical to `apply`.
    pub fn apply_owned(&self, snapshot: TopologySnapshot) -> TopologySnapshot {
        match self {
            FailureModel::None => snapshot,
            FailureModel::IndependentLinks(m) => m.apply_owned(snapshot),
            FailureModel::NodeOutages(m) => m.apply_owned(snapshot),
            FailureModel::GilbertElliott(m) => m.apply_owned(snapshot),
        }
    }
}

/// [`rebuild_without`] on an owned snapshot, returning it unchanged when
/// no edge matches `down`.
fn rebuild_owned_without(
    snapshot: TopologySnapshot,
    mut down: impl FnMut(&Edge) -> bool,
) -> TopologySnapshot {
    if !snapshot.edges().any(|e| down(&e)) {
        return snapshot;
    }
    rebuild_without(&snapshot, down)
}

/// Rebuilds a snapshot without the edges matched by `down`.
fn rebuild_without(
    snapshot: &TopologySnapshot,
    mut down: impl FnMut(&Edge) -> bool,
) -> TopologySnapshot {
    let edges: Vec<Edge> = snapshot.edges().filter(|e| !down(e)).collect();
    TopologySnapshot::from_edges(
        snapshot.slot(),
        snapshot.kinds().to_vec(),
        (0..snapshot.num_nodes()).map(|i| snapshot.position(crate::NodeId(i as u32))).collect(),
        (0..snapshot.num_nodes()).map(|i| snapshot.is_sunlit(crate::NodeId(i as u32))).collect(),
        edges,
    )
}

/// SplitMix64: a tiny, high-quality 64-bit mixer (public domain).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Feeds the seed and three values through sequential [`splitmix64`]
/// rounds, one round per value, so no field can collide with another.
fn mix3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
    splitmix64(h ^ c)
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{build_snapshot, NetworkNodes, TopologyConfig};
    use crate::SlotIndex;
    use sb_geo::Epoch;
    use sb_orbit::walker::WalkerConstellation;

    fn snapshot() -> TopologySnapshot {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        nodes.add_ground_site(sb_geo::coords::Geodetic::from_degrees(35.8, -78.6, 0.0));
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        build_snapshot(&nodes, &cfg, SlotIndex(0), Epoch::from_seconds(0.0))
    }

    #[test]
    fn zero_probability_is_identity() {
        let snap = snapshot();
        let out = LinkFailureModel::none().apply(&snap);
        assert_eq!(out, snap);
    }

    #[test]
    fn full_probability_kills_all_isls_but_no_usls() {
        let snap = snapshot();
        let out = LinkFailureModel::new(1.0, 7).apply(&snap);
        assert!(out.edges().all(|e| e.link_type == LinkType::Usl));
        let usls_before = snap.edges().filter(|e| e.link_type == LinkType::Usl).count();
        assert_eq!(out.num_edges(), usls_before);
    }

    #[test]
    fn failure_rate_roughly_matches_probability() {
        let snap = snapshot();
        let isls_before = snap.edges().filter(|e| e.link_type == LinkType::Isl).count();
        let out = LinkFailureModel::new(0.3, 42).apply(&snap);
        let isls_after = out.edges().filter(|e| e.link_type == LinkType::Isl).count();
        let survival = isls_after as f64 / isls_before as f64;
        assert!((0.55..0.85).contains(&survival), "survival {survival}");
    }

    #[test]
    fn directions_fail_together() {
        let snap = snapshot();
        let model = LinkFailureModel::new(0.5, 9);
        let out = model.apply(&snap);
        for e in out.edges().filter(|e| e.link_type == LinkType::Isl) {
            assert!(
                out.find_edge(e.dst, e.src).is_some(),
                "reverse of surviving ISL must also survive"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_slot() {
        let snap = snapshot();
        let a = LinkFailureModel::new(0.4, 1).apply(&snap);
        let b = LinkFailureModel::new(0.4, 1).apply(&snap);
        assert_eq!(a, b);
        let c = LinkFailureModel::new(0.4, 2).apply(&snap);
        assert_ne!(a.num_edges(), 0);
        // Different seeds should (overwhelmingly) fail different links.
        assert_ne!(
            a.edges().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            c.edges().map(|e| (e.src, e.dst)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn link_draws_are_symmetric_and_bit_identical() {
        // Property-style sweep: symmetry in (a, b) and bit-identical
        // repeats for every model, over a grid of slots and node pairs —
        // including ids past 2^20, where the old shifted-XOR mix collided.
        let link = LinkFailureModel::new(0.37, 0xfeed);
        let link2 = LinkFailureModel::new(0.37, 0xfeed);
        let ge = GilbertElliottModel::new(0.2, 0.3, 0xfeed);
        let ge2 = GilbertElliottModel::new(0.2, 0.3, 0xfeed);
        for slot in [0u32, 1, 7, 31] {
            let t = SlotIndex(slot);
            for &(a, b) in &[(0u32, 1u32), (3, 200), (1 << 20, (1 << 20) + 1), (5_000_000, 17)] {
                assert_eq!(link.is_down(t, a, b), link.is_down(t, b, a), "link symmetry");
                assert_eq!(link.is_down(t, a, b), link2.is_down(t, a, b), "link determinism");
                assert_eq!(ge.is_down(t, a, b), ge.is_down(t, b, a), "GE symmetry");
                assert_eq!(ge.is_down(t, a, b), ge2.is_down(t, a, b), "GE determinism");
            }
        }
        let outage = NodeOutageModel::new(0.1, 1, 4, 0xfeed);
        let outage2 = NodeOutageModel::new(0.1, 1, 4, 0xfeed);
        for slot in 0..32 {
            for sat in [0u32, 7, 1 << 20] {
                assert_eq!(
                    outage.is_down(SlotIndex(slot), sat),
                    outage2.is_down(SlotIndex(slot), sat),
                    "outage determinism"
                );
            }
        }
    }

    #[test]
    fn hash_fields_do_not_collide() {
        // The fixed mix must distinguish draws that the old `lo<<20 ^ hi`
        // pre-mix conflated: (lo, hi) = (1, 0) vs (0, 1<<20) XOR to the
        // same pre-mix value. With one splitmix round per field, the two
        // hashes (and many like them) must differ somewhere over a slot
        // sweep.
        let model = LinkFailureModel::new(0.5, 3);
        let mut differed = false;
        for slot in 0..64 {
            let t = SlotIndex(slot);
            if model.is_down(t, 0, 1) != model.is_down(t, 0, 1 << 20) {
                differed = true;
                break;
            }
        }
        assert!(differed, "distinct pairs must decorrelate");
    }

    #[test]
    fn apply_never_removes_usls_for_link_level_models() {
        let snap = snapshot();
        let usls =
            |s: &TopologySnapshot| s.edges().filter(|e| e.link_type == LinkType::Usl).count();
        let before = usls(&snap);
        assert!(before > 0, "test network must have USLs");
        for model in [
            FailureModel::IndependentLinks(LinkFailureModel::new(1.0, 5)),
            FailureModel::GilbertElliott(GilbertElliottModel::new(1.0, 0.0, 5)),
        ] {
            assert_eq!(usls(&model.apply(&snap)), before, "{model:?} removed a USL");
        }
    }

    #[test]
    fn node_outage_removes_every_link_of_the_satellite() {
        let snap = snapshot();
        let model = NodeOutageModel::new(0.2, 2, 5, 11);
        let out = model.apply(&snap);
        let slot = snap.slot();
        // Every surviving edge touches only live satellites; every removed
        // edge touched a dead one.
        let is_dead = |n: crate::NodeId| match snap.kind(n) {
            NodeKind::Satellite(i) => model.is_down(slot, i as u32),
            _ => false,
        };
        for e in out.edges() {
            assert!(!is_dead(e.src) && !is_dead(e.dst), "edge of a dead satellite survived");
        }
        let removed = snap.num_edges() - out.num_edges();
        let expected_removed = snap.edges().filter(|e| is_dead(e.src) || is_dead(e.dst)).count();
        assert_eq!(removed, expected_removed);
        // With 144 satellites at 20% outage probability some must be down.
        assert!(removed > 0, "expected at least one outage");
    }

    #[test]
    fn node_outages_persist_for_their_duration() {
        // An outage starting at slot s keeps the satellite down for its
        // whole seeded duration: scan for a start and check continuity.
        let model = NodeOutageModel::new(0.05, 3, 3, 99);
        let mut checked = 0;
        for sat in 0..200u32 {
            for s in 0..40u32 {
                if model.outage_starts(s, sat) {
                    for k in 0..3 {
                        assert!(
                            model.is_down(SlotIndex(s + k), sat),
                            "sat {sat} must stay down {k} slots after start {s}"
                        );
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "expected some outage starts at p=0.05 over 8000 draws");
    }

    #[test]
    fn gilbert_elliott_failures_are_bursty() {
        // With p_fail small and p_recover small, P(down at t+1 | down at t)
        // = 1 − p_recover must far exceed the steady-state down fraction —
        // the defining correlation of the burst model.
        let model = GilbertElliottModel::new(0.05, 0.2, 13);
        let (mut down_slots, mut total, mut persist, mut down_pairs) = (0u32, 0u32, 0u32, 0u32);
        for pair in 0..150u32 {
            let (a, b) = (pair, pair + 1000);
            let mut prev = false;
            let mut down = false;
            for slot in 0..60u32 {
                down = model.step(down, SlotIndex(slot), a, b);
                assert_eq!(down, model.is_down(SlotIndex(slot), a, b), "step vs walk");
                total += 1;
                if down {
                    down_slots += 1;
                }
                if prev {
                    down_pairs += 1;
                    if down {
                        persist += 1;
                    }
                }
                prev = down;
            }
        }
        let marginal = f64::from(down_slots) / f64::from(total);
        let conditional = f64::from(persist) / f64::from(down_pairs.max(1));
        assert!(marginal > 0.05 && marginal < 0.4, "marginal down rate {marginal}");
        assert!(
            conditional > marginal + 0.2,
            "burstiness: P(down|down)={conditional} vs P(down)={marginal}"
        );
    }

    #[test]
    fn failure_model_enum_dispatch() {
        let snap = snapshot();
        assert!(FailureModel::None.is_trivial());
        assert!(FailureModel::IndependentLinks(LinkFailureModel::none()).is_trivial());
        assert!(FailureModel::NodeOutages(NodeOutageModel::new(0.0, 1, 1, 0)).is_trivial());
        assert!(FailureModel::GilbertElliott(GilbertElliottModel::new(0.0, 0.5, 0)).is_trivial());
        assert_eq!(FailureModel::None.apply(&snap), snap);
        let busy = FailureModel::IndependentLinks(LinkFailureModel::new(0.9, 1));
        assert!(!busy.is_trivial());
        assert!(busy.apply(&snap).num_edges() < snap.num_edges());
        assert!(!FailureModel::None.is_isl_down(SlotIndex(0), 0, 1));
        assert!(!FailureModel::None.is_satellite_down(SlotIndex(0), 0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = LinkFailureModel::new(1.5, 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_probability_panics() {
        let _ = LinkFailureModel::new(f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_outage_probability_panics() {
        let _ = NodeOutageModel::new(f64::NAN, 1, 2, 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_ge_probability_panics() {
        let _ = GilbertElliottModel::new(0.1, f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_outage_panics() {
        let _ = NodeOutageModel::new(0.1, 0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_duration_bounds_panic() {
        let _ = NodeOutageModel::new(0.1, 5, 2, 0);
    }
}
