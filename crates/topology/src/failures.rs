//! Link-failure injection.
//!
//! Real ISLs fail: pointing losses, radiation upsets, hardware death. The
//! related work the paper builds on (e.g. resilient routing in
//! space-terrestrial networks) treats link failure as a first-class
//! concern, and any reservation scheme must at least degrade gracefully
//! when links vanish. This module removes ISLs from snapshots
//! deterministically — each unordered satellite pair fails independently
//! per slot with a configured probability, decided by a seeded hash so
//! that runs remain reproducible and both directions of a link always
//! fail together.

use crate::graph::{Edge, LinkType, TopologySnapshot};
use serde::{Deserialize, Serialize};

/// Per-slot, per-link independent ISL failure model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFailureModel {
    /// Probability that a given ISL is down in a given slot, `[0, 1]`.
    pub isl_failure_prob: f64,
    /// Seed decoupling failure draws from everything else.
    pub seed: u64,
}

impl LinkFailureModel {
    /// A model with no failures (identity).
    pub fn none() -> Self {
        LinkFailureModel { isl_failure_prob: 0.0, seed: 0 }
    }

    /// Creates a failure model.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn new(isl_failure_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&isl_failure_prob),
            "failure probability must be in [0,1]"
        );
        LinkFailureModel { isl_failure_prob, seed }
    }

    /// Whether the ISL between nodes `a` and `b` is down at `slot`.
    /// Symmetric in `a`/`b` so both directions agree.
    pub fn is_down(&self, slot: crate::SlotIndex, a: u32, b: u32) -> bool {
        if self.isl_failure_prob <= 0.0 {
            return false;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let h = splitmix64(
            self.seed
                ^ (u64::from(slot.0) << 40)
                ^ (u64::from(lo) << 20)
                ^ u64::from(hi),
        );
        // Map to [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.isl_failure_prob
    }

    /// Returns a copy of `snapshot` with failed ISLs removed. USLs are
    /// never failed by this model (terminal outages are a user-side
    /// phenomenon, not a network one).
    pub fn apply(&self, snapshot: &TopologySnapshot) -> TopologySnapshot {
        if self.isl_failure_prob <= 0.0 {
            return snapshot.clone();
        }
        let slot = snapshot.slot();
        let edges: Vec<Edge> = snapshot
            .edges()
            .iter()
            .filter(|e| {
                e.link_type != LinkType::Isl || !self.is_down(slot, e.src.0, e.dst.0)
            })
            .copied()
            .collect();
        TopologySnapshot::from_edges(
            slot,
            snapshot.kinds().to_vec(),
            (0..snapshot.num_nodes())
                .map(|i| snapshot.position(crate::NodeId(i as u32)))
                .collect(),
            (0..snapshot.num_nodes())
                .map(|i| snapshot.is_sunlit(crate::NodeId(i as u32)))
                .collect(),
            edges,
        )
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer (public domain).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{build_snapshot, NetworkNodes, TopologyConfig};
    use crate::SlotIndex;
    use sb_geo::Epoch;
    use sb_orbit::walker::WalkerConstellation;

    fn snapshot() -> TopologySnapshot {
        let shell = WalkerConstellation::delta(12, 12, 1, 550e3, 53f64.to_radians());
        let mut nodes = NetworkNodes::from_walker(&shell);
        nodes.add_ground_site(sb_geo::coords::Geodetic::from_degrees(35.8, -78.6, 0.0));
        let cfg =
            TopologyConfig { min_elevation_rad: 10f64.to_radians(), ..TopologyConfig::default() };
        build_snapshot(&nodes, &cfg, SlotIndex(0), Epoch::from_seconds(0.0))
    }

    #[test]
    fn zero_probability_is_identity() {
        let snap = snapshot();
        let out = LinkFailureModel::none().apply(&snap);
        assert_eq!(out, snap);
    }

    #[test]
    fn full_probability_kills_all_isls_but_no_usls() {
        let snap = snapshot();
        let out = LinkFailureModel::new(1.0, 7).apply(&snap);
        assert!(out.edges().iter().all(|e| e.link_type == LinkType::Usl));
        let usls_before =
            snap.edges().iter().filter(|e| e.link_type == LinkType::Usl).count();
        assert_eq!(out.num_edges(), usls_before);
    }

    #[test]
    fn failure_rate_roughly_matches_probability() {
        let snap = snapshot();
        let isls_before = snap.edges().iter().filter(|e| e.link_type == LinkType::Isl).count();
        let out = LinkFailureModel::new(0.3, 42).apply(&snap);
        let isls_after = out.edges().iter().filter(|e| e.link_type == LinkType::Isl).count();
        let survival = isls_after as f64 / isls_before as f64;
        assert!((0.55..0.85).contains(&survival), "survival {survival}");
    }

    #[test]
    fn directions_fail_together() {
        let snap = snapshot();
        let model = LinkFailureModel::new(0.5, 9);
        let out = model.apply(&snap);
        for e in out.edges().iter().filter(|e| e.link_type == LinkType::Isl) {
            assert!(
                out.find_edge(e.dst, e.src).is_some(),
                "reverse of surviving ISL must also survive"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_slot() {
        let snap = snapshot();
        let a = LinkFailureModel::new(0.4, 1).apply(&snap);
        let b = LinkFailureModel::new(0.4, 1).apply(&snap);
        assert_eq!(a, b);
        let c = LinkFailureModel::new(0.4, 2).apply(&snap);
        assert_ne!(a.num_edges(), 0);
        // Different seeds should (overwhelmingly) fail different links.
        assert_ne!(
            a.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            c.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = LinkFailureModel::new(1.5, 0);
    }
}
