//! Dynamic LSN topology construction.
//!
//! The paper models the LSN as a time-slotted directed graph
//! `G(T) = (V(T), E(T))` whose vertices are broadband satellites plus users
//! (ground users and space users), and whose edges are inter-satellite
//! links (ISLs) and user-satellite links (USLs). This crate turns a
//! propagated constellation into exactly that object:
//!
//! * [`graph`] — the snapshot graph type: stable node identities, directed
//!   edges with link type and capacity, CSR adjacency for fast search;
//! * [`isl`] — +Grid inter-satellite wiring (intra-plane ring + adjacent
//!   plane neighbors) with Earth-blockage checks;
//! * [`usl`] — elevation/visibility based user-satellite link discovery for
//!   ground users and range-based discovery for space users;
//! * [`ground`] — the triangular ground-site grid with a synthetic
//!   GDP-density weighting (the paper's 1761 candidate sites);
//! * [`series`] — assembling per-slot [`graph::TopologySnapshot`]s over the
//!   whole simulation horizon;
//! * [`delta`] — delta compilation of series: a shared static ISL template
//!   plus per-slot [`delta::SlotDelta`]s, bit-identical to the full rebuild;
//! * [`shipping`] — canonical sb-wire encoding of a compiled series
//!   ([`shipping::SeriesPackage`]): compile once, ship the checksummed
//!   bytes, materialize bit-identical snapshots on the receiving side;
//! * [`delay`] — propagation-delay estimation for paths (and the
//!   terrestrial-fiber benchmark they must beat);
//! * [`failures`] — deterministic ISL failure injection for robustness
//!   studies;
//! * [`coverage`] — latitude-band and global coverage analysis.
//!
//! # Example
//!
//! ```
//! use sb_orbit::walker::WalkerConstellation;
//! use sb_topology::series::{NetworkNodes, TopologyConfig, TopologySeries};
//! use sb_geo::coords::Geodetic;
//!
//! let shell = WalkerConstellation::delta(6, 8, 1, 550e3, 53f64.to_radians());
//! let mut nodes = NetworkNodes::from_walker(&shell);
//! nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
//! nodes.add_ground_site(Geodetic::from_degrees(51.5, -0.1, 0.0));
//!
//! let series = TopologySeries::build(&nodes, &TopologyConfig::default(), 3, 60.0);
//! assert_eq!(series.num_slots(), 3);
//! let snap = series.snapshot(sb_topology::SlotIndex(0));
//! assert!(snap.num_edges() > 0);
//! ```

#![warn(missing_docs)]
pub mod coverage;
pub mod delay;
pub mod delta;
pub mod failures;
pub mod graph;
pub mod ground;
pub mod isl;
pub mod series;
pub mod shipping;
pub mod usl;

use serde::{Deserialize, Serialize};

/// Index of a time slot within the simulation horizon.
///
/// A newtype so slot indices cannot be confused with node ids or seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SlotIndex(pub u32);

impl SlotIndex {
    /// The slot as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next slot.
    pub fn next(self) -> SlotIndex {
        SlotIndex(self.0 + 1)
    }
}

impl core::fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

pub use delta::{SeriesBuilder, SlotDelta};
pub use graph::{LinkType, NodeId, NodeKind, StaticCore, TopologySnapshot};
pub use series::{NetworkNodes, TopologyConfig, TopologySeries};
pub use shipping::SeriesPackage;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_basics() {
        let s = SlotIndex(3);
        assert_eq!(s.index(), 3);
        assert_eq!(s.next(), SlotIndex(4));
        assert_eq!(format!("{s}"), "slot 3");
        assert!(SlotIndex(1) < SlotIndex(2));
    }
}
