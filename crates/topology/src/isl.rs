//! +Grid inter-satellite link wiring.
//!
//! Operational LEO constellations (and the ICARUS simulator the paper
//! extends) wire each satellite to four neighbors — the **+Grid**:
//!
//! * the satellite ahead and behind in the same orbital plane
//!   (intra-plane ring), and
//! * the same-slot satellite in the two adjacent planes (inter-plane
//!   links, wrapping across the seam).
//!
//! Intra-plane links are permanent. Inter-plane links are dropped when the
//! straight line between the two satellites would graze the Earth (only
//! possible for exotic geometries; checked for robustness).

use crate::graph::{Edge, LinkType, NodeId};
use sb_geo::coords::Eci;
use sb_geo::visibility;
use sb_orbit::Satellite;

/// The (plane, slot) grid coordinates of the broadband satellites, plus the
/// plane/slot counts, extracted once per constellation.
#[derive(Debug, Clone)]
pub struct GridIndex {
    planes: usize,
    sats_per_plane: usize,
    /// `grid[plane][slot]` = constellation index of that satellite.
    grid: Vec<Vec<usize>>,
}

impl GridIndex {
    /// Builds the grid from Walker-generated satellites.
    ///
    /// # Errors
    ///
    /// Returns `None` when any satellite lacks plane/slot annotations or
    /// the grid is ragged (not a full `planes × sats_per_plane` lattice).
    pub fn from_satellites(satellites: &[Satellite]) -> Option<GridIndex> {
        let mut planes = 0usize;
        let mut spp = 0usize;
        for s in satellites {
            planes = planes.max(s.plane? + 1);
            spp = spp.max(s.slot_in_plane? + 1);
        }
        if planes == 0 || spp == 0 || planes * spp != satellites.len() {
            return None;
        }
        let mut grid = vec![vec![usize::MAX; spp]; planes];
        for (idx, s) in satellites.iter().enumerate() {
            let (p, k) = (s.plane?, s.slot_in_plane?);
            if grid[p][k] != usize::MAX {
                return None; // duplicate cell
            }
            grid[p][k] = idx;
        }
        Some(GridIndex { planes, sats_per_plane: spp, grid })
    }

    /// Number of orbital planes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Satellites per plane.
    pub fn sats_per_plane(&self) -> usize {
        self.sats_per_plane
    }

    /// Constellation index of the satellite at `(plane, slot)` (wrapping).
    pub fn at(&self, plane: isize, slot: isize) -> usize {
        let p = plane.rem_euclid(self.planes as isize) as usize;
        let k = slot.rem_euclid(self.sats_per_plane as isize) as usize;
        self.grid[p][k]
    }

    /// The four +Grid neighbor constellation indices of the satellite at
    /// `(plane, slot)`: ahead, behind, left plane, right plane.
    ///
    /// Degenerate constellations (single plane or single slot) return fewer,
    /// deduplicated neighbors.
    pub fn neighbors(&self, plane: usize, slot: usize) -> Vec<usize> {
        let p = plane as isize;
        let k = slot as isize;
        let me = self.at(p, k);
        let mut out = Vec::with_capacity(4);
        let mut push = |idx: usize| {
            if idx != me && !out.contains(&idx) {
                out.push(idx);
            }
        };
        if self.sats_per_plane > 1 {
            push(self.at(p, k + 1));
            push(self.at(p, k - 1));
        }
        if self.planes > 1 {
            push(self.at(p + 1, k));
            push(self.at(p - 1, k));
        }
        out
    }
}

/// Generates the directed ISL edge list for one snapshot.
///
/// `positions[i]` must be the position of constellation index `i`;
/// `node_of(i)` maps a constellation index to its graph [`NodeId`]. Each
/// undirected +Grid adjacency yields two directed edges with capacity
/// `isl_capacity_mbps`. Links blocked by the Earth (including the grazing
/// margin) are skipped.
pub fn plus_grid_edges(
    grid: &GridIndex,
    positions: &[Eci],
    node_of: impl Fn(usize) -> NodeId,
    isl_capacity_mbps: f64,
    grazing_margin_m: f64,
) -> Vec<Edge> {
    let mut edges = Vec::new();
    for p in 0..grid.planes() {
        for k in 0..grid.sats_per_plane() {
            let a = grid.at(p as isize, k as isize);
            for b in grid.neighbors(p, k) {
                // Emit each undirected pair once (a < b), then both
                // directions, to avoid duplicates.
                if a >= b {
                    continue;
                }
                let (pa, pb) = (positions[a], positions[b]);
                if !visibility::line_of_sight_clear(pa, pb, grazing_margin_m) {
                    continue;
                }
                let length_m = pa.distance(pb);
                for (s, d) in [(a, b), (b, a)] {
                    edges.push(Edge {
                        src: node_of(s),
                        dst: node_of(d),
                        link_type: LinkType::Isl,
                        capacity_mbps: isl_capacity_mbps,
                        length_m,
                    });
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_geo::Epoch;
    use sb_orbit::walker::WalkerConstellation;
    use sb_orbit::Constellation;

    fn grid_for(planes: usize, spp: usize) -> (GridIndex, Vec<Eci>) {
        let shell = WalkerConstellation::delta(planes, spp, 1 % planes, 550e3, 53f64.to_radians());
        let c = Constellation::from_walker(&shell);
        let grid = GridIndex::from_satellites(c.satellites()).unwrap();
        let pos = c.propagate(Epoch::from_seconds(0.0)).iter().map(|s| s.position).collect();
        (grid, pos)
    }

    #[test]
    fn grid_index_shape() {
        let (grid, _) = grid_for(4, 6);
        assert_eq!(grid.planes(), 4);
        assert_eq!(grid.sats_per_plane(), 6);
        // Wrapping addressing.
        assert_eq!(grid.at(-1, 0), grid.at(3, 0));
        assert_eq!(grid.at(0, -1), grid.at(0, 5));
    }

    #[test]
    fn four_neighbors_in_regular_grid() {
        let (grid, _) = grid_for(4, 6);
        for p in 0..4 {
            for k in 0..6 {
                assert_eq!(grid.neighbors(p, k).len(), 4, "at ({p},{k})");
            }
        }
    }

    #[test]
    fn degenerate_grids_have_fewer_neighbors() {
        let (grid, _) = grid_for(1, 6);
        assert_eq!(grid.neighbors(0, 0).len(), 2); // only intra-plane ring
        let (grid2, _) = grid_for(4, 1);
        assert_eq!(grid2.neighbors(0, 0).len(), 2); // only inter-plane
    }

    #[test]
    fn plus_grid_edge_count() {
        // Regular p×k grid: 2·p·k undirected links → 4·p·k directed edges
        // (each sat has 4 neighbors; each link shared by 2 sats).
        // Dense enough that every +Grid chord clears the Earth (adjacent
        // nodes must be < 2·acos(Re/r) ≈ 46° apart at 550 km).
        let (grid, pos) = grid_for(12, 12);
        let edges = plus_grid_edges(&grid, &pos, |i| NodeId(i as u32), 20_000.0, 0.0);
        assert_eq!(edges.len(), 4 * 12 * 12);
    }

    #[test]
    fn edges_are_paired() {
        let (grid, pos) = grid_for(3, 4);
        let edges = plus_grid_edges(&grid, &pos, |i| NodeId(i as u32), 20_000.0, 0.0);
        for e in &edges {
            assert!(
                edges.iter().any(|r| r.src == e.dst && r.dst == e.src),
                "missing reverse of {:?}",
                (e.src, e.dst)
            );
            assert_eq!(e.link_type, LinkType::Isl);
            assert!(e.length_m > 0.0);
        }
    }

    #[test]
    fn neighbor_links_are_short() {
        // In a 22×72 shell, +Grid neighbors are a few hundred km apart —
        // far shorter than a random pair.
        let (grid, pos) = grid_for(22, 72);
        let edges = plus_grid_edges(&grid, &pos, |i| NodeId(i as u32), 20_000.0, 0.0);
        assert_eq!(edges.len(), 4 * 22 * 72);
        for e in &edges {
            assert!(e.length_m < 4.0e6, "ISL length {} m", e.length_m);
        }
    }

    #[test]
    fn rejects_unannotated_satellites() {
        let mut sats = Constellation::from_walker(&WalkerConstellation::delta(2, 2, 0, 550e3, 0.9))
            .satellites()
            .to_vec();
        sats[0].plane = None;
        assert!(GridIndex::from_satellites(&sats).is_none());
    }

    #[test]
    fn rejects_ragged_grid() {
        let sats = Constellation::from_walker(&WalkerConstellation::delta(2, 3, 0, 550e3, 0.9))
            .satellites()
            .to_vec();
        // Drop one satellite → 5 sats cannot fill a 2×3 lattice.
        assert!(GridIndex::from_satellites(&sats[..5]).is_none());
    }
}
