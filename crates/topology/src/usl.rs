//! User-satellite link (USL) discovery.
//!
//! Ground users see a broadband satellite when it is above their minimum
//! elevation angle (≈25° for modern phased-array terminals). Space users
//! (EO satellites flying below the broadband shell) link to broadband
//! satellites within line-of-sight and terminal range. In both cases, the
//! number of simultaneous links is limited by terminal hardware, so we keep
//! the `max_links` *nearest* visible satellites.

use crate::graph::{Edge, LinkType, NodeId};
use sb_geo::coords::Eci;
use sb_geo::{visibility, EARTH_RADIUS_M};

/// Relative slack on the squared-distance early-reject bounds, absorbing
/// the floating-point error between the exact geometric test and the
/// law-of-cosines slant range. Generous by many orders of magnitude — the
/// point of the reject is to skip satellites on the far side of the
/// planet, not to shave the last meter.
const REJECT_SLACK: f64 = 1e-9;

/// Squared upper bound on the distance from a ground user to *any*
/// satellite above `min_elevation_rad`, or `f64::INFINITY` when no sound
/// bound exists.
///
/// The slant range to a satellite sitting exactly at the mask elevation is
/// decreasing in elevation and increasing in orbit radius, so
/// `slant_range(user_alt, max_sat_alt, mask)` dominates every visible
/// satellite's distance. The bound is skipped (infinite) for negative
/// masks and for shells at or below the observer radius, where that
/// monotonicity argument does not hold.
fn ground_reject_bound_sq(user: Eci, sat_positions: &[Eci], min_elevation_rad: f64) -> f64 {
    if min_elevation_rad < 0.0 {
        return f64::INFINITY;
    }
    let r_user = user.0.norm();
    let max_sat_r_sq = sat_positions.iter().map(|sp| sp.0.norm_squared()).fold(0.0, f64::max);
    let max_sat_r = max_sat_r_sq.sqrt();
    if max_sat_r <= r_user {
        return f64::INFINITY;
    }
    let bound = visibility::slant_range(
        r_user - EARTH_RADIUS_M,
        max_sat_r - EARTH_RADIUS_M,
        min_elevation_rad,
    ) * (1.0 + REJECT_SLACK);
    bound * bound
}

/// Returns the indices of the `max_links` nearest satellites (into
/// `sat_positions`) visible from a ground user, i.e. above
/// `min_elevation_rad`.
///
/// A squared-distance compare against the slant-range bound rejects
/// far-side satellites before the full elevation test (normalise + acos);
/// the bound is conservative, so the discovered link set is identical to
/// the brute-force scan.
pub fn visible_sats_from_ground(
    user: Eci,
    sat_positions: &[Eci],
    min_elevation_rad: f64,
    max_links: usize,
) -> Vec<usize> {
    let reject_sq = ground_reject_bound_sq(user, sat_positions, min_elevation_rad);
    let mut candidates: Vec<(f64, usize)> = sat_positions
        .iter()
        .enumerate()
        .filter(|(_, &sp)| {
            (user.0 - sp.0).norm_squared() <= reject_sq
                && visibility::visible_above_elevation(user, sp, min_elevation_rad)
        })
        .map(|(i, &sp)| (user.distance(sp), i))
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    candidates.truncate(max_links);
    candidates.into_iter().map(|(_, i)| i).collect()
}

/// Returns the indices of the `max_links` nearest satellites visible from a
/// space user: within `max_range_m` and with an Earth-clear line of sight.
///
/// A squared-distance compare rejects out-of-range satellites before the
/// sqrt and the line-of-sight test; the exact `d <= max_range_m` check is
/// kept for survivors so link sets match the brute-force scan bit for bit.
pub fn visible_sats_from_space(
    user: Eci,
    sat_positions: &[Eci],
    max_range_m: f64,
    grazing_margin_m: f64,
    max_links: usize,
) -> Vec<usize> {
    let reject_sq = max_range_m * max_range_m * (1.0 + REJECT_SLACK);
    let mut candidates: Vec<(f64, usize)> = sat_positions
        .iter()
        .enumerate()
        .filter_map(|(i, &sp)| {
            if (user.0 - sp.0).norm_squared() > reject_sq {
                return None;
            }
            let d = user.distance(sp);
            (d <= max_range_m && visibility::line_of_sight_clear(user, sp, grazing_margin_m))
                .then_some((d, i))
        })
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    candidates.truncate(max_links);
    candidates.into_iter().map(|(_, i)| i).collect()
}

/// Builds the bidirectional USL edges between one user node and a set of
/// satellite nodes.
pub fn usl_edges(
    user_node: NodeId,
    user_pos: Eci,
    sats: &[usize],
    sat_positions: &[Eci],
    node_of_sat: impl Fn(usize) -> NodeId,
    usl_capacity_mbps: f64,
) -> Vec<Edge> {
    let mut edges = Vec::with_capacity(sats.len() * 2);
    for &s in sats {
        let sat_node = node_of_sat(s);
        let length_m = user_pos.distance(sat_positions[s]);
        for (src, dst) in [(user_node, sat_node), (sat_node, user_node)] {
            edges.push(Edge {
                src,
                dst,
                link_type: LinkType::Usl,
                capacity_mbps: usl_capacity_mbps,
                length_m,
            });
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_geo::{Vec3, EARTH_RADIUS_M};

    fn ground_at_origin() -> Eci {
        Eci(Vec3::new(EARTH_RADIUS_M, 0.0, 0.0))
    }

    fn sat_above(offset_rad: f64) -> Eci {
        let r = EARTH_RADIUS_M + 550e3;
        Eci(Vec3::new(r * offset_rad.cos(), r * offset_rad.sin(), 0.0))
    }

    #[test]
    fn overhead_sat_is_visible() {
        let sats = vec![sat_above(0.0)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 4);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn horizon_sat_is_not_visible() {
        // 40° of arc away: far below a 25° elevation mask.
        let sats = vec![sat_above(0.7)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 4);
        assert!(v.is_empty());
    }

    #[test]
    fn nearest_sats_kept_when_capped() {
        let sats = vec![sat_above(0.04), sat_above(0.0), sat_above(0.02)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 2);
        assert_eq!(v, vec![1, 2]); // overhead first, then 0.02 rad away
    }

    #[test]
    fn space_user_links_within_range() {
        let eo = Eci(Vec3::new(EARTH_RADIUS_M + 500e3, 0.0, 0.0));
        let sats = vec![
            sat_above(0.0),                                      // ~50 km above the EO sat
            sat_above(0.3),                                      // ~2000 km away around the arc
            Eci(Vec3::new(-(EARTH_RADIUS_M + 550e3), 0.0, 0.0)), // other side of Earth
        ];
        let v = visible_sats_from_space(eo, &sats, 1_500_000.0, 80_000.0, 4);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn space_user_earth_blockage() {
        let eo = Eci(Vec3::new(EARTH_RADIUS_M + 500e3, 0.0, 0.0));
        let behind = Eci(Vec3::new(-(EARTH_RADIUS_M + 550e3), 0.0, 0.0));
        let v = visible_sats_from_space(eo, &[behind], 5.0e7, 80_000.0, 4);
        assert!(v.is_empty());
    }

    #[test]
    fn usl_edges_bidirectional_with_capacity() {
        let user = ground_at_origin();
        let sats_pos = vec![sat_above(0.0)];
        let edges = usl_edges(NodeId(10), user, &[0], &sats_pos, |i| NodeId(i as u32), 4000.0);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].src, NodeId(10));
        assert_eq!(edges[0].dst, NodeId(0));
        assert_eq!(edges[1].src, NodeId(0));
        assert_eq!(edges[1].dst, NodeId(10));
        for e in &edges {
            assert_eq!(e.link_type, LinkType::Usl);
            assert!((e.capacity_mbps - 4000.0).abs() < 1e-12);
            assert!((e.length_m - 550e3).abs() < 1.0);
        }
    }

    #[test]
    fn zero_max_links_yields_nothing() {
        let sats = vec![sat_above(0.0)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 0);
        assert!(v.is_empty());
    }

    // Brute-force references for the early-reject property tests: the
    // full-scan discovery loops, kept verbatim from before the
    // squared-distance reject was added.
    #[allow(dead_code)] // used only inside `proptest!`, which the offline stub swallows
    fn ground_reference(
        user: Eci,
        sat_positions: &[Eci],
        min_elevation_rad: f64,
        max_links: usize,
    ) -> Vec<usize> {
        let mut candidates: Vec<(f64, usize)> = sat_positions
            .iter()
            .enumerate()
            .filter(|(_, &sp)| visibility::visible_above_elevation(user, sp, min_elevation_rad))
            .map(|(i, &sp)| (user.distance(sp), i))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        candidates.truncate(max_links);
        candidates.into_iter().map(|(_, i)| i).collect()
    }

    #[allow(dead_code)] // used only inside `proptest!`, which the offline stub swallows
    fn space_reference(
        user: Eci,
        sat_positions: &[Eci],
        max_range_m: f64,
        grazing_margin_m: f64,
        max_links: usize,
    ) -> Vec<usize> {
        let mut candidates: Vec<(f64, usize)> = sat_positions
            .iter()
            .enumerate()
            .filter_map(|(i, &sp)| {
                let d = user.distance(sp);
                (d <= max_range_m && visibility::line_of_sight_clear(user, sp, grazing_margin_m))
                    .then_some((d, i))
            })
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        candidates.truncate(max_links);
        candidates.into_iter().map(|(_, i)| i).collect()
    }

    #[allow(dead_code)] // used only inside `proptest!`, which the offline stub swallows
    fn sats_from_spherical(raw: &[(f64, f64, f64)]) -> Vec<Eci> {
        raw.iter()
            .map(|&(r, theta, phi)| {
                Eci(Vec3::new(
                    r * theta.sin() * phi.cos(),
                    r * theta.sin() * phi.sin(),
                    r * theta.cos(),
                ))
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_ground_link_set_unchanged_by_early_reject(
            raw in proptest::collection::vec(
                (6.4e6..7.8e6f64, 0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU),
                1..40,
            ),
            user_lon in 0.0..std::f64::consts::TAU,
            mask_deg in -10.0..60.0f64,
            max_links in 0usize..6,
        ) {
            let sats = sats_from_spherical(&raw);
            let user = Eci(Vec3::new(
                EARTH_RADIUS_M * user_lon.cos(),
                EARTH_RADIUS_M * user_lon.sin(),
                0.0,
            ));
            let mask = mask_deg.to_radians();
            prop_assert_eq!(
                visible_sats_from_ground(user, &sats, mask, max_links),
                ground_reference(user, &sats, mask, max_links)
            );
        }

        #[test]
        fn prop_space_link_set_unchanged_by_early_reject(
            raw in proptest::collection::vec(
                (6.4e6..7.8e6f64, 0.0..std::f64::consts::PI, 0.0..std::f64::consts::TAU),
                1..40,
            ),
            eo_r in 6.6e6..7.0e6f64,
            eo_lon in 0.0..std::f64::consts::TAU,
            max_range in 5.0e5..3.0e6f64,
            max_links in 0usize..6,
        ) {
            let sats = sats_from_spherical(&raw);
            let eo = Eci(Vec3::new(eo_r * eo_lon.cos(), eo_r * eo_lon.sin(), 0.0));
            prop_assert_eq!(
                visible_sats_from_space(eo, &sats, max_range, 80_000.0, max_links),
                space_reference(eo, &sats, max_range, 80_000.0, max_links)
            );
        }
    }
}
