//! User-satellite link (USL) discovery.
//!
//! Ground users see a broadband satellite when it is above their minimum
//! elevation angle (≈25° for modern phased-array terminals). Space users
//! (EO satellites flying below the broadband shell) link to broadband
//! satellites within line-of-sight and terminal range. In both cases, the
//! number of simultaneous links is limited by terminal hardware, so we keep
//! the `max_links` *nearest* visible satellites.

use crate::graph::{Edge, LinkType, NodeId};
use sb_geo::coords::Eci;
use sb_geo::visibility;

/// Returns the indices of the `max_links` nearest satellites (into
/// `sat_positions`) visible from a ground user, i.e. above
/// `min_elevation_rad`.
pub fn visible_sats_from_ground(
    user: Eci,
    sat_positions: &[Eci],
    min_elevation_rad: f64,
    max_links: usize,
) -> Vec<usize> {
    let mut candidates: Vec<(f64, usize)> = sat_positions
        .iter()
        .enumerate()
        .filter(|(_, &sp)| visibility::visible_above_elevation(user, sp, min_elevation_rad))
        .map(|(i, &sp)| (user.distance(sp), i))
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    candidates.truncate(max_links);
    candidates.into_iter().map(|(_, i)| i).collect()
}

/// Returns the indices of the `max_links` nearest satellites visible from a
/// space user: within `max_range_m` and with an Earth-clear line of sight.
pub fn visible_sats_from_space(
    user: Eci,
    sat_positions: &[Eci],
    max_range_m: f64,
    grazing_margin_m: f64,
    max_links: usize,
) -> Vec<usize> {
    let mut candidates: Vec<(f64, usize)> = sat_positions
        .iter()
        .enumerate()
        .filter_map(|(i, &sp)| {
            let d = user.distance(sp);
            (d <= max_range_m && visibility::line_of_sight_clear(user, sp, grazing_margin_m))
                .then_some((d, i))
        })
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    candidates.truncate(max_links);
    candidates.into_iter().map(|(_, i)| i).collect()
}

/// Builds the bidirectional USL edges between one user node and a set of
/// satellite nodes.
pub fn usl_edges(
    user_node: NodeId,
    user_pos: Eci,
    sats: &[usize],
    sat_positions: &[Eci],
    node_of_sat: impl Fn(usize) -> NodeId,
    usl_capacity_mbps: f64,
) -> Vec<Edge> {
    let mut edges = Vec::with_capacity(sats.len() * 2);
    for &s in sats {
        let sat_node = node_of_sat(s);
        let length_m = user_pos.distance(sat_positions[s]);
        for (src, dst) in [(user_node, sat_node), (sat_node, user_node)] {
            edges.push(Edge {
                src,
                dst,
                link_type: LinkType::Usl,
                capacity_mbps: usl_capacity_mbps,
                length_m,
            });
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_geo::{Vec3, EARTH_RADIUS_M};

    fn ground_at_origin() -> Eci {
        Eci(Vec3::new(EARTH_RADIUS_M, 0.0, 0.0))
    }

    fn sat_above(offset_rad: f64) -> Eci {
        let r = EARTH_RADIUS_M + 550e3;
        Eci(Vec3::new(r * offset_rad.cos(), r * offset_rad.sin(), 0.0))
    }

    #[test]
    fn overhead_sat_is_visible() {
        let sats = vec![sat_above(0.0)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 4);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn horizon_sat_is_not_visible() {
        // 40° of arc away: far below a 25° elevation mask.
        let sats = vec![sat_above(0.7)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 4);
        assert!(v.is_empty());
    }

    #[test]
    fn nearest_sats_kept_when_capped() {
        let sats = vec![sat_above(0.04), sat_above(0.0), sat_above(0.02)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 2);
        assert_eq!(v, vec![1, 2]); // overhead first, then 0.02 rad away
    }

    #[test]
    fn space_user_links_within_range() {
        let eo = Eci(Vec3::new(EARTH_RADIUS_M + 500e3, 0.0, 0.0));
        let sats = vec![
            sat_above(0.0),                                      // ~50 km above the EO sat
            sat_above(0.3),                                      // ~2000 km away around the arc
            Eci(Vec3::new(-(EARTH_RADIUS_M + 550e3), 0.0, 0.0)), // other side of Earth
        ];
        let v = visible_sats_from_space(eo, &sats, 1_500_000.0, 80_000.0, 4);
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn space_user_earth_blockage() {
        let eo = Eci(Vec3::new(EARTH_RADIUS_M + 500e3, 0.0, 0.0));
        let behind = Eci(Vec3::new(-(EARTH_RADIUS_M + 550e3), 0.0, 0.0));
        let v = visible_sats_from_space(eo, &[behind], 5.0e7, 80_000.0, 4);
        assert!(v.is_empty());
    }

    #[test]
    fn usl_edges_bidirectional_with_capacity() {
        let user = ground_at_origin();
        let sats_pos = vec![sat_above(0.0)];
        let edges = usl_edges(NodeId(10), user, &[0], &sats_pos, |i| NodeId(i as u32), 4000.0);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].src, NodeId(10));
        assert_eq!(edges[0].dst, NodeId(0));
        assert_eq!(edges[1].src, NodeId(0));
        assert_eq!(edges[1].dst, NodeId(10));
        for e in &edges {
            assert_eq!(e.link_type, LinkType::Usl);
            assert!((e.capacity_mbps - 4000.0).abs() < 1e-12);
            assert!((e.length_m - 550e3).abs() < 1.0);
        }
    }

    #[test]
    fn zero_max_links_yields_nothing() {
        let sats = vec![sat_above(0.0)];
        let v = visible_sats_from_ground(ground_at_origin(), &sats, 25f64.to_radians(), 0);
        assert!(v.is_empty());
    }
}
