//! Coordinate frames and conversions.
//!
//! Three frames matter to the simulator:
//!
//! * **Geodetic** — latitude/longitude/altitude on a spherical Earth. Ground
//!   users and gateway sites are specified here.
//! * **ECEF** (Earth-Centered Earth-Fixed) — rotates with the Earth. Ground
//!   stations are static in this frame.
//! * **ECI** (Earth-Centered Inertial) — does not rotate. Orbits are
//!   propagated here; the Sun direction is expressed here.
//!
//! ECI and ECEF are linked by a rotation about +Z by the Greenwich angle
//! ([`crate::Epoch::gmst`]). A spherical Earth is used throughout: the ~21 km
//! equatorial bulge is negligible for link-visibility and eclipse geometry at
//! LEO scales.

use crate::{Epoch, Vec3, EARTH_RADIUS_M};
use serde::{Deserialize, Serialize};

/// A geodetic position: latitude, longitude (radians) and altitude above the
/// mean Earth radius (meters).
///
/// # Example
///
/// ```
/// use sb_geo::coords::Geodetic;
/// let raleigh = Geodetic::new(35.78_f64.to_radians(), -78.64_f64.to_radians(), 0.0);
/// let ecef = raleigh.to_ecef();
/// let back = ecef.to_geodetic();
/// assert!((back.latitude_rad - raleigh.latitude_rad).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Geodetic {
    /// Latitude in radians, in `[-π/2, π/2]`.
    pub latitude_rad: f64,
    /// Longitude in radians, in `(-π, π]`.
    pub longitude_rad: f64,
    /// Altitude above the mean Earth radius, in meters.
    pub altitude_m: f64,
}

impl Geodetic {
    /// Creates a geodetic position.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when latitude is outside `[-π/2, π/2]`.
    pub fn new(latitude_rad: f64, longitude_rad: f64, altitude_m: f64) -> Self {
        debug_assert!(
            (-core::f64::consts::FRAC_PI_2..=core::f64::consts::FRAC_PI_2).contains(&latitude_rad),
            "latitude out of range: {latitude_rad}"
        );
        Geodetic { latitude_rad, longitude_rad, altitude_m }
    }

    /// Creates a geodetic position from degrees (convenience for test data
    /// and embedded gazetteers).
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, altitude_m: f64) -> Self {
        Self::new(lat_deg.to_radians(), lon_deg.to_radians(), altitude_m)
    }

    /// Converts to the Earth-fixed frame.
    pub fn to_ecef(self) -> Ecef {
        let r = EARTH_RADIUS_M + self.altitude_m;
        let (slat, clat) = self.latitude_rad.sin_cos();
        let (slon, clon) = self.longitude_rad.sin_cos();
        Ecef(Vec3::new(r * clat * clon, r * clat * slon, r * slat))
    }

    /// Great-circle central angle (radians) to another geodetic point,
    /// ignoring altitude.
    pub fn central_angle_to(self, other: Geodetic) -> f64 {
        let a = Geodetic { altitude_m: 0.0, ..self }.to_ecef().0;
        let b = Geodetic { altitude_m: 0.0, ..other }.to_ecef().0;
        a.angle_to(b)
    }

    /// Great-circle surface distance (meters) to another geodetic point.
    pub fn surface_distance_to(self, other: Geodetic) -> f64 {
        self.central_angle_to(other) * EARTH_RADIUS_M
    }
}

impl core::fmt::Display for Geodetic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "({:.3}°, {:.3}°, {:.0} m)",
            self.latitude_rad.to_degrees(),
            self.longitude_rad.to_degrees(),
            self.altitude_m
        )
    }
}

/// A position in the Earth-Centered Earth-Fixed frame, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ecef(pub Vec3);

impl Ecef {
    /// Converts to geodetic coordinates on the spherical Earth.
    pub fn to_geodetic(self) -> Geodetic {
        let v = self.0;
        let r = v.norm();
        let latitude_rad = if r == 0.0 { 0.0 } else { (v.z / r).clamp(-1.0, 1.0).asin() };
        let longitude_rad = v.y.atan2(v.x);
        Geodetic { latitude_rad, longitude_rad, altitude_m: r - EARTH_RADIUS_M }
    }

    /// Rotates into the inertial frame at the given epoch.
    pub fn to_eci(self, epoch: Epoch) -> Eci {
        Eci(self.0.rotate_z(epoch.gmst()))
    }
}

/// A position in the Earth-Centered Inertial frame, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Eci(pub Vec3);

impl Eci {
    /// Rotates into the Earth-fixed frame at the given epoch.
    pub fn to_ecef(self, epoch: Epoch) -> Ecef {
        Ecef(self.0.rotate_z(-epoch.gmst()))
    }

    /// Straight-line distance to another inertial position, meters.
    pub fn distance(self, other: Eci) -> f64 {
        self.0.distance(other.0)
    }
}

impl From<Vec3> for Eci {
    fn from(v: Vec3) -> Self {
        Eci(v)
    }
}

impl From<Vec3> for Ecef {
    fn from(v: Vec3) -> Self {
        Ecef(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equator_prime_meridian() {
        let p = Geodetic::new(0.0, 0.0, 0.0).to_ecef();
        assert!(p.0.distance(Vec3::new(EARTH_RADIUS_M, 0.0, 0.0)) < 1e-6);
    }

    #[test]
    fn north_pole() {
        let p = Geodetic::new(core::f64::consts::FRAC_PI_2, 0.0, 1000.0).to_ecef();
        assert!(p.0.distance(Vec3::new(0.0, 0.0, EARTH_RADIUS_M + 1000.0)) < 1e-6);
    }

    #[test]
    fn eci_ecef_identity_at_t0() {
        let p = Geodetic::from_degrees(10.0, 20.0, 500.0).to_ecef();
        let eci = p.to_eci(Epoch::from_seconds(0.0));
        assert!(eci.0.distance(p.0) < 1e-9);
    }

    #[test]
    fn ground_station_moves_in_eci() {
        let p = Geodetic::from_degrees(0.0, 0.0, 0.0).to_ecef();
        let a = p.to_eci(Epoch::from_seconds(0.0));
        let b = p.to_eci(Epoch::from_seconds(3600.0));
        // One hour of Earth rotation at the equator ≈ 1670 km of arc.
        assert!(a.distance(b) > 1.0e6);
    }

    #[test]
    fn surface_distance_quarter_circumference() {
        let a = Geodetic::from_degrees(0.0, 0.0, 0.0);
        let b = Geodetic::from_degrees(0.0, 90.0, 0.0);
        let quarter = core::f64::consts::FRAC_PI_2 * EARTH_RADIUS_M;
        assert!((a.surface_distance_to(b) - quarter).abs() < 1.0);
    }

    fn arb_geodetic() -> impl Strategy<Value = Geodetic> {
        (
            -1.5..1.5f64, // stay away from the exact poles where longitude degenerates
            -3.1..3.1f64,
            0.0..2_000_000.0f64,
        )
            .prop_map(|(lat, lon, alt)| Geodetic::new(lat, lon, alt))
    }

    proptest! {
        #[test]
        fn prop_geodetic_ecef_roundtrip(g in arb_geodetic()) {
            let back = g.to_ecef().to_geodetic();
            prop_assert!((back.latitude_rad - g.latitude_rad).abs() < 1e-9);
            prop_assert!((back.longitude_rad - g.longitude_rad).abs() < 1e-9);
            prop_assert!((back.altitude_m - g.altitude_m).abs() < 1e-4);
        }

        #[test]
        fn prop_eci_ecef_roundtrip(g in arb_geodetic(), t in 0.0..1e6f64) {
            let epoch = Epoch::from_seconds(t);
            let ecef = g.to_ecef();
            let back = ecef.to_eci(epoch).to_ecef(epoch);
            prop_assert!(back.0.distance(ecef.0) < 1e-4);
        }

        #[test]
        fn prop_frame_rotation_preserves_radius(g in arb_geodetic(), t in 0.0..1e6f64) {
            let ecef = g.to_ecef();
            let eci = ecef.to_eci(Epoch::from_seconds(t));
            prop_assert!((eci.0.norm() - ecef.0.norm()).abs() < 1e-4);
        }

        #[test]
        fn prop_surface_distance_symmetric(a in arb_geodetic(), b in arb_geodetic()) {
            let d1 = a.surface_distance_to(b);
            let d2 = b.surface_distance_to(a);
            prop_assert!((d1 - d2).abs() < 1e-4);
        }
    }
}
