//! Geometry and time kernel for the space-booking LSN simulator.
//!
//! This crate provides the low-level math every other layer of the simulator
//! is built on:
//!
//! * [`Vec3`] — a minimal 3-vector with the handful of operations orbital
//!   mechanics needs (dot/cross/norm/rotations about principal axes);
//! * [`coords`] — conversions between geodetic coordinates (latitude,
//!   longitude, altitude), the Earth-Centered Earth-Fixed (ECEF) frame and
//!   the Earth-Centered Inertial (ECI) frame, linked through Greenwich Mean
//!   Sidereal Time;
//! * [`sun`] — a low-precision analytic solar ephemeris and a cylindrical
//!   Earth-shadow (umbra) test used by the satellite energy model;
//! * [`visibility`] — elevation-angle and line-of-sight tests used to decide
//!   when a user-satellite link (USL) exists.
//!
//! # Example
//!
//! ```
//! use sb_geo::{coords::Geodetic, sun, Epoch};
//!
//! // Where is a ground station in the inertial frame at t = 600 s?
//! let gs = Geodetic::new(35.78_f64.to_radians(), -78.64_f64.to_radians(), 0.0);
//! let epoch = Epoch::from_seconds(600.0);
//! let eci = gs.to_ecef().to_eci(epoch);
//!
//! // Is that point in sunlight?
//! let lit = !sun::in_umbra(eci, epoch);
//! # let _ = lit;
//! ```

#![warn(missing_docs)]
pub mod constants;
pub mod coords;
pub mod sun;
pub mod vec3;
pub mod visibility;

pub use constants::*;
pub use vec3::Vec3;

use serde::{Deserialize, Serialize};

/// A simulation epoch: seconds elapsed since the (arbitrary) simulation start.
///
/// The simulator does not need absolute calendar time; all orbital phases are
/// defined relative to the simulation start, which is taken to coincide with
/// a Greenwich sidereal angle of zero. `Epoch` is a newtype so that seconds
/// cannot be confused with time-slot indices.
///
/// # Example
///
/// ```
/// use sb_geo::Epoch;
/// let t = Epoch::from_seconds(120.0);
/// assert_eq!(t.as_seconds(), 120.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Epoch(f64);

impl Epoch {
    /// Creates an epoch from seconds since simulation start.
    pub fn from_seconds(secs: f64) -> Self {
        Epoch(secs)
    }

    /// Seconds since simulation start.
    pub fn as_seconds(self) -> f64 {
        self.0
    }

    /// The Greenwich rotation angle (radians) accumulated since simulation
    /// start, using the sidereal rotation rate of the Earth.
    pub fn gmst(self) -> f64 {
        (self.0 * EARTH_ROTATION_RATE) % core::f64::consts::TAU
    }
}

impl core::fmt::Display for Epoch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t+{:.1}s", self.0)
    }
}

/// Conservative lower bound on the number of hops needed to span
/// `distance_m` when no single hop covers more than `max_hop_m`.
///
/// This is `ceil(distance / max_hop)` computed with a relative slack of
/// `1e-9` applied *before* the ceiling, so floating-point rounding in the
/// division can never push the result above the true bound — the returned
/// count is always admissible as an A* hop heuristic. Degenerate inputs
/// (non-positive distance or hop reach, NaN) yield 0, the trivially
/// admissible bound.
pub fn conservative_hop_count(distance_m: f64, max_hop_m: f64) -> u32 {
    let positive = |x: f64| x.partial_cmp(&0.0) == Some(core::cmp::Ordering::Greater);
    if !positive(distance_m) || !positive(max_hop_m) {
        return 0;
    }
    (distance_m * (1.0 - 1e-9) / max_hop_m).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        let e = Epoch::from_seconds(42.5);
        assert_eq!(e.as_seconds(), 42.5);
        assert_eq!(format!("{e}"), "t+42.5s");
    }

    #[test]
    fn gmst_wraps() {
        let day = core::f64::consts::TAU / EARTH_ROTATION_RATE;
        let e = Epoch::from_seconds(day * 1.5);
        assert!((e.gmst() - core::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn gmst_zero_at_start() {
        assert_eq!(Epoch::from_seconds(0.0).gmst(), 0.0);
    }

    #[test]
    fn hop_count_basic() {
        assert_eq!(conservative_hop_count(0.0, 1000.0), 0);
        assert_eq!(conservative_hop_count(-5.0, 1000.0), 0);
        assert_eq!(conservative_hop_count(1.0, 0.0), 0);
        assert_eq!(conservative_hop_count(f64::NAN, 1000.0), 0);
        assert_eq!(conservative_hop_count(999.0, 1000.0), 1);
        assert_eq!(conservative_hop_count(1000.0, 1000.0), 1);
        assert_eq!(conservative_hop_count(1001.0, 1000.0), 2);
        assert_eq!(conservative_hop_count(2500.0, 1000.0), 3);
    }

    #[test]
    fn hop_count_never_exceeds_true_bound() {
        // For exact multiples the slack must keep the count at d/h, never
        // d/h + 1 from a division that rounds up by one ulp.
        for k in 1..200u32 {
            let h = 1234.567_f64;
            let d = h * k as f64;
            assert_eq!(conservative_hop_count(d, h), k, "k={k}");
        }
    }
}
