//! A minimal 3-vector tailored to orbital geometry.
//!
//! The simulator needs only a handful of vector operations; a dependency-free
//! implementation keeps the numeric core auditable and fast.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component double-precision vector.
///
/// Used for positions and directions in the ECI and ECEF frames (meters for
/// positions, unitless for directions).
///
/// # Example
///
/// ```
/// use sb_geo::Vec3;
/// let x = Vec3::new(1.0, 0.0, 0.0);
/// let y = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(x.dot(y), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root when comparing).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (numerically) zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Distance between two points.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// The angle between two vectors, in radians, in `[0, π]`.
    ///
    /// Robust near parallel/antiparallel configurations (clamps the cosine).
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Rotates the vector by `angle` radians about the +X axis.
    pub fn rotate_x(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 { x: self.x, y: c * self.y - s * self.z, z: s * self.y + c * self.z }
    }

    /// Rotates the vector by `angle` radians about the +Y axis.
    pub fn rotate_y(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 { x: c * self.x + s * self.z, y: self.y, z: -s * self.x + c * self.z }
    }

    /// Rotates the vector by `angle` radians about the +Z axis.
    pub fn rotate_z(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 { x: c * self.x - s * self.y, y: s * self.x + c * self.y, z: self.z }
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl core::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        for ang in [0.1, 1.0, 2.5, -0.7] {
            assert!((v.rotate_x(ang).norm() - 13.0).abs() < 1e-9);
            assert!((v.rotate_y(ang).norm() - 13.0).abs() < 1e-9);
            assert!((v.rotate_z(ang).norm() - 13.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rotate_z_quarter_turn() {
        let v = Vec3::new(1.0, 0.0, 0.0).rotate_z(core::f64::consts::FRAC_PI_2);
        assert!(v.distance(Vec3::new(0.0, 1.0, 0.0)) < 1e-12);
    }

    #[test]
    fn angle_between_axes() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert!((x.angle_to(y) - core::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(x.angle_to(x) < 1e-7);
        assert!((x.angle_to(-x) - core::f64::consts::PI).abs() < 1e-7);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-1e7..1e7f64, -1e7..1e7f64, -1e7..1e7f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_rotation_roundtrip(v in arb_vec3(), ang in -6.0..6.0f64) {
            let back = v.rotate_z(ang).rotate_z(-ang);
            prop_assert!(v.distance(back) < 1e-6 * (1.0 + v.norm()));
        }

        #[test]
        fn prop_triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
        }

        #[test]
        fn prop_normalized_unit(v in arb_vec3()) {
            prop_assume!(v.norm() > 1e-3);
            prop_assert!((v.normalized().norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_cross_anticommutes(a in arb_vec3(), b in arb_vec3()) {
            let lhs = a.cross(b);
            let rhs = -(b.cross(a));
            prop_assert!(lhs.distance(rhs) < 1e-6 * (1.0 + lhs.norm()));
        }
    }
}
