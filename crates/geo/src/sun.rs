//! Solar ephemeris and Earth-shadow (umbra) geometry.
//!
//! The satellite energy model (Fig. 3 of the paper) needs exactly one
//! question answered per satellite per time slot: *is the satellite in
//! sunlight or in the Earth's umbra?* In sunlight the solar panel harvests a
//! fixed power; in umbra the battery discharges.
//!
//! We use a low-precision analytic Sun: the Sun moves on a circular orbit in
//! the ecliptic plane at the mean motion of the Earth's heliocentric orbit.
//! The shadow test is the standard cylindrical-umbra approximation: a
//! satellite is shadowed iff it is on the anti-Sun side of the Earth and its
//! distance from the Earth-Sun axis is less than the Earth radius. At LEO
//! altitudes the penumbra transition lasts under ten seconds — far below the
//! one-minute slot granularity — so a cylinder is an excellent model.

use crate::coords::Eci;
use crate::{Epoch, Vec3, AU_M, EARTH_ORBIT_RATE, EARTH_RADIUS_M, ECLIPTIC_OBLIQUITY_RAD};

/// Unit vector from the Earth's center toward the Sun in the ECI frame at
/// the given epoch.
///
/// The Sun starts at ecliptic longitude 0 (vernal-equinox direction) at
/// simulation start and advances at the Earth's mean heliocentric rate.
///
/// # Example
///
/// ```
/// use sb_geo::{sun, Epoch};
/// let d = sun::sun_direction(Epoch::from_seconds(0.0));
/// assert!((d.norm() - 1.0).abs() < 1e-12);
/// ```
pub fn sun_direction(epoch: Epoch) -> Vec3 {
    let ecliptic_longitude = EARTH_ORBIT_RATE * epoch.as_seconds();
    let in_ecliptic = Vec3::new(ecliptic_longitude.cos(), ecliptic_longitude.sin(), 0.0);
    // Tilt the ecliptic plane into the equatorial ECI frame.
    in_ecliptic.rotate_x(ECLIPTIC_OBLIQUITY_RAD)
}

/// Position of the Sun in the ECI frame (meters).
pub fn sun_position(epoch: Epoch) -> Eci {
    Eci(sun_direction(epoch) * AU_M)
}

/// Returns `true` when the given inertial position lies inside the Earth's
/// cylindrical umbra at the given epoch.
///
/// A point is shadowed iff its projection onto the Sun direction is negative
/// (anti-Sun side) **and** its distance from the Earth-Sun axis is below the
/// Earth radius.
///
/// # Example
///
/// ```
/// use sb_geo::{sun, Epoch, Vec3};
/// use sb_geo::coords::Eci;
/// let t = Epoch::from_seconds(0.0);
/// let s = sun::sun_direction(t);
/// // A point 7000 km directly behind the Earth is in shadow…
/// assert!(sun::in_umbra(Eci(-s * 7.0e6), t));
/// // …while the sub-solar point is lit.
/// assert!(!sun::in_umbra(Eci(s * 7.0e6), t));
/// ```
pub fn in_umbra(position: Eci, epoch: Epoch) -> bool {
    let s = sun_direction(epoch);
    let p = position.0;
    let along = p.dot(s);
    if along >= 0.0 {
        return false; // sunward hemisphere is always lit
    }
    let radial = (p - s * along).norm();
    radial < EARTH_RADIUS_M
}

/// Fraction of a circular-orbit period a satellite at `altitude_m` spends in
/// umbra, assuming the orbit plane contains the Earth-Sun axis (the
/// worst-case, maximum-eclipse geometry).
///
/// Useful for sanity-checking energy budgets: at 550 km the maximum eclipse
/// fraction is ≈ 0.38.
pub fn max_eclipse_fraction(altitude_m: f64) -> f64 {
    let r = EARTH_RADIUS_M + altitude_m;
    // With θ measured from the anti-solar point, the satellite's distance
    // from the shadow axis is r·|sin θ|, so it is shadowed for
    // θ ∈ (−asin(Re/r), +asin(Re/r)): an arc of 2·asin(Re/r) out of 2π.
    (EARTH_RADIUS_M / r).asin() / core::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sun_direction_is_unit() {
        for t in [0.0, 1e4, 1e6, 3e7] {
            assert!((sun_direction(Epoch::from_seconds(t)).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sun_advances_along_ecliptic() {
        let a = sun_direction(Epoch::from_seconds(0.0));
        // Quarter year later the Sun should be ~90° away.
        let quarter_year = core::f64::consts::FRAC_PI_2 / EARTH_ORBIT_RATE;
        let b = sun_direction(Epoch::from_seconds(quarter_year));
        assert!((a.angle_to(b) - core::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn subsolar_point_lit_antisolar_shadowed() {
        let t = Epoch::from_seconds(12345.0);
        let s = sun_direction(t);
        assert!(!in_umbra(Eci(s * (EARTH_RADIUS_M + 550e3)), t));
        assert!(in_umbra(Eci(-s * (EARTH_RADIUS_M + 550e3)), t));
    }

    #[test]
    fn terminator_side_is_lit() {
        let t = Epoch::from_seconds(0.0);
        let s = sun_direction(t);
        // A direction perpendicular to the Sun line, slightly sunward.
        let perp = s.cross(Vec3::new(0.0, 0.0, 1.0)).normalized();
        let p = Eci(perp * (EARTH_RADIUS_M + 550e3));
        assert!(!in_umbra(p, t));
    }

    #[test]
    fn deep_space_behind_earth_but_outside_cylinder_is_lit() {
        let t = Epoch::from_seconds(0.0);
        let s = sun_direction(t);
        let perp = s.cross(Vec3::new(0.0, 0.0, 1.0)).normalized();
        // Behind the Earth along -s, but displaced 3 Earth radii sideways.
        let p = Eci(-s * 4.0e7 + perp * (3.0 * EARTH_RADIUS_M));
        assert!(!in_umbra(p, t));
    }

    #[test]
    fn max_eclipse_fraction_at_550km() {
        let f = max_eclipse_fraction(550e3);
        assert!((f - 0.372).abs() < 0.01, "fraction {f}");
    }

    #[test]
    fn leo_orbit_has_expected_eclipse_fraction() {
        // Simulate one orbit in the ecliptic plane (worst case) and count
        // shadowed samples; expect roughly 35–40% at 550 km.
        let t = Epoch::from_seconds(0.0);
        let s = sun_direction(t);
        let up = Vec3::new(0.0, 0.0, 1.0);
        let e1 = s;
        let e2 = s.cross(up).normalized();
        let r = EARTH_RADIUS_M + 550e3;
        let n = 10_000;
        let shadowed = (0..n)
            .filter(|i| {
                let th = core::f64::consts::TAU * (*i as f64) / n as f64;
                let p = Eci((e1 * th.cos() + e2 * th.sin()) * r);
                in_umbra(p, t)
            })
            .count();
        let frac = shadowed as f64 / n as f64;
        assert!((0.30..0.45).contains(&frac), "eclipse fraction {frac}");
    }

    proptest! {
        #[test]
        fn prop_sunward_never_shadowed(t in 0.0..3.2e7f64, x in -1.0..1.0f64, y in -1.0..1.0f64, z in -1.0..1.0f64, scale in 1.05..10.0f64) {
            let epoch = Epoch::from_seconds(t);
            let dir = Vec3::new(x, y, z);
            prop_assume!(dir.norm() > 1e-3);
            let p = dir.normalized() * (EARTH_RADIUS_M * scale);
            let s = sun_direction(epoch);
            prop_assume!(p.dot(s) > 0.0);
            prop_assert!(!in_umbra(Eci(p), epoch));
        }

        #[test]
        fn prop_umbra_monotone_along_axis(t in 0.0..3.2e7f64, d1 in 1.1..5.0f64, d2 in 1.1..5.0f64) {
            // Any point exactly on the anti-solar axis is shadowed regardless
            // of distance (cylindrical model).
            let epoch = Epoch::from_seconds(t);
            let s = sun_direction(epoch);
            prop_assert!(in_umbra(Eci(-s * (EARTH_RADIUS_M * d1)), epoch));
            prop_assert!(in_umbra(Eci(-s * (EARTH_RADIUS_M * d2)), epoch));
        }
    }
}
