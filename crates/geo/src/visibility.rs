//! Line-of-sight and elevation-angle tests for link existence.
//!
//! Two kinds of visibility matter in an LSN:
//!
//! * **Ground ↔ satellite**: a user-satellite link (USL) exists when the
//!   satellite is above the user's minimum elevation angle (Starlink
//!   terminals use ≈ 25°).
//! * **Satellite ↔ satellite**: an inter-satellite link (ISL) or a
//!   space-user link exists when the straight line between the two does not
//!   intersect the Earth (plus an atmospheric grazing margin) and is within
//!   the terminal's range.

use crate::coords::Eci;
use crate::{Vec3, EARTH_RADIUS_M};

/// Default minimum elevation angle for ground terminals, radians (25°).
pub const DEFAULT_MIN_ELEVATION_RAD: f64 = 25.0 * core::f64::consts::PI / 180.0;

/// Default atmospheric grazing margin for space-space line of sight, meters.
/// Links dipping below ~80 km suffer atmospheric attenuation.
pub const DEFAULT_GRAZING_MARGIN_M: f64 = 80_000.0;

/// Elevation angle (radians) of a target as seen from an observer on or near
/// the Earth's surface.
///
/// Positive when the target is above the observer's local horizon. Both
/// positions must be in the same frame (use ECI at a common epoch).
///
/// # Example
///
/// ```
/// use sb_geo::{visibility, Vec3, EARTH_RADIUS_M};
/// use sb_geo::coords::Eci;
/// let observer = Eci(Vec3::new(EARTH_RADIUS_M, 0.0, 0.0));
/// let overhead = Eci(Vec3::new(EARTH_RADIUS_M + 550e3, 0.0, 0.0));
/// let el = visibility::elevation_angle(observer, overhead);
/// assert!((el - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
/// ```
pub fn elevation_angle(observer: Eci, target: Eci) -> f64 {
    let up = observer.0.normalized();
    let los = target.0 - observer.0;
    if los.norm() == 0.0 {
        return core::f64::consts::FRAC_PI_2;
    }
    core::f64::consts::FRAC_PI_2 - up.angle_to(los)
}

/// Returns `true` when the target is above `min_elevation_rad` as seen from
/// the observer.
pub fn visible_above_elevation(observer: Eci, target: Eci, min_elevation_rad: f64) -> bool {
    elevation_angle(observer, target) >= min_elevation_rad
}

/// Returns `true` when the straight segment between two space positions
/// clears the Earth by at least `grazing_margin_m`.
///
/// This is the ISL / space-user line-of-sight test: the minimum distance
/// from the Earth's center to the segment must exceed
/// `EARTH_RADIUS_M + grazing_margin_m`.
pub fn line_of_sight_clear(a: Eci, b: Eci, grazing_margin_m: f64) -> bool {
    segment_min_distance_to_origin(a.0, b.0) > EARTH_RADIUS_M + grazing_margin_m
}

/// Minimum distance from the origin to the segment `[a, b]`.
fn segment_min_distance_to_origin(a: Vec3, b: Vec3) -> f64 {
    let ab = b - a;
    let len2 = ab.norm_squared();
    if len2 == 0.0 {
        return a.norm();
    }
    // Projection of the origin onto the segment's supporting line, clamped.
    let t = (-a.dot(ab) / len2).clamp(0.0, 1.0);
    (a + ab * t).norm()
}

/// Slant range (meters) from an observer at `observer_alt_m` to a satellite
/// at `sat_alt_m` when the satellite sits exactly at elevation
/// `elevation_rad`. Useful for sizing coverage footprints.
pub fn slant_range(observer_alt_m: f64, sat_alt_m: f64, elevation_rad: f64) -> f64 {
    let r_o = EARTH_RADIUS_M + observer_alt_m;
    let r_s = EARTH_RADIUS_M + sat_alt_m;
    // Law of cosines in the Earth-center / observer / satellite triangle.
    let gamma = elevation_rad + core::f64::consts::FRAC_PI_2;
    // r_s² = r_o² + d² − 2·r_o·d·cos(γ) → solve the quadratic for d ≥ 0.
    let b = -2.0 * r_o * gamma.cos();
    let c = r_o * r_o - r_s * r_s;
    let disc = b * b - 4.0 * c;
    debug_assert!(disc >= 0.0);
    (-b + disc.sqrt()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn surface(lon: f64) -> Eci {
        Eci(Vec3::new(EARTH_RADIUS_M * lon.cos(), EARTH_RADIUS_M * lon.sin(), 0.0))
    }

    #[test]
    fn zenith_satellite_at_90_degrees() {
        let obs = surface(0.0);
        let sat = Eci(obs.0.normalized() * (EARTH_RADIUS_M + 550e3));
        assert!((elevation_angle(obs, sat) - core::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn antipodal_satellite_below_horizon() {
        let obs = surface(0.0);
        let sat = Eci(-obs.0.normalized() * (EARTH_RADIUS_M + 550e3));
        assert!(elevation_angle(obs, sat) < 0.0);
        assert!(!visible_above_elevation(obs, sat, DEFAULT_MIN_ELEVATION_RAD));
    }

    #[test]
    fn isl_through_earth_is_blocked() {
        let a = Eci(Vec3::new(EARTH_RADIUS_M + 550e3, 0.0, 0.0));
        let b = Eci(Vec3::new(-(EARTH_RADIUS_M + 550e3), 0.0, 0.0));
        assert!(!line_of_sight_clear(a, b, DEFAULT_GRAZING_MARGIN_M));
    }

    #[test]
    fn adjacent_satellites_have_clear_los() {
        let r = EARTH_RADIUS_M + 550e3;
        let a = Eci(Vec3::new(r, 0.0, 0.0));
        let b = Eci(Vec3::new(r * 0.1f64.cos(), r * 0.1f64.sin(), 0.0));
        assert!(line_of_sight_clear(a, b, DEFAULT_GRAZING_MARGIN_M));
    }

    #[test]
    fn grazing_margin_blocks_low_passes() {
        // Two satellites whose chord passes 50 km above the surface: clear
        // with zero margin, blocked with the default 80 km margin.
        let r = EARTH_RADIUS_M + 50_000.0;
        let half_angle = (r / (EARTH_RADIUS_M + 550e3)).acos();
        let rs = EARTH_RADIUS_M + 550e3;
        let a = Eci(Vec3::new(rs * half_angle.cos(), -rs * half_angle.sin(), 0.0));
        let b = Eci(Vec3::new(rs * half_angle.cos(), rs * half_angle.sin(), 0.0));
        assert!(line_of_sight_clear(a, b, 0.0));
        assert!(!line_of_sight_clear(a, b, DEFAULT_GRAZING_MARGIN_M));
    }

    #[test]
    fn slant_range_zenith_is_altitude_difference() {
        let d = slant_range(0.0, 550e3, core::f64::consts::FRAC_PI_2);
        assert!((d - 550e3).abs() < 1.0);
    }

    #[test]
    fn slant_range_decreases_with_elevation() {
        let lo = slant_range(0.0, 550e3, 25f64.to_radians());
        let hi = slant_range(0.0, 550e3, 60f64.to_radians());
        assert!(lo > hi);
        // At 25° elevation a 550 km satellite is roughly 1000–1200 km away.
        assert!((0.9e6..1.4e6).contains(&lo), "slant {lo}");
    }

    proptest! {
        #[test]
        fn prop_elevation_symmetric_under_rotation(lon in 0.0..6.28f64, alt in 300e3..2e6f64, off in -0.5..0.5f64) {
            // Rotating both observer and satellite by the same angle about Z
            // leaves the elevation invariant.
            let obs = surface(lon);
            let sat = Eci(Vec3::new(
                (EARTH_RADIUS_M + alt) * (lon + off).cos(),
                (EARTH_RADIUS_M + alt) * (lon + off).sin(),
                0.0,
            ));
            let e1 = elevation_angle(obs, sat);
            let rot = 1.234;
            let e2 = elevation_angle(Eci(obs.0.rotate_z(rot)), Eci(sat.0.rotate_z(rot)));
            prop_assert!((e1 - e2).abs() < 1e-9);
        }

        #[test]
        fn prop_los_symmetric(ax in -1.0..1.0f64, ay in -1.0..1.0f64, bx in -1.0..1.0f64, by in -1.0..1.0f64) {
            let r = EARTH_RADIUS_M + 550e3;
            let a = Eci(Vec3::new(ax, ay, 0.3).normalized() * r);
            let b = Eci(Vec3::new(bx, by, -0.2).normalized() * r);
            prop_assert_eq!(
                line_of_sight_clear(a, b, DEFAULT_GRAZING_MARGIN_M),
                line_of_sight_clear(b, a, DEFAULT_GRAZING_MARGIN_M)
            );
        }
    }
}
