//! Physical constants used across the simulator.
//!
//! Values follow the WGS-84 / IERS conventions at the precision the
//! simulator needs (topology and eclipse geometry, not precision orbit
//! determination).

/// Mean Earth radius in meters (spherical Earth model).
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// Earth's standard gravitational parameter μ = GM, in m³/s².
pub const EARTH_MU: f64 = 3.986_004_418e14;

/// Earth's sidereal rotation rate in rad/s.
pub const EARTH_ROTATION_RATE: f64 = 7.292_115_9e-5;

/// Mean Sun-Earth distance (1 au) in meters.
pub const AU_M: f64 = 1.495_978_707e11;

/// Obliquity of the ecliptic in radians (~23.44°).
pub const ECLIPTIC_OBLIQUITY_RAD: f64 = 0.409_092_8;

/// Mean motion of the Earth around the Sun in rad/s (2π per tropical year).
pub const EARTH_ORBIT_RATE: f64 = 1.991_021e-7;

/// Speed of light in vacuum, m/s. Used for propagation-delay estimates.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Computes the orbital period (seconds) of a circular orbit at the given
/// altitude above the mean Earth radius.
///
/// # Example
///
/// ```
/// // Starlink Shell 1 sits at 550 km: the paper's 96-minute period.
/// let p = sb_geo::circular_orbit_period(550_000.0);
/// assert!((p / 60.0 - 95.6).abs() < 0.5);
/// ```
pub fn circular_orbit_period(altitude_m: f64) -> f64 {
    let a = EARTH_RADIUS_M + altitude_m;
    core::f64::consts::TAU * (a * a * a / EARTH_MU).sqrt()
}

/// Computes the circular orbital velocity (m/s) at the given altitude.
pub fn circular_orbit_velocity(altitude_m: f64) -> f64 {
    ((EARTH_MU) / (EARTH_RADIUS_M + altitude_m)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leo_period_matches_paper() {
        // The paper: "96 minutes corresponds to the orbital period".
        let p_min = circular_orbit_period(550_000.0) / 60.0;
        assert!((95.0..97.0).contains(&p_min), "period {p_min} min");
    }

    #[test]
    fn velocity_decreases_with_altitude() {
        assert!(circular_orbit_velocity(500_000.0) > circular_orbit_velocity(2_000_000.0));
    }

    #[test]
    fn period_increases_with_altitude() {
        assert!(circular_orbit_period(500_000.0) < circular_orbit_period(1_200_000.0));
    }
}
