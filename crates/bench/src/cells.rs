//! Shared sweep-cell enumeration for the figure binaries.
//!
//! Each sweep is a flat list of [`SweepCell`]s in a deterministic
//! (config, algorithm, seed) order. Both dispatch modes — the in-process
//! `--jobs` runner and the `--fleet` process coordinator — consume the
//! same list and return results in the same order, which is what makes
//! their CSVs byte-identical. The aggregation code in the binaries
//! re-walks the same nesting to chunk the flat result vector.

use sb_cear::RepairPolicy;
use sb_fleet::SweepCell;
use sb_sim::engine::AlgorithmKind;
use sb_sim::{ScenarioConfig, UnforeseenFailures};
use sb_topology::failures::{FailureModel, GilbertElliottModel, LinkFailureModel, NodeOutageModel};

/// Fig. 6 arrival-rate multipliers over the scenario's base rate.
pub const FIG6_RATE_MULTIPLIERS: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 2.5];

/// The foreseen ISL failure probabilities of the robustness study.
pub const FORESIGHT_PROBS: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];

/// The unforeseen failure intensities of the robustness study.
pub const UNFORESEEN_PROBS: [f64; 2] = [0.05, 0.1];

/// Fig. 6's absolute arrival rates for a scenario.
pub fn fig6_rates(scenario: &ScenarioConfig) -> Vec<f64> {
    FIG6_RATE_MULTIPLIERS.iter().map(|m| m * scenario.arrivals_per_slot).collect()
}

/// Fig. 6 cells: every (rate, algorithm, seed), rates outermost.
pub fn fig6_cells(scenario: &ScenarioConfig, seeds: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &rate in &fig6_rates(scenario) {
        let mut s = scenario.clone();
        s.arrivals_per_slot = rate;
        for kind in AlgorithmKind::all(&s) {
            for seed in 0..seeds {
                cells.push(SweepCell {
                    label: format!("fig6-r{rate:.2}-{}", kind.name()),
                    scenario: s.clone(),
                    kind,
                    seed,
                });
            }
        }
    }
    cells
}

/// The unforeseen failure models exercised at intensity `p`, in report
/// order.
pub fn failure_models(p: f64) -> [(&'static str, FailureModel); 3] {
    [
        ("independent", FailureModel::IndependentLinks(LinkFailureModel::new(p, 0xfa11))),
        // A tenth of the link rate: a whole satellite dying for 1–5
        // slots takes out dozens of links at once.
        ("node-outage", FailureModel::NodeOutages(NodeOutageModel::new(p / 10.0, 1, 5, 0xfa11))),
        ("ge-burst", FailureModel::GilbertElliott(GilbertElliottModel::new(p, 0.3, 0xfa11))),
    ]
}

/// Robustness part 1: the foresight sweep — every (probability,
/// algorithm, seed), probabilities outermost.
pub fn robustness_foresight_cells(scenario: &ScenarioConfig, seeds: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &p in &FORESIGHT_PROBS {
        let mut s = scenario.clone();
        s.isl_failure_prob = p;
        for kind in AlgorithmKind::all(&s) {
            let label = format!("foresight-p{:03}-{}", (p * 100.0).round() as u32, kind.name());
            for seed in 0..seeds {
                cells.push(SweepCell { label: label.clone(), scenario: s.clone(), kind, seed });
            }
        }
    }
    cells
}

/// Robustness part 2: the unforeseen sweep — CEAR under every
/// (intensity, failure model, repair policy, seed).
///
/// `prepare` and `workload` ignore the `unforeseen` field, so all cells
/// of one seed share a single prepared network through the cache (and a
/// fleet worker recomputing from the cell's own scenario builds the
/// identical one).
pub fn robustness_unforeseen_cells(scenario: &ScenarioConfig, seeds: u64) -> Vec<SweepCell> {
    let kind = AlgorithmKind::Cear(scenario.cear);
    let mut cells = Vec::new();
    for &p in &UNFORESEEN_PROBS {
        for (model_name, model) in failure_models(p) {
            for policy in RepairPolicy::all() {
                let mut s = scenario.clone();
                s.unforeseen = Some(UnforeseenFailures { model, policy });
                let label = format!(
                    "unforeseen-p{:03}-{model_name}-{}",
                    (p * 100.0).round() as u32,
                    policy.name()
                );
                for seed in 0..seeds {
                    cells.push(SweepCell { label: label.clone(), scenario: s.clone(), kind, seed });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_enumeration_is_flat_and_ordered() {
        let scenario = ScenarioConfig::tiny();
        let cells = fig6_cells(&scenario, 2);
        let algos = AlgorithmKind::all(&scenario).len();
        assert_eq!(cells.len(), FIG6_RATE_MULTIPLIERS.len() * algos * 2);
        // Seeds innermost: consecutive cells share a label.
        assert_eq!(cells[0].label, cells[1].label);
        assert_eq!((cells[0].seed, cells[1].seed), (0, 1));
    }

    #[test]
    fn robustness_enumeration_matches_report_order() {
        let scenario = ScenarioConfig::tiny();
        let fore = robustness_foresight_cells(&scenario, 1);
        let algos = AlgorithmKind::all(&scenario).len();
        assert_eq!(fore.len(), FORESIGHT_PROBS.len() * algos);
        assert!(fore[0].label.starts_with("foresight-p000-"));

        let unf = robustness_unforeseen_cells(&scenario, 1);
        assert_eq!(unf.len(), UNFORESEEN_PROBS.len() * 3 * RepairPolicy::all().len());
        assert!(unf.iter().all(|c| c.scenario.unforeseen.is_some()));
        assert!(unf[0].label.starts_with("unforeseen-p005-independent-"));
    }
}
