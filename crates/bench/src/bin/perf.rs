//! Performance measurement harness: times the sweep runner serially and in
//! parallel, the speculative slot-parallel admission quote, plus the two
//! hot-path micro-kernels (search arena, price cache), and emits
//! machine-readable `BENCH_perf.json`.
//!
//! ```text
//! cargo run -p sb-bench --release --bin perf -- --scale fast --jobs 4
//! ```
//!
//! The sweep section runs the fig6-style (algorithm × seed) grid once with
//! one worker and once with `--jobs` workers, asserting the two result
//! vectors are bit-identical (the parallel runner's determinism contract)
//! before reporting the speedup. The quote section times a multi-slot CEAR
//! admission quote serially and with `--quote-threads` workers (defaulting
//! to the host parallelism when the flag is absent), asserts bitwise
//! equality, and reports the speculation hit rate. The micro section
//! measures the per-slot path search with and without the reusable
//! [`sb_cear::SearchScratch`] arena, and the exponential unit price via
//! `powf` against the epoch-validated [`sb_cear::PriceCache`].
//!
//! The topology section times `engine::prepare` with a serial and a
//! `--build-threads`-wide parallel series build (asserting the two are
//! bit-identical), micro-benchmarks one `build_snapshot` call, and replays
//! the sweep grid against the shared [`sb_sim::PreparedCache`] to report
//! its hit/miss tally.
//!
//! The search section compares the admission kernels three ways: raw
//! per-slot search (Dijkstra vs goal-directed A\* vs a cached settled-tree
//! read), full CEAR quotes under each kernel (asserted bit-identical, with
//! per-kernel [`sb_cear::SearchStats`] work counters), and the SPT cache
//! tallies both for the quote loop and across one serial pass of the
//! sweep grid. The scaling section reruns the sweep grid at fixed worker
//! counts (1, 2, 4, 8, 16) against pre-built networks, reporting cells/s
//! per point and flagging points that oversubscribe the host.
//!
//! The report carries the host's available parallelism alongside `--jobs`,
//! `--quote-threads` and `--build-threads`, so a disappointing speedup
//! measured on a 1-core container is machine-readably distinguishable from
//! a real regression.

use sb_bench::{parse_args, run_cells};
use sb_cear::search::{
    min_cost_path, min_cost_path_in, min_cost_path_with, path_via_tree, settle_tree_in,
    EdgeContext, HopBoundHeuristic,
};
use sb_cear::{
    global_spt_stats, pricing, reset_global_spt_stats, Cear, CearParams, NetworkState, PriceCache,
    SearchKind, SearchScratch,
};
use sb_demand::{RateProfile, Request, RequestId};
use sb_energy::EnergyParams;
use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::PreparedCache;
use sb_topology::graph::EdgeId;
use sb_topology::series::build_snapshot;
use sb_topology::{NetworkNodes, SeriesPackage, SlotIndex, TopologyConfig, TopologySeries};
use std::hint::black_box;
use std::time::Instant;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), `None` off Linux or when the field is absent.
fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// `Some(n)` → `n`, `None` → JSON `null`.
fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

fn micro_network(slots: usize) -> (NetworkState, sb_topology::NodeId, sb_topology::NodeId) {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &cfg, slots, 60.0);
    (NetworkState::new(series, &EnergyParams::default()), a, b)
}

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let scenario = opts.scenario.clone();

    // ---- Sweep timing: (algorithm × seed) grid, 1 worker vs N ----------
    let cells: Vec<(AlgorithmKind, u64)> = AlgorithmKind::all(&scenario)
        .into_iter()
        .flat_map(|kind| (0..opts.seeds).map(move |seed| (kind, seed)))
        .collect();
    let run = |_: usize, c: &(AlgorithmKind, u64)| {
        let (kind, seed) = c;
        let prepared = engine::prepare(&scenario, *seed);
        let requests = engine::workload(&scenario, &prepared, *seed);
        engine::run_prepared(&scenario, &prepared, &requests, kind, *seed)
    };
    eprintln!("sweep: {} cells, serial pass…", cells.len());
    reset_global_spt_stats();
    let t = Instant::now();
    let serial = run_cells(1, &cells, run);
    let serial_s = t.elapsed().as_secs_f64();
    // One clean pass of the fig6-style grid through the default A*+SPT
    // kernel: the process-wide tallies tell us how often the admission
    // searches reused a cached tree across the whole sweep.
    let sweep_spt = global_spt_stats();
    eprintln!("sweep: parallel pass with {} workers…", opts.jobs);
    let t = Instant::now();
    let parallel = run_cells(opts.jobs, &cells, run);
    let parallel_s = t.elapsed().as_secs_f64();
    let deterministic = serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.social_welfare_ratio.to_bits() == b.social_welfare_ratio.to_bits());
    assert!(deterministic, "parallel sweep diverged from the serial run");
    let speedup = serial_s / parallel_s;
    eprintln!("sweep: serial {serial_s:.2}s, parallel {parallel_s:.2}s, speedup {speedup:.2}x");

    // ---- Scaling: the same grid at fixed worker counts -----------------
    // Prepared networks are warmed through the shared cache first, so the
    // curve measures admission throughput, not repeated topology builds.
    // Points beyond the host's parallelism are still measured (and
    // flagged): an honest curve shows where oversubscription flattens it.
    let host = sb_bench::default_jobs();
    let scale_cache = PreparedCache::new(opts.build_threads);
    for seed in 0..opts.seeds {
        black_box(scale_cache.get(&scenario, seed));
    }
    let scale_run = |_: usize, c: &(AlgorithmKind, u64)| {
        let (kind, seed) = c;
        let prepared = scale_cache.get(&scenario, *seed);
        let requests = engine::workload(&scenario, &prepared, *seed);
        engine::run_prepared(&scenario, &prepared, &requests, kind, *seed)
    };
    let mut scaling: Vec<(usize, f64, f64, bool)> = Vec::new();
    for jobs in [1usize, 2, 4, 8, 16] {
        let t = Instant::now();
        let metrics = run_cells(jobs, &cells, scale_run);
        let wall_s = t.elapsed().as_secs_f64();
        let same = metrics
            .iter()
            .zip(&serial)
            .all(|(a, b)| a.social_welfare_ratio.to_bits() == b.social_welfare_ratio.to_bits());
        assert!(same, "scaling sweep with {jobs} workers diverged from the serial run");
        let cells_per_s = cells.len() as f64 / wall_s;
        let overcommitted = jobs > host;
        eprintln!(
            "scaling: {jobs} jobs → {wall_s:.2}s, {cells_per_s:.2} cells/s{}",
            if overcommitted { " [overcommitted]" } else { "" }
        );
        scaling.push((jobs, wall_s, cells_per_s, overcommitted));
    }

    // ---- Quote: serial vs speculative slot-parallel admission ----------
    // A 12-slot horizon gives the quote 12 per-slot searches to fan out;
    // one committed reservation makes the quoted state non-trivial.
    let quote_threads =
        if opts.quote_threads > 1 { opts.quote_threads } else { sb_bench::default_jobs() };
    let (mut qstate, qsrc, qdst) = micro_network(12);
    let params = CearParams::default();
    let mk_request = |id: u32, rate: f64| Request {
        id: RequestId(id),
        source: qsrc,
        destination: qdst,
        rate: RateProfile::Constant(rate),
        start: SlotIndex(0),
        end: SlotIndex(11),
        valuation: f64::MAX,
    };
    // Rates are kept solar-covered (consumption within each slot's
    // harvest): that is the regime where speculation validates — a slot
    // that draws on the battery propagates into later slots' solar
    // budget, so the request's own earlier commits would perturb every
    // later deficit trace and force the serial fallback. That divergence
    // regime is covered by the parquote property tests; here we measure
    // what the parallel phase buys when it validates.
    {
        use sb_cear::RoutingAlgorithm;
        let mut warm = Cear::new(params);
        black_box(warm.process(&mk_request(0, 30.0), &mut qstate));
    }
    let quote_requests: Vec<Request> =
        (0..16).map(|id| mk_request(100 + id, 10.0 + 2.0 * id as f64)).collect();
    let quote_passes = 12u32;
    let serial_cear = Cear::new(params);
    let t = Instant::now();
    let mut serial_quotes = Vec::new();
    for _ in 0..quote_passes {
        serial_quotes.clear();
        for r in &quote_requests {
            serial_quotes.push(black_box(serial_cear.quote(r, &qstate)));
        }
    }
    let quote_serial_us =
        t.elapsed().as_secs_f64() * 1e6 / (quote_passes as usize * quote_requests.len()) as f64;
    let parallel_cear = Cear::new(params).with_quote_threads(quote_threads);
    let t = Instant::now();
    let mut parallel_quotes = Vec::new();
    for _ in 0..quote_passes {
        parallel_quotes.clear();
        for r in &quote_requests {
            parallel_quotes.push(black_box(parallel_cear.quote(r, &qstate)));
        }
    }
    let quote_parallel_us =
        t.elapsed().as_secs_f64() * 1e6 / (quote_passes as usize * quote_requests.len()) as f64;
    let quote_deterministic =
        serial_quotes.iter().zip(&parallel_quotes).all(|(a, b)| match (a, b) {
            (Ok((pa, qa)), Ok((pb, qb))) => pa == pb && qa.to_bits() == qb.to_bits(),
            (a, b) => a == b,
        });
    assert!(quote_deterministic, "speculative quote diverged from the serial path");
    let quote_stats = parallel_cear.quote_stats();
    let quote_speedup = quote_serial_us / quote_parallel_us;
    eprintln!(
        "quote: serial {quote_serial_us:.1}µs, {quote_threads}-thread {quote_parallel_us:.1}µs, \
         speedup {quote_speedup:.2}x, hit rate {:.3}",
        quote_stats.hit_rate()
    );

    // ---- Quote: reference Dijkstra vs goal-directed A* + SPT -----------
    // Same request stream, same state, serial quoting — only the search
    // kernel differs. The quotes must agree bit for bit; the timing and
    // the per-kernel search counters quantify what goal direction and
    // tree reuse buy inside a real admission.
    let reference_cear = Cear::new(params).with_search(SearchKind::Reference);
    let t = Instant::now();
    let mut reference_quotes = Vec::new();
    for _ in 0..quote_passes {
        reference_quotes.clear();
        for r in &quote_requests {
            reference_quotes.push(black_box(reference_cear.quote(r, &qstate)));
        }
    }
    let quote_reference_us =
        t.elapsed().as_secs_f64() * 1e6 / (quote_passes as usize * quote_requests.len()) as f64;
    let astar_cear = Cear::new(params);
    let t = Instant::now();
    let mut astar_quotes = Vec::new();
    for _ in 0..quote_passes {
        astar_quotes.clear();
        for r in &quote_requests {
            astar_quotes.push(black_box(astar_cear.quote(r, &qstate)));
        }
    }
    let quote_astar_us =
        t.elapsed().as_secs_f64() * 1e6 / (quote_passes as usize * quote_requests.len()) as f64;
    let kernels_agree = reference_quotes.iter().zip(&astar_quotes).all(|(a, b)| match (a, b) {
        (Ok((pa, qa)), Ok((pb, qb))) => pa == pb && qa.to_bits() == qb.to_bits(),
        (a, b) => a == b,
    });
    assert!(kernels_agree, "A* quote diverged from the reference kernel");
    let reference_search = reference_cear.quote_stats().search;
    let astar_all = astar_cear.quote_stats();
    let (astar_search, astar_spt) = (astar_all.search, astar_all.spt);
    let quote_search_speedup = quote_reference_us / quote_astar_us;
    eprintln!(
        "search quote: reference {quote_reference_us:.1}µs, astar {quote_astar_us:.1}µs, \
         speedup {quote_search_speedup:.2}x, spt hit rate {:.3}",
        astar_spt.hit_rate()
    );

    // Re-quoting one request against an unchanged state (the online
    // service's conflict-retry pattern) is where the SPT cache engages:
    // the interleaved rates above keep it at the promotion gate, but a
    // repeated identical quote promotes after two sightings and every
    // later per-slot search is a cached tree read.
    let repeat_request = mk_request(999, 21.0);
    let repeats = 64u32;
    let repeat_reference = Cear::new(params).with_search(SearchKind::Reference);
    let repeat_astar = Cear::new(params);
    for cear in [&repeat_reference, &repeat_astar] {
        for _ in 0..2 {
            let _ = black_box(cear.quote(&repeat_request, &qstate));
        }
    }
    let t = Instant::now();
    for _ in 0..repeats {
        let _ = black_box(repeat_reference.quote(&repeat_request, &qstate));
    }
    let repeat_reference_us = t.elapsed().as_secs_f64() * 1e6 / repeats as f64;
    let t = Instant::now();
    for _ in 0..repeats {
        let _ = black_box(repeat_astar.quote(&repeat_request, &qstate));
    }
    let repeat_astar_us = t.elapsed().as_secs_f64() * 1e6 / repeats as f64;
    let repeat_agree = match (
        repeat_reference.quote(&repeat_request, &qstate),
        repeat_astar.quote(&repeat_request, &qstate),
    ) {
        (Ok((pa, qa)), Ok((pb, qb))) => pa == pb && qa.to_bits() == qb.to_bits(),
        (a, b) => a == b,
    };
    assert!(repeat_agree, "cached-tree repeat quote diverged from the reference kernel");
    let repeat_spt = repeat_astar.quote_stats().spt;
    let repeat_speedup = repeat_reference_us / repeat_astar_us;
    eprintln!(
        "search repeat quote: reference {repeat_reference_us:.1}µs, astar+spt \
         {repeat_astar_us:.1}µs, speedup {repeat_speedup:.2}x, spt hit rate {:.3}",
        repeat_spt.hit_rate()
    );

    // ---- Micro: per-slot search, fresh allocation vs reused arena ------
    let (state, src, dst) = micro_network(4);
    let snap = state.series().snapshot(SlotIndex(0));
    let iters = 300u32;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path(snap, src, dst, |ctx| Some(1.0 + ctx.edge.length_m * 1e-9)));
    }
    let fresh_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let mut scratch = SearchScratch::new();
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path_in(&mut scratch, snap, src, dst, |ctx| {
            Some(1.0 + ctx.edge.length_m * 1e-9)
        }));
    }
    let scratch_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    eprintln!("search: fresh {fresh_us:.1}µs, arena {scratch_us:.1}µs");

    // ---- Micro: search kernels — Dijkstra vs A* vs settled tree --------
    // An undirected BFS from the destination yields an admissible hop
    // lower bound for this raw-kernel comparison (the engine derives its
    // bounds from geometry; any valid bound drives the same machinery).
    // Every edge below costs at least 1.0, so 0.999 underestimates any
    // single hop.
    let weight = |ctx: &EdgeContext<'_>| Some(1.0 + ctx.edge.length_m * 1e-9);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); snap.num_nodes()];
    for edge in snap.edges() {
        adj[edge.src.index()].push(edge.dst.0);
        adj[edge.dst.index()].push(edge.src.0);
    }
    let mut hops_lb = vec![u32::MAX; snap.num_nodes()];
    hops_lb[dst.index()] = 0;
    let mut frontier = std::collections::VecDeque::from([dst.0]);
    while let Some(n) = frontier.pop_front() {
        let d = hops_lb[n as usize];
        for &m in &adj[n as usize] {
            if hops_lb[m as usize] == u32::MAX {
                hops_lb[m as usize] = d + 1;
                frontier.push_back(m);
            }
        }
    }
    for h in &mut hops_lb {
        if *h == u32::MAX {
            *h = 0; // unreachable: no useful bound, 0 stays admissible
        }
    }
    let heuristic = HopBoundHeuristic { hops_lb: &hops_lb, unit: 0.999 };
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path_with(&mut scratch, snap, src, dst, &heuristic, weight));
    }
    let astar_kernel_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let tree = settle_tree_in(&mut scratch, snap, src, weight);
    let t = Instant::now();
    for _ in 0..iters {
        black_box(path_via_tree(&tree, snap, src, dst, weight));
    }
    let tree_kernel_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let reference_found = min_cost_path_in(&mut scratch, snap, src, dst, weight);
    let astar_found = min_cost_path_with(&mut scratch, snap, src, dst, &heuristic, weight);
    let tree_found = path_via_tree(&tree, snap, src, dst, weight);
    assert!(
        reference_found == astar_found && astar_found == tree_found,
        "search kernels disagree on the micro network"
    );
    eprintln!(
        "search kernels: dijkstra {scratch_us:.1}µs, astar {astar_kernel_us:.1}µs, \
         tree read {tree_kernel_us:.1}µs"
    );

    // ---- Micro: exponential unit price, powf vs cached -----------------
    let slot = SlotIndex(0);
    let n_edges = snap.num_edges();
    let passes = 100usize;
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..passes {
        for e in 0..n_edges {
            acc += pricing::unit_price(params.mu1(), state.utilization(slot, EdgeId(e as u32)));
        }
    }
    black_box(acc);
    let powf_ns = t.elapsed().as_secs_f64() * 1e9 / (passes * n_edges) as f64;
    let mut cache = PriceCache::new(params.mu1(), params.mu2());
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..passes {
        for e in 0..n_edges {
            acc += cache.link_unit_price(&state, slot, EdgeId(e as u32));
        }
    }
    black_box(acc);
    let cached_ns = t.elapsed().as_secs_f64() * 1e9 / (passes * n_edges) as f64;
    eprintln!("unit price: powf {powf_ns:.1}ns, cached {cached_ns:.1}ns");

    // ---- Topology: serial vs parallel build, cache tally ---------------
    let build_threads = opts.build_threads;
    eprintln!("topology: serial prepare…");
    let t = Instant::now();
    let serial_prepared = engine::prepare(&scenario, 0);
    let build_serial_s = t.elapsed().as_secs_f64();
    eprintln!("topology: parallel prepare with {build_threads} build threads…");
    let t = Instant::now();
    let parallel_prepared = engine::prepare_with(&scenario, 0, build_threads);
    let build_parallel_s = t.elapsed().as_secs_f64();
    let build_deterministic = serial_prepared.pairs == parallel_prepared.pairs
        && serial_prepared.series.as_ref() == parallel_prepared.series.as_ref();
    assert!(build_deterministic, "parallel topology build diverged from the serial one");
    let build_speedup = build_serial_s / build_parallel_s;
    eprintln!(
        "topology: serial {build_serial_s:.2}s, parallel {build_parallel_s:.2}s, \
         speedup {build_speedup:.2}x"
    );

    // Per-slot build cost on the micro shell (16×16 + 2 ground users).
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut bench_nodes = NetworkNodes::from_walker(&shell);
    bench_nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    bench_nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let bench_cfg = TopologyConfig::default();
    let slot_iters = 16u32;
    let t = Instant::now();
    for i in 0..slot_iters {
        black_box(build_snapshot(
            &bench_nodes,
            &bench_cfg,
            SlotIndex(i),
            sb_geo::Epoch::from_seconds(i as f64 * 60.0),
        ));
    }
    let slot_build_us = t.elapsed().as_secs_f64() * 1e6 / slot_iters as f64;
    eprintln!("topology: per-slot build {slot_build_us:.1}µs (16×16 shell)");

    // Replay the sweep grid through the shared cache: the five algorithm
    // cells of each seed collapse to one build.
    let cache = PreparedCache::new(build_threads);
    for (_, seed) in &cells {
        black_box(cache.get(&scenario, *seed));
    }
    let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
    let cache_hit_rate = cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64;
    eprintln!(
        "topology: cache replay of {} cells — {cache_hits} hits, {cache_misses} misses",
        cells.len()
    );

    // ---- Memory: delta-compiled vs full-rebuild representation ---------
    // The same scenario series built both ways. The delta builder shares
    // one static ISL template across slots, so its per-slot *marginal*
    // bytes must be a fraction of the dense per-slot footprint.
    let delta_series = &serial_prepared.series;
    // `SB_FULL_REBUILD=1` routes the same prepare path through the dense
    // per-slot builder — identical node table, identical series content,
    // dense representation.
    std::env::set_var("SB_FULL_REBUILD", "1");
    let full_prepared = engine::prepare(&scenario, 0);
    std::env::remove_var("SB_FULL_REBUILD");
    let full_series = &full_prepared.series;
    assert!(
        full_series.as_ref() == delta_series.as_ref(),
        "delta series must equal the full rebuild"
    );
    let slots = scenario.horizon_slots.max(1);
    let delta_marginal_per_slot = delta_series
        .snapshots()
        .iter()
        .map(sb_topology::TopologySnapshot::marginal_heap_bytes)
        .sum::<usize>()
        / slots;
    let dense_per_slot = full_series
        .snapshots()
        .iter()
        .map(sb_topology::TopologySnapshot::marginal_heap_bytes)
        .sum::<usize>()
        / slots;
    let memory_ratio = dense_per_slot as f64 / delta_marginal_per_slot.max(1) as f64;
    let memory_rss = peak_rss_bytes();
    eprintln!(
        "memory: delta marginal {delta_marginal_per_slot} B/slot, dense {dense_per_slot} B/slot, \
         ratio {memory_ratio:.2}x"
    );

    // ---- Mega: two-shell 10k-satellite build under a memory ceiling ----
    let mega = sb_sim::ScenarioConfig::mega();
    let mut mega_shells = vec![WalkerConstellation::delta(
        mega.planes,
        mega.sats_per_plane,
        mega.phasing,
        mega.altitude_m,
        mega.inclination_deg.to_radians(),
    )];
    for s in &mega.extra_shells {
        mega_shells.push(WalkerConstellation::delta(
            s.planes,
            s.sats_per_plane,
            s.phasing,
            s.altitude_m,
            s.inclination_deg.to_radians(),
        ));
    }
    let mut mega_nodes = NetworkNodes::from_shells(&mega_shells);
    mega_nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    mega_nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    for eo in sb_orbit::eo::synthetic_fleet(4) {
        mega_nodes.add_space_user(eo);
    }
    eprintln!(
        "mega: building {} satellites × {} slots with {build_threads} threads…",
        mega.total_satellites(),
        mega.horizon_slots
    );
    let t = Instant::now();
    let mega_series = TopologySeries::build_par(
        &mega_nodes,
        &mega.topology,
        mega.horizon_slots,
        mega.slot_duration_s,
        build_threads,
    );
    let mega_build_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mega_full = TopologySeries::build_full_par(
        &mega_nodes,
        &mega.topology,
        mega.horizon_slots,
        mega.slot_duration_s,
        build_threads,
    );
    let mega_full_build_s = t.elapsed().as_secs_f64();
    assert!(mega_series == mega_full, "mega delta series must equal the full rebuild");
    let mega_heap = mega_series.heap_bytes();
    let mega_dense_heap = mega_full.heap_bytes();
    let mega_slots = mega.horizon_slots.max(1);
    let mega_marginal_per_slot = mega_series
        .snapshots()
        .iter()
        .map(sb_topology::TopologySnapshot::marginal_heap_bytes)
        .sum::<usize>()
        / mega_slots;
    let mega_dense_per_slot = mega_full
        .snapshots()
        .iter()
        .map(sb_topology::TopologySnapshot::marginal_heap_bytes)
        .sum::<usize>()
        / mega_slots;
    let mega_ratio = mega_dense_per_slot as f64 / mega_marginal_per_slot.max(1) as f64;
    // Ceiling on the retained series representation: the shared template
    // plus per-slot dynamic state for two dense shells must stay far below
    // the dense-per-slot regime. 256 MiB leaves ~8× headroom over the
    // measured footprint while still catching an accidental return to
    // per-slot cloning.
    const MEGA_HEAP_CEILING_BYTES: usize = 256 << 20;
    assert!(
        mega_heap <= MEGA_HEAP_CEILING_BYTES,
        "mega series heap {mega_heap} B exceeds the {MEGA_HEAP_CEILING_BYTES} B ceiling"
    );
    assert!(
        mega_ratio >= 5.0,
        "mega per-slot marginal memory ratio {mega_ratio:.2}x is below the required 5x"
    );
    let mega_rss = peak_rss_bytes();
    eprintln!(
        "mega: delta build {mega_build_s:.2}s, full rebuild {mega_full_build_s:.2}s, \
         heap {:.1} MiB vs dense {:.1} MiB, marginal ratio {mega_ratio:.2}x",
        mega_heap as f64 / (1 << 20) as f64,
        mega_dense_heap as f64 / (1 << 20) as f64,
    );

    // ---- Fleet: wire-shipped series vs per-worker rebuild --------------
    // The coordinator compiles each distinct (prepare_digest, seed) series
    // once and ships the checksummed package; workers decode + materialize
    // instead of rebuilding. Measured here: package compile/encode cost,
    // wire bytes vs the dense snapshot bytes (the delta compression must
    // carry to the wire), the worker's two preparation paths, and the
    // affinity hit rate of the scheduler routing the sweep grid.
    let t = Instant::now();
    let package = engine::compile_series_package(&scenario, 0);
    let fleet_compile_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let wire = package.encode();
    let fleet_encode_s = t.elapsed().as_secs_f64();
    let wire_bytes = wire.len();
    let dense_snapshot_bytes = dense_per_slot * slots;
    let wire_ratio = dense_snapshot_bytes as f64 / wire_bytes.max(1) as f64;
    assert!(
        wire_ratio >= 5.0,
        "wire bytes {wire_bytes} must undercut dense snapshot bytes {dense_snapshot_bytes} \
         by ≥5x, got {wire_ratio:.2}x"
    );

    // The worker's shipped path: decode, materialize, prepare.
    let t = Instant::now();
    let decoded = SeriesPackage::decode(&wire).expect("self-encoded package must decode");
    let shipped_series =
        std::sync::Arc::new(decoded.materialize().expect("self-encoded package must materialize"));
    let shipped_prepared = engine::prepare_from_series(&scenario, 0, &shipped_series);
    let fleet_ship_prep_s = t.elapsed().as_secs_f64();
    // The worker's fallback path: rebuild everything locally.
    let t = Instant::now();
    let rebuilt_prepared = engine::prepare_with(&scenario, 0, build_threads);
    let fleet_rebuild_prep_s = t.elapsed().as_secs_f64();
    let fleet_prep_speedup = fleet_rebuild_prep_s / fleet_ship_prep_s.max(1e-9);
    assert!(
        shipped_prepared.pairs == rebuilt_prepared.pairs
            && shipped_prepared.series.as_ref() == rebuilt_prepared.series.as_ref(),
        "shipped preparation must be bit-identical to the local rebuild"
    );
    eprintln!(
        "fleet: package compile {fleet_compile_s:.3}s + encode {fleet_encode_s:.3}s, \
         {:.1} KiB wire vs {:.1} KiB dense ({wire_ratio:.1}x); prep shipped \
         {fleet_ship_prep_s:.3}s vs rebuilt {fleet_rebuild_prep_s:.3}s ({fleet_prep_speedup:.2}x)",
        wire_bytes as f64 / 1024.0,
        dense_snapshot_bytes as f64 / 1024.0,
    );

    // Affinity routing over the sweep grid, on the pure scheduler with a
    // fake clock: every cell of one seed shares a (prepare_digest, seed)
    // key, so with 4 workers the hit rate shows how often a cell landed
    // on a worker already holding its series.
    let fleet_workers = 4usize;
    let affinity_keys: Vec<u64> = cells
        .iter()
        .map(|(_, seed)| {
            let mut w = sb_wire::Writer::new();
            w.u64(engine::prepare_digest(&scenario));
            w.u64(*seed);
            sb_wire::checksum(&w.into_bytes())
        })
        .collect();
    let distinct_series = {
        let mut keys = affinity_keys.clone();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    let mut sim = sb_fleet::sched::Scheduler::new(
        cells.len(),
        fleet_workers,
        sb_fleet::sched::SchedConfig::default(),
    );
    sim.set_affinity(affinity_keys);
    for w in 0..fleet_workers {
        sim.on_worker_ready(w, 0);
    }
    let mut sim_now = 0u64;
    let mut sim_running: Vec<(usize, usize, u64)> = Vec::new();
    while !sim.is_complete() {
        for action in sim.tick(sim_now) {
            if let sb_fleet::sched::Action::Dispatch { worker, cell, .. } = action {
                sim_running.push((worker, cell, sim_now + 10));
            }
        }
        let Some(next) = sim_running.iter().map(|&(_, _, t)| t).min() else {
            break;
        };
        sim_now = next;
        let finished: Vec<(usize, usize)> = sim_running
            .iter()
            .filter(|&&(_, _, t)| t == sim_now)
            .map(|&(w, c, _)| (w, c))
            .collect();
        sim_running.retain(|&(_, _, t)| t != sim_now);
        for (w, c) in finished {
            sim.on_done(w, c, sim_now);
        }
    }
    let (affinity_hits, affinity_misses) = sim.affinity_stats();
    let affinity_hit_rate = affinity_hits as f64 / (affinity_hits + affinity_misses).max(1) as f64;
    eprintln!(
        "fleet: affinity routing over {} cells / {distinct_series} series on {fleet_workers} \
         workers — {affinity_hits} hits, {affinity_misses} misses ({:.0}%)",
        cells.len(),
        affinity_hit_rate * 100.0
    );

    // ---- Report --------------------------------------------------------
    let scaling_points = scaling
        .iter()
        .map(|(jobs, wall_s, cells_per_s, overcommitted)| {
            format!(
                "{{ \"jobs\": {jobs}, \"wall_s\": {wall_s:.4}, \"cells_per_s\": \
                 {cells_per_s:.4}, \"overcommitted\": {overcommitted} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let scaling_json = format!(
        "{{\n    \"host_parallelism\": {host},\n    \"points\": [\n      \
         {scaling_points}\n    ]\n  }}"
    );
    let stats_json = |s: &sb_cear::SearchStats| {
        format!(
            "{{ \"pops\": {}, \"stale_skips\": {}, \"relaxations\": {}, \
             \"heuristic_prunes\": {} }}",
            s.pops, s.stale_skips, s.relaxations, s.heuristic_prunes
        )
    };
    let spt_json = |s: &sb_cear::SptStats| {
        format!(
            "{{ \"hits\": {}, \"misses\": {}, \"deferred\": {}, \"hit_rate\": {:.4} }}",
            s.hits,
            s.misses,
            s.deferred,
            s.hit_rate()
        )
    };
    let memory_json = format!(
        "{{\n    \"scale\": \"{}\",\n    \"delta_series_bytes\": {},\n    \
         \"full_series_bytes\": {},\n    \"delta_marginal_per_slot_bytes\": \
         {delta_marginal_per_slot},\n    \"dense_per_slot_bytes\": {dense_per_slot},\n    \
         \"marginal_ratio\": {memory_ratio:.4},\n    \"peak_rss_bytes\": {}\n  }}",
        scenario.name,
        delta_series.heap_bytes(),
        full_series.heap_bytes(),
        json_opt_u64(memory_rss),
    );
    let mega_json = format!(
        "{{\n    \"satellites\": {},\n    \"shells\": {},\n    \"horizon_slots\": {},\n    \
         \"build_threads\": {build_threads},\n    \"build_wall_s\": {mega_build_s:.4},\n    \
         \"full_rebuild_wall_s\": {mega_full_build_s:.4},\n    \
         \"series_heap_bytes\": {mega_heap},\n    \
         \"dense_series_heap_bytes\": {mega_dense_heap},\n    \
         \"heap_ceiling_bytes\": {MEGA_HEAP_CEILING_BYTES},\n    \
         \"marginal_per_slot_bytes\": {mega_marginal_per_slot},\n    \
         \"dense_per_slot_bytes\": {mega_dense_per_slot},\n    \
         \"marginal_ratio\": {mega_ratio:.4},\n    \"peak_rss_bytes\": {}\n  }}",
        mega.total_satellites(),
        1 + mega.extra_shells.len(),
        mega.horizon_slots,
        json_opt_u64(mega_rss),
    );
    let fleet_json = format!(
        "{{\n    \"scale\": \"{}\",\n    \"compile_wall_s\": {fleet_compile_s:.4},\n    \
         \"encode_wall_s\": {fleet_encode_s:.4},\n    \"wire_bytes\": {wire_bytes},\n    \
         \"dense_snapshot_bytes\": {dense_snapshot_bytes},\n    \
         \"wire_compression_ratio\": {wire_ratio:.4},\n    \
         \"shipped_prep_wall_s\": {fleet_ship_prep_s:.4},\n    \
         \"rebuilt_prep_wall_s\": {fleet_rebuild_prep_s:.4},\n    \
         \"shipped_prep_speedup\": {fleet_prep_speedup:.4},\n    \
         \"affinity\": {{\n      \"workers\": {fleet_workers},\n      \"cells\": {},\n      \
         \"distinct_series\": {distinct_series},\n      \"hits\": {affinity_hits},\n      \
         \"misses\": {affinity_misses},\n      \"hit_rate\": {affinity_hit_rate:.4}\n    }}\n  }}",
        scenario.name,
        cells.len(),
    );
    let search_json = format!(
        "{{\n    \"kernel_dijkstra_us\": {scratch_us:.3},\n    \
         \"kernel_astar_us\": {astar_kernel_us:.3},\n    \
         \"kernel_tree_us\": {tree_kernel_us:.3},\n    \
         \"kernel_astar_speedup\": {:.4},\n    \"kernel_tree_speedup\": {:.4},\n    \
         \"quote_reference_us\": {quote_reference_us:.3},\n    \
         \"quote_astar_us\": {quote_astar_us:.3},\n    \
         \"quote_speedup\": {quote_search_speedup:.4},\n    \
         \"repeat_quote_reference_us\": {repeat_reference_us:.3},\n    \
         \"repeat_quote_astar_us\": {repeat_astar_us:.3},\n    \
         \"repeat_quote_speedup\": {repeat_speedup:.4},\n    \
         \"deterministic\": {kernels_agree},\n    \"reference_stats\": {},\n    \
         \"astar_stats\": {},\n    \"spt\": {},\n    \"repeat_spt\": {},\n    \
         \"sweep_spt\": {}\n  }}",
        scratch_us / astar_kernel_us,
        scratch_us / tree_kernel_us,
        stats_json(&reference_search),
        stats_json(&astar_search),
        spt_json(&astar_spt),
        spt_json(&repeat_spt),
        spt_json(&sweep_spt),
    );
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"seeds\": {},\n  \"host\": {{\n    \
         \"available_parallelism\": {},\n    \"jobs\": {},\n    \
         \"quote_threads\": {},\n    \"build_threads\": {}\n  }},\n  \"sweep\": {{\n    \"cells\": {},\n    \
         \"serial_s\": {:.4},\n    \"parallel_s\": {:.4},\n    \
         \"serial_cells_per_s\": {:.4},\n    \"parallel_cells_per_s\": {:.4},\n    \
         \"speedup\": {:.4},\n    \"deterministic\": {}\n  }},\n  \"quote\": {{\n    \
         \"horizon_slots\": 12,\n    \"requests\": {},\n    \"passes\": {},\n    \
         \"serial_us\": {:.3},\n    \"parallel_us\": {:.3},\n    \
         \"speedup\": {:.4},\n    \"speculated_slots\": {},\n    \
         \"validated_slots\": {},\n    \"fallback_slots\": {},\n    \
         \"speculation_hit_rate\": {:.4},\n    \"deterministic\": {}\n  }},\n  \
         \"topology\": {{\n    \"horizon_slots\": {},\n    \"build_serial_s\": {:.4},\n    \
         \"build_parallel_s\": {:.4},\n    \"build_speedup\": {:.4},\n    \
         \"deterministic\": {},\n    \"slot_build_us\": {:.3},\n    \"cache\": {{\n      \
         \"gets\": {},\n      \"hits\": {},\n      \"misses\": {},\n      \
         \"hit_rate\": {:.4}\n    }}\n  }},\n  \"micro\": {{\n    \
         \"search_fresh_us\": {:.3},\n    \"search_arena_us\": {:.3},\n    \
         \"search_speedup\": {:.4},\n    \"unit_price_powf_ns\": {:.3},\n    \
         \"unit_price_cached_ns\": {:.3},\n    \"pricing_speedup\": {:.4}\n  }},\n  \
         \"search\": {},\n  \"scaling\": {},\n  \"memory\": {},\n  \"mega\": {},\n  \
         \"fleet\": {}\n}}\n",
        scenario.name,
        opts.seeds,
        sb_bench::default_jobs(),
        opts.jobs,
        quote_threads,
        build_threads,
        cells.len(),
        serial_s,
        parallel_s,
        cells.len() as f64 / serial_s,
        cells.len() as f64 / parallel_s,
        speedup,
        deterministic,
        quote_requests.len(),
        quote_passes,
        quote_serial_us,
        quote_parallel_us,
        quote_speedup,
        quote_stats.speculated_slots,
        quote_stats.validated_slots,
        quote_stats.fallback_slots,
        quote_stats.hit_rate(),
        quote_deterministic,
        scenario.horizon_slots,
        build_serial_s,
        build_parallel_s,
        build_speedup,
        build_deterministic,
        slot_build_us,
        cells.len(),
        cache_hits,
        cache_misses,
        cache_hit_rate,
        fresh_us,
        scratch_us,
        fresh_us / scratch_us,
        powf_ns,
        cached_ns,
        powf_ns / cached_ns,
        search_json,
        scaling_json,
        memory_json,
        mega_json,
        fleet_json,
    );
    let path = opts.out_dir.join("BENCH_perf.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("{json}");
    println!("written to {}", path.display());
}
