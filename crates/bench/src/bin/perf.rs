//! Performance measurement harness: times the sweep runner serially and in
//! parallel, plus the two hot-path micro-kernels (search arena, price
//! cache), and emits machine-readable `BENCH_perf.json`.
//!
//! ```text
//! cargo run -p sb-bench --release --bin perf -- --scale fast --jobs 4
//! ```
//!
//! The sweep section runs the fig6-style (algorithm × seed) grid once with
//! one worker and once with `--jobs` workers, asserting the two result
//! vectors are bit-identical (the parallel runner's determinism contract)
//! before reporting the speedup. The micro section measures the per-slot
//! path search with and without the reusable [`sb_cear::SearchScratch`]
//! arena, and the exponential unit price via `powf` against the
//! epoch-validated [`sb_cear::PriceCache`].

use sb_bench::{parse_args, run_cells};
use sb_cear::search::{min_cost_path, min_cost_path_in};
use sb_cear::{pricing, CearParams, NetworkState, PriceCache, SearchScratch};
use sb_energy::EnergyParams;
use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_sim::engine::{self, AlgorithmKind};
use sb_topology::graph::EdgeId;
use sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};
use std::hint::black_box;
use std::time::Instant;

fn micro_network() -> (NetworkState, sb_topology::NodeId, sb_topology::NodeId) {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &cfg, 4, 60.0);
    (NetworkState::new(series, &EnergyParams::default()), a, b)
}

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let scenario = opts.scenario.clone();

    // ---- Sweep timing: (algorithm × seed) grid, 1 worker vs N ----------
    let cells: Vec<(AlgorithmKind, u64)> = AlgorithmKind::all(&scenario)
        .into_iter()
        .flat_map(|kind| (0..opts.seeds).map(move |seed| (kind, seed)))
        .collect();
    let run = |_: usize, c: &(AlgorithmKind, u64)| {
        let (kind, seed) = c;
        let prepared = engine::prepare(&scenario, *seed);
        let requests = engine::workload(&scenario, &prepared, *seed);
        engine::run_prepared(&scenario, &prepared, &requests, kind, *seed)
    };
    eprintln!("sweep: {} cells, serial pass…", cells.len());
    let t = Instant::now();
    let serial = run_cells(1, &cells, run);
    let serial_s = t.elapsed().as_secs_f64();
    eprintln!("sweep: parallel pass with {} workers…", opts.jobs);
    let t = Instant::now();
    let parallel = run_cells(opts.jobs, &cells, run);
    let parallel_s = t.elapsed().as_secs_f64();
    let deterministic = serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.social_welfare_ratio.to_bits() == b.social_welfare_ratio.to_bits());
    assert!(deterministic, "parallel sweep diverged from the serial run");
    let speedup = serial_s / parallel_s;
    eprintln!("sweep: serial {serial_s:.2}s, parallel {parallel_s:.2}s, speedup {speedup:.2}x");

    // ---- Micro: per-slot search, fresh allocation vs reused arena ------
    let (state, src, dst) = micro_network();
    let snap = state.series().snapshot(SlotIndex(0));
    let iters = 300u32;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path(snap, src, dst, |ctx| Some(1.0 + ctx.edge.length_m * 1e-9)));
    }
    let fresh_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let mut scratch = SearchScratch::new();
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path_in(&mut scratch, snap, src, dst, |ctx| {
            Some(1.0 + ctx.edge.length_m * 1e-9)
        }));
    }
    let scratch_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    eprintln!("search: fresh {fresh_us:.1}µs, arena {scratch_us:.1}µs");

    // ---- Micro: exponential unit price, powf vs cached -----------------
    let params = CearParams::default();
    let slot = SlotIndex(0);
    let n_edges = snap.num_edges();
    let passes = 100usize;
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..passes {
        for e in 0..n_edges {
            acc += pricing::unit_price(params.mu1(), state.utilization(slot, EdgeId(e as u32)));
        }
    }
    black_box(acc);
    let powf_ns = t.elapsed().as_secs_f64() * 1e9 / (passes * n_edges) as f64;
    let mut cache = PriceCache::new(params.mu1(), params.mu2());
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..passes {
        for e in 0..n_edges {
            acc += cache.link_unit_price(&state, slot, EdgeId(e as u32));
        }
    }
    black_box(acc);
    let cached_ns = t.elapsed().as_secs_f64() * 1e9 / (passes * n_edges) as f64;
    eprintln!("unit price: powf {powf_ns:.1}ns, cached {cached_ns:.1}ns");

    // ---- Report --------------------------------------------------------
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"seeds\": {},\n  \"jobs\": {},\n  \
         \"host_parallelism\": {},\n  \"sweep\": {{\n    \"cells\": {},\n    \
         \"serial_s\": {:.4},\n    \"parallel_s\": {:.4},\n    \
         \"serial_cells_per_s\": {:.4},\n    \"parallel_cells_per_s\": {:.4},\n    \
         \"speedup\": {:.4},\n    \"deterministic\": {}\n  }},\n  \"micro\": {{\n    \
         \"search_fresh_us\": {:.3},\n    \"search_arena_us\": {:.3},\n    \
         \"search_speedup\": {:.4},\n    \"unit_price_powf_ns\": {:.3},\n    \
         \"unit_price_cached_ns\": {:.3},\n    \"pricing_speedup\": {:.4}\n  }}\n}}\n",
        scenario.name,
        opts.seeds,
        opts.jobs,
        sb_bench::default_jobs(),
        cells.len(),
        serial_s,
        parallel_s,
        cells.len() as f64 / serial_s,
        cells.len() as f64 / parallel_s,
        speedup,
        deterministic,
        fresh_us,
        scratch_us,
        fresh_us / scratch_us,
        powf_ns,
        cached_ns,
        powf_ns / cached_ns,
    );
    let path = opts.out_dir.join("BENCH_perf.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("{json}");
    println!("written to {}", path.display());
}
