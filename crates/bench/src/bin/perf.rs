//! Performance measurement harness: times the sweep runner serially and in
//! parallel, the speculative slot-parallel admission quote, plus the two
//! hot-path micro-kernels (search arena, price cache), and emits
//! machine-readable `BENCH_perf.json`.
//!
//! ```text
//! cargo run -p sb-bench --release --bin perf -- --scale fast --jobs 4
//! ```
//!
//! The sweep section runs the fig6-style (algorithm × seed) grid once with
//! one worker and once with `--jobs` workers, asserting the two result
//! vectors are bit-identical (the parallel runner's determinism contract)
//! before reporting the speedup. The quote section times a multi-slot CEAR
//! admission quote serially and with `--quote-threads` workers (defaulting
//! to the host parallelism when the flag is absent), asserts bitwise
//! equality, and reports the speculation hit rate. The micro section
//! measures the per-slot path search with and without the reusable
//! [`sb_cear::SearchScratch`] arena, and the exponential unit price via
//! `powf` against the epoch-validated [`sb_cear::PriceCache`].
//!
//! The topology section times `engine::prepare` with a serial and a
//! `--build-threads`-wide parallel series build (asserting the two are
//! bit-identical), micro-benchmarks one `build_snapshot` call, and replays
//! the sweep grid against the shared [`sb_sim::PreparedCache`] to report
//! its hit/miss tally.
//!
//! The report carries the host's available parallelism alongside `--jobs`,
//! `--quote-threads` and `--build-threads`, so a disappointing speedup
//! measured on a 1-core container is machine-readably distinguishable from
//! a real regression.

use sb_bench::{parse_args, run_cells};
use sb_cear::search::{min_cost_path, min_cost_path_in};
use sb_cear::{pricing, Cear, CearParams, NetworkState, PriceCache, SearchScratch};
use sb_demand::{RateProfile, Request, RequestId};
use sb_energy::EnergyParams;
use sb_geo::coords::Geodetic;
use sb_orbit::walker::WalkerConstellation;
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::PreparedCache;
use sb_topology::graph::EdgeId;
use sb_topology::series::build_snapshot;
use sb_topology::{NetworkNodes, SlotIndex, TopologyConfig, TopologySeries};
use std::hint::black_box;
use std::time::Instant;

fn micro_network(slots: usize) -> (NetworkState, sb_topology::NodeId, sb_topology::NodeId) {
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut nodes = NetworkNodes::from_walker(&shell);
    let a = nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    let b = nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let cfg = TopologyConfig { min_elevation_rad: 15f64.to_radians(), ..TopologyConfig::default() };
    let series = TopologySeries::build(&nodes, &cfg, slots, 60.0);
    (NetworkState::new(series, &EnergyParams::default()), a, b)
}

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let scenario = opts.scenario.clone();

    // ---- Sweep timing: (algorithm × seed) grid, 1 worker vs N ----------
    let cells: Vec<(AlgorithmKind, u64)> = AlgorithmKind::all(&scenario)
        .into_iter()
        .flat_map(|kind| (0..opts.seeds).map(move |seed| (kind, seed)))
        .collect();
    let run = |_: usize, c: &(AlgorithmKind, u64)| {
        let (kind, seed) = c;
        let prepared = engine::prepare(&scenario, *seed);
        let requests = engine::workload(&scenario, &prepared, *seed);
        engine::run_prepared(&scenario, &prepared, &requests, kind, *seed)
    };
    eprintln!("sweep: {} cells, serial pass…", cells.len());
    let t = Instant::now();
    let serial = run_cells(1, &cells, run);
    let serial_s = t.elapsed().as_secs_f64();
    eprintln!("sweep: parallel pass with {} workers…", opts.jobs);
    let t = Instant::now();
    let parallel = run_cells(opts.jobs, &cells, run);
    let parallel_s = t.elapsed().as_secs_f64();
    let deterministic = serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.social_welfare_ratio.to_bits() == b.social_welfare_ratio.to_bits());
    assert!(deterministic, "parallel sweep diverged from the serial run");
    let speedup = serial_s / parallel_s;
    eprintln!("sweep: serial {serial_s:.2}s, parallel {parallel_s:.2}s, speedup {speedup:.2}x");

    // ---- Quote: serial vs speculative slot-parallel admission ----------
    // A 12-slot horizon gives the quote 12 per-slot searches to fan out;
    // one committed reservation makes the quoted state non-trivial.
    let quote_threads =
        if opts.quote_threads > 1 { opts.quote_threads } else { sb_bench::default_jobs() };
    let (mut qstate, qsrc, qdst) = micro_network(12);
    let params = CearParams::default();
    let mk_request = |id: u32, rate: f64| Request {
        id: RequestId(id),
        source: qsrc,
        destination: qdst,
        rate: RateProfile::Constant(rate),
        start: SlotIndex(0),
        end: SlotIndex(11),
        valuation: f64::MAX,
    };
    // Rates are kept solar-covered (consumption within each slot's
    // harvest): that is the regime where speculation validates — a slot
    // that draws on the battery propagates into later slots' solar
    // budget, so the request's own earlier commits would perturb every
    // later deficit trace and force the serial fallback. That divergence
    // regime is covered by the parquote property tests; here we measure
    // what the parallel phase buys when it validates.
    {
        use sb_cear::RoutingAlgorithm;
        let mut warm = Cear::new(params);
        black_box(warm.process(&mk_request(0, 30.0), &mut qstate));
    }
    let quote_requests: Vec<Request> =
        (0..16).map(|id| mk_request(100 + id, 10.0 + 2.0 * id as f64)).collect();
    let quote_passes = 12u32;
    let serial_cear = Cear::new(params);
    let t = Instant::now();
    let mut serial_quotes = Vec::new();
    for _ in 0..quote_passes {
        serial_quotes.clear();
        for r in &quote_requests {
            serial_quotes.push(black_box(serial_cear.quote(r, &qstate)));
        }
    }
    let quote_serial_us =
        t.elapsed().as_secs_f64() * 1e6 / (quote_passes as usize * quote_requests.len()) as f64;
    let parallel_cear = Cear::new(params).with_quote_threads(quote_threads);
    let t = Instant::now();
    let mut parallel_quotes = Vec::new();
    for _ in 0..quote_passes {
        parallel_quotes.clear();
        for r in &quote_requests {
            parallel_quotes.push(black_box(parallel_cear.quote(r, &qstate)));
        }
    }
    let quote_parallel_us =
        t.elapsed().as_secs_f64() * 1e6 / (quote_passes as usize * quote_requests.len()) as f64;
    let quote_deterministic =
        serial_quotes.iter().zip(&parallel_quotes).all(|(a, b)| match (a, b) {
            (Ok((pa, qa)), Ok((pb, qb))) => pa == pb && qa.to_bits() == qb.to_bits(),
            (a, b) => a == b,
        });
    assert!(quote_deterministic, "speculative quote diverged from the serial path");
    let quote_stats = parallel_cear.quote_stats();
    let quote_speedup = quote_serial_us / quote_parallel_us;
    eprintln!(
        "quote: serial {quote_serial_us:.1}µs, {quote_threads}-thread {quote_parallel_us:.1}µs, \
         speedup {quote_speedup:.2}x, hit rate {:.3}",
        quote_stats.hit_rate()
    );

    // ---- Micro: per-slot search, fresh allocation vs reused arena ------
    let (state, src, dst) = micro_network(4);
    let snap = state.series().snapshot(SlotIndex(0));
    let iters = 300u32;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path(snap, src, dst, |ctx| Some(1.0 + ctx.edge.length_m * 1e-9)));
    }
    let fresh_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let mut scratch = SearchScratch::new();
    let t = Instant::now();
    for _ in 0..iters {
        black_box(min_cost_path_in(&mut scratch, snap, src, dst, |ctx| {
            Some(1.0 + ctx.edge.length_m * 1e-9)
        }));
    }
    let scratch_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    eprintln!("search: fresh {fresh_us:.1}µs, arena {scratch_us:.1}µs");

    // ---- Micro: exponential unit price, powf vs cached -----------------
    let slot = SlotIndex(0);
    let n_edges = snap.num_edges();
    let passes = 100usize;
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..passes {
        for e in 0..n_edges {
            acc += pricing::unit_price(params.mu1(), state.utilization(slot, EdgeId(e as u32)));
        }
    }
    black_box(acc);
    let powf_ns = t.elapsed().as_secs_f64() * 1e9 / (passes * n_edges) as f64;
    let mut cache = PriceCache::new(params.mu1(), params.mu2());
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..passes {
        for e in 0..n_edges {
            acc += cache.link_unit_price(&state, slot, EdgeId(e as u32));
        }
    }
    black_box(acc);
    let cached_ns = t.elapsed().as_secs_f64() * 1e9 / (passes * n_edges) as f64;
    eprintln!("unit price: powf {powf_ns:.1}ns, cached {cached_ns:.1}ns");

    // ---- Topology: serial vs parallel build, cache tally ---------------
    let build_threads = opts.build_threads;
    eprintln!("topology: serial prepare…");
    let t = Instant::now();
    let serial_prepared = engine::prepare(&scenario, 0);
    let build_serial_s = t.elapsed().as_secs_f64();
    eprintln!("topology: parallel prepare with {build_threads} build threads…");
    let t = Instant::now();
    let parallel_prepared = engine::prepare_with(&scenario, 0, build_threads);
    let build_parallel_s = t.elapsed().as_secs_f64();
    let build_deterministic = serial_prepared.pairs == parallel_prepared.pairs
        && serial_prepared.series.as_ref() == parallel_prepared.series.as_ref();
    assert!(build_deterministic, "parallel topology build diverged from the serial one");
    let build_speedup = build_serial_s / build_parallel_s;
    eprintln!(
        "topology: serial {build_serial_s:.2}s, parallel {build_parallel_s:.2}s, \
         speedup {build_speedup:.2}x"
    );

    // Per-slot build cost on the micro shell (16×16 + 2 ground users).
    let shell = WalkerConstellation::delta(16, 16, 5, 550e3, 53f64.to_radians());
    let mut bench_nodes = NetworkNodes::from_walker(&shell);
    bench_nodes.add_ground_site(Geodetic::from_degrees(35.8, -78.6, 0.0));
    bench_nodes.add_ground_site(Geodetic::from_degrees(48.9, 2.3, 0.0));
    let bench_cfg = TopologyConfig::default();
    let slot_iters = 16u32;
    let t = Instant::now();
    for i in 0..slot_iters {
        black_box(build_snapshot(
            &bench_nodes,
            &bench_cfg,
            SlotIndex(i),
            sb_geo::Epoch::from_seconds(i as f64 * 60.0),
        ));
    }
    let slot_build_us = t.elapsed().as_secs_f64() * 1e6 / slot_iters as f64;
    eprintln!("topology: per-slot build {slot_build_us:.1}µs (16×16 shell)");

    // Replay the sweep grid through the shared cache: the five algorithm
    // cells of each seed collapse to one build.
    let cache = PreparedCache::new(build_threads);
    for (_, seed) in &cells {
        black_box(cache.get(&scenario, *seed));
    }
    let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
    let cache_hit_rate = cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64;
    eprintln!(
        "topology: cache replay of {} cells — {cache_hits} hits, {cache_misses} misses",
        cells.len()
    );

    // ---- Report --------------------------------------------------------
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"seeds\": {},\n  \"host\": {{\n    \
         \"available_parallelism\": {},\n    \"jobs\": {},\n    \
         \"quote_threads\": {},\n    \"build_threads\": {}\n  }},\n  \"sweep\": {{\n    \"cells\": {},\n    \
         \"serial_s\": {:.4},\n    \"parallel_s\": {:.4},\n    \
         \"serial_cells_per_s\": {:.4},\n    \"parallel_cells_per_s\": {:.4},\n    \
         \"speedup\": {:.4},\n    \"deterministic\": {}\n  }},\n  \"quote\": {{\n    \
         \"horizon_slots\": 12,\n    \"requests\": {},\n    \"passes\": {},\n    \
         \"serial_us\": {:.3},\n    \"parallel_us\": {:.3},\n    \
         \"speedup\": {:.4},\n    \"speculated_slots\": {},\n    \
         \"validated_slots\": {},\n    \"fallback_slots\": {},\n    \
         \"speculation_hit_rate\": {:.4},\n    \"deterministic\": {}\n  }},\n  \
         \"topology\": {{\n    \"horizon_slots\": {},\n    \"build_serial_s\": {:.4},\n    \
         \"build_parallel_s\": {:.4},\n    \"build_speedup\": {:.4},\n    \
         \"deterministic\": {},\n    \"slot_build_us\": {:.3},\n    \"cache\": {{\n      \
         \"gets\": {},\n      \"hits\": {},\n      \"misses\": {},\n      \
         \"hit_rate\": {:.4}\n    }}\n  }},\n  \"micro\": {{\n    \
         \"search_fresh_us\": {:.3},\n    \"search_arena_us\": {:.3},\n    \
         \"search_speedup\": {:.4},\n    \"unit_price_powf_ns\": {:.3},\n    \
         \"unit_price_cached_ns\": {:.3},\n    \"pricing_speedup\": {:.4}\n  }}\n}}\n",
        scenario.name,
        opts.seeds,
        sb_bench::default_jobs(),
        opts.jobs,
        quote_threads,
        build_threads,
        cells.len(),
        serial_s,
        parallel_s,
        cells.len() as f64 / serial_s,
        cells.len() as f64 / parallel_s,
        speedup,
        deterministic,
        quote_requests.len(),
        quote_passes,
        quote_serial_us,
        quote_parallel_us,
        quote_speedup,
        quote_stats.speculated_slots,
        quote_stats.validated_slots,
        quote_stats.fallback_slots,
        quote_stats.hit_rate(),
        quote_deterministic,
        scenario.horizon_slots,
        build_serial_s,
        build_parallel_s,
        build_speedup,
        build_deterministic,
        slot_build_us,
        cells.len(),
        cache_hits,
        cache_misses,
        cache_hit_rate,
        fresh_us,
        scratch_us,
        fresh_us / scratch_us,
        powf_ns,
        cached_ns,
        powf_ns / cached_ns,
    );
    let path = opts.out_dir.join("BENCH_perf.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("{json}");
    println!("written to {}", path.display());
}
