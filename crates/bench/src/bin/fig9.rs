//! Fig. 9 — CEAR's social-welfare ratio under (left) varying request
//! valuations and (right) varying energy conservativeness `F₂`.
//!
//! ```text
//! cargo run -p sb-bench --release --bin fig9 -- --scale fast
//! ```
//!
//! `--jobs N` fans sweep cells across workers, `--quote-threads N`
//! parallelizes each CEAR admission across its slots, `--build-threads N`
//! parallelizes the topology build, and the prepared-network cache gives
//! each seed a single build across both sweeps (valuation and `F₂` are
//! workload/pricing knobs, invisible to `prepare`). Outputs are
//! byte-identical for every knob.

use sb_bench::{parse_args, run_cells, write_csv};
use sb_demand::ValuationModel;
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::metrics;
use sb_sim::output::{markdown_table, write_series_csv, SeriesPoint};
use sb_sim::PreparedCache;
use sb_sim::{RunMetrics, ScenarioConfig};

/// Runs one sweep — `(scenario, seed)` cells in deterministic order — and
/// regroups the flat results into per-configuration seed batches. Cells
/// pull their prepared network from the shared cache instead of
/// rebuilding it per configuration.
fn sweep(
    jobs: usize,
    seeds: u64,
    scenarios: &[ScenarioConfig],
    cache: &PreparedCache,
) -> Vec<Vec<RunMetrics>> {
    let cells: Vec<(ScenarioConfig, u64)> =
        scenarios.iter().flat_map(|sc| (0..seeds).map(move |seed| (sc.clone(), seed))).collect();
    let flat = run_cells(jobs, &cells, |_, (sc, seed)| {
        let prepared = cache.get(sc, *seed);
        let requests = engine::workload(sc, &prepared, *seed);
        engine::run_prepared(sc, &prepared, &requests, &AlgorithmKind::Cear(sc.cear), *seed)
    });
    flat.chunks(seeds as usize).map(|c| c.to_vec()).collect()
}

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let cache = sb_bench::prepared_cache(&opts);

    // Left: valuation sweep. The paper saturates at its default 2.3e9, so
    // the sweep reaches down to where prices actually bind (the interesting
    // rising part of the curve) and up to the saturated plateau.
    let valuations = [0.001, 0.01, 0.05, 0.25, 1.0].map(|m| m * 2.3e9);
    let val_scenarios: Vec<ScenarioConfig> = valuations
        .iter()
        .map(|&v| {
            let mut scenario = opts.scenario.clone();
            scenario.valuation = ValuationModel::Constant(v);
            scenario
        })
        .collect();
    let mut val_points = Vec::new();
    for (&v, runs) in valuations.iter().zip(sweep(opts.jobs, opts.seeds, &val_scenarios, &cache)) {
        let ratios: Vec<f64> = runs.iter().map(|m| m.social_welfare_ratio).collect();
        eprintln!("valuation {v:>10.2e}: ratio {:.4}", metrics::mean_std(&ratios).mean);
        val_points.push(SeriesPoint {
            x: v,
            values: vec![("CEAR".to_owned(), metrics::mean_std(&ratios))],
        });
    }

    // Right: F2 sweep, wide enough for the energy price to start binding.
    let f2s = [0.5, 2.0, 8.0, 32.0, 128.0];
    let f2_scenarios: Vec<ScenarioConfig> = f2s
        .iter()
        .map(|&f2| {
            let mut scenario = opts.scenario.clone();
            scenario.cear.f2 = f2;
            scenario
        })
        .collect();
    let mut f2_points = Vec::new();
    for (&f2, runs) in f2s.iter().zip(sweep(opts.jobs, opts.seeds, &f2_scenarios, &cache)) {
        let ratios: Vec<f64> = runs.iter().map(|m| m.social_welfare_ratio).collect();
        let depleted = runs.iter().map(|m| m.mean_depleted()).sum::<f64>() / runs.len() as f64;
        eprintln!(
            "F2 {f2:>5.1}: ratio {:.4}, mean depleted satellites {depleted:.1}",
            metrics::mean_std(&ratios).mean
        );
        f2_points.push(SeriesPoint {
            x: f2,
            values: vec![("CEAR".to_owned(), metrics::mean_std(&ratios))],
        });
    }

    sb_bench::report_cache(&cache);
    println!("\n# Fig. 9 — CEAR sensitivity ({} scale)\n", opts.scenario.name);
    println!("## Social welfare ratio vs valuation\n");
    println!("{}", markdown_table("valuation", &val_points));
    println!("## Social welfare ratio vs F2\n");
    println!("{}", markdown_table("F2", &f2_points));

    let left = opts.out_dir.join(format!("fig9_valuation_{}.csv", opts.scenario.name));
    let right = opts.out_dir.join(format!("fig9_f2_{}.csv", opts.scenario.name));
    write_csv(&left, |p| write_series_csv(p, "valuation", &val_points));
    write_csv(&right, |p| write_series_csv(p, "f2", &f2_points));
    println!("CSV written to {} and {}", left.display(), right.display());
}
