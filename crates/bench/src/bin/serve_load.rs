//! Service load harness: drives the [`sb_serve::AdmissionService`]
//! through a closed-loop latency/throughput phase and an overload burst,
//! and emits machine-readable `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p sb-bench --release --bin serve_load -- --scale tiny --jobs 4
//! ```
//!
//! The closed-loop phase runs `--jobs` quote workers against as many
//! client threads, each submitting its share of the scenario workload
//! with [`AdmissionService::submit_blocking`] and timing every answer:
//! the report carries p50/p95/p99 ack latency and the sustained decision
//! rate. The queue is sized so nothing sheds — every request gets a real
//! quote-based decision.
//!
//! The overload phase then aims a burst several times larger at a
//! deliberately tiny queue (depth 4) with a short deadline: value-density
//! shedding and deadline shedding must engage, every ticket must still
//! resolve, the service must stay live (no fault was injected), and the
//! final drain must be clean. The report records each shed counter so a
//! regression in overload behavior is machine-readably visible.

use sb_bench::parse_args;
use sb_cear::{CearParams, NetworkState};
use sb_serve::{AckBody, AdmissionService, ServeConfig};
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::faultio::{FaultIo, FaultPlan};
use sb_sim::journal::Journal;
use std::time::{Duration, Instant};

/// Percentile of an already-sorted latency sample (nearest-rank).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 * p / 100.0).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let scenario = opts.scenario.clone();
    let seed = 0u64;
    let workers = opts.jobs;
    let kind = AlgorithmKind::Cear(CearParams::default());
    let digest = engine::run_digest(&scenario, &kind, seed);
    let prepared = engine::prepare(&scenario, seed);
    let requests = engine::workload(&scenario, &prepared, seed);
    assert!(!requests.is_empty(), "scenario workload is empty");

    // ---- Closed loop: per-ack latency and sustained decision rate ------
    eprintln!("closed loop: {} requests, {workers} workers / {workers} clients…", requests.len());
    let mut cfg = ServeConfig::new(digest, seed);
    cfg.workers = workers;
    cfg.queue_depth = (requests.len() + workers).max(64);
    cfg.degraded_enter = cfg.queue_depth; // occupancy can never reach it
    cfg.degraded_exit = cfg.queue_depth / 4;
    let state = NetworkState::new(prepared.series.clone(), &scenario.energy);
    let journal = Journal::from_io(Box::new(FaultIo::new(FaultPlan::none())));
    let service = AdmissionService::start(state, journal, cfg, None, 0)
        .unwrap_or_else(|e| panic!("cannot start admission service: {e}"));
    let t = Instant::now();
    let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..workers)
            .map(|client| {
                let chunk: Vec<_> =
                    requests.iter().skip(client).step_by(workers).cloned().collect();
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(chunk.len());
                    for req in chunk {
                        let t = Instant::now();
                        let ack = service.submit_blocking(req).expect("service stays alive");
                        lat.push(t.elapsed().as_micros() as u64);
                        assert!(
                            !matches!(ack.body, AckBody::Shed { .. }),
                            "closed loop must not shed (queue is oversized)"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let closed_s = t.elapsed().as_secs_f64();
    let closed_stats = service.stats();
    let closed_live = !service.is_dead();
    let closed_report = service.drain();
    let closed_clean = closed_report.failure.is_none();
    latencies_us.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&latencies_us, 50.0),
        percentile(&latencies_us, 95.0),
        percentile(&latencies_us, 99.0),
    );
    let mean_us = latencies_us.iter().sum::<u64>() as f64 / latencies_us.len().max(1) as f64;
    let decisions_per_s = closed_stats.decisions() as f64 / closed_s;
    eprintln!(
        "closed loop: {:.0} decisions/s, p50 {p50}µs, p95 {p95}µs, p99 {p99}µs, \
         {} admitted / {} decisions",
        decisions_per_s,
        closed_stats.admitted,
        closed_stats.decisions()
    );
    assert!(closed_live && closed_clean, "closed loop must stay live and drain cleanly");

    // ---- Overload burst: tiny queue + deadline, shedding must engage ---
    let burst: Vec<_> = requests.iter().cycle().take(requests.len().max(400)).cloned().collect();
    let deadline_us = 3_000u64;
    eprintln!("overload: burst of {} into a depth-4 queue, {deadline_us}µs deadline…", burst.len());
    let mut cfg = ServeConfig::new(digest, seed);
    cfg.workers = workers;
    cfg.queue_depth = 4;
    cfg.deadline = Some(Duration::from_micros(deadline_us));
    cfg.degraded_enter = 3;
    cfg.degraded_exit = 1;
    let state = NetworkState::new(prepared.series.clone(), &scenario.energy);
    let journal = Journal::from_io(Box::new(FaultIo::new(FaultPlan::none())));
    let service = AdmissionService::start(state, journal, cfg, None, 0)
        .unwrap_or_else(|e| panic!("cannot start admission service: {e}"));
    // Bursts of 40 against a depth-4 queue, with a short gap between
    // bursts: each burst saturates the queue (value-density shedding
    // engages), each gap lets the committer land a few real decisions —
    // so the report shows admissions AND shedding side by side.
    let t = Instant::now();
    let mut tickets = Vec::with_capacity(burst.len());
    for chunk in burst.chunks(40) {
        for req in chunk {
            tickets.push(service.submit(req.clone()).expect("burst submissions are accepted"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let submitted = tickets.len() as u64;
    for ticket in tickets {
        ticket.wait().expect("every burst ticket resolves");
    }
    let burst_s = t.elapsed().as_secs_f64();
    let over = service.stats();
    let over_live = !service.is_dead();
    let over_report = service.drain();
    let over_clean = over_report.failure.is_none();
    let total_shed = over.shed_queue_full + over.shed_deadline + over.shed_retries;
    eprintln!(
        "overload: {total_shed} shed ({} queue-full, {} deadline, {} retries), \
         {} admitted, {} degraded entries, live={over_live}, clean drain={over_clean}",
        over.shed_queue_full,
        over.shed_deadline,
        over.shed_retries,
        over.admitted,
        over.degraded_entries
    );
    assert!(total_shed > 0, "a {}x-queue-depth burst must shed", submitted / 4);
    assert!(over_live && over_clean, "overload must not kill the service");

    // ---- Report --------------------------------------------------------
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"host\": {{\n    \"available_parallelism\": {},\n    \
         \"workers\": {},\n    \"clients\": {}\n  }},\n  \"closed_loop\": {{\n    \
         \"requests\": {},\n    \"admitted\": {},\n    \"rejected\": {},\n    \
         \"shed\": 0,\n    \"conflicts\": {},\n    \"requotes\": {},\n    \
         \"max_occupancy\": {},\n    \"elapsed_s\": {:.4},\n    \
         \"decisions_per_s\": {:.1},\n    \"latency_us\": {{\n      \"mean\": {:.1},\n      \
         \"p50\": {},\n      \"p95\": {},\n      \"p99\": {}\n    }},\n    \
         \"service_live\": {},\n    \"drain_clean\": {}\n  }},\n  \"overload\": {{\n    \
         \"queue_depth\": 4,\n    \"deadline_us\": {},\n    \"submitted\": {},\n    \
         \"admitted\": {},\n    \"rejected\": {},\n    \"shed_queue_full\": {},\n    \
         \"shed_deadline\": {},\n    \"shed_retries\": {},\n    \"conflicts\": {},\n    \
         \"degraded_entries\": {},\n    \"elapsed_s\": {:.4},\n    \"service_live\": {},\n    \
         \"drain_clean\": {}\n  }}\n}}\n",
        scenario.name,
        sb_bench::default_jobs(),
        workers,
        workers,
        requests.len(),
        closed_stats.admitted,
        closed_stats.rejected_no_path + closed_stats.rejected_price + closed_stats.rejected_commit,
        closed_stats.conflicts,
        closed_stats.requotes,
        closed_stats.max_occupancy,
        closed_s,
        decisions_per_s,
        mean_us,
        p50,
        p95,
        p99,
        closed_live,
        closed_clean,
        deadline_us,
        submitted,
        over.admitted,
        over.rejected_no_path + over.rejected_price + over.rejected_commit,
        over.shed_queue_full,
        over.shed_deadline,
        over.shed_retries,
        over.conflicts,
        over.degraded_entries,
        burst_s,
        over_live,
        over_clean,
    );
    let path = opts.out_dir.join("BENCH_serve.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("{json}");
    println!("written to {}", path.display());
}
