//! Ablation study: which of CEAR's mechanisms buys what?
//!
//! DESIGN.md calls out three load-bearing design choices — exponential
//! congestion pricing, deficit-propagated energy pricing, and price-based
//! admission control. This harness removes them one at a time and reports
//! welfare, congestion and battery health side by side.
//!
//! ```text
//! cargo run -p sb-bench --release --bin ablation -- --scale fast
//! ```
//!
//! Supports `--checkpoint-every N` (durable runs under `OUT/durable/`)
//! and `--resume DIR` to continue an interrupted sweep; see the
//! robustness binary for the workflow. `--jobs N` and `--quote-threads N`
//! parallelize across sweep cells and within each CEAR admission
//! respectively, byte-identically.

use sb_bench::{parse_args, prepared_cache, report_cache, run_cell, run_cells};
use sb_cear::AblationFlags;
use sb_sim::engine::{self, AlgorithmKind};
use sb_sim::metrics;
use sb_sim::RunMetrics;

fn main() {
    let opts = parse_args(std::env::args().skip(1));
    let scenario = opts.scenario.clone();

    let variants: Vec<AlgorithmKind> = vec![
        AlgorithmKind::Cear(scenario.cear),
        AlgorithmKind::CearAblated(
            scenario.cear,
            AblationFlags { price_bandwidth: false, ..AblationFlags::default() },
        ),
        AlgorithmKind::CearAblated(
            scenario.cear,
            AblationFlags { price_energy: false, ..AblationFlags::default() },
        ),
        AlgorithmKind::CearAblated(
            scenario.cear,
            AblationFlags { admission_control: false, ..AblationFlags::default() },
        ),
        AlgorithmKind::CearAblated(
            scenario.cear,
            AblationFlags { price_bandwidth: false, price_energy: false, admission_control: false },
        ),
    ];

    // Flat (variant, seed) cell list; durable per-cell directories are
    // distinct per cell and seed, so parallel workers never collide.
    let cells: Vec<(AlgorithmKind, u64)> =
        variants.iter().flat_map(|&kind| (0..opts.seeds).map(move |seed| (kind, seed))).collect();
    let cache = prepared_cache(&opts);
    let flat = run_cells(opts.jobs, &cells, |_, (kind, seed)| {
        let cell = format!("ablation-{}", kind.name());
        let prepared = cache.get(&scenario, *seed);
        let requests = engine::workload(&scenario, &prepared, *seed);
        run_cell(&opts, &scenario, &prepared, &requests, kind, *seed, &cell)
    });
    report_cache(&cache);

    println!("# CEAR ablation ({} scale, {} seeds)\n", scenario.name, opts.seeds);
    println!("| variant | welfare ratio | mean congested links | mean depleted sats | revenue |");
    println!("|---|---|---|---|---|");
    for (kind, runs) in variants.iter().zip(flat.chunks(opts.seeds as usize)) {
        let ratio =
            metrics::mean_std(&runs.iter().map(|m| m.social_welfare_ratio).collect::<Vec<_>>());
        let congested =
            runs.iter().map(RunMetrics::mean_congested).sum::<f64>() / runs.len() as f64;
        let depleted = runs.iter().map(RunMetrics::mean_depleted).sum::<f64>() / runs.len() as f64;
        let revenue = runs.iter().map(|m| m.revenue).sum::<f64>() / runs.len() as f64;
        println!(
            "| {} | {:.4} ± {:.4} | {congested:.2} | {depleted:.2} | {revenue:.3e} |",
            kind.name(),
            ratio.mean,
            ratio.std
        );
    }
    println!(
        "\nVariant naming: -nobw drops the congestion price term, -noenergy the battery \
         term, -noadmission the valuation check, -custom all pricing and admission \
         (feasibility-greedy routing)."
    );
}
